//! Property-based tests for the hierarchical-heavy-hitters stack.

use proptest::prelude::*;
use std::collections::HashMap;
use wb_core::rng::TranscriptRng;
use wb_sketch::hhh::{HierarchicalSpaceSaving, Hierarchy, RadixHierarchy, RobustHHH};

/// Exact subtree count of a prefix from leaf counts.
fn subtree_count(h: &RadixHierarchy, leaf_counts: &HashMap<u64, u64>, level: u32, id: u64) -> u64 {
    leaf_counts
        .iter()
        .filter(|(&leaf, _)| h.ancestor(leaf, level) == id)
        .map(|(_, &c)| c)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tms12_accuracy_clause_on_arbitrary_streams(
        stream in proptest::collection::vec(0u64..256, 50..400),
    ) {
        let h = RadixHierarchy::new(4, 2); // 8-bit leaves, height 2
        let eps = 0.1;
        let mut alg = HierarchicalSpaceSaving::new(h, eps, 0.3);
        let mut leaf_counts: HashMap<u64, u64> = HashMap::new();
        for &item in &stream {
            alg.insert(item);
            *leaf_counts.entry(item).or_insert(0) += 1;
        }
        let m = stream.len() as u64;
        for (p, fp) in alg.solve(0.3) {
            let truth = subtree_count(&h, &leaf_counts, p.level, p.id) as f64;
            prop_assert!(fp <= truth + 1e-9, "{p:?}: over-reported {fp} > {truth}");
            prop_assert!(
                fp >= truth - eps * m as f64 - 1e-9,
                "{p:?}: {fp} under-reports {truth} beyond εm"
            );
        }
    }

    #[test]
    fn tms12_reports_cover_every_gamma_heavy_leaf(
        hot in 0u64..256,
        noise in proptest::collection::vec(0u64..256, 0..150),
    ) {
        // Make `hot` hold ≥ 50% of the stream; it (or an ancestor with it
        // inside) must appear in the report at γ = 0.3.
        let h = RadixHierarchy::new(4, 2);
        let mut alg = HierarchicalSpaceSaving::new(h, 0.05, 0.3);
        for &item in &noise {
            alg.insert(item);
        }
        for _ in 0..noise.len().max(20) {
            alg.insert(hot);
        }
        let report = alg.solve(0.3);
        let covered = report.iter().any(|&(p, _)| h.ancestor(hot, p.level) == p.id);
        prop_assert!(covered, "hot leaf {hot} not covered by {report:?}");
    }

    #[test]
    fn robust_hhh_estimates_scale_to_stream_size(
        seed in 0u64..200,
        reps in 40u64..120,
    ) {
        // A single dominant leaf repeated `reps·16` times among 16·reps
        // total updates: its reported estimate must land near its share.
        let h = RadixHierarchy::new(4, 2);
        let mut rng = TranscriptRng::from_seed(seed);
        let mut alg = RobustHHH::new(h, 0.1, 0.4);
        let m = 16 * reps;
        for t in 0..m {
            let item = if t % 2 == 0 { 7 } else { (t * 37) % 256 };
            alg.insert(item, &mut rng);
        }
        let report = alg.solve();
        if let Some(&(_, est)) = report.iter().find(|&&(p, _)| p.level == 0 && p.id == 7) {
            let truth = (m / 2) as f64;
            prop_assert!(
                (est - truth).abs() < 0.35 * m as f64,
                "estimate {est} far from {truth} (m = {m})"
            );
        }
        // The dominant leaf must be covered by *something* in the report.
        prop_assert!(
            report.iter().any(|&(p, _)| h.ancestor(7, p.level) == p.id),
            "dominant leaf uncovered: {report:?}"
        );
    }

    #[test]
    fn hierarchy_ancestors_are_consistent_under_lift(
        item in 0u64..(1 << 12),
        a in 0u32..4,
        b in 0u32..4,
    ) {
        let h = RadixHierarchy::new(3, 4);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert_eq!(
            h.lift(h.ancestor(item, lo), lo, hi),
            h.ancestor(item, hi)
        );
    }
}
