//! L0 (distinct elements) estimation on turnstile streams (§2.3).
//!
//! * [`exact`] — the deterministic exact baseline;
//! * [`sis_estimator`] — Algorithm 5 / Theorem 1.5;
//! * [`attack`] — the naive-sketch break and the bounded SIS attacks that
//!   map out the computational assumption.

pub mod attack;
pub mod exact;
pub mod sis_estimator;

pub use attack::{attack_sis_estimator, break_naive_sketch, NaiveModSketchL0, SisAttackOutcome};
pub use exact::ExactL0;
pub use sis_estimator::{MatrixMode, SisL0Estimator};
