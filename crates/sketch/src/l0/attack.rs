//! Attacks on L0 sketches — the experimental side of Theorem 1.5's
//! computational assumption.
//!
//! Two stories, one per adversary class:
//!
//! * **The naive small-modulus sketch is broken in polynomial time.**
//!   [`NaiveModSketchL0`] is Algorithm 5 with a *tiny* modulus (e.g.
//!   `q = 2`, an XOR sketch). Against it, Gaussian elimination — a
//!   poly-time algorithm — finds a nonzero kernel vector whose entries are
//!   automatically in `[0, q)`, i.e. *short*, so the adversary can place
//!   live items in a chunk whose sketch reads zero
//!   ([`break_naive_sketch`]). The sandwich `N ≤ L0` fails.
//! * **The SIS sketch resists the same budget.** For the real estimator,
//!   shortness is a genuine constraint: [`attack_sis_estimator`] runs the
//!   generic bounded attacks (brute force, birthday) against the published
//!   matrix and fails within any polynomial budget at the demo parameters —
//!   while the unbounded mod-q kernel exists, its entries violate the
//!   `‖f‖_∞ ≤ poly(n)` promise. Experiment E4 charts the cost crossover.

use super::sis_estimator::SisL0Estimator;
use wb_core::rng::TranscriptRng;
use wb_core::space::{bits_for_universe, SpaceUsage};
use wb_core::stream::{StreamAlg, Turnstile};
use wb_crypto::modular::balanced;
use wb_crypto::sis::{
    birthday_kernel_search, brute_force_short_kernel, mod_q_kernel, SisMatrix, SisParams,
};

/// Algorithm 5 with an insecure small modulus: the "what if we skip SIS"
/// baseline. Same chunking, same answer rule — but `q` is tiny, so kernel
/// vectors are short by construction.
#[derive(Debug, Clone)]
pub struct NaiveModSketchL0 {
    n: u64,
    chunk_w: usize,
    matrix: SisMatrix,
    sketches: Vec<u64>,
    nonzero_entries: Vec<u32>,
    nonzero_chunks: u64,
}

impl NaiveModSketchL0 {
    /// Naive sketch with modulus `q` (prime, small — that is the flaw) and
    /// `d` rows per chunk.
    pub fn new(n: u64, chunk_w: usize, d: usize, q: u64, rng: &mut TranscriptRng) -> Self {
        let num_chunks = n.div_ceil(chunk_w as u64) as usize;
        let params = SisParams {
            d,
            w: chunk_w,
            q,
            beta_inf: q - 1, // entries < q are "short": the flaw
        };
        let matrix = SisMatrix::random_explicit(params, rng);
        NaiveModSketchL0 {
            n,
            chunk_w,
            matrix,
            sketches: vec![0; num_chunks * d],
            nonzero_entries: vec![0; num_chunks],
            nonzero_chunks: 0,
        }
    }

    /// Apply a turnstile update.
    pub fn update(&mut self, item: u64, delta: i64) {
        assert!(item < self.n);
        let d = self.matrix.params().d;
        let chunk = (item / self.chunk_w as u64) as usize;
        let k = (item % self.chunk_w as u64) as usize;
        let slice = &mut self.sketches[chunk * d..(chunk + 1) * d];
        let before = self.nonzero_entries[chunk];
        self.matrix.add_scaled_column(k, delta, slice);
        let after = slice.iter().filter(|&&v| v != 0).count() as u32;
        self.nonzero_entries[chunk] = after;
        match (before, after) {
            (0, a) if a > 0 => self.nonzero_chunks += 1,
            (b, 0) if b > 0 => self.nonzero_chunks -= 1,
            _ => {}
        }
    }

    /// The (breakable) answer.
    pub fn answer(&self) -> u64 {
        self.nonzero_chunks
    }

    /// The public matrix (the attack reads it here).
    pub fn matrix(&self) -> &SisMatrix {
        &self.matrix
    }

    /// Chunk width (approximation factor).
    pub fn chunk_w(&self) -> usize {
        self.chunk_w
    }
}

impl SpaceUsage for NaiveModSketchL0 {
    fn space_bits(&self) -> u64 {
        self.sketches.len() as u64 * bits_for_universe(self.matrix.params().q)
            + self.matrix.space_bits()
    }
}

impl StreamAlg for NaiveModSketchL0 {
    type Update = Turnstile;
    type Output = u64;

    fn process(&mut self, update: &Turnstile, _rng: &mut TranscriptRng) {
        self.update(update.item, update.delta);
    }

    fn query(&self) -> u64 {
        self.answer()
    }

    fn name(&self) -> &'static str {
        "NaiveModSketchL0"
    }
}

/// Poly-time white-box attack on the naive sketch: Gaussian elimination
/// over `Z_q` finds a kernel vector of the published matrix; because `q` is
/// tiny its entries are small non-negative integers — a legal update
/// pattern. The returned turnstile updates put `Σ z_k > 0` live items into
/// chunk 0 while its sketch remains exactly zero.
///
/// Returns `None` if the chunk matrix has full column rank (e.g. `d ≥ w`),
/// in which case the naive sketch is simply storing everything.
pub fn break_naive_sketch(victim: &NaiveModSketchL0) -> Option<Vec<Turnstile>> {
    let z = mod_q_kernel(victim.matrix())?;
    let updates: Vec<Turnstile> = z
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v != 0)
        .map(|(k, &v)| Turnstile {
            item: k as u64, // chunk 0: items 0..chunk_w
            delta: v as i64,
        })
        .collect();
    (!updates.is_empty()).then_some(updates)
}

/// Outcome of a bounded attack attempt against the SIS estimator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SisAttackOutcome {
    /// A short kernel vector was found (possible only at toy parameters):
    /// the stream that realizes it, as updates into chunk 0.
    Broken(Vec<Turnstile>),
    /// The attack budget was exhausted with no SIS solution. The unbounded
    /// mod-q kernel's max balanced entry is reported to show *why* it is
    /// not a legal stream (it violates the `‖f‖_∞ ≤ β` promise).
    Resisted {
        /// Candidates tried across brute force and birthday phases.
        budget_spent: u64,
        /// `max_k |lift(z_k)|` of the unbounded kernel vector, if one
        /// exists — compare against `β_∞`.
        unbounded_kernel_max_entry: Option<u64>,
    },
}

/// Run the generic computationally-bounded attacks (exhaustive short-vector
/// search, then birthday search) against the estimator's published matrix,
/// spending at most `budget` candidates in each phase.
pub fn attack_sis_estimator(
    victim: &SisL0Estimator,
    budget: u64,
    rng: &mut TranscriptRng,
) -> SisAttackOutcome {
    let matrix = victim.matrix();
    let solution = brute_force_short_kernel(matrix, budget)
        .or_else(|| birthday_kernel_search(matrix, budget, rng));
    match solution {
        Some(z) => {
            let updates = z
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v != 0)
                .map(|(k, &v)| Turnstile {
                    item: k as u64,
                    delta: v,
                })
                .collect();
            SisAttackOutcome::Broken(updates)
        }
        None => {
            let q = matrix.params().q;
            let max_entry = mod_q_kernel(matrix).map(|z| {
                z.iter()
                    .map(|&v| balanced(v, q).unsigned_abs())
                    .max()
                    .unwrap_or(0)
            });
            SisAttackOutcome::Resisted {
                budget_spent: 2 * budget,
                unbounded_kernel_max_entry: max_entry,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_core::stream::FrequencyVector;

    #[test]
    fn naive_sketch_is_correct_on_oblivious_streams() {
        let mut rng = TranscriptRng::from_seed(80);
        let mut naive = NaiveModSketchL0::new(1 << 10, 32, 4, 2, &mut rng);
        for item in 0..40u64 {
            naive.update(item * 3, 1);
        }
        // 40 live items spread over chunks; answer ≤ 40 ≤ answer·32.
        let ans = naive.answer();
        assert!((2..=40).contains(&ans));
    }

    #[test]
    fn gaussian_elimination_breaks_naive_sketch() {
        let mut rng = TranscriptRng::from_seed(81);
        // XOR sketch: q = 2, 4 rows per 32-wide chunk → kernel guaranteed.
        let mut naive = NaiveModSketchL0::new(1 << 10, 32, 4, 2, &mut rng);
        let attack = break_naive_sketch(&naive).expect("wide chunk has a kernel");
        let mut truth = FrequencyVector::new();
        for u in &attack {
            naive.update(u.item, u.delta);
            truth.update(u.item, u.delta);
        }
        assert!(truth.l0() > 0, "attack stream leaves live items");
        assert_eq!(
            naive.answer(),
            0,
            "sketch reads zero chunks — sandwich N ≤ L0 violated"
        );
    }

    #[test]
    fn attack_stream_respects_promise_bound() {
        // The naive-sketch attack is *legal*: entries < q are tiny.
        let mut rng = TranscriptRng::from_seed(82);
        let naive = NaiveModSketchL0::new(256, 16, 2, 3, &mut rng);
        let attack = break_naive_sketch(&naive).expect("kernel");
        for u in attack {
            assert!(u.delta.unsigned_abs() < 3);
        }
    }

    #[test]
    fn sis_estimator_resists_bounded_attack_at_demo_params() {
        let mut rng = TranscriptRng::from_seed(83);
        let n = 1 << 12;
        let victim = SisL0Estimator::new(
            n,
            0.5,
            0.4,
            super::super::sis_estimator::MatrixMode::RandomOracle,
            &mut rng,
        );
        let outcome = attack_sis_estimator(&victim, 20_000, &mut rng);
        match outcome {
            SisAttackOutcome::Resisted {
                unbounded_kernel_max_entry,
                ..
            } => {
                // The unbounded kernel exists (wide matrix) but its entries
                // blow through the promise bound β = n².
                let beta = victim.matrix().params().beta_inf;
                let max = unbounded_kernel_max_entry.expect("wide matrix has mod-q kernel");
                assert!(
                    max > beta,
                    "unbounded kernel entry {max} should exceed β={beta}"
                );
            }
            SisAttackOutcome::Broken(_) => {
                panic!("bounded attack must not break demo-scale SIS in 20k tries")
            }
        }
    }

    #[test]
    fn sis_attack_succeeds_at_toy_parameters() {
        // Tiny q and a wide chunk: birthday search collides quickly —
        // demonstrating that the assumption, not magic, carries Theorem 1.5.
        let mut rng = TranscriptRng::from_seed(84);
        let n = 64u64;
        // chunk_w=64 (whole universe), d=2, but force a *tiny* modulus by
        // constructing the naive sketch with beta large enough to count as
        // "SIS-like": we reuse the naive type since SisL0Estimator pins
        // q = poly(n).
        let naive = NaiveModSketchL0::new(n, 64, 2, 13, &mut rng);
        let z = birthday_kernel_search(naive.matrix(), 5_000, &mut rng)
            .expect("q^d = 169 sketch values: birthday collision is immediate");
        assert!(z.iter().any(|&v| v != 0));
    }
    #[test]
    fn planted_trapdoor_breaks_the_estimator_as_it_must() {
        // Failure injection: hand the adversary an actually-broken SIS
        // instance (a planted short kernel) and confirm the estimator's
        // guarantee collapses — the security argument of Theorem 1.5 is
        // load-bearing, not decorative.
        use wb_crypto::sis::{SisMatrix, SisParams};
        let mut rng = TranscriptRng::from_seed(85);
        let n = 1u64 << 10;
        let params = SisParams {
            d: 4,
            w: 32,
            q: wb_crypto::prime::is_prime(1_073_741_827)
                .then_some(1_073_741_827)
                .unwrap(),
            beta_inf: n * n,
        };
        let (matrix, trapdoor) = SisMatrix::planted(params, &mut rng);
        let mut victim = SisL0Estimator::from_matrix(n, matrix);
        let mut truth = FrequencyVector::new();
        for (k, &v) in trapdoor.iter().enumerate() {
            if v != 0 {
                victim.update(k as u64, v); // chunk 0 coordinates
                truth.update(k as u64, v);
            }
        }
        assert!(truth.l0() > 0, "trapdoor leaves live items");
        assert_eq!(
            victim.answer(),
            0,
            "sketch reads zero: the sandwich N ≤ L0 is violated"
        );
        // And the stream was legal: entries within the promise bound.
        assert!(trapdoor
            .iter()
            .all(|&v| v.unsigned_abs() <= params.beta_inf));
    }
}
