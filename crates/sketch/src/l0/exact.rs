//! Exact L0 (distinct elements) baseline for turnstile streams.
//!
//! Stores the full support of the frequency vector — `Θ(L0·log n)` bits.
//! Deterministic exact counting is what Theorem 1.9 (with `p = 0`) proves
//! unavoidable for white-box adversaries with unbounded computation; the
//! SIS estimator (Algorithm 5) beats it only under Assumption 2.17.

use wb_core::merge::{MergeError, Mergeable};
use wb_core::rng::TranscriptRng;
use wb_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use wb_core::space::{bits_for_signed, bits_for_universe, SpaceUsage};
use wb_core::stream::{FrequencyVector, StreamAlg, Turnstile};

/// Exact distinct-element counter over turnstile streams.
#[derive(Debug, Clone, Default)]
pub struct ExactL0 {
    freqs: FrequencyVector,
    n: u64,
}

impl ExactL0 {
    /// Exact counter over universe `[n]`.
    pub fn new(n: u64) -> Self {
        ExactL0 {
            freqs: FrequencyVector::new(),
            n,
        }
    }

    /// Apply a turnstile update.
    pub fn update(&mut self, item: u64, delta: i64) {
        self.freqs.update(item, delta);
    }

    /// Exact `L0 = |{i : f_i ≠ 0}|`.
    pub fn l0(&self) -> u64 {
        self.freqs.l0()
    }

    /// The underlying frequency vector.
    pub fn freqs(&self) -> &FrequencyVector {
        &self.freqs
    }
}

impl Mergeable for ExactL0 {
    /// Exact merge: the underlying frequency vectors add coordinate-wise,
    /// so the merged L0 equals single-stream ingestion of both streams.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.n != other.n {
            return Err(MergeError::incompatible(format!(
                "ExactL0 universe {} vs {}",
                self.n, other.n
            )));
        }
        self.freqs.merge(&other.freqs)
    }
}

impl Snapshot for ExactL0 {
    /// Layout: `n | freqs`.
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.n);
        self.freqs.snap(w);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.take_u64()?;
        if n != self.n {
            return Err(SnapError::mismatch(
                format!("ExactL0(n={})", self.n),
                format!("ExactL0(n={n})"),
            ));
        }
        self.freqs.restore(r)
    }
}

impl SpaceUsage for ExactL0 {
    fn space_bits(&self) -> u64 {
        let id_bits = bits_for_universe(self.n);
        self.freqs
            .iter()
            .map(|(_, f)| id_bits + bits_for_signed(f))
            .sum()
    }
}

impl StreamAlg for ExactL0 {
    type Update = Turnstile;
    type Output = u64;

    fn process(&mut self, update: &Turnstile, _rng: &mut TranscriptRng) {
        self.update(update.item, update.delta);
    }

    /// Batched ingestion through [`FrequencyVector::update_batch`]: deltas
    /// are pre-aggregated per item, so each touched coordinate is hashed
    /// once per batch instead of once per update. Coordinate addition is
    /// exact, so the support (and with it `l0()` and the space accounting)
    /// is bit-identical to sequential processing.
    fn process_batch(&mut self, updates: &[Turnstile], _rng: &mut TranscriptRng) {
        let pairs: Vec<(u64, i64)> = updates.iter().map(|u| (u.item, u.delta)).collect();
        self.freqs.update_batch(&pairs);
    }

    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        Mergeable::merge(self, other)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        Snapshot::snap(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Snapshot::restore(self, r)
    }

    fn query(&self) -> u64 {
        self.l0()
    }

    fn name(&self) -> &'static str {
        "ExactL0"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_distinct_with_deletions() {
        let mut e = ExactL0::new(1000);
        e.update(1, 3);
        e.update(2, 1);
        e.update(3, 5);
        assert_eq!(e.l0(), 3);
        e.update(2, -1);
        assert_eq!(e.l0(), 2, "cancelled item leaves the support");
        e.update(4, -7);
        assert_eq!(e.l0(), 3, "negative coordinates count");
    }

    #[test]
    fn merge_cancels_across_shards() {
        // Insertions land on one shard and the matching deletions on the
        // other; only the merged view sees the cancellation.
        let mut a = ExactL0::new(1000);
        let mut b = ExactL0::new(1000);
        for i in 0..32u64 {
            a.update(i, 2);
            b.update(i, -2);
        }
        b.update(777, 1);
        assert_eq!(a.l0(), 32);
        a.merge(&b).unwrap();
        assert_eq!(a.l0(), 1, "cancelled items must leave the merged support");
        assert_eq!(a.freqs().get(777), 1);
        let wrong_universe = ExactL0::new(10);
        assert!(matches!(
            a.merge(&wrong_universe),
            Err(MergeError::Incompatible(_))
        ));
    }

    #[test]
    fn batch_matches_sequential() {
        let mut seq = ExactL0::new(1 << 10);
        let mut bat = ExactL0::new(1 << 10);
        // Waves of inserts followed by the matching deletes: the batch
        // path must see the same support through every cancellation.
        let stream: Vec<Turnstile> = (0..3000u64)
            .map(|t| Turnstile {
                item: t % 53,
                delta: if t % 2 == 0 { 2 } else { -2 },
            })
            .collect();
        let mut r1 = TranscriptRng::from_seed(51);
        let mut r2 = TranscriptRng::from_seed(51);
        for u in &stream {
            seq.process(u, &mut r1);
        }
        for c in stream.chunks(97) {
            bat.process_batch(c, &mut r2);
        }
        assert_eq!(seq.l0(), bat.l0());
        assert_eq!(seq.space_bits(), bat.space_bits());
        assert_eq!(seq.freqs().updates(), bat.freqs().updates());
        for item in 0..53u64 {
            assert_eq!(seq.freqs().get(item), bat.freqs().get(item));
        }
    }

    #[test]
    fn space_scales_with_support() {
        let mut e = ExactL0::new(1 << 20);
        let empty = e.space_bits();
        for i in 0..100 {
            e.update(i, 1);
        }
        assert!(e.space_bits() >= empty + 100 * 20);
    }
}
