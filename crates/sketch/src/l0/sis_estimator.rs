//! Algorithm 5 / Theorem 1.5: `n^ε`-multiplicative L0 estimation on
//! turnstile streams against computationally bounded white-box adversaries.
//!
//! The universe `[n]` is cut into `n^{1−ε}` chunks of `n^ε` consecutive
//! coordinates. One SIS matrix `A ∈ Z_q^{n^{cε} × n^ε}` is shared by all
//! chunks; each chunk keeps the sketch `A·f_chunk mod q`. The answer is the
//! number of nonzero sketches `N`:
//!
//! * a nonzero sketch certifies a live coordinate **unconditionally**
//!   (`A·0 = 0`);
//! * a zero sketch certifies an empty chunk **unless the adversary found a
//!   nonzero `f_chunk` with `A·f_chunk ≡ 0` and `‖f_chunk‖_∞ ≤ poly(n)` —
//!   a SIS solution** (Theorem 2.16 / Assumption 2.17).
//!
//! Hence `N ≤ L0 ≤ N·n^ε` at every point of the stream. With the matrix
//! regenerated from the random oracle the space is `Õ(n^{1−ε+cε})`;
//! storing `A` explicitly adds the `Õ(n^{(1+c)ε})` term.

use wb_core::rng::TranscriptRng;
use wb_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use wb_core::space::{bits_for_count, bits_for_universe, SpaceUsage};
use wb_core::stream::{RunAggregator, StreamAlg, Turnstile};
use wb_crypto::prime::is_prime;
use wb_crypto::sis::{SisMatrix, SisParams};

/// How the SIS matrix is materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixMode {
    /// Store `A` explicitly (adds `Õ(n^{(1+c)ε})` bits).
    Explicit,
    /// Regenerate columns from the public random oracle (§2.3).
    RandomOracle,
}

/// Algorithm 5: the chunked SIS sketch for L0.
#[derive(Debug, Clone)]
pub struct SisL0Estimator {
    n: u64,
    chunk_w: usize,
    num_chunks: usize,
    matrix: SisMatrix,
    /// `num_chunks × d` sketch entries, chunk-major.
    sketches: Vec<u64>,
    /// Per-chunk count of nonzero sketch entries.
    nonzero_entries: Vec<u32>,
    /// Number of chunks with a nonzero sketch.
    nonzero_chunks: u64,
    /// Batch scratch (see [`StreamAlg::process_batch`]); not part of the
    /// observable state, skipped by snapshots. Deltas aggregate in `i128`
    /// so no sum of `i64` updates can overflow before the mod-`q` reduce.
    agg: RunAggregator<i128>,
    /// Batch scratch: chunks whose sketch changed this batch.
    dirty: Vec<usize>,
}

impl SisL0Estimator {
    /// Build with explicit exponents: chunk width `n^ε` and sketch rows
    /// `n^{cε}` are passed directly as `chunk_w` and `d` so tests and
    /// benches can sweep them. `q` is chosen as a prime `≥ max(n³, 2^20)`
    /// (the paper's `q = poly(n)`), and the promise bound is
    /// `β_∞ = n²` (`‖f‖_∞ ≤ poly(n)`).
    pub fn with_dimensions(
        n: u64,
        chunk_w: usize,
        d: usize,
        mode: MatrixMode,
        rng: &mut TranscriptRng,
    ) -> Self {
        assert!(n >= 1 && chunk_w >= 1 && d >= 1);
        let num_chunks = n.div_ceil(chunk_w as u64) as usize;
        let beta_inf = (n * n).max(16);
        let q = next_prime_at_least((n * n * n).max(1 << 20).max(4 * beta_inf));
        let params = SisParams {
            d,
            w: chunk_w,
            q,
            beta_inf,
        };
        let matrix = match mode {
            MatrixMode::Explicit => SisMatrix::random_explicit(params, rng),
            MatrixMode::RandomOracle => {
                // The tag is drawn from public randomness — everything is
                // visible to the adversary; security rests on SIS, not
                // secrecy.
                let tag = rng.next_u64().to_be_bytes();
                SisMatrix::from_oracle(params, &tag)
            }
        };
        SisL0Estimator {
            n,
            chunk_w,
            num_chunks,
            matrix,
            sketches: vec![0; num_chunks * d],
            nonzero_entries: vec![0; num_chunks],
            nonzero_chunks: 0,
            agg: RunAggregator::new(),
            dirty: Vec::new(),
        }
    }

    /// Build around an externally supplied matrix (used by the
    /// failure-injection experiments, which plant a known short kernel via
    /// [`SisMatrix::planted`] to verify the security argument is
    /// load-bearing).
    pub fn from_matrix(n: u64, matrix: SisMatrix) -> Self {
        let params = *matrix.params();
        let chunk_w = params.w;
        let num_chunks = n.div_ceil(chunk_w as u64) as usize;
        SisL0Estimator {
            n,
            chunk_w,
            num_chunks,
            sketches: vec![0; num_chunks * params.d],
            nonzero_entries: vec![0; num_chunks],
            nonzero_chunks: 0,
            agg: RunAggregator::new(),
            dirty: Vec::new(),
            matrix,
        }
    }

    /// Build from the paper's exponents: `ε` (chunk exponent) and `c`
    /// (sketch-row exponent, `0 < c < 1/2`).
    pub fn new(n: u64, eps: f64, c: f64, mode: MatrixMode, rng: &mut TranscriptRng) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "eps must be in (0,1]");
        assert!(c > 0.0 && c < 0.5, "c must be in (0, 1/2)");
        let chunk_w = (n as f64).powf(eps).ceil().max(1.0) as usize;
        let d = (chunk_w as f64).powf(c).ceil().max(1.0) as usize;
        Self::with_dimensions(n, chunk_w, d, mode, rng)
    }

    /// Apply a turnstile update to coordinate `item`.
    pub fn update(&mut self, item: u64, delta: i64) {
        assert!(item < self.n, "item out of universe");
        if delta == 0 {
            return;
        }
        let d = self.matrix.params().d;
        let chunk = (item / self.chunk_w as u64) as usize;
        let k = (item % self.chunk_w as u64) as usize;
        let slice = &mut self.sketches[chunk * d..(chunk + 1) * d];
        let before = self.nonzero_entries[chunk];
        self.matrix.add_scaled_column(k, delta, slice);
        let after = slice.iter().filter(|&&v| v != 0).count() as u32;
        self.nonzero_entries[chunk] = after;
        match (before, after) {
            (0, a) if a > 0 => self.nonzero_chunks += 1,
            (b, 0) if b > 0 => self.nonzero_chunks -= 1,
            _ => {}
        }
    }

    /// The answer `N`: number of nonzero chunk sketches.
    /// Guarantee: `N ≤ L0 ≤ N·chunk_w` under Assumption 2.17.
    pub fn answer(&self) -> u64 {
        self.nonzero_chunks
    }

    /// The sandwich `[N, N·n^ε]` containing the true L0.
    pub fn answer_range(&self) -> (u64, u64) {
        (
            self.nonzero_chunks,
            self.nonzero_chunks * self.chunk_w as u64,
        )
    }

    /// The multiplicative gap `n^ε` (chunk width).
    pub fn approximation_factor(&self) -> u64 {
        self.chunk_w as u64
    }

    /// The public SIS matrix (white-box view; also the attack surface).
    pub fn matrix(&self) -> &SisMatrix {
        &self.matrix
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.num_chunks
    }
}

/// Smallest prime `≥ x`.
fn next_prime_at_least(mut x: u64) -> u64 {
    if x <= 2 {
        return 2;
    }
    if x.is_multiple_of(2) {
        x += 1;
    }
    while !is_prime(x) {
        x += 2;
    }
    x
}

impl Snapshot for SisL0Estimator {
    /// Layout: `n | chunk_w | d | q | beta_inf | sketches | nonzero_entries
    /// | nonzero_chunks`. The SIS matrix is a large public immutable —
    /// regenerated by the twin's constructor, validated here through its
    /// parameters; sketch contents and the nonzero bookkeeping are
    /// cross-checked so a corrupt snapshot cannot smuggle in an
    /// inconsistent answer.
    fn snap(&self, w: &mut SnapWriter) {
        let p = self.matrix.params();
        w.put_u64(self.n);
        w.put_usize(self.chunk_w);
        w.put_usize(p.d);
        w.put_u64(p.q);
        w.put_u64(p.beta_inf);
        w.put_u64_seq(&self.sketches);
        w.put_u32_seq(&self.nonzero_entries);
        w.put_u64(self.nonzero_chunks);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.take_u64()?;
        let chunk_w = r.take_usize()?;
        let d = r.take_usize()?;
        let q = r.take_u64()?;
        let beta_inf = r.take_u64()?;
        let p = *self.matrix.params();
        if n != self.n || chunk_w != self.chunk_w || d != p.d || q != p.q || beta_inf != p.beta_inf
        {
            return Err(SnapError::mismatch(
                format!(
                    "SisL0Estimator(n={}, chunk_w={}, d={}, q={}, beta_inf={})",
                    self.n, self.chunk_w, p.d, p.q, p.beta_inf
                ),
                format!(
                    "SisL0Estimator(n={n}, chunk_w={chunk_w}, d={d}, q={q}, beta_inf={beta_inf})"
                ),
            ));
        }
        let sketches = r.take_u64_seq()?;
        let nonzero_entries = r.take_u32_seq()?;
        let nonzero_chunks = r.take_u64()?;
        if sketches.len() != self.num_chunks * d || nonzero_entries.len() != self.num_chunks {
            return Err(SnapError::corrupt(format!(
                "SisL0Estimator sketch sizes {}x{} do not match {} chunks",
                sketches.len(),
                nonzero_entries.len(),
                self.num_chunks
            )));
        }
        if sketches.iter().any(|&v| v >= q) {
            return Err(SnapError::corrupt("SisL0Estimator sketch entry ≥ q"));
        }
        for (chunk, &nz) in nonzero_entries.iter().enumerate() {
            let recount = sketches[chunk * d..(chunk + 1) * d]
                .iter()
                .filter(|&&v| v != 0)
                .count() as u32;
            if recount != nz {
                return Err(SnapError::corrupt(format!(
                    "SisL0Estimator chunk {chunk}: {nz} recorded nonzeros, {recount} present"
                )));
            }
        }
        if nonzero_entries.iter().filter(|&&nz| nz > 0).count() as u64 != nonzero_chunks {
            return Err(SnapError::corrupt(
                "SisL0Estimator nonzero-chunk total inconsistent",
            ));
        }
        self.sketches = sketches;
        self.nonzero_entries = nonzero_entries;
        self.nonzero_chunks = nonzero_chunks;
        Ok(())
    }
}

impl SpaceUsage for SisL0Estimator {
    /// Sketch storage (`n^{1−ε}·n^{cε}·log q`) plus matrix storage
    /// (zero in random-oracle mode) plus the nonzero bookkeeping.
    fn space_bits(&self) -> u64 {
        let q_bits = bits_for_universe(self.matrix.params().q);
        self.sketches.len() as u64 * q_bits
            + self.matrix.space_bits()
            + bits_for_count(self.nonzero_chunks)
    }
}

impl StreamAlg for SisL0Estimator {
    type Update = Turnstile;
    type Output = u64;

    fn process(&mut self, update: &Turnstile, _rng: &mut TranscriptRng) {
        self.update(update.item, update.delta);
    }

    /// Batched turnstile ingestion. The sketch is `Z_q`-linear in the
    /// frequency vector, so per-item deltas may be summed before touching
    /// `A` — one `add_scaled_column` per distinct item — and the nonzero
    /// bookkeeping recounted once per *dirty chunk* instead of once per
    /// update. Both are pure functions of the final sketch values, so the
    /// end state is bit-identical to the scalar loop (which draws no
    /// randomness, making the transcript trivially identical too).
    fn process_batch(&mut self, updates: &[Turnstile], _rng: &mut TranscriptRng) {
        let d = self.matrix.params().d;
        let q = self.matrix.params().q;
        let mut agg = std::mem::take(&mut self.agg);
        let mut dirty = std::mem::take(&mut self.dirty);
        // Segmented to respect the aggregator's 2^24-pair batch cap.
        for part in updates.chunks(1 << 20) {
            agg.begin(part.len());
            for u in part {
                // The scalar path validates every update, including ones
                // whose deltas later cancel.
                assert!(u.item < self.n, "item out of universe");
                agg.add(u.item, i128::from(u.delta));
            }
            dirty.clear();
            for &(item, delta) in agg.runs() {
                let coeff = (delta % i128::from(q)) as i64;
                if coeff == 0 {
                    continue;
                }
                let chunk = (item / self.chunk_w as u64) as usize;
                let k = (item % self.chunk_w as u64) as usize;
                self.matrix.add_scaled_column(
                    k,
                    coeff,
                    &mut self.sketches[chunk * d..(chunk + 1) * d],
                );
                dirty.push(chunk);
            }
            dirty.sort_unstable();
            dirty.dedup();
            for &chunk in &dirty {
                let before = self.nonzero_entries[chunk];
                let after = self.sketches[chunk * d..(chunk + 1) * d]
                    .iter()
                    .filter(|&&v| v != 0)
                    .count() as u32;
                self.nonzero_entries[chunk] = after;
                match (before, after) {
                    (0, a) if a > 0 => self.nonzero_chunks += 1,
                    (b, 0) if b > 0 => self.nonzero_chunks -= 1,
                    _ => {}
                }
            }
        }
        self.agg = agg;
        self.dirty = dirty;
    }

    fn snapshot_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        Snapshot::snap(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Snapshot::restore(self, r)
    }

    fn query(&self) -> u64 {
        self.answer()
    }

    fn name(&self) -> &'static str {
        "SisL0Estimator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_core::game::ScriptAdversary;
    use wb_core::referee::L0SandwichReferee;
    use wb_engine::Game;

    #[test]
    fn sandwich_holds_on_insertions() {
        let mut rng = TranscriptRng::from_seed(70);
        let n = 1 << 12;
        let mut est = SisL0Estimator::new(n, 0.5, 0.25, MatrixMode::RandomOracle, &mut rng);
        for item in (0..500u64).map(|i| i * 7 % n) {
            est.update(item, 1);
        }
        let (lo, hi) = est.answer_range();
        let l0 = 500u64; // i*7 mod 4096 distinct for i<500 (gcd(7,4096)=1)
        assert!(lo <= l0 && l0 <= hi, "sandwich [{lo},{hi}] misses {l0}");
    }

    #[test]
    fn deletions_empty_the_sketch() {
        let mut rng = TranscriptRng::from_seed(71);
        let n = 1 << 10;
        let mut est = SisL0Estimator::new(n, 0.5, 0.25, MatrixMode::Explicit, &mut rng);
        for item in 0..64u64 {
            est.update(item, 3);
        }
        assert!(est.answer() > 0);
        for item in 0..64u64 {
            est.update(item, -3);
        }
        assert_eq!(est.answer(), 0, "full cancellation must zero the answer");
    }

    #[test]
    fn answer_counts_chunks_not_items() {
        let mut rng = TranscriptRng::from_seed(72);
        let n = 1024u64;
        // chunk_w = 32 (ε=1/2): all items in one chunk → answer 1.
        let mut est = SisL0Estimator::new(n, 0.5, 0.25, MatrixMode::RandomOracle, &mut rng);
        for item in 0..32u64 {
            est.update(item, 1);
        }
        assert_eq!(est.answer(), 1);
        let (lo, hi) = est.answer_range();
        assert_eq!((lo, hi), (1, 32));
        // One item in a second chunk → answer 2.
        est.update(100, 1);
        assert_eq!(est.answer(), 2);
    }

    #[test]
    fn survives_adaptive_turnstile_game() {
        let mut rng = TranscriptRng::from_seed(73);
        let n = 1 << 10;
        let est = SisL0Estimator::new(n, 0.5, 0.25, MatrixMode::RandomOracle, &mut rng);
        let factor = est.approximation_factor() as f64;
        // Delete-heavy script: insert a block, delete half, re-insert…
        let mut script = Vec::new();
        for round in 0..6u64 {
            for i in 0..128u64 {
                script.push(Turnstile::insert((round * 37 + i * 5) % n));
            }
            for i in 0..64u64 {
                script.push(Turnstile::delete((round * 37 + i * 5) % n));
            }
        }
        let len = script.len() as u64;
        let report = Game::new(est)
            .adversary(ScriptAdversary::new(script))
            .referee(L0SandwichReferee::new(factor))
            .max_rounds(len)
            .seed(74)
            .run();
        assert!(report.survived(), "failed: {:?}", report.result.failure);
    }

    #[test]
    fn oracle_mode_uses_less_space_than_explicit() {
        let mut rng = TranscriptRng::from_seed(75);
        let n = 1 << 12;
        let explicit = SisL0Estimator::new(n, 0.5, 0.4, MatrixMode::Explicit, &mut rng);
        let oracle = SisL0Estimator::new(n, 0.5, 0.4, MatrixMode::RandomOracle, &mut rng);
        assert!(
            oracle.space_bits() < explicit.space_bits(),
            "oracle {} ≥ explicit {}",
            oracle.space_bits(),
            explicit.space_bits()
        );
        // The difference is exactly the explicit matrix storage.
        let diff = explicit.space_bits() - oracle.space_bits();
        assert!(diff >= explicit.matrix().space_bits() - oracle.matrix().space_bits());
    }

    #[test]
    fn space_grows_slower_than_exact_for_small_eps() {
        // At ε = 1/2 the sketch stores n^{1/2+c/2} log q bits versus the
        // exact baseline's L0·log n when the stream fills the universe.
        let mut rng = TranscriptRng::from_seed(76);
        let n = 1 << 14;
        let mut sis = SisL0Estimator::new(n, 0.5, 0.25, MatrixMode::RandomOracle, &mut rng);
        let mut exact = super::super::exact::ExactL0::new(n);
        for item in 0..n {
            sis.update(item, 1);
            exact.update(item, 1);
        }
        assert!(
            sis.space_bits() < exact.space_bits() / 4,
            "sis {} vs exact {}",
            sis.space_bits(),
            exact.space_bits()
        );
    }

    #[test]
    fn next_prime_helper() {
        assert_eq!(next_prime_at_least(2), 2);
        assert_eq!(next_prime_at_least(14), 17);
        assert_eq!(next_prime_at_least(17), 17);
        assert!(is_prime(next_prime_at_least(1 << 30)));
    }

    #[test]
    #[should_panic(expected = "item out of universe")]
    fn rejects_out_of_universe() {
        let mut rng = TranscriptRng::from_seed(77);
        let mut est = SisL0Estimator::new(64, 0.5, 0.25, MatrixMode::Explicit, &mut rng);
        est.update(64, 1);
    }
}
