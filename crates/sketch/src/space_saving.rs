//! The SpaceSaving summary (Metwally–Agrawal–El Abbadi), the building block
//! of the TMS12 hierarchical heavy hitters algorithm (Theorem 2.11).
//!
//! SpaceSaving with `k` counters maintains, for each monitored item, a
//! count `c_i` and an *adoption error* `e_i` such that
//! `f_i ≤ c_i ≤ f_i + e_i` and `e_i ≤ m/k`. The pair lets callers derive
//! both over-estimates (`c_i`) and under-estimates (`c_i − e_i`), which the
//! HHH accuracy condition of Definition 2.10 needs. Deterministic, hence
//! white-box robust.

use wb_core::merge::{MergeError, Mergeable};
use wb_core::rng::TranscriptRng;
use wb_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use wb_core::space::{bits_for_count, bits_for_universe, SpaceUsage};
use wb_core::stream::{for_each_run, InsertOnly, StreamAlg};

/// One monitored entry: over-estimate `count` and adoption error `err`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsEntry {
    /// Over-estimate of the item's frequency (`f ≤ count`).
    pub count: u64,
    /// Upper bound on the over-estimation (`count − f ≤ err`).
    pub err: u64,
}

/// SpaceSaving summary with `k` counters over universe `[n]`.
///
/// Stored struct-of-arrays (like [`crate::misra_gries::MisraGries`]): the
/// hot membership probe scans a dense `keys` array and the eviction scan
/// reads a dense `counts` array, both of which vectorize — `k` is small
/// (`⌈2/ε⌉`), so linear scans beat hashing.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    /// Monitored item ids; parallel to `counts` and `errs`.
    keys: Vec<u64>,
    counts: Vec<u64>,
    errs: Vec<u64>,
    k: usize,
    n: u64,
    processed: u64,
}

impl SpaceSaving {
    /// Summary with `k ≥ 1` counters.
    pub fn with_counters(k: usize, n: u64) -> Self {
        assert!(k >= 1, "need at least one counter");
        SpaceSaving {
            keys: Vec::with_capacity(k),
            counts: Vec::with_capacity(k),
            errs: Vec::with_capacity(k),
            k,
            n,
            processed: 0,
        }
    }

    /// Summary with additive error `(ε/2)·m`, i.e. `k = ⌈2/ε⌉`.
    pub fn new(eps: f64, n: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        Self::with_counters((2.0 / eps).ceil() as usize, n)
    }

    /// Process one occurrence of `item`.
    pub fn insert(&mut self, item: u64) {
        self.insert_weighted(item, 1);
    }

    /// Process `w ≥ 1` occurrences of `item` at once.
    /// Position of `item` among the monitored keys — the per-update probe.
    /// Four keys are compared per step with one combined any-match test
    /// (fusable into a single vector compare), one well-predicted branch
    /// per four keys instead of one per key.
    #[inline]
    fn find(&self, item: u64) -> Option<usize> {
        let mut chunks = self.keys.chunks_exact(4);
        let mut base = 0usize;
        for c in chunks.by_ref() {
            let m = [c[0] == item, c[1] == item, c[2] == item, c[3] == item];
            if m[0] | m[1] | m[2] | m[3] {
                let off = if m[0] {
                    0
                } else if m[1] {
                    1
                } else if m[2] {
                    2
                } else {
                    3
                };
                return Some(base + off);
            }
            base += 4;
        }
        chunks
            .remainder()
            .iter()
            .position(|&key| key == item)
            .map(|i| base + i)
    }

    pub fn insert_weighted(&mut self, item: u64, w: u64) {
        self.processed += w;
        if let Some(pos) = self.find(item) {
            self.counts[pos] += w;
            return;
        }
        if self.keys.len() < self.k {
            self.keys.push(item);
            self.counts.push(w);
            self.errs.push(0);
            return;
        }
        // Replace the minimum-count entry; ties break on the smaller item
        // id so the choice is deterministic regardless of storage order.
        // The lexicographic (count, key) minimum is found in three
        // unconditional (vectorizable) passes rather than one
        // compare-and-branch scan; keys are unique, so exactly one entry
        // attains it and the passes agree with the sequential scan. (An
        // entry whose key is the u64::MAX sentinel still resolves: the
        // candidate minimum equals its key either way.)
        let mut min_count = u64::MAX;
        for &c in &self.counts {
            min_count = min_count.min(c);
        }
        let mut min_key = u64::MAX;
        for (&c, &key) in self.counts.iter().zip(&self.keys) {
            let cand = if c == min_count { key } else { u64::MAX };
            min_key = min_key.min(cand);
        }
        let mut hit = 0usize;
        for (i, (&c, &key)) in self.counts.iter().zip(&self.keys).enumerate() {
            hit |= (usize::from(c == min_count && key == min_key)) * (i + 1);
        }
        let min_pos = hit - 1;
        self.keys[min_pos] = item;
        self.counts[min_pos] = min_count + w;
        self.errs[min_pos] = min_count;
    }

    fn get(&self, item: u64) -> Option<SsEntry> {
        self.find(item).map(|pos| SsEntry {
            count: self.counts[pos],
            err: self.errs[pos],
        })
    }

    /// Over-estimate of `item`'s frequency (`0` if not monitored).
    pub fn over_estimate(&self, item: u64) -> u64 {
        self.get(item).map_or(0, |e| e.count)
    }

    /// Under-estimate `count − err` of `item`'s frequency.
    pub fn under_estimate(&self, item: u64) -> u64 {
        self.get(item).map_or(0, |e| e.count - e.err)
    }

    /// The monitored entries, item-ascending.
    pub fn entries(&self) -> Vec<(u64, SsEntry)> {
        let mut v: Vec<(u64, SsEntry)> = self
            .keys
            .iter()
            .zip(&self.counts)
            .zip(&self.errs)
            .map(|((&i, &count), &err)| (i, SsEntry { count, err }))
            .collect();
        v.sort_unstable_by_key(|&(i, _)| i);
        v
    }

    /// Updates processed (total weight).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of counters configured.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Smallest monitored count if the summary is full, else 0. Any item
    /// *not* monitored by a full summary has true frequency at most this
    /// value (an unmonitored item was either never seen or evicted at a
    /// count it had not exceeded), which is what makes the merge sound.
    fn floor(&self) -> u64 {
        if self.keys.len() == self.k {
            self.counts.iter().copied().min().unwrap_or(0)
        } else {
            0
        }
    }

    /// Replace the stored entries wholesale (merge/restore rebuilds).
    fn set_entries(&mut self, entries: impl IntoIterator<Item = (u64, SsEntry)>) {
        self.keys.clear();
        self.counts.clear();
        self.errs.clear();
        for (item, e) in entries {
            self.keys.push(item);
            self.counts.push(e.count);
            self.errs.push(e.err);
        }
    }
}

impl Mergeable for SpaceSaving {
    /// Mergeable-summaries combine (Agarwal et al.): for every item in
    /// either summary, counts and errors add; an item absent from a *full*
    /// sibling contributes that sibling's minimum count to both fields (its
    /// unseen frequency there is at most that minimum — the over-estimate
    /// invariant survives). The `k` largest merged counts are kept, ties
    /// broken toward the smaller item id like the eviction rule. Kept items
    /// keep `f ≤ count ≤ f + err` with `err ≤ (m₁+m₂)·2/k`, inside the
    /// `ε`-heavy-hitters tolerance for `k = ⌈2/ε⌉`.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.k != other.k || self.n != other.n {
            return Err(MergeError::incompatible(format!(
                "SpaceSaving (k={}, n={}) vs (k={}, n={})",
                self.k, self.n, other.k, other.n
            )));
        }
        let floor_self = self.floor();
        let floor_other = other.floor();
        let mut merged: Vec<(u64, SsEntry)> =
            Vec::with_capacity(self.keys.len() + other.keys.len());
        for (item, e) in self.entries() {
            let (count, err) = other
                .get(item)
                .map_or((floor_other, floor_other), |o| (o.count, o.err));
            merged.push((
                item,
                SsEntry {
                    count: e.count + count,
                    err: e.err + err,
                },
            ));
        }
        for (item, e) in other.entries() {
            if self.get(item).is_none() {
                merged.push((
                    item,
                    SsEntry {
                        count: e.count + floor_self,
                        err: e.err + floor_self,
                    },
                ));
            }
        }
        merged.sort_unstable_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(&b.0)));
        merged.truncate(self.k);
        self.set_entries(merged);
        self.processed += other.processed;
        Ok(())
    }
}

impl Snapshot for SpaceSaving {
    /// Layout: `k | n | processed | len | (item, count, err)…` with entries
    /// item-ascending for deterministic bytes.
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.k);
        w.put_u64(self.n);
        w.put_u64(self.processed);
        let entries = self.entries();
        w.put_u64(entries.len() as u64);
        for (item, e) in entries {
            w.put_u64(item);
            w.put_u64(e.count);
            w.put_u64(e.err);
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let k = r.take_usize()?;
        let n = r.take_u64()?;
        if k != self.k || n != self.n {
            return Err(SnapError::mismatch(
                format!("SpaceSaving(k={}, n={})", self.k, self.n),
                format!("SpaceSaving(k={k}, n={n})"),
            ));
        }
        let processed = r.take_u64()?;
        let len = r.take_usize()?;
        if len > k {
            return Err(SnapError::corrupt(format!(
                "SpaceSaving snapshot holds {len} entries for k={k}"
            )));
        }
        let mut entries: Vec<(u64, SsEntry)> = Vec::with_capacity(len);
        for _ in 0..len {
            let item = r.take_u64()?;
            let count = r.take_u64()?;
            let err = r.take_u64()?;
            // count ≥ 1 always holds; err ≤ count keeps under_estimate sound.
            if count == 0 || err > count {
                return Err(SnapError::corrupt(format!(
                    "SpaceSaving entry {item}: count {count}, err {err}"
                )));
            }
            if entries.iter().any(|&(i, _)| i == item) {
                return Err(SnapError::corrupt(format!(
                    "SpaceSaving duplicate entry {item}"
                )));
            }
            entries.push((item, SsEntry { count, err }));
        }
        self.set_entries(entries);
        self.processed = processed;
        Ok(())
    }
}

impl SpaceUsage for SpaceSaving {
    fn space_bits(&self) -> u64 {
        let id_bits = bits_for_universe(self.n);
        self.counts
            .iter()
            .zip(&self.errs)
            .map(|(&count, &err)| id_bits + bits_for_count(count) + bits_for_count(err))
            .sum()
    }
}

impl StreamAlg for SpaceSaving {
    type Update = InsertOnly;
    type Output = Vec<(u64, f64)>;

    fn process(&mut self, update: &InsertOnly, _rng: &mut TranscriptRng) {
        self.insert(update.0);
    }

    /// Batched ingestion: consecutive equal items collapse into one
    /// [`SpaceSaving::insert_weighted`] call. A weighted insert is exactly
    /// equivalent to repeated unit inserts (once an item is monitored —
    /// whether pre-existing, slotted into spare capacity, or adopted from
    /// the evicted minimum — the remaining units are plain counter
    /// additions), so state is bit-identical to sequential processing.
    fn process_batch(&mut self, updates: &[InsertOnly], _rng: &mut TranscriptRng) {
        for_each_run(updates.iter().map(|u| u.0), |item, w| {
            self.insert_weighted(item, w)
        });
    }

    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        Mergeable::merge(self, other)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        Snapshot::snap(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Snapshot::restore(self, r)
    }

    fn query(&self) -> Vec<(u64, f64)> {
        self.entries()
            .into_iter()
            .map(|(i, e)| (i, e.count as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exact_with_spare_capacity() {
        let mut ss = SpaceSaving::with_counters(8, 100);
        for _ in 0..5 {
            ss.insert(1);
        }
        for _ in 0..3 {
            ss.insert(2);
        }
        assert_eq!(ss.over_estimate(1), 5);
        assert_eq!(ss.under_estimate(1), 5);
        assert_eq!(ss.over_estimate(2), 3);
        assert_eq!(ss.over_estimate(9), 0);
    }

    #[test]
    fn sandwich_invariant_holds() {
        let mut ss = SpaceSaving::with_counters(10, 10_000);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for t in 0..5000u64 {
            let item = if t % 4 == 0 { 3 } else { 10 + (t * 7) % 200 };
            ss.insert(item);
            *truth.entry(item).or_insert(0) += 1;
        }
        let m = ss.processed();
        for (item, e) in ss.entries() {
            let f = truth.get(&item).copied().unwrap_or(0);
            assert!(e.count >= f, "count {} < f {f} for {item}", e.count);
            assert!(
                e.count - e.err <= f,
                "under-estimate {} > f {f} for {item}",
                e.count - e.err
            );
            assert!(e.err <= m / 10 + 1, "err {} exceeds m/k", e.err);
        }
    }

    #[test]
    fn heavy_item_retained() {
        let mut ss = SpaceSaving::with_counters(4, 10_000);
        for t in 0..4000u64 {
            ss.insert(if t % 3 != 2 { 42 } else { 100 + t });
        }
        // f_42 ≈ 2667 > m/4: must be monitored with a large count.
        assert!(ss.over_estimate(42) >= 2000);
    }

    #[test]
    fn weighted_inserts_match_repeated() {
        let mut a = SpaceSaving::with_counters(3, 100);
        let mut b = SpaceSaving::with_counters(3, 100);
        for _ in 0..7 {
            a.insert(5);
        }
        b.insert_weighted(5, 7);
        assert_eq!(a.over_estimate(5), b.over_estimate(5));
        assert_eq!(a.processed(), b.processed());
    }

    #[test]
    fn batch_matches_sequential() {
        let stream: Vec<InsertOnly> = (0..6000u64)
            .map(|t| InsertOnly(if t % 4 == 0 { 3 } else { 10 + (t * 7) % 200 }))
            .collect();
        for chunk in [1usize, 17, 500] {
            let mut seq = SpaceSaving::with_counters(10, 1 << 12);
            let mut bat = SpaceSaving::with_counters(10, 1 << 12);
            let mut r1 = TranscriptRng::from_seed(1);
            let mut r2 = TranscriptRng::from_seed(1);
            for u in &stream {
                seq.process(u, &mut r1);
            }
            for c in stream.chunks(chunk) {
                bat.process_batch(c, &mut r2);
            }
            assert_eq!(seq.entries(), bat.entries(), "chunk {chunk}");
            assert_eq!(seq.processed(), bat.processed(), "chunk {chunk}");
        }
    }

    #[test]
    fn merge_keeps_sandwich_invariant() {
        // Item-hash sharding across 3 instances, then a tree merge; the
        // merged summary must keep f ≤ count and count − err ≤ f for every
        // kept item, with err within the combined 2m/k budget.
        let stream: Vec<u64> = (0..4500u64)
            .map(|t| if t % 4 == 0 { 3 } else { 10 + (t * 7) % 60 })
            .collect();
        let k = 12;
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut shards: Vec<SpaceSaving> = (0..3)
            .map(|_| SpaceSaving::with_counters(k, 1 << 12))
            .collect();
        for &item in &stream {
            *truth.entry(item).or_insert(0) += 1;
            shards[(item % 3) as usize].insert(item);
        }
        let mut merged = shards.remove(0);
        for s in &shards {
            merged.merge(s).unwrap();
        }
        let m = stream.len() as u64;
        assert_eq!(merged.processed(), m);
        assert!(merged.entries().len() <= k);
        for (item, e) in merged.entries() {
            let f = truth.get(&item).copied().unwrap_or(0);
            assert!(e.count >= f, "merged count {} < f {f} for {item}", e.count);
            assert!(
                e.count - e.err <= f,
                "merged under-estimate {} > f {f} for {item}",
                e.count - e.err
            );
            assert!(e.err <= 2 * m / k as u64, "merged err {} too large", e.err);
        }
        // The 25% item must be monitored with a near-true count.
        assert!(merged.over_estimate(3) >= truth[&3]);
    }

    #[test]
    fn merge_rejects_mismatched_budgets() {
        let mut a = SpaceSaving::with_counters(4, 100);
        let b = SpaceSaving::with_counters(5, 100);
        assert!(matches!(a.merge(&b), Err(MergeError::Incompatible(_))));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut ss = SpaceSaving::with_counters(6, 1 << 20);
        for i in 0..10_000u64 {
            ss.insert(i);
        }
        assert!(ss.entries().len() <= 6);
        assert_eq!(ss.capacity(), 6);
    }

    #[test]
    fn space_accounting_nonzero() {
        let mut ss = SpaceSaving::new(0.25, 1 << 10);
        ss.insert(1);
        assert!(ss.space_bits() >= 10);
    }
}
