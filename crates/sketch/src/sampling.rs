//! Sampling primitives that are robust in the white-box model.
//!
//! Theorem 2.3 (`[BY20]`, extended to white-box adversaries by the paper):
//! Bernoulli sampling each update with probability
//! `p ≥ C·log(n/δ) / (ε²·m)` preserves the `ε`-L1-heavy hitters. The proof
//! carries over to white-box adversaries because the sampler keeps **no
//! private randomness**: each coin is flipped once, used, and immediately
//! becomes part of the public transcript — there is nothing for the
//! adversary to learn that helps with *future* coins.
//!
//! [`BernoulliHeavyHitters`] is the known-`m` baseline; Algorithm 1/2 wrap
//! it (via [`crate::bern_mg::BernMG`]) to drop the known-`m` assumption.
//! [`ReservoirSampler`] is included as the classic alternative mentioned in
//! the paper's related-work discussion.

use std::collections::HashMap;
use wb_core::rng::{f64_from_word, TranscriptRng};
use wb_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use wb_core::space::{bits_for_count, bits_for_universe, SpaceUsage};
use wb_core::stream::{InsertOnly, RunAggregator, StreamAlg};

/// Recommended sampling probability `min(1, C·ln(n/δ) / (ε²·m))`.
pub fn bernoulli_rate(n: u64, m: u64, eps: f64, delta: f64, c: f64) -> f64 {
    assert!(m > 0 && n > 0);
    let p = c * ((n as f64 / delta).ln()) / (eps * eps * m as f64);
    p.min(1.0)
}

/// Bernoulli-sampled exact counts: the Theorem 2.3 baseline with known `m`.
#[derive(Debug, Clone)]
pub struct BernoulliHeavyHitters {
    p: f64,
    counts: HashMap<u64, u64>,
    n: u64,
    sampled: u64,
    processed: u64,
    /// Batch scratch aggregating sampled occurrences per item — counts are
    /// commutative additions, so per-item totals land each coordinate in
    /// the map once per batch. Not observable state; snapshots skip it.
    agg: RunAggregator<u64>,
}

impl BernoulliHeavyHitters {
    /// Sampler with rate from [`bernoulli_rate`] (constant `C = 8`).
    pub fn new(n: u64, m: u64, eps: f64, delta: f64) -> Self {
        Self::with_rate(n, bernoulli_rate(n, m, eps, delta, 8.0))
    }

    /// Sampler with an explicit rate `p ∈ (0, 1]`.
    pub fn with_rate(n: u64, p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "rate must be in (0,1]");
        BernoulliHeavyHitters {
            p,
            counts: HashMap::new(),
            n,
            sampled: 0,
            processed: 0,
            agg: RunAggregator::new(),
        }
    }

    /// Process one update (coin flipped fresh; nothing retained if tails).
    pub fn insert(&mut self, item: u64, rng: &mut TranscriptRng) {
        self.processed += 1;
        if rng.bernoulli(self.p) {
            *self.counts.entry(item).or_insert(0) += 1;
            self.sampled += 1;
        }
    }

    /// Rescaled estimate `count_i / p` of item `i`'s frequency.
    pub fn estimate(&self, item: u64) -> f64 {
        self.counts.get(&item).copied().unwrap_or(0) as f64 / self.p
    }

    /// All sampled items with rescaled estimates, item-ascending.
    pub fn estimates(&self) -> Vec<(u64, f64)> {
        let mut v: Vec<(u64, f64)> = self
            .counts
            .iter()
            .map(|(&i, &c)| (i, c as f64 / self.p))
            .collect();
        v.sort_unstable_by_key(|&(i, _)| i);
        v
    }

    /// Number of sampled updates.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Number of processed updates.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The public sampling rate.
    pub fn rate(&self) -> f64 {
        self.p
    }
}

impl Snapshot for BernoulliHeavyHitters {
    /// Layout: `p | n | processed | sampled | counts`. `p` and `n` are
    /// construction parameters — validated, not overwritten.
    fn snap(&self, w: &mut SnapWriter) {
        w.put_f64(self.p);
        w.put_u64(self.n);
        w.put_u64(self.processed);
        w.put_u64(self.sampled);
        w.put_map_u64_u64(&self.counts);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let p = r.take_f64()?;
        let n = r.take_u64()?;
        if p.to_bits() != self.p.to_bits() || n != self.n {
            return Err(SnapError::mismatch(
                format!("BernoulliHeavyHitters(p={}, n={})", self.p, self.n),
                format!("BernoulliHeavyHitters(p={p}, n={n})"),
            ));
        }
        let processed = r.take_u64()?;
        let sampled = r.take_u64()?;
        let counts = r.take_map_u64_u64()?;
        if counts.values().any(|&c| c == 0) {
            return Err(SnapError::corrupt("BernoulliHeavyHitters zero count"));
        }
        if counts.values().sum::<u64>() != sampled {
            return Err(SnapError::corrupt(
                "BernoulliHeavyHitters counts do not sum to the sample total",
            ));
        }
        self.counts = counts;
        self.sampled = sampled;
        self.processed = processed;
        Ok(())
    }
}

impl SpaceUsage for BernoulliHeavyHitters {
    fn space_bits(&self) -> u64 {
        let id_bits = bits_for_universe(self.n);
        self.counts
            .values()
            .map(|&c| id_bits + bits_for_count(c))
            .sum()
    }
}

impl StreamAlg for BernoulliHeavyHitters {
    type Update = InsertOnly;
    type Output = Vec<(u64, f64)>;

    fn process(&mut self, update: &InsertOnly, rng: &mut TranscriptRng) {
        self.insert(update.0, rng);
    }

    /// Batched sampling: coin words prefetched block-wise (identical
    /// words, identical transcript); sampled occurrences aggregate per
    /// item before touching the count map. Counts are plain additions, so
    /// per-item totals leave the map bit-identical to the scalar loop.
    fn process_batch(&mut self, updates: &[InsertOnly], rng: &mut TranscriptRng) {
        const BLOCK: usize = 512;
        let mut words = [0u64; BLOCK];
        let mut agg = std::mem::take(&mut self.agg);
        // Segmented to respect the aggregator's 2^24-pair batch cap.
        for seg in updates.chunks(1 << 20) {
            agg.begin(seg.len());
            let mut offset = 0;
            while offset < seg.len() {
                let take = (seg.len() - offset).min(BLOCK);
                rng.next_u64_many(&mut words[..take]);
                for (u, &w) in seg[offset..offset + take].iter().zip(&words[..take]) {
                    if f64_from_word(w) < self.p {
                        self.sampled += 1;
                        agg.add(u.0, 1u64);
                    }
                }
                offset += take;
            }
            for &(item, count) in agg.runs() {
                *self.counts.entry(item).or_insert(0) += count;
            }
        }
        self.agg = agg;
        self.processed += updates.len() as u64;
    }

    fn snapshot_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        Snapshot::snap(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Snapshot::restore(self, r)
    }

    fn query(&self) -> Vec<(u64, f64)> {
        self.estimates()
    }

    fn name(&self) -> &'static str {
        "BernoulliHeavyHitters"
    }
}

/// Classic reservoir sampler of `k` stream elements.
#[derive(Debug, Clone)]
pub struct ReservoirSampler {
    reservoir: Vec<u64>,
    k: usize,
    seen: u64,
    n: u64,
}

impl ReservoirSampler {
    /// Reservoir of capacity `k ≥ 1` over universe `[n]`.
    pub fn new(k: usize, n: u64) -> Self {
        assert!(k >= 1);
        ReservoirSampler {
            reservoir: Vec::with_capacity(k),
            k,
            seen: 0,
            n,
        }
    }

    /// Offer one element.
    pub fn insert(&mut self, item: u64, rng: &mut TranscriptRng) {
        self.seen += 1;
        if self.reservoir.len() < self.k {
            self.reservoir.push(item);
        } else {
            let j = rng.below(self.seen);
            if (j as usize) < self.k {
                self.reservoir[j as usize] = item;
            }
        }
    }

    /// Current sample (uniform `k`-subset of the prefix, with repetition of
    /// values possible if the stream repeats them).
    pub fn sample(&self) -> &[u64] {
        &self.reservoir
    }

    /// Elements offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

impl SpaceUsage for ReservoirSampler {
    fn space_bits(&self) -> u64 {
        self.reservoir.len() as u64 * bits_for_universe(self.n) + bits_for_count(self.seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_formula_caps_at_one() {
        assert_eq!(bernoulli_rate(1000, 1, 0.1, 0.1, 8.0), 1.0);
        let p = bernoulli_rate(1000, 1_000_000, 0.1, 0.1, 8.0);
        assert!(p > 0.0 && p < 1.0);
        // Rate decreases with m.
        assert!(bernoulli_rate(1000, 2_000_000, 0.1, 0.1, 8.0) < p);
    }

    #[test]
    fn estimates_concentrate_around_truth() {
        let mut rng = TranscriptRng::from_seed(5);
        let m = 100_000u64;
        let mut s = BernoulliHeavyHitters::with_rate(1000, 0.05);
        // Item 1: 30% of stream; item 2: 10%.
        for t in 0..m {
            let item = match t % 10 {
                0..=2 => 1,
                3 => 2,
                _ => 100 + t % 500,
            };
            s.insert(item, &mut rng);
        }
        let e1 = s.estimate(1);
        let e2 = s.estimate(2);
        assert!((e1 - 30_000.0).abs() < 3_000.0, "e1 = {e1}");
        assert!((e2 - 10_000.0).abs() < 2_000.0, "e2 = {e2}");
        assert_eq!(s.processed(), m);
    }

    #[test]
    fn sample_count_scales_with_rate() {
        let mut rng = TranscriptRng::from_seed(6);
        let mut s = BernoulliHeavyHitters::with_rate(10, 0.01);
        for t in 0..50_000u64 {
            s.insert(t % 10, &mut rng);
        }
        let frac = s.sampled() as f64 / 50_000.0;
        assert!((frac - 0.01).abs() < 0.004, "sampled fraction {frac}");
        // Space is proportional to samples, not stream length.
        assert!(s.space_bits() < 10 * (4 + 12) + 1);
    }

    #[test]
    fn estimates_sorted_by_item() {
        let mut rng = TranscriptRng::from_seed(7);
        let mut s = BernoulliHeavyHitters::with_rate(100, 1.0);
        for item in [5u64, 3, 9, 3, 5] {
            s.insert(item, &mut rng);
        }
        let ests = s.estimates();
        let items: Vec<u64> = ests.iter().map(|&(i, _)| i).collect();
        assert_eq!(items, vec![3, 5, 9]);
        assert_eq!(s.estimate(3), 2.0);
    }

    #[test]
    fn reservoir_is_uniform_ish() {
        // Insert 0..100; element 0 should stay in a k=10 reservoir about
        // 10% of the time across seeds.
        let mut keeps = 0;
        let trials = 2000;
        for seed in 0..trials {
            let mut rng = TranscriptRng::from_seed(seed);
            let mut r = ReservoirSampler::new(10, 100);
            for item in 0..100u64 {
                r.insert(item, &mut rng);
            }
            if r.sample().contains(&0) {
                keeps += 1;
            }
        }
        let frac = keeps as f64 / trials as f64;
        assert!((frac - 0.1).abs() < 0.03, "keep fraction {frac}");
    }

    #[test]
    fn reservoir_fills_then_caps() {
        let mut rng = TranscriptRng::from_seed(8);
        let mut r = ReservoirSampler::new(5, 100);
        for item in 0..3u64 {
            r.insert(item, &mut rng);
        }
        assert_eq!(r.sample(), &[0, 1, 2]);
        for item in 3..1000u64 {
            r.insert(item, &mut rng);
        }
        assert_eq!(r.sample().len(), 5);
        assert_eq!(r.seen(), 1000);
    }

    #[test]
    #[should_panic(expected = "rate must be in (0,1]")]
    fn rejects_zero_rate() {
        BernoulliHeavyHitters::with_rate(10, 0.0);
    }
}
