//! Algorithm 2 / Theorem 1.1: white-box-robust `ε`-L1-heavy hitters in
//! `O(ε⁻¹(log n + log ε⁻¹) + log log m)` bits.
//!
//! Composition (exactly the paper's):
//!
//! * a [`MedianMorris`] counter supplies a `(1 + O(ε))`-approximation `t̂`
//!   of the stream length at all times in `O(log log m)` bits;
//! * a [`GuessLadder`] keeps two live [`BernMG`] instances provisioned for
//!   stream-length guesses `(16/ε)^{c+1}` and `(16/ε)^{c+2}`; when `t̂`
//!   crosses the answering guess, the warming instance takes over having
//!   missed at most an `ε/16`-fraction prefix, so every `ε`-heavy hitter of
//!   the full stream is still `Ω(ε)`-heavy in the instance's substream;
//! * queries are answered by the instance covering the current epoch.
//!
//! Robustness: Morris counters are white-box robust (Lemma 2.1) and
//! Bernoulli sampling is white-box robust (Theorem 2.3) because no private
//! randomness outlives the round in which it is drawn; Misra–Gries is
//! deterministic. The adversary sees every coin — and none of them help it
//! bias *future* coins.

use crate::bern_mg::BernMG;
use crate::epochs::GuessLadder;
use crate::morris::MedianMorris;
use wb_core::rng::TranscriptRng;
use wb_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use wb_core::space::SpaceUsage;
use wb_core::stream::{InsertOnly, StreamAlg};

type Factory = Box<dyn Fn(u64) -> BernMG + Send + Sync>;

/// Algorithm 2: robust `ε`-L1-heavy hitters without knowing `m`.
pub struct RobustL1HeavyHitters {
    eps: f64,
    n: u64,
    morris: MedianMorris,
    ladder: GuessLadder<BernMG, Factory>,
}

impl std::fmt::Debug for RobustL1HeavyHitters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RobustL1HeavyHitters")
            .field("eps", &self.eps)
            .field("n", &self.n)
            .field("epoch", &self.ladder.epoch())
            .field("t_hat", &self.morris.estimate())
            .finish()
    }
}

impl RobustL1HeavyHitters {
    /// New instance for universe `[n]` and accuracy `ε ∈ (0, 1/2)`.
    ///
    /// The per-instance failure probability is `δ = ε/64` (the paper's
    /// `δ = O(ε / log m)`; the `log m` refinement only matters for
    /// union-bounding over astronomically many epochs).
    pub fn new(n: u64, eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 0.5, "eps must be in (0, 1/2)");
        assert!(n > 0);
        let delta = eps / 64.0;
        let ratio = 16.0 / eps;
        let factory: Factory = Box::new(move |guess| BernMG::new(n, guess, eps / 2.0, delta));
        RobustL1HeavyHitters {
            eps,
            n,
            morris: MedianMorris::new(eps / 16.0, 7),
            ladder: GuessLadder::new(ratio, factory),
        }
    }

    /// Process one item occurrence.
    pub fn insert(&mut self, item: u64, rng: &mut TranscriptRng) {
        self.morris.increment(rng);
        for inst in self.ladder.live_mut() {
            inst.insert(item, rng);
        }
        self.ladder.advance(self.morris.estimate());
    }

    /// Estimated frequency of `item` from the answering instance.
    pub fn estimate(&self, item: u64) -> f64 {
        self.ladder.answering().estimate(item)
    }

    /// The heavy-hitter list: `O(1/ε)` items with rescaled estimates.
    pub fn heavy_hitters(&self) -> Vec<(u64, f64)> {
        self.ladder.answering().estimates()
    }

    /// Morris estimate `t̂` of the stream length (white-box view).
    pub fn t_hat(&self) -> f64 {
        self.morris.estimate()
    }

    /// Current epoch of the guess ladder (white-box view).
    pub fn epoch(&self) -> u32 {
        self.ladder.epoch()
    }

    /// Accuracy parameter.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The answering [`BernMG`] instance (white-box view).
    pub fn answering(&self) -> &BernMG {
        self.ladder.answering()
    }
}

impl Snapshot for RobustL1HeavyHitters {
    /// Layout: `eps | n | morris | ladder`. The ladder carries its epoch
    /// and both live [`BernMG`] instances; the factory in the restoring
    /// twin rebuilds instances at the snapshot epoch's guesses.
    fn snap(&self, w: &mut SnapWriter) {
        w.put_f64(self.eps);
        w.put_u64(self.n);
        self.morris.snap(w);
        self.ladder.snap(w);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let eps = r.take_f64()?;
        let n = r.take_u64()?;
        if eps.to_bits() != self.eps.to_bits() || n != self.n {
            return Err(SnapError::mismatch(
                format!("RobustL1HeavyHitters(eps={}, n={})", self.eps, self.n),
                format!("RobustL1HeavyHitters(eps={eps}, n={n})"),
            ));
        }
        self.morris.restore(r)?;
        self.ladder.restore(r)
    }
}

impl SpaceUsage for RobustL1HeavyHitters {
    fn space_bits(&self) -> u64 {
        self.morris.space_bits() + self.ladder.space_bits()
    }
}

impl StreamAlg for RobustL1HeavyHitters {
    type Update = InsertOnly;
    type Output = Vec<(u64, f64)>;

    fn process(&mut self, update: &InsertOnly, rng: &mut TranscriptRng) {
        self.insert(update.0, rng);
    }

    /// Batched insert. Each update consumes exactly `k + 2` words (`k`
    /// Morris coins in copy order, then the answering and warming sampling
    /// coins), so whole blocks are prefetched with `next_u64_many` and fed
    /// to the per-word paths in scalar order. `ladder.advance` is only
    /// called when a Morris exponent moved: `advance(t̂)` with an unchanged
    /// `t̂` is a no-op (the previous call already looped until
    /// `t̂ < answering_guess`), and skipping it avoids the alloc+sort in
    /// `MedianMorris::estimate` on every update.
    fn process_batch(&mut self, updates: &[InsertOnly], rng: &mut TranscriptRng) {
        const BLOCK: usize = 512;
        let k = self.morris.counters().len();
        let per = k + 2;
        let per_block = (BLOCK / per).max(1);
        let mut words = vec![0u64; per_block * per];
        let mut offset = 0;
        while offset < updates.len() {
            let take = (updates.len() - offset).min(per_block);
            rng.next_u64_many(&mut words[..take * per]);
            for (u, chunk) in updates[offset..offset + take]
                .iter()
                .zip(words.chunks_exact(per))
            {
                let changed = self.morris.increment_with_words(&chunk[..k]);
                for (inst, &w) in self.ladder.live_mut().into_iter().zip(&chunk[k..]) {
                    inst.insert_with_word(u.0, w);
                }
                if changed {
                    self.ladder.advance(self.morris.estimate());
                }
            }
            offset += take;
        }
    }

    fn snapshot_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        Snapshot::snap(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Snapshot::restore(self, r)
    }

    fn query(&self) -> Vec<(u64, f64)> {
        self.heavy_hitters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::misra_gries::MisraGries;
    use wb_core::game::{FnAdversary, ScriptAdversary};
    use wb_core::referee::HeavyHitterReferee;
    use wb_core::rng::RandTranscript;
    use wb_engine::Game;

    /// Zipf-flavoured script: item 1 at 40%, item 2 at 15%, item 3 at 8%,
    /// uniform noise elsewhere.
    fn zipf_script(m: u64, n: u64) -> Vec<InsertOnly> {
        (0..m)
            .map(|t| {
                let item = match t % 100 {
                    0..=39 => 1,
                    40..=54 => 2,
                    55..=62 => 3,
                    _ => 100 + (t.wrapping_mul(2654435761)) % (n - 100),
                };
                InsertOnly(item)
            })
            .collect()
    }

    #[test]
    fn survives_long_zipf_stream() {
        let n = 1 << 14;
        let m = 1 << 16;
        let report = Game::new(RobustL1HeavyHitters::new(n, 0.125))
            .adversary(ScriptAdversary::new(zipf_script(m, n)))
            .referee(HeavyHitterReferee::new(0.125, 0.125).with_grace(64))
            .max_rounds(m)
            .seed(21)
            .run();
        assert!(report.survived(), "failed: {:?}", report.result.failure);
        assert_eq!(report.result.rounds, m);
    }

    #[test]
    fn survives_white_box_mg_evasion_adversary() {
        // Classic anti-Misra-Gries strategy, upgraded with white-box access:
        // the adversary inspects the answering instance's retained items and
        // sends items *not* currently monitored, interleaved with a heavy
        // item. Deterministic MG alone tolerates this; the point is that
        // sampling+Morris do not open a new attack surface.
        let n = 1 << 14;
        let m = 1 << 15;
        let mut next_evader = 500u64;
        let adv = FnAdversary::new(
            move |t: u64,
                  alg: &RobustL1HeavyHitters,
                  _tr: &RandTranscript,
                  _last: Option<&Vec<(u64, f64)>>| {
                if t >= m {
                    return None;
                }
                if t.is_multiple_of(3) {
                    Some(InsertOnly(1)) // keep one genuinely heavy item
                } else {
                    // Scan for an item id the summary is not tracking.
                    let tracked: Vec<u64> = alg
                        .answering()
                        .inner()
                        .entries()
                        .iter()
                        .map(|&(i, _)| i)
                        .collect();
                    while tracked.contains(&next_evader) {
                        next_evader = 500 + (next_evader + 1) % (n - 500);
                    }
                    let item = next_evader;
                    next_evader = 500 + (next_evader + 1) % (n - 500);
                    Some(InsertOnly(item))
                }
            },
        );
        let (report, alg) = Game::new(RobustL1HeavyHitters::new(n, 0.125))
            .adversary(adv)
            .referee(HeavyHitterReferee::new(0.125, 0.125).with_grace(64))
            .max_rounds(m)
            .seed(22)
            .play();
        assert!(report.survived(), "failed: {:?}", report.result.failure);
        // The heavy item must be reported with a sane estimate.
        let hh = alg.heavy_hitters();
        let est1 = hh.iter().find(|&&(i, _)| i == 1).map(|&(_, e)| e);
        let est1 = est1.expect("item 1 is 1/3 of the stream — must be reported");
        let truth = m as f64 / 3.0;
        assert!(
            (est1 - truth).abs() < 0.125 * m as f64,
            "estimate {est1} vs truth {truth}"
        );
    }

    #[test]
    fn epochs_advance_with_stream_length() {
        let mut rng = TranscriptRng::from_seed(23);
        let mut alg = RobustL1HeavyHitters::new(1 << 10, 0.25);
        assert_eq!(alg.epoch(), 0);
        for _ in 0..(1 << 15) {
            alg.insert(1, &mut rng);
        }
        // ratio = 64; t = 32768 = 64^2.5 → epoch should be ≥ 2.
        assert!(alg.epoch() >= 2, "epoch {}", alg.epoch());
        // Morris estimate should be in the right ballpark.
        let t_hat = alg.t_hat();
        assert!((t_hat - 32768.0).abs() < 0.5 * 32768.0, "t_hat {t_hat}");
    }

    #[test]
    fn space_beats_misra_gries_on_long_streams() {
        // E1's shape at test scale: per-counter bits of the robust algorithm
        // saturate (counters count samples), while MG counter bits track
        // log m. Compare total bits on a single-hot-item stream.
        let mut rng = TranscriptRng::from_seed(24);
        let n = 1 << 16;
        let eps = 0.25;
        let m = 1 << 20;
        let mut robust = RobustL1HeavyHitters::new(n, eps);
        let mut mg = MisraGries::new(eps, n);
        for t in 0..m {
            let item = if t % 2 == 0 { 1 } else { 2 };
            robust.insert(item, &mut rng);
            mg.insert(item);
        }
        // MG stores two counters of ~log2(m/2) = 19 bits each, growing with
        // log m forever. The robust algorithm's counters count *samples*,
        // which are capped at ~C·ln(n/δ)/(ε/8)² per instance regardless of
        // m, so its total space sits under a fixed cap (two BernMG
        // instances with ≤2 entries each + Morris + epoch index).
        let cap = 2 * 2 * (16 + 20 + 20) + 64;
        assert!(
            robust.space_bits() < cap,
            "robust space {} exceeds cap {cap} at m",
            robust.space_bits()
        );
        let mg_bits_1 = mg.space_bits();
        for t in 0..(3 * m) {
            let item = if t % 2 == 0 { 1 } else { 2 };
            robust.insert(item, &mut rng);
            mg.insert(item);
        }
        let mg_growth = mg.space_bits() as i64 - mg_bits_1 as i64;
        assert!(mg_growth >= 4, "MG grows with log m: {mg_growth}");
        assert!(
            robust.space_bits() < cap,
            "robust space {} exceeds cap {cap} at 4m",
            robust.space_bits()
        );
    }

    #[test]
    fn estimates_have_no_phantom_heavy_items() {
        let mut rng = TranscriptRng::from_seed(25);
        let n = 1 << 12;
        let mut alg = RobustL1HeavyHitters::new(n, 0.125);
        let m = 1 << 14;
        for t in 0..m {
            alg.insert(t % 64, &mut rng); // uniform over 64 items
        }
        // No item holds more than 1/64 ≈ 1.6% of the stream; nothing should
        // be estimated above eps·m with eps = 12.5%.
        for (item, est) in alg.heavy_hitters() {
            assert!(
                est < 0.125 * m as f64,
                "phantom heavy item {item} with estimate {est}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "eps must be in (0, 1/2)")]
    fn rejects_bad_eps() {
        RobustL1HeavyHitters::new(10, 0.75);
    }
}
