//! Morris approximate counters (Lemma 2.1 of the paper).
//!
//! A Morris counter stores only `X ≈ log_{1+a}(count)`: it increments `X`
//! with probability `(1+a)^{-X}` and estimates the count as
//! `((1+a)^X − 1)/a`. The estimator is exactly unbiased and, with
//! `a = 2ε²δ`, Chebyshev gives a `(1+ε)`-approximation with probability
//! `1 − δ` — using `O(log log m + log 1/ε + log 1/δ)` bits.
//!
//! **White-box robustness** (Lemma 2.1): the counter's behaviour depends
//! only on *how many* increments it has received, never on update values or
//! any adversary-controllable quantity; each increment's coin is fresh.
//! Seeing `X` tells the adversary nothing actionable — the only "attack" is
//! choosing when to stop, and the estimate is within tolerance at every
//! prefix w.h.p. The experiment E10 runs adaptive adversaries that try to
//! stop at unlucky moments and measures the failure rate.

use wb_core::rng::{f64_from_word, TranscriptRng};
use wb_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use wb_core::space::{bits_for_count, SpaceUsage};
use wb_core::stream::{InsertOnly, StreamAlg};

/// Words prefetched per block by the batched coin-flip kernels — sized so
/// a block stays L1-resident.
const MORRIS_BLOCK: usize = 512;

/// A single Morris counter with base `1 + a`.
///
/// **Deliberately unmergeable** (`StreamAlg::merge_from` returns
/// [`wb_core::merge::MergeError::Unmergeable`]): the stored exponent `X` is
/// a random variable whose distribution encodes the whole count, and no
/// deterministic function of two exponents `(X₁, X₂)` is distributed like
/// the exponent of a counter that saw both streams — a sound merge needs
/// fresh randomness (subsampling one counter's increments), which the
/// deterministic [`wb_core::merge::Mergeable`] contract rules out. Sharded
/// pipelines must route counting through one shard or use exact counters.
#[derive(Debug, Clone)]
pub struct MorrisCounter {
    /// The stored exponent `X`.
    x: u64,
    /// Base offset `a > 0` (smaller `a` → better accuracy, more bits).
    a: f64,
    /// Cached increment probability `(1+a)^{-X}` — a pure function of `x`
    /// and `a` (refreshed whenever `x` moves), so each increment costs one
    /// compare instead of a `powi`. Not observable state: snapshots skip
    /// it and restores recompute it.
    p: f64,
}

impl MorrisCounter {
    /// Counter achieving a `(1±ε)`-approximation with probability `1−δ`
    /// at any fixed time (standard Chebyshev analysis: `a = 2ε²δ`).
    pub fn new(eps: f64, delta: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        Self::with_base(2.0 * eps * eps * delta)
    }

    /// Counter with an explicit base offset `a`.
    pub fn with_base(a: f64) -> Self {
        assert!(a > 0.0, "base offset must be positive");
        MorrisCounter { x: 0, a, p: 1.0 }
    }

    /// The increment probability for exponent `x` — the sole formula the
    /// cached `p` mirrors.
    fn prob_at(a: f64, x: u64) -> f64 {
        (1.0 + a).powi(-(x as i32))
    }

    /// Register one event.
    pub fn increment(&mut self, rng: &mut TranscriptRng) {
        if rng.bernoulli(self.p) {
            self.bump();
        }
    }

    /// Register one event whose coin word was already drawn (by a bulk
    /// `next_u64_many` prefetch); returns whether the exponent moved.
    #[inline]
    pub(crate) fn increment_with_word(&mut self, word: u64) -> bool {
        if f64_from_word(word) < self.p {
            self.bump();
            true
        } else {
            false
        }
    }

    #[inline]
    fn bump(&mut self) {
        self.x += 1;
        self.p = Self::prob_at(self.a, self.x);
    }

    /// Unbiased estimate `((1+a)^X − 1)/a` of the event count.
    pub fn estimate(&self) -> f64 {
        ((1.0 + self.a).powi(self.x as i32) - 1.0) / self.a
    }

    /// The stored exponent `X` — the entire mutable state, visible to the
    /// white-box adversary.
    pub fn exponent(&self) -> u64 {
        self.x
    }

    /// The base offset `a` (public parameter).
    pub fn base_offset(&self) -> f64 {
        self.a
    }
}

impl Snapshot for MorrisCounter {
    /// Layout: `x | a`. The base offset `a` is a construction parameter —
    /// validated bit-for-bit, not overwritten.
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.x);
        w.put_f64(self.a);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let x = r.take_u64()?;
        let a = r.take_f64()?;
        if a.to_bits() != self.a.to_bits() {
            return Err(SnapError::mismatch(
                format!("MorrisCounter(a={})", self.a),
                format!("MorrisCounter(a={a})"),
            ));
        }
        self.x = x;
        self.p = Self::prob_at(self.a, x);
        Ok(())
    }
}

impl SpaceUsage for MorrisCounter {
    /// Only the exponent is state: `O(log X) = O(log log m + log 1/a)` bits.
    fn space_bits(&self) -> u64 {
        bits_for_count(self.x)
    }
}

impl StreamAlg for MorrisCounter {
    type Update = InsertOnly;
    type Output = f64;

    fn process(&mut self, _update: &InsertOnly, rng: &mut TranscriptRng) {
        self.increment(rng);
    }

    /// Batched coin flips: one word per update, prefetched block-wise via
    /// `next_u64_many` (proven word- and transcript-identical to repeated
    /// `next_u64`) and compared against the cached probability — the same
    /// coins, the same exponent trajectory, no per-update `powi`.
    fn process_batch(&mut self, updates: &[InsertOnly], rng: &mut TranscriptRng) {
        let mut words = [0u64; MORRIS_BLOCK];
        let mut rest = updates.len();
        while rest > 0 {
            let take = rest.min(MORRIS_BLOCK);
            rng.next_u64_many(&mut words[..take]);
            for &w in &words[..take] {
                self.increment_with_word(w);
            }
            rest -= take;
        }
    }

    fn query(&self) -> f64 {
        self.estimate()
    }

    fn snapshot_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        Snapshot::snap(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Snapshot::restore(self, r)
    }

    fn name(&self) -> &'static str {
        "MorrisCounter"
    }
}

/// Median of `k` independent Morris counters: amplifies the per-time
/// success probability from `1 − δ'` to `1 − exp(−Ω(k))`, which is how the
/// `log(1/δ)` term in Lemma 2.1 is realized while keeping each counter's
/// base moderate.
#[derive(Debug, Clone)]
pub struct MedianMorris {
    counters: Vec<MorrisCounter>,
}

impl MedianMorris {
    /// `k` counters (made odd internally), each a `(1±ε)`-estimator with
    /// constant failure probability.
    pub fn new(eps: f64, k: usize) -> Self {
        let k = if k.is_multiple_of(2) { k + 1 } else { k.max(1) };
        // Each copy: failure probability 1/8 at fixed time.
        let counters = (0..k).map(|_| MorrisCounter::new(eps, 1.0 / 8.0)).collect();
        MedianMorris { counters }
    }

    /// Register one event (all copies flip independent coins).
    pub fn increment(&mut self, rng: &mut TranscriptRng) {
        for c in &mut self.counters {
            c.increment(rng);
        }
    }

    /// Register one event from `counters().len()` prefetched coin words in
    /// copy order; returns whether any exponent moved (i.e. whether the
    /// median estimate may have changed).
    #[inline]
    pub(crate) fn increment_with_words(&mut self, words: &[u64]) -> bool {
        debug_assert_eq!(words.len(), self.counters.len());
        let mut changed = false;
        for (c, &w) in self.counters.iter_mut().zip(words) {
            changed |= c.increment_with_word(w);
        }
        changed
    }

    /// Median of the copies' estimates.
    pub fn estimate(&self) -> f64 {
        let mut ests: Vec<f64> = self.counters.iter().map(MorrisCounter::estimate).collect();
        ests.sort_by(|a, b| a.partial_cmp(b).expect("estimates are finite"));
        ests[ests.len() / 2]
    }

    /// The individual counters (white-box view).
    pub fn counters(&self) -> &[MorrisCounter] {
        &self.counters
    }
}

impl Snapshot for MedianMorris {
    /// Layout: `len | counters…` — the copy count is a construction
    /// parameter; each copy restores in place.
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.counters.len());
        for c in &self.counters {
            c.snap(w);
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let len = r.take_usize()?;
        if len != self.counters.len() {
            return Err(SnapError::mismatch(
                format!("MedianMorris({} counters)", self.counters.len()),
                format!("MedianMorris({len} counters)"),
            ));
        }
        for c in &mut self.counters {
            c.restore(r)?;
        }
        Ok(())
    }
}

impl SpaceUsage for MedianMorris {
    fn space_bits(&self) -> u64 {
        self.counters.iter().map(SpaceUsage::space_bits).sum()
    }
}

impl StreamAlg for MedianMorris {
    type Update = InsertOnly;
    type Output = f64;

    fn process(&mut self, _update: &InsertOnly, rng: &mut TranscriptRng) {
        self.increment(rng);
    }

    /// Batched coin flips for all copies: each update consumes
    /// `counters().len()` words in copy order, exactly as the scalar loop
    /// does; words are prefetched a block of whole updates at a time.
    fn process_batch(&mut self, updates: &[InsertOnly], rng: &mut TranscriptRng) {
        let k = self.counters.len();
        let per_block = (MORRIS_BLOCK / k).max(1);
        let mut words = vec![0u64; per_block * k];
        let mut rest = updates.len();
        while rest > 0 {
            let take = rest.min(per_block);
            let slice = &mut words[..take * k];
            rng.next_u64_many(slice);
            for u in 0..take {
                self.increment_with_words(&slice[u * k..(u + 1) * k]);
            }
            rest -= take;
        }
    }

    fn query(&self) -> f64 {
        self.estimate()
    }

    fn snapshot_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        Snapshot::snap(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Snapshot::restore(self, r)
    }

    fn name(&self) -> &'static str {
        "MedianMorris"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_core::game::{FnAdversary, ScriptAdversary};
    use wb_core::merge::MergeError;
    use wb_core::referee::ApproxCountReferee;
    use wb_core::rng::RandTranscript;
    use wb_engine::Game;

    #[test]
    fn estimate_zero_initially() {
        let c = MorrisCounter::new(0.5, 0.25);
        assert_eq!(c.estimate(), 0.0);
        assert_eq!(c.exponent(), 0);
    }

    #[test]
    fn estimate_tracks_count_within_tolerance() {
        let mut rng = TranscriptRng::from_seed(1);
        let n = 100_000u64;
        let mut c = MorrisCounter::with_base(0.01);
        for _ in 0..n {
            c.increment(&mut rng);
        }
        let est = c.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.25, "relative error {rel} too large (est {est})");
    }

    #[test]
    fn estimator_is_unbiased_across_seeds() {
        let n = 2_000u64;
        let trials = 300;
        let mut sum = 0.0;
        for seed in 0..trials {
            let mut rng = TranscriptRng::from_seed(seed);
            let mut c = MorrisCounter::with_base(0.5);
            for _ in 0..n {
                c.increment(&mut rng);
            }
            sum += c.estimate();
        }
        let mean = sum / trials as f64;
        let rel = (mean - n as f64).abs() / n as f64;
        assert!(rel < 0.1, "mean {mean} deviates from {n} by {rel}");
    }

    #[test]
    fn space_is_loglog() {
        let mut rng = TranscriptRng::from_seed(2);
        let mut c = MorrisCounter::with_base(0.5);
        for _ in 0..1_000_000u64 {
            c.increment(&mut rng);
        }
        // X ≈ log_{1.5}(5e5) ≈ 34 → ~6 bits, far below log2(1e6) = 20.
        assert!(
            c.space_bits() <= 8,
            "space {} bits should be ~log log m",
            c.space_bits()
        );
    }

    #[test]
    fn median_morris_concentrates() {
        let mut rng = TranscriptRng::from_seed(3);
        let n = 50_000u64;
        let mut m = MedianMorris::new(0.3, 9);
        for _ in 0..n {
            m.increment(&mut rng);
        }
        let rel = (m.estimate() - n as f64).abs() / n as f64;
        assert!(rel < 0.3, "median relative error {rel}");
        assert_eq!(m.counters().len(), 9);
    }

    #[test]
    fn median_morris_evens_out_k() {
        assert_eq!(MedianMorris::new(0.3, 4).counters().len(), 5);
        assert_eq!(MedianMorris::new(0.3, 0).counters().len(), 1);
    }

    #[test]
    fn survives_white_box_game_against_adaptive_stopper() {
        // Adversary stops the stream the moment the estimate drifts high —
        // the classic "stop at an unlucky time" adaptive strategy. With a
        // generous tolerance and a fine base, the counter must survive.
        let adv = FnAdversary::new(
            |_t: u64, alg: &MedianMorris, _tr: &RandTranscript, _last: Option<&f64>| {
                // White-box: inspect the exponents; stop if estimate looks
                // inflated (tries to lock in an error — it cannot, because
                // the referee checked every prefix anyway).
                if alg.estimate() > 2.0e6 {
                    None
                } else {
                    Some(InsertOnly(0))
                }
            },
        );
        let report = Game::new(MedianMorris::new(0.2, 9))
            .adversary(adv)
            .referee(ApproxCountReferee::new(0.5))
            .max_rounds(200_000)
            .seed(7)
            .run();
        assert!(report.survived(), "failed at {:?}", report.result.failure);
    }

    #[test]
    fn survives_long_scripted_stream_and_reports_small_space() {
        let report = Game::new(MedianMorris::new(0.2, 9))
            .adversary(ScriptAdversary::new(vec![InsertOnly(0); 100_000]))
            .referee(ApproxCountReferee::new(0.5))
            .max_rounds(100_000)
            .seed(11)
            .run();
        assert!(report.survived(), "failed at {:?}", report.result.failure);
        // 9 counters, each ~7 bits of exponent at m = 1e5 with a = 2·ε²δ.
        assert!(
            report.result.peak_space_bits < 9 * 16,
            "peak space {} bits",
            report.result.peak_space_bits
        );
    }

    #[test]
    fn morris_counters_refuse_to_merge() {
        // No deterministic combination of two exponents preserves the
        // estimator's distribution — the typed error records that.
        let mut a = MorrisCounter::new(0.5, 0.25);
        let b = MorrisCounter::new(0.5, 0.25);
        assert_eq!(
            a.merge_from(&b),
            Err(MergeError::unmergeable("MorrisCounter"))
        );
        let mut ma = MedianMorris::new(0.3, 3);
        let mb = MedianMorris::new(0.3, 3);
        assert_eq!(
            ma.merge_from(&mb),
            Err(MergeError::unmergeable("MedianMorris"))
        );
    }

    #[test]
    #[should_panic(expected = "eps must be in (0,1)")]
    fn rejects_bad_eps() {
        MorrisCounter::new(1.5, 0.1);
    }
}
