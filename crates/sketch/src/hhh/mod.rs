//! Hierarchical heavy hitters (§2.2 of the paper).
//!
//! * [`domain`] — hierarchical domains (Definition 2.9);
//! * [`tms12`] — the deterministic `[TMS12]` baseline (Theorem 2.11);
//! * [`robust`] — Algorithms 3–4 (Theorem 2.14);
//! * [`HhhReferee`] — an exact ground-truth referee checking both clauses
//!   of Definition 2.10 inside the white-box game.

pub mod domain;
pub mod robust;
pub mod tms12;

pub use domain::{Hierarchy, Prefix, RadixHierarchy};
pub use robust::{BernHHH, RobustHHH};
pub use tms12::{HhhReport, HierarchicalSpaceSaving};

use std::collections::HashMap;
use wb_core::game::{Referee, Verdict};
use wb_core::stream::{InsertOnly, StreamAlg};

/// Exact referee for the HHH Problem (Definition 2.10).
///
/// Checks, at configurable strides (full coverage checks enumerate all
/// live prefixes):
///
/// 1. **accuracy** — every reported prefix's estimate lies in
///    `[f*_p − tol·m, f*_p + tol·m]` where `f*_p` is the exact subtree
///    count;
/// 2. **coverage** — every *non-reported* prefix `q` has conditioned count
///    (excluding leaves under reported descendants of `q`) at most
///    `(γ + tol)·m`.
#[derive(Debug, Clone)]
pub struct HhhReferee<H: Hierarchy> {
    hierarchy: H,
    leaf_counts: HashMap<u64, u64>,
    m: u64,
    gamma: f64,
    tol: f64,
    grace: u64,
    stride: u64,
}

impl<H: Hierarchy> HhhReferee<H> {
    /// Referee with threshold `γ` and tolerance `tol` (fractions of `m`).
    pub fn new(hierarchy: H, gamma: f64, tol: f64) -> Self {
        HhhReferee {
            hierarchy,
            leaf_counts: HashMap::new(),
            m: 0,
            gamma,
            tol,
            grace: 0,
            stride: 1,
        }
    }

    /// Skip checks for the first `rounds` updates.
    pub fn with_grace(mut self, rounds: u64) -> Self {
        self.grace = rounds;
        self
    }

    /// Run the (expensive) full check only every `stride` rounds.
    pub fn with_stride(mut self, stride: u64) -> Self {
        self.stride = stride.max(1);
        self
    }

    /// Exact subtree count of a prefix.
    fn subtree_count(&self, p: Prefix) -> u64 {
        self.leaf_counts
            .iter()
            .filter(|(&leaf, _)| self.hierarchy.ancestor(leaf, p.level) == p.id)
            .map(|(_, &c)| c)
            .sum()
    }

    fn check_report(&self, t: u64, report: &HhhReport) -> Verdict {
        let m = self.m as f64;
        if m == 0.0 {
            return Verdict::Correct;
        }
        // (1) accuracy
        for &(p, fp) in report {
            let truth = self.subtree_count(p) as f64;
            if fp > truth + self.tol * m + 1e-9 || fp < truth - self.tol * m - 1e-9 {
                return Verdict::violation(format!(
                    "round {t}: estimate {fp:.1} for {p:?} outside f*±tol·m (f*={truth})"
                ));
            }
        }
        // (2) coverage: enumerate live prefixes per level.
        for level in 0..=self.hierarchy.height() {
            let mut conditioned: HashMap<u64, u64> = HashMap::new();
            'leaf: for (&leaf, &c) in &self.leaf_counts {
                // Exclude leaves under a reported strict descendant of q.
                for &(p, _) in report {
                    if p.level < level && self.hierarchy.ancestor(leaf, p.level) == p.id {
                        continue 'leaf;
                    }
                }
                let q = self.hierarchy.ancestor(leaf, level);
                *conditioned.entry(q).or_insert(0) += c;
            }
            for (q, cond) in conditioned {
                let reported = report.iter().any(|&(p, _)| p.level == level && p.id == q);
                if !reported && cond as f64 > (self.gamma + self.tol) * m {
                    return Verdict::violation(format!(
                        "round {t}: unreported prefix (level {level}, id {q:#x}) has \
                         conditioned count {cond} > (γ+tol)·m = {:.1}",
                        (self.gamma + self.tol) * m
                    ));
                }
            }
        }
        Verdict::Correct
    }
}

impl<A, H> Referee<A> for HhhReferee<H>
where
    H: Hierarchy,
    A: StreamAlg<Update = InsertOnly, Output = HhhReport>,
{
    fn observe(&mut self, update: &InsertOnly) {
        self.m += 1;
        *self.leaf_counts.entry(update.0).or_insert(0) += 1;
    }

    fn check(&mut self, t: u64, output: &HhhReport) -> Verdict {
        if t < self.grace || !t.is_multiple_of(self.stride) {
            return Verdict::Correct;
        }
        self.check_report(t, output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_core::game::ScriptAdversary;
    use wb_engine::Game;

    #[test]
    fn referee_accepts_correct_robust_hhh_in_game() {
        let h = RadixHierarchy::new(8, 2); // 16-bit leaves, height 2
        let m = 20_000u64;
        let script: Vec<InsertOnly> = (0..m)
            .map(|t| {
                InsertOnly(match t % 10 {
                    0..=3 => 0xAB01,             // hot leaf 40%
                    4..=6 => 0xCD00 | (t % 256), // hot prefix 30%
                    _ => (t * 2654435761) & 0xFFFF,
                })
            })
            .collect();
        let referee = HhhReferee::new(h, 0.25, 0.10)
            .with_grace(1024)
            .with_stride(997);
        let report = Game::new(RobustHHH::new(h, 0.05, 0.25))
            .adversary(ScriptAdversary::new(script))
            .referee(referee)
            .max_rounds(m)
            .seed(64)
            .run();
        assert!(report.survived(), "failed: {:?}", report.result.failure);
    }

    #[test]
    fn referee_catches_fabricated_reports() {
        let h = RadixHierarchy::new(8, 2);
        let mut r = HhhReferee::new(h, 0.2, 0.05);
        for _ in 0..100 {
            Referee::<RobustHHH<RadixHierarchy>>::observe(&mut r, &InsertOnly(0xAB01));
        }
        // Claiming a prefix that has zero traffic with a big estimate.
        let bogus: HhhReport = vec![(
            Prefix {
                level: 0,
                id: 0x9999,
            },
            80.0,
        )];
        assert!(!r.check_report(100, &bogus).is_correct());
    }

    #[test]
    fn referee_catches_missing_heavy_prefix() {
        let h = RadixHierarchy::new(8, 2);
        let mut r = HhhReferee::new(h, 0.2, 0.05);
        for _ in 0..100 {
            Referee::<RobustHHH<RadixHierarchy>>::observe(&mut r, &InsertOnly(0xAB01));
        }
        // Empty report misses the obviously heavy leaf (and its ancestors).
        let empty: HhhReport = vec![];
        assert!(!r.check_report(100, &empty).is_correct());
    }

    #[test]
    fn referee_accepts_exact_report() {
        let h = RadixHierarchy::new(8, 2);
        let mut r = HhhReferee::new(h, 0.2, 0.05);
        for _ in 0..100 {
            Referee::<RobustHHH<RadixHierarchy>>::observe(&mut r, &InsertOnly(0xAB01));
        }
        // Reporting the heavy leaf exactly: ancestors' conditioned counts
        // drop to zero, so coverage is satisfied.
        let good: HhhReport = vec![(
            Prefix {
                level: 0,
                id: 0xAB01,
            },
            100.0,
        )];
        assert!(r.check_report(100, &good).is_correct());
    }
}
