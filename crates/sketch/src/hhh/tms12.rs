//! The deterministic hierarchical-heavy-hitters algorithm of `[TMS12]`
//! (Theorem 2.11): one SpaceSaving summary per hierarchy level,
//! `O(h/ε)` counters total, answering the HHH Problem of Definition 2.10.
//!
//! Selection walks levels bottom-up and computes, for each monitored
//! prefix, a *conditioned* over-estimate: its own SpaceSaving count minus
//! the under-estimates of its already-selected maximal descendants. A
//! prefix is selected when the conditioned estimate reaches
//! `(γ − ε/2)·m`, which guarantees the coverage condition (any prefix with
//! true conditioned count `> γ·m` is selected) while accuracy follows from
//! the per-level SpaceSaving sandwich. Deterministic ⇒ white-box robust;
//! its space carries the `log m` counter cost that Algorithm 4 removes.

use super::domain::{Hierarchy, Prefix};
use crate::space_saving::SpaceSaving;
use wb_core::rng::TranscriptRng;
use wb_core::space::SpaceUsage;
use wb_core::stream::{InsertOnly, StreamAlg};

/// Report type for HHH queries: selected prefixes with frequency estimates
/// (estimates are for the prefix's full subtree count, per Definition
/// 2.10's accuracy clause).
pub type HhhReport = Vec<(Prefix, f64)>;

/// `[TMS12]` hierarchical SpaceSaving.
#[derive(Debug, Clone)]
pub struct HierarchicalSpaceSaving<H: Hierarchy> {
    hierarchy: H,
    /// One summary per level `0..=h`.
    levels: Vec<SpaceSaving>,
    eps: f64,
    /// Report threshold `γ` used by [`StreamAlg::query`].
    gamma: f64,
}

impl<H: Hierarchy> HierarchicalSpaceSaving<H> {
    /// New instance with accuracy `ε` and report threshold `γ ≥ ε`.
    pub fn new(hierarchy: H, eps: f64, gamma: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(gamma >= eps && gamma < 1.0, "need ε ≤ γ < 1");
        let levels = (0..=hierarchy.height())
            .map(|l| SpaceSaving::new(eps, hierarchy.level_universe(l)))
            .collect();
        HierarchicalSpaceSaving {
            hierarchy,
            levels,
            eps,
            gamma,
        }
    }

    /// Process one leaf-item occurrence (updates every level).
    pub fn insert(&mut self, item: u64) {
        for level in 0..=self.hierarchy.height() {
            let prefix = self.hierarchy.ancestor(item, level);
            self.levels[level as usize].insert(prefix);
        }
    }

    /// Weighted insert (used by the sampling wrapper).
    pub fn insert_weighted(&mut self, item: u64, w: u64) {
        for level in 0..=self.hierarchy.height() {
            let prefix = self.hierarchy.ancestor(item, level);
            self.levels[level as usize].insert_weighted(prefix, w);
        }
    }

    /// Stream length processed so far.
    pub fn processed(&self) -> u64 {
        self.levels[0].processed()
    }

    /// The hierarchy.
    pub fn hierarchy(&self) -> &H {
        &self.hierarchy
    }

    /// Solve the HHH Problem (Definition 2.10) at threshold `gamma`.
    pub fn solve(&self, gamma: f64) -> HhhReport {
        let m = self.processed() as f64;
        if m == 0.0 {
            return Vec::new();
        }
        let threshold = (gamma - self.eps / 2.0) * m;
        let mut selected: Vec<(Prefix, f64)> = Vec::new();
        for level in 0..=self.hierarchy.height() {
            let summary = &self.levels[level as usize];
            for (id, entry) in summary.entries() {
                // Conditioned over-estimate: own count minus the
                // under-estimates of maximal selected descendants.
                let mut cond = entry.count as f64;
                for &(q, _) in &selected {
                    if q.level >= level {
                        continue;
                    }
                    if self.hierarchy.lift(q.id, q.level, level) != id {
                        continue;
                    }
                    // Maximality: no *other* selected prefix strictly
                    // between q and this prefix.
                    let dominated = selected.iter().any(|&(r, _)| {
                        r.level > q.level
                            && r.level < level
                            && self.hierarchy.lift(q.id, q.level, r.level) == r.id
                            && self.hierarchy.lift(r.id, r.level, level) == id
                    });
                    if !dominated {
                        cond -= self.levels[q.level as usize].under_estimate(q.id) as f64;
                    }
                }
                if cond >= threshold {
                    let fp = summary.under_estimate(id) as f64;
                    selected.push((Prefix { level, id }, fp));
                }
            }
        }
        selected.sort_unstable_by_key(|&(p, _)| p);
        selected
    }
}

impl<H: Hierarchy> SpaceUsage for HierarchicalSpaceSaving<H> {
    fn space_bits(&self) -> u64 {
        self.levels.iter().map(SpaceUsage::space_bits).sum()
    }
}

impl<H: Hierarchy> StreamAlg for HierarchicalSpaceSaving<H> {
    type Update = InsertOnly;
    type Output = HhhReport;

    fn process(&mut self, update: &InsertOnly, _rng: &mut TranscriptRng) {
        self.insert(update.0);
    }

    fn query(&self) -> HhhReport {
        self.solve(self.gamma)
    }

    fn name(&self) -> &'static str {
        "HierarchicalSpaceSaving(TMS12)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hhh::domain::RadixHierarchy;

    /// Two hot /24-style prefixes and background noise.
    fn attack_stream(m: u64) -> Vec<u64> {
        (0..m)
            .map(|t| match t % 10 {
                // hot leaf: exact item 0x0A0B0C01 (35%)
                0..=3 => 0x0A0B_0C01,
                // hot prefix 0x0A0B0D__ spread over 256 leaves (30%)
                4..=6 => 0x0A0B_0D00 | (t % 256),
                // noise spread widely
                _ => (t.wrapping_mul(2654435761)) & 0xFFFF_FFFF,
            })
            .collect()
    }

    #[test]
    fn finds_leaf_and_prefix_heavy_hitters() {
        let h = RadixHierarchy::ipv4();
        let mut alg = HierarchicalSpaceSaving::new(h, 0.05, 0.2);
        let m = 40_000;
        for item in attack_stream(m) {
            alg.insert(item);
        }
        let report = alg.solve(0.2);
        // The hot leaf is an HHH at level 0.
        assert!(
            report
                .iter()
                .any(|&(p, _)| p.level == 0 && p.id == 0x0A0B_0C01),
            "hot leaf missing: {report:?}"
        );
        // The spread prefix is heavy only at level ≥ 1 (0x0A0B0D at level 1).
        assert!(
            report
                .iter()
                .any(|&(p, _)| p.level == 1 && p.id == 0x0A_0B_0D),
            "hot /24 prefix missing: {report:?}"
        );
    }

    #[test]
    fn conditioned_counts_suppress_double_reporting() {
        // All traffic on ONE leaf: its ancestors' conditioned counts are ~0
        // after subtracting the selected leaf, so only the leaf (and no
        // ancestor) is reported.
        let h = RadixHierarchy::ipv4();
        let mut alg = HierarchicalSpaceSaving::new(h, 0.05, 0.3);
        for _ in 0..10_000 {
            alg.insert(0x0102_0304);
        }
        let report = alg.solve(0.3);
        assert_eq!(report.len(), 1, "only the leaf: {report:?}");
        assert_eq!(
            report[0].0,
            Prefix {
                level: 0,
                id: 0x0102_0304
            }
        );
    }

    #[test]
    fn estimates_satisfy_accuracy_clause() {
        let h = RadixHierarchy::ipv4();
        let eps = 0.05;
        let mut alg = HierarchicalSpaceSaving::new(h, eps, 0.2);
        let m = 40_000u64;
        for item in attack_stream(m) {
            alg.insert(item);
        }
        // True subtree counts for the two known-heavy prefixes.
        let stream = attack_stream(m);
        let f_leaf = stream.iter().filter(|&&x| x == 0x0A0B_0C01).count() as f64;
        let f_pref = stream.iter().filter(|&&x| x >> 8 == 0x0A_0B_0D).count() as f64;
        for (p, fp) in alg.solve(0.2) {
            let truth = match (p.level, p.id) {
                (0, 0x0A0B_0C01) => f_leaf,
                (1, 0x0A_0B_0D) => f_pref,
                _ => continue,
            };
            assert!(fp <= truth + 1e-9, "{p:?}: fp {fp} > f* {truth}");
            assert!(
                fp >= truth - eps * m as f64,
                "{p:?}: fp {fp} < f* − εm = {}",
                truth - eps * m as f64
            );
        }
    }

    #[test]
    fn space_is_h_over_eps_counters() {
        let h = RadixHierarchy::new(4, 4);
        let alg = HierarchicalSpaceSaving::new(h, 0.1, 0.2);
        let mut alg = alg;
        for t in 0..10_000u64 {
            alg.insert(t % (1 << 16));
        }
        // 5 levels × ⌈2/0.1⌉ = 100 counters max.
        let total_entries: usize = alg.levels.iter().map(|l| l.entries().len()).sum();
        assert!(total_entries <= 100, "entries {total_entries}");
        assert!(alg.space_bits() > 0);
    }

    #[test]
    fn empty_stream_reports_nothing() {
        let alg = HierarchicalSpaceSaving::new(RadixHierarchy::ipv4(), 0.1, 0.2);
        assert!(alg.solve(0.2).is_empty());
    }

    #[test]
    #[should_panic(expected = "need ε ≤ γ < 1")]
    fn rejects_gamma_below_eps() {
        HierarchicalSpaceSaving::new(RadixHierarchy::ipv4(), 0.2, 0.1);
    }
}
