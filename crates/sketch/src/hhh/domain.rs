//! Hierarchical domains (Definition 2.9): leaf items live at level 0 and
//! roll up through `h` levels of prefixes to a single root.

/// A prefix of the hierarchy: `id` at `level` (level 0 = leaf item).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    /// Hierarchy level (0 = leaf, `height` = root).
    pub level: u32,
    /// Prefix identifier within its level.
    pub id: u64,
}

/// A hierarchical domain of height `h` over the leaf universe.
pub trait Hierarchy: Clone {
    /// Height `h`: prefixes live at levels `0..=h`.
    fn height(&self) -> u32;

    /// Size of the leaf universe.
    fn leaf_universe(&self) -> u64;

    /// Size of the universe at `level`.
    fn level_universe(&self, level: u32) -> u64;

    /// The level-`level` ancestor of leaf `item`.
    fn ancestor(&self, item: u64, level: u32) -> u64;

    /// Lift a prefix id from `from` to a coarser level `to ≥ from`.
    fn lift(&self, id: u64, from: u32, to: u32) -> u64;
}

/// A fixed-radix hierarchy: each level strips `bits_per_level` low bits.
///
/// `RadixHierarchy::ipv4()` models the classic networking domain: 32-bit
/// addresses rolled up byte-by-byte (height 4), as in the DDoS-detection
/// applications cited in §2.2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RadixHierarchy {
    bits_per_level: u32,
    levels: u32,
}

impl RadixHierarchy {
    /// Hierarchy over `levels·bits_per_level`-bit items.
    pub fn new(bits_per_level: u32, levels: u32) -> Self {
        assert!(bits_per_level >= 1 && levels >= 1);
        assert!(
            bits_per_level * levels <= 63,
            "item width must fit in 63 bits"
        );
        RadixHierarchy {
            bits_per_level,
            levels,
        }
    }

    /// 32-bit IPv4 addresses rolled up per byte (height 4).
    pub fn ipv4() -> Self {
        RadixHierarchy::new(8, 4)
    }

    /// Bits stripped per level.
    pub fn bits_per_level(&self) -> u32 {
        self.bits_per_level
    }
}

impl Hierarchy for RadixHierarchy {
    fn height(&self) -> u32 {
        self.levels
    }

    fn leaf_universe(&self) -> u64 {
        1u64 << (self.bits_per_level * self.levels)
    }

    fn level_universe(&self, level: u32) -> u64 {
        debug_assert!(level <= self.levels);
        1u64 << (self.bits_per_level * (self.levels - level))
    }

    fn ancestor(&self, item: u64, level: u32) -> u64 {
        debug_assert!(level <= self.levels);
        item >> (self.bits_per_level * level)
    }

    fn lift(&self, id: u64, from: u32, to: u32) -> u64 {
        debug_assert!(from <= to && to <= self.levels);
        id >> (self.bits_per_level * (to - from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_shape() {
        let h = RadixHierarchy::ipv4();
        assert_eq!(h.height(), 4);
        assert_eq!(h.leaf_universe(), 1 << 32);
        assert_eq!(h.level_universe(0), 1 << 32);
        assert_eq!(h.level_universe(4), 1);
    }

    #[test]
    fn ancestors_strip_bytes() {
        let h = RadixHierarchy::ipv4();
        let ip = 0xC0A8_0105u64; // 192.168.1.5
        assert_eq!(h.ancestor(ip, 0), ip);
        assert_eq!(h.ancestor(ip, 1), 0xC0A801);
        assert_eq!(h.ancestor(ip, 2), 0xC0A8);
        assert_eq!(h.ancestor(ip, 3), 0xC0);
        assert_eq!(h.ancestor(ip, 4), 0);
    }

    #[test]
    fn lift_is_consistent_with_ancestor() {
        let h = RadixHierarchy::new(4, 5);
        let item = 0xABCDEu64;
        for a in 0..=5u32 {
            for b in a..=5u32 {
                assert_eq!(
                    h.lift(h.ancestor(item, a), a, b),
                    h.ancestor(item, b),
                    "lift({a}→{b})"
                );
            }
        }
        // lift to the same level is the identity.
        assert_eq!(h.lift(0xAB, 2, 2), 0xAB);
    }

    #[test]
    fn root_is_unique() {
        let h = RadixHierarchy::new(8, 3);
        for item in [0u64, 1, 0xFFFFFF, 12345] {
            assert_eq!(h.ancestor(item, 3), 0);
        }
    }

    #[test]
    #[should_panic(expected = "item width must fit in 63 bits")]
    fn rejects_oversized() {
        RadixHierarchy::new(8, 8);
    }
}
