//! Algorithms 3 and 4: white-box-robust hierarchical heavy hitters
//! (Theorem 2.14).
//!
//! * [`BernHHH`] (Algorithm 3): Bernoulli-sample the stream into a `[TMS12]`
//!   instance; counters count samples, so their magnitude is independent of
//!   `m` (the `log m → log log log m` improvement inside each instance).
//! * [`RobustHHH`] (Algorithm 4): the same Morris-counter + two-guess
//!   epoch ladder as Algorithm 2, instantiated with `BernHHH`.
//!
//! Total space `O((h/ε)(log n + log 1/ε + log log log m) + log log m)`
//! versus the deterministic `O((h/ε)(log m + log n))` of Theorem 2.11.

use super::domain::Hierarchy;
use super::tms12::{HhhReport, HierarchicalSpaceSaving};
use crate::epochs::GuessLadder;
use crate::morris::MedianMorris;
use crate::sampling::bernoulli_rate;
use wb_core::rng::TranscriptRng;
use wb_core::space::{bits_for_count, SpaceUsage};
use wb_core::stream::{InsertOnly, StreamAlg};

/// Algorithm 3: `BernHHH(n, m, ε, δ)`.
#[derive(Debug, Clone)]
pub struct BernHHH<H: Hierarchy> {
    inner: HierarchicalSpaceSaving<H>,
    p: f64,
    sampled: u64,
}

impl<H: Hierarchy> BernHHH<H> {
    /// New instance provisioned for stream-length upper bound `m_guess`.
    pub fn new(hierarchy: H, m_guess: u64, eps: f64, gamma: f64, delta: f64) -> Self {
        assert!(m_guess > 0);
        let n = hierarchy.leaf_universe();
        let p = bernoulli_rate(n, m_guess, eps / 4.0, delta, 8.0);
        BernHHH {
            inner: HierarchicalSpaceSaving::new(hierarchy, eps / 2.0, gamma / 2.0),
            p,
            sampled: 0,
        }
    }

    /// Process one update (sampled with probability `p`).
    pub fn insert(&mut self, item: u64, rng: &mut TranscriptRng) {
        if rng.bernoulli(self.p) {
            self.inner.insert(item);
            self.sampled += 1;
        }
    }

    /// Solve the HHH problem, rescaling estimates to the full-stream scale.
    ///
    /// Selection happens on the sampled substream (thresholds relative to
    /// the sampled count); reported estimates are rescaled by `1/p`.
    pub fn solve(&self, gamma: f64) -> HhhReport {
        self.inner
            .solve(gamma)
            .into_iter()
            .map(|(prefix, est)| (prefix, est / self.p))
            .collect()
    }

    /// Public sampling probability.
    pub fn rate(&self) -> f64 {
        self.p
    }

    /// Samples taken.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// The inner deterministic HHH structure (white-box view).
    pub fn inner(&self) -> &HierarchicalSpaceSaving<H> {
        &self.inner
    }
}

impl<H: Hierarchy> SpaceUsage for BernHHH<H> {
    fn space_bits(&self) -> u64 {
        self.inner.space_bits() + bits_for_count(self.sampled)
    }
}

type Factory<H> = Box<dyn Fn(u64) -> BernHHH<H> + Send + Sync>;

/// Algorithm 4: robust HHH for unknown stream length (Theorem 2.14).
pub struct RobustHHH<H: Hierarchy> {
    gamma: f64,
    morris: MedianMorris,
    ladder: GuessLadder<BernHHH<H>, Factory<H>>,
}

impl<H: Hierarchy> std::fmt::Debug for RobustHHH<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RobustHHH")
            .field("gamma", &self.gamma)
            .field("epoch", &self.ladder.epoch())
            .field("t_hat", &self.morris.estimate())
            .finish()
    }
}

impl<H: Hierarchy + Send + Sync + 'static> RobustHHH<H> {
    /// New instance with accuracy `ε` and report threshold `γ ≥ ε`.
    pub fn new(hierarchy: H, eps: f64, gamma: f64) -> Self {
        assert!(eps > 0.0 && eps < 0.5, "eps must be in (0, 1/2)");
        assert!(gamma >= eps && gamma < 1.0, "need ε ≤ γ < 1");
        let delta = eps / 64.0;
        let ratio = 16.0 / eps;
        let factory: Factory<H> =
            Box::new(move |guess| BernHHH::new(hierarchy.clone(), guess, eps, gamma, delta));
        RobustHHH {
            gamma,
            morris: MedianMorris::new(eps / 16.0, 7),
            ladder: GuessLadder::new(ratio, factory),
        }
    }

    /// Process one leaf-item occurrence.
    pub fn insert(&mut self, item: u64, rng: &mut TranscriptRng) {
        self.morris.increment(rng);
        for inst in self.ladder.live_mut() {
            inst.insert(item, rng);
        }
        self.ladder.advance(self.morris.estimate());
    }

    /// Solve the HHH problem at the configured threshold.
    pub fn solve(&self) -> HhhReport {
        self.ladder.answering().solve(self.gamma)
    }

    /// Morris estimate of the stream length (white-box view).
    pub fn t_hat(&self) -> f64 {
        self.morris.estimate()
    }

    /// Current epoch (white-box view).
    pub fn epoch(&self) -> u32 {
        self.ladder.epoch()
    }
}

impl<H: Hierarchy> SpaceUsage for RobustHHH<H> {
    fn space_bits(&self) -> u64 {
        self.morris.space_bits() + self.ladder.space_bits()
    }
}

impl<H: Hierarchy + Send + Sync + 'static> StreamAlg for RobustHHH<H> {
    type Update = InsertOnly;
    type Output = HhhReport;

    fn process(&mut self, update: &InsertOnly, rng: &mut TranscriptRng) {
        self.insert(update.0, rng);
    }

    fn query(&self) -> HhhReport {
        self.solve()
    }

    fn name(&self) -> &'static str {
        "RobustHHH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hhh::domain::{Prefix, RadixHierarchy};

    fn ddos_stream(m: u64) -> Vec<u64> {
        (0..m)
            .map(|t| match t % 10 {
                0..=3 => 0x0A0B_0C01,             // hot leaf 40%
                4..=6 => 0x0A0B_0D00 | (t % 256), // hot /24 30%
                _ => (t.wrapping_mul(2654435761)) & 0xFFFF_FFFF,
            })
            .collect()
    }

    #[test]
    fn bern_hhh_finds_hot_prefixes() {
        let mut rng = TranscriptRng::from_seed(60);
        let m = 60_000u64;
        let mut alg = BernHHH::new(RadixHierarchy::ipv4(), m, 0.05, 0.2, 0.01);
        for item in ddos_stream(m) {
            alg.insert(item, &mut rng);
        }
        let report = alg.solve(0.2);
        assert!(
            report.iter().any(|&(p, _)| p
                == Prefix {
                    level: 0,
                    id: 0x0A0B_0C01
                }),
            "hot leaf missing: {report:?}"
        );
        assert!(
            report.iter().any(|&(p, _)| p
                == Prefix {
                    level: 1,
                    id: 0x0A_0B_0D
                }),
            "hot /24 missing: {report:?}"
        );
        // Rescaled estimate for the hot leaf ≈ 0.4·m.
        let (_, est) = report
            .iter()
            .find(|&&(p, _)| p.level == 0)
            .copied()
            .unwrap();
        assert!(
            (est - 0.4 * m as f64).abs() < 0.1 * m as f64,
            "estimate {est}"
        );
    }

    #[test]
    fn robust_hhh_end_to_end() {
        let mut rng = TranscriptRng::from_seed(61);
        let m = 50_000u64;
        let mut alg = RobustHHH::new(RadixHierarchy::ipv4(), 0.05, 0.2);
        for item in ddos_stream(m) {
            alg.insert(item, &mut rng);
        }
        let report = alg.solve();
        assert!(
            report.iter().any(|&(p, _)| p
                == Prefix {
                    level: 0,
                    id: 0x0A0B_0C01
                }),
            "hot leaf missing: {report:?}"
        );
        assert!(
            report.iter().any(|&(p, _)| p
                == Prefix {
                    level: 1,
                    id: 0x0A_0B_0D
                }),
            "hot /24 missing: {report:?}"
        );
        assert!(alg.epoch() >= 1, "ladder should have advanced");
    }

    #[test]
    fn sampled_counters_stay_small() {
        // The Theorem 2.14 separation: counters count samples, bounded by
        // ~p·m_guess, regardless of the true stream length.
        let mut rng = TranscriptRng::from_seed(62);
        let m = 1 << 17;
        let mut alg = RobustHHH::new(RadixHierarchy::new(8, 2), 0.1, 0.2);
        for t in 0..m {
            alg.insert(t % 4, &mut rng);
        }
        let answering = alg.ladder.answering();
        assert!(
            answering.sampled() < m / 2,
            "answering instance sampled {} of {m}",
            answering.sampled()
        );
    }

    #[test]
    fn quiet_stream_reports_nothing_heavy() {
        let mut rng = TranscriptRng::from_seed(63);
        let mut alg = RobustHHH::new(RadixHierarchy::new(4, 3), 0.1, 0.45);
        // Uniform over 4096 leaves: no prefix below the root is γ-heavy;
        // the root itself may be reported (its conditioned count is m).
        for t in 0..20_000u64 {
            alg.insert(t % 4096, &mut rng);
        }
        for (p, _) in alg.solve() {
            assert!(
                p.level >= 2,
                "only coarse prefixes may be heavy on uniform traffic: {p:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "eps must be in (0, 1/2)")]
    fn rejects_bad_eps() {
        RobustHHH::new(RadixHierarchy::ipv4(), 0.9, 0.95);
    }
}
