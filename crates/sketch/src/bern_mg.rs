//! Algorithm 1 of the paper: `BernMG(n, m, ε, δ)` — Bernoulli sampling in
//! front of a Misra–Gries summary.
//!
//! Each update is forwarded to a Misra–Gries instance (threshold `ε/2` on
//! the *sampled* stream) with probability `p = Θ(log(n/δ) / (ε²·m))`, where
//! `m` is an upper bound on the stream length. Estimates are rescaled by
//! `1/p`. Because the counters count *samples*, their magnitude is
//! `O(log(n/δ)/ε²)` — independent of `m` — which is where the `log m` of
//! plain Misra–Gries disappears. White-box robustness is inherited from
//! Theorem 2.3 (no private randomness survives a round).

use crate::misra_gries::MisraGries;
use crate::sampling::bernoulli_rate;
use wb_core::rng::{f64_from_word, TranscriptRng};
use wb_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use wb_core::space::{bits_for_count, SpaceUsage};
use wb_core::stream::{InsertOnly, StreamAlg};

/// Algorithm 1: Bernoulli-sampled Misra–Gries.
#[derive(Debug, Clone)]
pub struct BernMG {
    mg: MisraGries,
    /// Public sampling probability.
    p: f64,
    /// Upper bound on the stream length this instance is provisioned for.
    m_guess: u64,
    sampled: u64,
}

impl BernMG {
    /// Sampling constant used in `p = C·ln(n/δ)/((ε/4)²·m)`; generous so
    /// that estimates concentrate well before the referee's tolerance.
    pub const C: f64 = 8.0;

    /// New instance for universe `[n]`, stream-length upper bound
    /// `m_guess`, accuracy `ε` and failure probability `δ`.
    pub fn new(n: u64, m_guess: u64, eps: f64, delta: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        assert!(m_guess > 0, "m_guess must be positive");
        // Sample at the rate for accuracy ε/4, run MG at threshold ε/2:
        // total additive error on rescaled estimates stays below ε·m.
        let p = bernoulli_rate(n, m_guess, eps / 4.0, delta, Self::C);
        BernMG {
            mg: MisraGries::new(eps / 2.0, n),
            p,
            m_guess,
            sampled: 0,
        }
    }

    /// Process one update.
    pub fn insert(&mut self, item: u64, rng: &mut TranscriptRng) {
        if rng.bernoulli(self.p) {
            self.mg.insert(item);
            self.sampled += 1;
        }
    }

    /// Process one update whose sampling coin word was already drawn (by a
    /// bulk `next_u64_many` prefetch).
    #[inline]
    pub(crate) fn insert_with_word(&mut self, item: u64, word: u64) {
        if f64_from_word(word) < self.p {
            self.mg.insert(item);
            self.sampled += 1;
        }
    }

    /// Rescaled estimate of `item`'s frequency in the full stream.
    pub fn estimate(&self, item: u64) -> f64 {
        self.mg.estimate(item) as f64 / self.p
    }

    /// All retained items with rescaled estimates, item-ascending.
    pub fn estimates(&self) -> Vec<(u64, f64)> {
        self.mg
            .entries()
            .into_iter()
            .map(|(i, c)| (i, c as f64 / self.p))
            .collect()
    }

    /// Public sampling probability.
    pub fn rate(&self) -> f64 {
        self.p
    }

    /// Samples taken so far.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// The stream-length upper bound this instance was provisioned for.
    pub fn m_guess(&self) -> u64 {
        self.m_guess
    }

    /// The inner Misra–Gries summary (white-box view).
    pub fn inner(&self) -> &MisraGries {
        &self.mg
    }
}

impl Snapshot for BernMG {
    /// Layout: `p | m_guess | sampled | mg`. `p` and `m_guess` are derived
    /// from construction parameters — validated bit-for-bit, which is also
    /// what lets [`crate::epochs::GuessLadder`] verify a factory-rebuilt
    /// instance matches the snapshot epoch.
    fn snap(&self, w: &mut SnapWriter) {
        w.put_f64(self.p);
        w.put_u64(self.m_guess);
        w.put_u64(self.sampled);
        self.mg.snap(w);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let p = r.take_f64()?;
        let m_guess = r.take_u64()?;
        if p.to_bits() != self.p.to_bits() || m_guess != self.m_guess {
            return Err(SnapError::mismatch(
                format!("BernMG(p={}, m_guess={})", self.p, self.m_guess),
                format!("BernMG(p={p}, m_guess={m_guess})"),
            ));
        }
        self.sampled = r.take_u64()?;
        self.mg.restore(r)
    }
}

impl SpaceUsage for BernMG {
    /// MG over sampled counts plus the sample counter. The guess `m` is
    /// represented by its epoch index upstream (Algorithm 2), so it is not
    /// charged here; `p` is derived from public parameters.
    fn space_bits(&self) -> u64 {
        self.mg.space_bits() + bits_for_count(self.sampled)
    }
}

impl StreamAlg for BernMG {
    type Update = InsertOnly;
    type Output = Vec<(u64, f64)>;

    fn process(&mut self, update: &InsertOnly, rng: &mut TranscriptRng) {
        self.insert(update.0, rng);
    }

    /// Batched sampling: coin words are prefetched block-wise (identical
    /// words, identical transcript), and consecutive *sampled* occurrences
    /// of the same item collapse into one weighted Misra–Gries run —
    /// `MisraGries::insert_run` is defined as exactly that many repeated
    /// inserts, so the summary state is bit-identical to the scalar loop.
    fn process_batch(&mut self, updates: &[InsertOnly], rng: &mut TranscriptRng) {
        const BLOCK: usize = 512;
        let mut words = [0u64; BLOCK];
        let mut run: Option<(u64, u64)> = None;
        let mut offset = 0;
        while offset < updates.len() {
            let take = (updates.len() - offset).min(BLOCK);
            rng.next_u64_many(&mut words[..take]);
            for (u, &w) in updates[offset..offset + take].iter().zip(&words[..take]) {
                if f64_from_word(w) < self.p {
                    self.sampled += 1;
                    match &mut run {
                        Some((item, weight)) if *item == u.0 => *weight += 1,
                        _ => {
                            if let Some((item, weight)) = run.take() {
                                self.mg.insert_run(item, weight);
                            }
                            run = Some((u.0, 1));
                        }
                    }
                }
            }
            offset += take;
        }
        if let Some((item, weight)) = run {
            self.mg.insert_run(item, weight);
        }
    }

    fn snapshot_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        Snapshot::snap(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Snapshot::restore(self, r)
    }

    fn query(&self) -> Vec<(u64, f64)> {
        self.estimates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_rate_saturates_for_short_guess() {
        let b = BernMG::new(1 << 10, 10, 0.125, 0.05);
        assert_eq!(b.rate(), 1.0, "tiny guess: sample everything");
    }

    #[test]
    fn estimates_concentrate_for_heavy_items() {
        let mut rng = TranscriptRng::from_seed(10);
        let m = 1 << 17;
        let eps = 0.125;
        let mut b = BernMG::new(1 << 16, m, eps, 0.05);
        // item 1: 40%, item 2: 15%, noise: rest.
        for t in 0..m {
            let item = match t % 20 {
                0..=7 => 1,
                8..=10 => 2,
                _ => 1000 + (t * 31) % 4096,
            };
            b.insert(item, &mut rng);
        }
        let e1 = b.estimate(1);
        let e2 = b.estimate(2);
        let m_f = m as f64;
        assert!(
            (e1 - 0.4 * m_f).abs() < eps * m_f,
            "e1 = {e1}, want ~{}",
            0.4 * m_f
        );
        assert!(
            (e2 - 0.15 * m_f).abs() < eps * m_f,
            "e2 = {e2}, want ~{}",
            0.15 * m_f
        );
    }

    #[test]
    fn counters_stay_small_regardless_of_stream_length() {
        // The whole point of Algorithm 1: counter magnitudes are
        // O(log(n/δ)/ε²) samples, not O(m).
        let mut rng = TranscriptRng::from_seed(11);
        let m = 1 << 18;
        let mut b = BernMG::new(1 << 12, m, 0.25, 0.1);
        for _ in 0..m {
            b.insert(7, &mut rng);
        }
        let sampled = b.sampled();
        let expect = b.rate() * m as f64;
        assert!(
            (sampled as f64 - expect).abs() < 6.0 * expect.sqrt() + 8.0,
            "sampled {sampled}, expected ~{expect}"
        );
        // Counter bits ≪ log2(m) = 18 bits would be needed by plain MG...
        // here the count is about `sampled`, which is ~ C·ln(n/δ)·16/ε².
        assert!(b.inner().estimate(7) <= sampled);
    }

    #[test]
    fn space_tracks_samples_not_stream() {
        let mut rng = TranscriptRng::from_seed(12);
        let mut short = BernMG::new(1 << 12, 1 << 20, 0.25, 0.1);
        let mut long = short.clone();
        for _ in 0..(1 << 10) {
            short.insert(3, &mut rng);
        }
        for _ in 0..(1 << 16) {
            long.insert(3, &mut rng);
        }
        // Both well under the guess; space within a few bits of each other
        // (sample counts differ by the rate × length factor only).
        let s1 = short.space_bits();
        let s2 = long.space_bits();
        assert!(
            s2 <= s1 + 24,
            "space should grow ~log(samples): {s1} → {s2}"
        );
    }

    #[test]
    fn query_rescales() {
        let mut rng = TranscriptRng::from_seed(13);
        let mut b = BernMG::new(64, 1 << 14, 0.25, 0.1);
        for _ in 0..4096u64 {
            b.insert(5, &mut rng);
        }
        let out = b.estimates();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 5);
        assert!((out[0].1 - 4096.0).abs() < 1024.0);
    }

    #[test]
    #[should_panic(expected = "m_guess must be positive")]
    fn rejects_zero_guess() {
        BernMG::new(10, 0, 0.1, 0.1);
    }
}
