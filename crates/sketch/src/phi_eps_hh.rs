//! Theorem 1.2: `(φ, ε)`-L1-heavy hitters against `T`-time-bounded
//! white-box adversaries, using collision-resistant hashing to shrink the
//! per-counter identifier cost from `log n` to `O(min(log n, log T))`.
//!
//! The structure follows Algorithm 2, with two changes driven by the CRHF:
//!
//! * the Misra–Gries dictionary is keyed by a **truncated CRHF digest** of
//!   the item (`hash_bits ≈ 2·log₂ T` bits: a `T`-time adversary cannot
//!   find a colliding pair by birthday search, and random collisions among
//!   the `poly(log n, 1/ε)` sampled items are negligible);
//! * full `log n`-bit identifiers are retained only for the `O(1/φ)` items
//!   currently above the reporting threshold — the `(1/φ)·log n` term of
//!   the theorem — since only reported items ever need their names.
//!
//! The `(φ, ε)` guarantee: every item with `f ≥ φ‖f‖₁` is reported, and no
//! item with `f < (φ−ε)‖f‖₁` is reported.

use crate::epochs::GuessLadder;
use crate::misra_gries::MisraGries;
use crate::morris::MedianMorris;
use crate::sampling::bernoulli_rate;
use std::collections::HashMap;
use wb_core::rng::{f64_from_word, TranscriptRng};
use wb_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use wb_core::space::{bits_for_count, bits_for_universe, SpaceUsage};
use wb_core::stream::{InsertOnly, StreamAlg};
use wb_crypto::crhf::PedersenMd;

/// One epoch instance: Bernoulli sampling into an MG dictionary keyed by
/// truncated CRHF digests, with a bounded name table.
#[derive(Debug, Clone)]
pub struct HashedBernMG {
    crhf: PedersenMd,
    hash_mask: u64,
    hash_bits: u32,
    p: f64,
    mg: MisraGries,
    names: HashMap<u64, u64>,
    names_cap: usize,
    n: u64,
    sampled: u64,
}

impl HashedBernMG {
    fn new(
        n: u64,
        m_guess: u64,
        eps: f64,
        delta: f64,
        crhf: PedersenMd,
        hash_bits: u32,
        names_cap: usize,
    ) -> Self {
        let p = bernoulli_rate(n, m_guess, eps / 4.0, delta, 8.0);
        HashedBernMG {
            crhf,
            hash_mask: if hash_bits >= 64 {
                u64::MAX
            } else {
                (1 << hash_bits) - 1
            },
            hash_bits,
            p,
            mg: MisraGries::new(eps / 2.0, 1u64 << hash_bits.min(62)),
            names: HashMap::new(),
            names_cap,
            n,
            sampled: 0,
        }
    }

    /// Truncated CRHF digest of an item.
    pub fn digest(&self, item: u64) -> u64 {
        self.crhf.hash_bytes(&item.to_be_bytes()) & self.hash_mask
    }

    fn insert(&mut self, item: u64, rng: &mut TranscriptRng) {
        // `bernoulli` consumes exactly the one word the batched path
        // prefetches, so delegating keeps the transcript identical.
        let word = rng.next_u64();
        self.insert_with_word(item, word);
    }

    /// [`Self::insert`] with the sampling coin word already drawn by a bulk
    /// prefetch. The early return keeps the (expensive) Pedersen digest off
    /// the unsampled path, exactly as the scalar `bernoulli` gate does.
    #[inline]
    fn insert_with_word(&mut self, item: u64, word: u64) {
        if f64_from_word(word) >= self.p {
            return;
        }
        self.sampled += 1;
        let h = self.digest(item);
        self.mg.insert(h);
        // Maintain names for the largest counters only.
        self.names.entry(h).or_insert(item);
        if self.names.len() > self.names_cap {
            // Evict the name whose digest currently has the smallest count;
            // ties break on the smaller digest so the choice is
            // deterministic across instances.
            let (&evict, _) = self
                .names
                .iter()
                .min_by_key(|(&h, _)| (self.mg.estimate(h), h))
                .expect("non-empty");
            self.names.remove(&evict);
        }
    }

    /// Rescaled estimate for a digest.
    fn estimate_digest(&self, h: u64) -> f64 {
        self.mg.estimate(h) as f64 / self.p
    }

    /// Named entries above `threshold` (absolute frequency scale).
    fn report(&self, threshold: f64) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .names
            .iter()
            .filter_map(|(&h, &item)| {
                let est = self.estimate_digest(h);
                (est >= threshold).then_some((item, est))
            })
            .collect();
        out.sort_unstable_by_key(|&(i, _)| i);
        out
    }
}

impl Snapshot for HashedBernMG {
    /// Layout: `hash_bits | p | n | names_cap | sampled | mg | names`.
    /// The CRHF itself is not serialized — it is drawn from the public
    /// construction RNG, so the restoring twin already holds it (the
    /// enclosing [`PhiEpsHeavyHitters`] snapshot fingerprints it).
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.hash_bits);
        w.put_f64(self.p);
        w.put_u64(self.n);
        w.put_usize(self.names_cap);
        w.put_u64(self.sampled);
        self.mg.snap(w);
        w.put_map_u64_u64(&self.names);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let hash_bits = r.take_u32()?;
        let p = r.take_f64()?;
        let n = r.take_u64()?;
        let names_cap = r.take_usize()?;
        if hash_bits != self.hash_bits
            || p.to_bits() != self.p.to_bits()
            || n != self.n
            || names_cap != self.names_cap
        {
            return Err(SnapError::mismatch(
                format!(
                    "HashedBernMG(hash_bits={}, p={}, n={}, names_cap={})",
                    self.hash_bits, self.p, self.n, self.names_cap
                ),
                format!("HashedBernMG(hash_bits={hash_bits}, p={p}, n={n}, names_cap={names_cap})"),
            ));
        }
        self.sampled = r.take_u64()?;
        self.mg.restore(r)?;
        let names = r.take_map_u64_u64()?;
        if names.len() > names_cap {
            return Err(SnapError::corrupt(format!(
                "HashedBernMG snapshot holds {} names for cap {names_cap}",
                names.len()
            )));
        }
        self.names = names;
        Ok(())
    }
}

impl SpaceUsage for HashedBernMG {
    /// MG keyed by `hash_bits`-bit digests (this is where `log n` becomes
    /// `min(log n, log T)`), plus `names_cap` full identifiers.
    fn space_bits(&self) -> u64 {
        let counter_bits: u64 = self
            .mg
            .entries()
            .iter()
            .map(|&(_, c)| u64::from(self.hash_bits) + bits_for_count(c))
            .sum();
        counter_bits
            + self.names.len() as u64 * bits_for_universe(self.n)
            + bits_for_count(self.sampled)
    }
}

type Factory = Box<dyn Fn(u64) -> HashedBernMG + Send + Sync>;

/// Theorem 1.2: `(φ, ε)`-heavy hitters with CRHF-compressed identifiers.
pub struct PhiEpsHeavyHitters {
    phi: f64,
    eps: f64,
    morris: MedianMorris,
    ladder: GuessLadder<HashedBernMG, Factory>,
    crhf: PedersenMd,
    hash_bits: u32,
}

impl std::fmt::Debug for PhiEpsHeavyHitters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhiEpsHeavyHitters")
            .field("phi", &self.phi)
            .field("eps", &self.eps)
            .field("hash_bits", &self.hash_bits)
            .field("epoch", &self.ladder.epoch())
            .finish()
    }
}

impl PhiEpsHeavyHitters {
    /// New instance for universe `[n]`, report threshold `φ`, accuracy
    /// `ε < φ`, against adversaries with time budget `t_budget`.
    ///
    /// `hash_bits = max(2·⌈log₂ T⌉, collision floor)` capped at 40: a
    /// birthday search over `2^{hash_bits/2} ≥ T` digests exceeds the
    /// adversary's budget, and random collisions among the sampled items
    /// are negligible.
    pub fn new(n: u64, phi: f64, eps: f64, t_budget: u64, rng: &mut TranscriptRng) -> Self {
        assert!(eps > 0.0 && eps < phi && phi < 1.0, "need 0 < ε < φ < 1");
        let delta = eps / 64.0;
        let ratio = 16.0 / eps;
        // Collision floor: a sampled item colliding with one of the
        // O(1/ε) digests co-resident in the dictionary is the harmful
        // event; with ~S = C·ln(n/δ)/(ε/8)² samples over the stream the
        // union bound needs log₂(S) + log₂(1/ε) + O(1) digest bits — the
        // paper's poly(log n, 1/ε, T) universe.
        let samples_cap = 8.0 * (n as f64 / delta).ln() / ((eps / 8.0) * (eps / 8.0));
        let floor = samples_cap.log2().ceil() as u32 + (4.0 / eps).log2().ceil() as u32 + 4;
        let t_bits = 2 * (64 - t_budget.leading_zeros()).max(1);
        let hash_bits = floor.max(t_bits).clamp(16, 40);
        let crhf = PedersenMd::generate(40, rng);
        let names_cap = (4.0 / phi).ceil() as usize;
        let factory: Factory = Box::new(move |guess| {
            HashedBernMG::new(n, guess, eps / 2.0, delta, crhf, hash_bits, names_cap)
        });
        PhiEpsHeavyHitters {
            phi,
            eps,
            morris: MedianMorris::new(eps / 16.0, 7),
            ladder: GuessLadder::new(ratio, factory),
            crhf,
            hash_bits,
        }
    }

    /// Process one item occurrence.
    pub fn insert(&mut self, item: u64, rng: &mut TranscriptRng) {
        self.morris.increment(rng);
        for inst in self.ladder.live_mut() {
            inst.insert(item, rng);
        }
        self.ladder.advance(self.morris.estimate());
    }

    /// Reported `(item, estimate)` pairs: everything estimated at or above
    /// `(φ − ε/2)·t̂`.
    pub fn report(&self) -> Vec<(u64, f64)> {
        let threshold = (self.phi - self.eps / 2.0) * self.morris.estimate();
        self.ladder.answering().report(threshold)
    }

    /// Digest width in bits (the `min(log n, log T)` term).
    pub fn hash_bits(&self) -> u32 {
        self.hash_bits
    }

    /// The public CRHF (white-box view).
    pub fn crhf(&self) -> &PedersenMd {
        &self.crhf
    }

    /// Morris estimate of the stream length.
    pub fn t_hat(&self) -> f64 {
        self.morris.estimate()
    }
}

impl Snapshot for PhiEpsHeavyHitters {
    /// Layout: `phi | eps | hash_bits | crhf fingerprint | morris | ladder`.
    /// The CRHF key is a large public immutable drawn at construction; a
    /// digest of a fixed probe input stands in for it, so restoring into a
    /// twin built from a different seed fails loudly instead of silently
    /// diverging.
    fn snap(&self, w: &mut SnapWriter) {
        w.put_f64(self.phi);
        w.put_f64(self.eps);
        w.put_u32(self.hash_bits);
        w.put_u64(self.crhf.hash_bytes(b"wbsn-crhf"));
        self.morris.snap(w);
        self.ladder.snap(w);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let phi = r.take_f64()?;
        let eps = r.take_f64()?;
        let hash_bits = r.take_u32()?;
        let fp = r.take_u64()?;
        let own_fp = self.crhf.hash_bytes(b"wbsn-crhf");
        if phi.to_bits() != self.phi.to_bits()
            || eps.to_bits() != self.eps.to_bits()
            || hash_bits != self.hash_bits
            || fp != own_fp
        {
            return Err(SnapError::mismatch(
                format!(
                    "PhiEpsHeavyHitters(phi={}, eps={}, hash_bits={}, crhf={own_fp:#x})",
                    self.phi, self.eps, self.hash_bits
                ),
                format!(
                    "PhiEpsHeavyHitters(phi={phi}, eps={eps}, hash_bits={hash_bits}, crhf={fp:#x})"
                ),
            ));
        }
        self.morris.restore(r)?;
        self.ladder.restore(r)
    }
}

impl SpaceUsage for PhiEpsHeavyHitters {
    fn space_bits(&self) -> u64 {
        self.morris.space_bits() + self.ladder.space_bits() + self.crhf.space_bits()
    }
}

impl StreamAlg for PhiEpsHeavyHitters {
    type Update = InsertOnly;
    type Output = Vec<(u64, f64)>;

    fn process(&mut self, update: &InsertOnly, rng: &mut TranscriptRng) {
        self.insert(update.0, rng);
    }

    /// Batched insert; same shape as
    /// [`RobustL1HeavyHitters`](crate::robust_hh::RobustL1HeavyHitters):
    /// `k + 2` prefetched words per update in scalar draw order, and
    /// `ladder.advance` only when a Morris exponent moved (a repeat call
    /// with an unchanged `t̂` cannot promote).
    fn process_batch(&mut self, updates: &[InsertOnly], rng: &mut TranscriptRng) {
        const BLOCK: usize = 512;
        let k = self.morris.counters().len();
        let per = k + 2;
        let per_block = (BLOCK / per).max(1);
        let mut words = vec![0u64; per_block * per];
        let mut offset = 0;
        while offset < updates.len() {
            let take = (updates.len() - offset).min(per_block);
            rng.next_u64_many(&mut words[..take * per]);
            for (u, chunk) in updates[offset..offset + take]
                .iter()
                .zip(words.chunks_exact(per))
            {
                let changed = self.morris.increment_with_words(&chunk[..k]);
                for (inst, &w) in self.ladder.live_mut().into_iter().zip(&chunk[k..]) {
                    inst.insert_with_word(u.0, w);
                }
                if changed {
                    self.ladder.advance(self.morris.estimate());
                }
            }
            offset += take;
        }
    }

    fn snapshot_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        Snapshot::snap(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Snapshot::restore(self, r)
    }

    fn query(&self) -> Vec<(u64, f64)> {
        self.report()
    }

    fn name(&self) -> &'static str {
        "PhiEpsHeavyHitters"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_core::game::ScriptAdversary;
    use wb_core::referee::HeavyHitterReferee;
    use wb_engine::Game;

    fn script(m: u64, n: u64) -> Vec<InsertOnly> {
        (0..m)
            .map(|t| {
                let item = match t % 100 {
                    0..=44 => 7,                                        // 45%
                    45..=69 => 1_000_000_007,                           // 25%
                    _ => 1000 + (t.wrapping_mul(2654435761)) % (n / 2), // noise
                };
                InsertOnly(item)
            })
            .collect()
    }

    #[test]
    fn reports_phi_heavy_and_only_them() {
        let mut rng = TranscriptRng::from_seed(50);
        let n = 1u64 << 40;
        let m = 1 << 14;
        let mut alg = PhiEpsHeavyHitters::new(n, 0.20, 0.05, 1 << 16, &mut rng);
        for u in script(m, n) {
            alg.insert(u.0, &mut rng);
        }
        let report = alg.report();
        let items: Vec<u64> = report.iter().map(|&(i, _)| i).collect();
        assert!(items.contains(&7), "45% item must be reported: {items:?}");
        assert!(
            items.contains(&1_000_000_007),
            "25% item must be reported: {items:?}"
        );
        // Nothing below (φ−ε)·m = 15% may appear; noise items are ≤1% each.
        assert_eq!(items.len(), 2, "no false positives: {items:?}");
        // Estimates within ε·m of truth.
        for (item, est) in report {
            let truth = if item == 7 {
                0.45 * m as f64
            } else {
                0.25 * m as f64
            };
            assert!(
                (est - truth).abs() < 0.08 * m as f64,
                "item {item}: est {est} vs {truth}"
            );
        }
    }

    #[test]
    fn game_with_phi_referee() {
        let mut seed_rng = TranscriptRng::from_seed(51);
        let n = 1u64 << 40;
        let m = 1 << 14;
        let alg = PhiEpsHeavyHitters::new(n, 0.20, 0.05, 1 << 16, &mut seed_rng);
        let referee = HeavyHitterReferee::new(0.20, 0.08)
            .with_phi(0.20)
            .with_grace(256);
        let report = Game::new(alg)
            .adversary(ScriptAdversary::new(script(m, n)))
            .referee(referee)
            .max_rounds(m)
            .seed(52)
            .run();
        assert!(report.survived(), "failed: {:?}", report.result.failure);
    }

    #[test]
    fn digest_width_tracks_adversary_budget() {
        let mut rng = TranscriptRng::from_seed(53);
        let weak = PhiEpsHeavyHitters::new(1 << 40, 0.2, 0.1, 1 << 8, &mut rng);
        let strong = PhiEpsHeavyHitters::new(1 << 40, 0.2, 0.1, 1 << 19, &mut rng);
        assert!(weak.hash_bits() <= strong.hash_bits());
        assert!(strong.hash_bits() >= 38, "2·log T = 38");
    }

    #[test]
    fn name_table_stays_bounded() {
        let mut rng = TranscriptRng::from_seed(54);
        let n = 1u64 << 40;
        let mut alg = PhiEpsHeavyHitters::new(n, 0.25, 0.1, 1 << 12, &mut rng);
        // All-distinct stream: names would explode without the cap.
        for t in 0..20_000u64 {
            alg.insert(t * 1_000_003, &mut rng);
        }
        let cap = (4.0f64 / 0.25).ceil() as usize;
        assert!(alg.ladder.answering().names.len() <= cap);
        assert!(alg.ladder.warming().names.len() <= cap);
    }

    #[test]
    fn digests_are_stable_and_truncated() {
        let mut rng = TranscriptRng::from_seed(55);
        let alg = PhiEpsHeavyHitters::new(1 << 40, 0.2, 0.1, 1 << 10, &mut rng);
        let inst = alg.ladder.answering();
        let d1 = inst.digest(12345);
        assert_eq!(d1, inst.digest(12345));
        assert!(d1 < (1u64 << alg.hash_bits()));
        assert_ne!(inst.digest(1), inst.digest(2));
    }

    #[test]
    #[should_panic(expected = "need 0 < ε < φ < 1")]
    fn rejects_eps_above_phi() {
        let mut rng = TranscriptRng::from_seed(56);
        PhiEpsHeavyHitters::new(100, 0.1, 0.2, 1000, &mut rng);
    }
}
