//! # wb-sketch — robust streaming statistics (§2 of the paper)
//!
//! Implements the paper's statistical algorithms and the baselines they are
//! measured against:
//!
//! | module | paper anchor | contents |
//! |---|---|---|
//! | [`morris`] | Lemma 2.1 | Morris counters, median amplification |
//! | [`misra_gries`] | Theorem 2.2 | deterministic heavy hitters (baseline) |
//! | [`space_saving`] | Theorem 2.11 substrate | SpaceSaving with error tracking |
//! | [`sampling`] | Theorem 2.3 | Bernoulli sampling, reservoir sampling |
//! | [`bern_mg`] | Algorithm 1 | Bernoulli-sampled Misra–Gries |
//! | [`epochs`] | Algorithm 2 skeleton | the two-active-guesses ladder |
//! | [`robust_hh`] | Theorem 1.1 / Algorithm 2 | robust `ε`-L1-heavy hitters |
//! | [`phi_eps_hh`] | Theorem 1.2 | CRHF-compressed `(φ,ε)`-heavy hitters |
//! | [`hhh`] | §2.2 / Algorithms 3–4 | hierarchical heavy hitters |
//! | [`l0`] | Theorem 1.5 / Algorithm 5 | SIS-based L0 estimation + attacks |
//! | [`inner_product`] | Corollary 2.8 | sampled inner-product estimation |
//! | [`count_min`] | §1 motivation | CountMin + its white-box attack |
//! | [`ams`] | §1 motivation / Thm 1.9 | AMS F2 + its white-box attack |

pub mod ams;
pub mod bern_mg;
pub mod count_min;
pub mod epochs;
pub mod hhh;
pub mod inner_product;
pub mod l0;
pub mod misra_gries;
pub mod morris;
pub mod phi_eps_hh;
pub mod robust_hh;
pub mod sampling;
pub mod space_saving;

pub use bern_mg::BernMG;
pub use misra_gries::MisraGries;
pub use morris::{MedianMorris, MorrisCounter};
pub use phi_eps_hh::PhiEpsHeavyHitters;
pub use robust_hh::RobustL1HeavyHitters;
pub use sampling::BernoulliHeavyHitters;
pub use space_saving::SpaceSaving;
