//! The two-active-guesses epoch ladder shared by Algorithms 2 and 4.
//!
//! The paper's trick for unknown stream length: keep only **two** live
//! instances of a known-`m` algorithm, provisioned for guesses
//! `R^{c+1}` and `R^{c+2}` with `R = 16/ε`. When the (Morris-estimated)
//! stream length crosses `R^{c+1}`, the answering instance is retired, the
//! warming instance (started one epoch ago, hence missing at most an
//! `ε/16`-fraction prefix of its answering window) takes over, and a fresh
//! instance starts warming for guess `R^{c+3}`.
//!
//! Tracking the epoch index `c` costs `O(log log m / log R)` bits — the
//! ladder never stores the stream length itself.

use wb_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use wb_core::space::{bits_for_count, SpaceUsage};

/// Epoch ladder over instances of type `T`, built by `factory(guess)`.
#[derive(Debug, Clone)]
pub struct GuessLadder<T, F> {
    ratio: f64,
    c: u32,
    answering: T,
    warming: T,
    factory: F,
}

impl<T, F> GuessLadder<T, F>
where
    F: Fn(u64) -> T,
{
    /// New ladder with growth ratio `R > 1`. Instances for guesses `R¹` and
    /// `R²` are created immediately.
    pub fn new(ratio: f64, factory: F) -> Self {
        assert!(ratio > 1.0, "ratio must exceed 1");
        let answering = factory(guess_at(ratio, 1));
        let warming = factory(guess_at(ratio, 2));
        GuessLadder {
            ratio,
            c: 0,
            answering,
            warming,
            factory,
        }
    }

    /// The instance whose guess covers the current epoch (used for answers).
    pub fn answering(&self) -> &T {
        &self.answering
    }

    /// The warming instance (answers the *next* epoch).
    pub fn warming(&self) -> &T {
        &self.warming
    }

    /// Mutable access to both live instances (both are fed every update).
    pub fn live_mut(&mut self) -> [&mut T; 2] {
        [&mut self.answering, &mut self.warming]
    }

    /// Current epoch index `c`.
    pub fn epoch(&self) -> u32 {
        self.c
    }

    /// The answering instance's guess, `R^{c+1}`.
    pub fn answering_guess(&self) -> u64 {
        guess_at(self.ratio, self.c + 1)
    }

    /// Advance epochs while the estimated stream length `t_hat` has crossed
    /// the answering guess. Returns the number of promotions performed.
    pub fn advance(&mut self, t_hat: f64) -> u32 {
        let mut promotions = 0;
        while t_hat >= self.answering_guess() as f64 {
            self.c += 1;
            self.answering = std::mem::replace(
                &mut self.warming,
                (self.factory)(guess_at(self.ratio, self.c + 2)),
            );
            promotions += 1;
            if promotions > 128 {
                break; // defensive: ratio > 1 guarantees termination anyway
            }
        }
        promotions
    }
}

impl<T, F> Snapshot for GuessLadder<T, F>
where
    T: Snapshot,
    F: Fn(u64) -> T,
{
    /// Layout: `c | answering | warming`. The factory and ratio are
    /// construction parameters; if the snapshot was taken at a later epoch
    /// than the restoring twin's, both live instances are rebuilt through
    /// the factory at the snapshot epoch's guesses before restoring their
    /// state in place.
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.c);
        self.answering.snap(w);
        self.warming.snap(w);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let c = r.take_u32()?;
        if c != self.c {
            self.answering = (self.factory)(guess_at(self.ratio, c + 1));
            self.warming = (self.factory)(guess_at(self.ratio, c + 2));
            self.c = c;
        }
        self.answering.restore(r)?;
        self.warming.restore(r)
    }
}

/// `⌈R^i⌉` saturating at `u64::MAX`.
fn guess_at(ratio: f64, i: u32) -> u64 {
    let g = ratio.powi(i as i32);
    if g >= u64::MAX as f64 {
        u64::MAX
    } else {
        g.ceil() as u64
    }
}

impl<T: SpaceUsage, F> SpaceUsage for GuessLadder<T, F> {
    /// Two live instances plus the epoch index.
    fn space_bits(&self) -> u64 {
        self.answering.space_bits() + self.warming.space_bits() + bits_for_count(self.c as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Probe {
        guess: u64,
        fed: u64,
    }
    impl SpaceUsage for Probe {
        fn space_bits(&self) -> u64 {
            8
        }
    }

    fn ladder() -> GuessLadder<Probe, impl Fn(u64) -> Probe> {
        GuessLadder::new(4.0, |guess| Probe { guess, fed: 0 })
    }

    #[test]
    fn initial_instances_have_first_two_guesses() {
        let l = ladder();
        assert_eq!(l.answering().guess, 4);
        assert_eq!(l.warming().guess, 16);
        assert_eq!(l.epoch(), 0);
        assert_eq!(l.answering_guess(), 4);
    }

    #[test]
    fn advance_promotes_warming() {
        let mut l = ladder();
        assert_eq!(l.advance(3.0), 0, "below guess: no promotion");
        assert_eq!(l.advance(4.0), 1);
        assert_eq!(l.epoch(), 1);
        assert_eq!(l.answering().guess, 16);
        assert_eq!(l.warming().guess, 64);
    }

    #[test]
    fn advance_skips_multiple_epochs() {
        let mut l = ladder();
        // t̂ jumps straight past guesses 4, 16, 64.
        let promoted = l.advance(100.0);
        assert_eq!(promoted, 3);
        assert_eq!(l.answering().guess, 256);
        assert_eq!(l.warming().guess, 1024);
    }

    #[test]
    fn live_mut_feeds_both() {
        let mut l = ladder();
        for inst in l.live_mut() {
            inst.fed += 1;
        }
        assert_eq!(l.answering().fed, 1);
        assert_eq!(l.warming().fed, 1);
    }

    #[test]
    fn promoted_instance_keeps_its_history() {
        let mut l = ladder();
        for inst in l.live_mut() {
            inst.fed = 7;
        }
        l.advance(4.0);
        // Warming (fed=7) became answering; new warming starts fresh.
        assert_eq!(l.answering().fed, 7);
        assert_eq!(l.warming().fed, 0);
    }

    #[test]
    fn guess_saturates() {
        assert_eq!(guess_at(16.0, 32), u64::MAX);
        assert_eq!(guess_at(2.0, 10), 1024);
    }

    #[test]
    fn space_counts_two_instances_and_epoch() {
        let l = ladder();
        assert_eq!(l.space_bits(), 8 + 8 + 1);
    }

    #[test]
    #[should_panic(expected = "ratio must exceed 1")]
    fn rejects_small_ratio() {
        GuessLadder::new(1.0, |guess| Probe { guess, fed: 0 });
    }
}
