//! CountMin sketch and its white-box attack.
//!
//! CountMin is the canonical example of a sketch whose guarantee survives a
//! *black-box* adversary with output-change arguments but collapses in the
//! white-box model: the row hash functions are part of the internal state,
//! so an adversary that sees them can search for items that collide with a
//! victim item in **every** row and inflate the victim's estimate without
//! ever inserting it. [`forge_all_row_collisions`] implements that search;
//! the experiments (E8) chart its success against the sketch dimensions.

use wb_core::merge::{MergeError, Mergeable};
use wb_core::rng::{Reciprocal, TranscriptRng};
use wb_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use wb_core::space::{bits_for_count, SpaceUsage};
use wb_core::stream::{InsertOnly, RunAggregator, StreamAlg};
use wb_crypto::mersenne::reduce125;

/// A CountMin sketch with `depth` rows and `width` buckets per row.
///
/// Row hashes are universal hashes `((a·x + b) mod p) mod width` with
/// `(a, b)` drawn from public randomness — fully visible to the white-box
/// adversary.
#[derive(Debug, Clone)]
pub struct CountMin {
    depth: usize,
    width: usize,
    /// Public per-row hash coefficients `(a, b)`.
    seeds: Vec<(u64, u64)>,
    table: Vec<u64>, // depth × width, row-major
    processed: u64,
    /// Precomputed reciprocal of `width` — [`Reciprocal::rem`] is
    /// bit-identical to the `% width` it replaces in the bucket hash.
    width_recip: Reciprocal,
    /// Reusable batch scratch: distinct-item aggregation table.
    agg: RunAggregator<u64>,
}

/// The Mersenne prime `2^61 − 1` used by the row hashes.
const P: u64 = (1 << 61) - 1;

impl CountMin {
    /// Sketch with the given dimensions; hash coefficients drawn from `rng`
    /// (and thereby published in the transcript).
    pub fn new(depth: usize, width: usize, rng: &mut TranscriptRng) -> Self {
        assert!(depth >= 1 && width >= 2);
        let seeds = (0..depth)
            .map(|_| (rng.range(1, P), rng.below(P)))
            .collect();
        CountMin {
            depth,
            width,
            seeds,
            table: vec![0; depth * width],
            processed: 0,
            width_recip: Reciprocal::new(width as u64),
            agg: RunAggregator::new(),
        }
    }

    /// Bucket of `item` in `row`: `((a·x + b) mod P) mod width`, with the
    /// Mersenne reduction done by shift-adds (`a, b < P` keeps the hash
    /// below `2^125`, so the short [`reduce125`] fold applies) and the
    /// width fold by the precomputed reciprocal — both bit-identical to
    /// the `%` operators they replace.
    pub fn bucket(&self, row: usize, item: u64) -> usize {
        let (a, b) = self.seeds[row];
        let h = reduce125(a as u128 * item as u128 + b as u128);
        if self.width.is_power_of_two() {
            (h & (self.width as u64 - 1)) as usize
        } else {
            self.width_recip.rem(h) as usize
        }
    }

    /// Add one occurrence of `item`.
    pub fn insert(&mut self, item: u64) {
        self.insert_weighted(item, 1);
    }

    /// Add `w` occurrences of `item` at once (row additions commute, so
    /// this is identical to `w` single insertions).
    pub fn insert_weighted(&mut self, item: u64, w: u64) {
        self.processed += w;
        for row in 0..self.depth {
            let b = self.bucket(row, item);
            self.table[row * self.width + b] += w;
        }
    }

    /// Over-estimate of `item`'s frequency (min over rows).
    pub fn estimate(&self, item: u64) -> u64 {
        (0..self.depth)
            .map(|row| self.table[row * self.width + self.bucket(row, item)])
            .min()
            .expect("depth ≥ 1")
    }

    /// Public hash coefficients (the white-box view).
    pub fn seeds(&self) -> &[(u64, u64)] {
        &self.seeds
    }

    /// Updates processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Oblivious-stream guarantee: estimate ≤ f + `2m/width` w.h.p. per
    /// item (expected collision mass per row is `m/width`).
    pub fn error_bound(&self) -> f64 {
        2.0 * self.processed as f64 / self.width as f64
    }
}

impl Mergeable for CountMin {
    /// Linear-sketch merge: with identical dimensions **and identical row
    /// hash coefficients** the tables add cell-wise, and the merged table
    /// is bit-identical to single-stream ingestion of the concatenated
    /// stream. Instances constructed from the same public seed share
    /// coefficients; anything else is [`MergeError::Incompatible`].
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.depth != other.depth || self.width != other.width {
            return Err(MergeError::incompatible(format!(
                "CountMin {}x{} vs {}x{}",
                self.depth, self.width, other.depth, other.width
            )));
        }
        if self.seeds != other.seeds {
            return Err(MergeError::incompatible(
                "CountMin row hash coefficients differ — shard instances \
                 must be constructed from the same public seed",
            ));
        }
        for (cell, &o) in self.table.iter_mut().zip(&other.table) {
            *cell += o;
        }
        self.processed += other.processed;
        Ok(())
    }
}

impl Snapshot for CountMin {
    /// Layout: `depth | width | (a, b)… | table | processed`. Dimensions
    /// are validated; the public hash coefficients are serialized and
    /// overwritten (they are state drawn at construction, and restoring
    /// them exactly is what makes post-restore bucketing bit-identical).
    /// The width reciprocal and batch aggregator are pure caches — skipped.
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.depth);
        w.put_usize(self.width);
        for &(a, b) in &self.seeds {
            w.put_u64(a);
            w.put_u64(b);
        }
        w.put_u64_seq(&self.table);
        w.put_u64(self.processed);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let depth = r.take_usize()?;
        let width = r.take_usize()?;
        if depth != self.depth || width != self.width {
            return Err(SnapError::mismatch(
                format!("CountMin {}x{}", self.depth, self.width),
                format!("CountMin {depth}x{width}"),
            ));
        }
        let mut seeds = Vec::with_capacity(depth);
        for _ in 0..depth {
            let a = r.take_u64()?;
            let b = r.take_u64()?;
            if a == 0 || a >= P || b >= P {
                return Err(SnapError::corrupt(format!(
                    "CountMin hash coefficients ({a}, {b}) out of range"
                )));
            }
            seeds.push((a, b));
        }
        let table = r.take_u64_seq()?;
        if table.len() != depth * width {
            return Err(SnapError::corrupt(format!(
                "CountMin table holds {} cells for {depth}x{width}",
                table.len()
            )));
        }
        self.seeds = seeds;
        self.table = table;
        self.processed = r.take_u64()?;
        Ok(())
    }
}

impl SpaceUsage for CountMin {
    fn space_bits(&self) -> u64 {
        self.table.iter().map(|&c| bits_for_count(c)).sum::<u64>() + self.seeds.len() as u64 * 128
    }
}

/// The shared row-hash kernel of the batched paths: adds `w` occurrences
/// of each `(item, w)` pair into every row, item-major. The registry's
/// default shape (depth 4, power-of-two width) gets all four hashes
/// unrolled with coefficients in registers and the bucket fold as a mask;
/// other shapes take a generic loop. Both match [`CountMin::bucket`] bit
/// for bit.
fn apply_weighted(
    seeds: &[(u64, u64)],
    table: &mut [u64],
    width: usize,
    recip: Reciprocal,
    pairs: impl Iterator<Item = (u64, u64)>,
) {
    if let ([s0, s1, s2, s3], true) = (seeds, width.is_power_of_two()) {
        let mask = width as u64 - 1;
        // Per-row slices of the arena: indexing each with `h & mask` where
        // `mask = row.len() - 1` lets the compiler drop the bounds checks.
        let (r0, rest) = table.split_at_mut(width);
        let (r1, rest) = rest.split_at_mut(width);
        let (r2, rest) = rest.split_at_mut(width);
        let r3 = &mut rest[..width];
        for (item, w) in pairs {
            let x = item as u128;
            let h0 = (reduce125(s0.0 as u128 * x + s0.1 as u128) & mask) as usize;
            let h1 = (reduce125(s1.0 as u128 * x + s1.1 as u128) & mask) as usize;
            let h2 = (reduce125(s2.0 as u128 * x + s2.1 as u128) & mask) as usize;
            let h3 = (reduce125(s3.0 as u128 * x + s3.1 as u128) & mask) as usize;
            r0[h0] += w;
            r1[h1] += w;
            r2[h2] += w;
            r3[h3] += w;
        }
        return;
    }
    let pow2_mask = width.is_power_of_two().then(|| width as u64 - 1);
    for (item, w) in pairs {
        for (row, &(a, b)) in seeds.iter().enumerate() {
            let h = reduce125(a as u128 * item as u128 + b as u128);
            let bucket = match pow2_mask {
                Some(mask) => (h & mask) as usize,
                None => recip.rem(h) as usize,
            };
            table[row * width + bucket] += w;
        }
    }
}

impl StreamAlg for CountMin {
    type Update = InsertOnly;
    type Output = u64;

    fn process(&mut self, update: &InsertOnly, _rng: &mut TranscriptRng) {
        self.insert(update.0);
    }

    /// Batched ingestion: a prefix of the batch is sampled into the
    /// reusable [`RunAggregator`]; when the prefix is mostly distinct the
    /// whole batch is hashed directly (aggregation would cost more than
    /// the row-hash evaluations it saves), otherwise aggregation continues
    /// over the rest and each distinct item's row hashes are evaluated
    /// once. Either path adds the same per-item totals into the same
    /// cells, and counter additions commute, so the final table is
    /// bit-identical to sequential processing in stream order.
    fn process_batch(&mut self, updates: &[InsertOnly], _rng: &mut TranscriptRng) {
        let CountMin {
            width,
            seeds,
            table,
            processed,
            width_recip,
            agg,
            ..
        } = self;
        let (width, recip) = (*width, *width_recip);
        *processed += updates.len() as u64;
        const SAMPLE: usize = 512;
        let sample = updates.len().min(SAMPLE);
        agg.begin(updates.len());
        for u in &updates[..sample] {
            agg.add(u.0, 1);
        }
        if updates.len() > sample && agg.runs().len() * 2 >= sample {
            apply_weighted(seeds, table, width, recip, updates.iter().map(|u| (u.0, 1)));
            return;
        }
        for u in &updates[sample..] {
            agg.add(u.0, 1);
        }
        apply_weighted(seeds, table, width, recip, agg.runs().iter().copied());
    }

    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        Mergeable::merge(self, other)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        Snapshot::snap(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Snapshot::restore(self, r)
    }

    /// The fixed query in attack experiments: the victim item `0`'s
    /// estimate.
    fn query(&self) -> u64 {
        self.estimate(0)
    }
}

/// White-box attack: scan item ids `1..=budget` for items that collide with
/// `victim` in **every** row. Inserting the returned items inflates the
/// victim's estimate by one each without the victim ever appearing.
///
/// Expected cost per found item is `width^depth` candidates — polynomial
/// for the constant-depth sketches used in practice, which is why CountMin
/// offers no white-box guarantee.
pub fn forge_all_row_collisions(cm: &CountMin, victim: u64, want: usize, budget: u64) -> Vec<u64> {
    let victim_buckets: Vec<usize> = (0..cm.depth).map(|r| cm.bucket(r, victim)).collect();
    let mut found = Vec::with_capacity(want.min(1024));
    for candidate in 1..=budget {
        if candidate == victim {
            continue;
        }
        if (0..cm.depth).all(|r| cm.bucket(r, candidate) == victim_buckets[r]) {
            found.push(candidate);
            if found.len() == want {
                break;
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_sparse_streams() {
        let mut rng = TranscriptRng::from_seed(30);
        let mut cm = CountMin::new(4, 256, &mut rng);
        for _ in 0..10 {
            cm.insert(5);
        }
        for _ in 0..3 {
            cm.insert(9);
        }
        assert!(cm.estimate(5) >= 10);
        assert!(cm.estimate(9) >= 3);
        assert_eq!(cm.processed(), 13);
    }

    #[test]
    fn oblivious_error_within_bound() {
        let mut rng = TranscriptRng::from_seed(31);
        let mut cm = CountMin::new(4, 128, &mut rng);
        let m = 10_000u64;
        for t in 0..m {
            cm.insert(t % 1000);
        }
        // Every item has f = 10; estimates must be ≤ f + 2m/width = 166.
        for item in 0..1000 {
            let e = cm.estimate(item);
            assert!(e >= 10);
            assert!(
                (e as f64) <= 10.0 + cm.error_bound(),
                "item {item}: {e} > bound"
            );
        }
    }

    #[test]
    fn white_box_attack_inflates_victim() {
        // Small sketch so the collision search is fast in a unit test.
        let mut rng = TranscriptRng::from_seed(32);
        let mut cm = CountMin::new(2, 16, &mut rng);
        let victim = 0u64;
        let forged = forge_all_row_collisions(&cm, victim, 50, 200_000);
        assert!(
            forged.len() >= 20,
            "expected ≥20 forged items in budget, got {}",
            forged.len()
        );
        for &item in &forged {
            cm.insert(item);
        }
        let est = cm.estimate(victim);
        assert_eq!(
            est,
            forged.len() as u64,
            "victim estimate inflated by every forged insertion"
        );
        // The oblivious bound is violated wildly: f_victim = 0 but the
        // estimate is maximal — the whole stream lands on the victim.
        assert!(est as f64 > cm.error_bound());
    }

    #[test]
    fn attack_cost_grows_with_depth() {
        // With one more row, the same budget finds ~width× fewer collisions.
        let mut rng = TranscriptRng::from_seed(33);
        let shallow = CountMin::new(1, 64, &mut rng);
        let deep = CountMin::new(3, 64, &mut rng);
        let budget = 300_000;
        let f_shallow = forge_all_row_collisions(&shallow, 0, usize::MAX, budget).len();
        let f_deep = forge_all_row_collisions(&deep, 0, usize::MAX, budget).len();
        assert!(
            f_shallow > 50 * f_deep.max(1),
            "shallow {f_shallow} vs deep {f_deep}"
        );
    }

    #[test]
    fn batch_matches_sequential() {
        let mut rng = TranscriptRng::from_seed(35);
        let mut seq = CountMin::new(3, 64, &mut rng);
        let mut bat = seq.clone();
        let stream: Vec<InsertOnly> = (0..5000u64).map(|t| InsertOnly(t % 321)).collect();
        let mut r1 = TranscriptRng::from_seed(36);
        let mut r2 = TranscriptRng::from_seed(36);
        for u in &stream {
            seq.process(u, &mut r1);
        }
        for c in stream.chunks(113) {
            bat.process_batch(c, &mut r2);
        }
        assert_eq!(seq.table, bat.table);
        assert_eq!(seq.processed(), bat.processed());
    }

    #[test]
    fn merge_is_exact_for_same_seed_instances() {
        let mut rng = TranscriptRng::from_seed(37);
        let single = CountMin::new(3, 64, &mut rng);
        let mut a = single.clone();
        let mut b = single.clone();
        let mut single = single;
        for t in 0..4000u64 {
            let item = t % 123;
            single.insert(item);
            if item % 2 == 0 {
                a.insert(item);
            } else {
                b.insert(item);
            }
        }
        a.merge(&b).unwrap();
        assert_eq!(a.table, single.table, "linear merge must be bit-exact");
        assert_eq!(a.processed(), single.processed());
    }

    #[test]
    fn merge_rejects_different_seeds_and_dims() {
        let mut rng = TranscriptRng::from_seed(38);
        let mut a = CountMin::new(2, 32, &mut rng);
        let b = CountMin::new(2, 32, &mut rng); // fresh coefficients
        assert!(matches!(a.merge(&b), Err(MergeError::Incompatible(_))));
        let c = CountMin::new(3, 32, &mut rng);
        assert!(matches!(a.merge(&c), Err(MergeError::Incompatible(_))));
    }

    #[test]
    fn space_accounting() {
        let mut rng = TranscriptRng::from_seed(34);
        let mut cm = CountMin::new(2, 8, &mut rng);
        let empty = cm.space_bits();
        for i in 0..100 {
            cm.insert(i);
        }
        assert!(cm.space_bits() > empty);
    }
}
