//! The AMS F2 sketch and its white-box attack.
//!
//! The paper's introduction singles out AMS `[AMS99]` as the canonical
//! randomness-dependent sketch: it maintains `⟨Z, f⟩` for a random sign
//! vector `Z` and outputs `⟨Z, f⟩²`, whose analysis **requires `Z` to be
//! independent of `f`**. A white-box adversary reads the sign seeds the
//! moment the sketch is initialized, can evaluate `Z(i)` for any item, and
//! feeds the stream `f` maximally correlated with `Z` — inflating the
//! estimate by an unbounded factor. This is the operational content of the
//! Ω(n) lower bound for Fp estimation (Theorems 1.9/3.3): *no* o(n)-space
//! sketch of this family survives.
//!
//! [`find_aligned_items`] is the attack; experiment E8 charts the forced
//! error against the number of median copies.

use wb_core::merge::{MergeError, Mergeable};
use wb_core::rng::TranscriptRng;
use wb_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use wb_core::space::{bits_for_signed, SpaceUsage};
use wb_core::stream::{RunAggregator, StreamAlg, Turnstile};
use wb_crypto::mersenne::{add61, mul61, reduce64};

/// Mersenne prime `2^61 − 1` for the 4-wise independent sign hash.
const P: u64 = (1 << 61) - 1;

/// One AMS atom: a public 4-wise-independent sign function and the running
/// inner product `⟨Z, f⟩`.
#[derive(Debug, Clone)]
pub struct AmsCopy {
    /// Public cubic hash coefficients (4-wise independence).
    coeffs: [u64; 4],
    /// Running `⟨Z, f⟩`.
    counter: i64,
}

impl AmsCopy {
    fn new(rng: &mut TranscriptRng) -> Self {
        AmsCopy {
            coeffs: [rng.below(P), rng.below(P), rng.below(P), rng.below(P)],
            counter: 0,
        }
    }

    /// The public sign `Z(item) ∈ {−1, +1}`: parity of the Horner cubic
    /// `((a·x + b)·x + c)·x + d mod P`, reduced by Mersenne shift-adds —
    /// bit-identical to the `%` chain it replaces.
    pub fn sign(&self, item: u64) -> i64 {
        sign_of(&self.coeffs, reduce64(item))
    }

    /// Current inner product (white-box view).
    pub fn counter(&self) -> i64 {
        self.counter
    }
}

impl Snapshot for AmsCopy {
    /// Layout: `coeffs[4] | counter`. The public sign coefficients are
    /// serialized and overwritten — restoring them exactly keeps every
    /// post-restore sign evaluation bit-identical.
    fn snap(&self, w: &mut SnapWriter) {
        for &c in &self.coeffs {
            w.put_u64(c);
        }
        w.put_i64(self.counter);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let mut coeffs = [0u64; 4];
        for c in &mut coeffs {
            *c = r.take_u64()?;
            if *c >= P {
                return Err(SnapError::corrupt(format!(
                    "AmsCopy coefficient {c} exceeds the field"
                )));
            }
        }
        self.coeffs = coeffs;
        self.counter = r.take_i64()?;
        Ok(())
    }
}

/// The sign hash on an already-reduced point `x < P` — the shared core of
/// [`AmsCopy::sign`] and the batched kernel (which reduces each distinct
/// item once and reuses the point across every copy).
#[inline]
fn sign_of(coeffs: &[u64; 4], x: u64) -> i64 {
    debug_assert!(x < P);
    let [a, b, c, d] = *coeffs;
    let mut acc = a;
    for coef in [b, c, d] {
        acc = add61(mul61(acc, x), coef);
    }
    if acc & 1 == 0 {
        1
    } else {
        -1
    }
}

/// Log2 of the sign-cache slot count (a 4096-entry direct-mapped table:
/// 64 KiB — scratch, not sketch state).
const SIGN_CACHE_BITS: u32 = 12;

/// Sentinel for an empty cache slot (reduced points are always `< P`).
const SIGN_CACHE_EMPTY: u64 = u64::MAX;

/// Cross-batch sign cache: a direct-mapped table from a reduced point `x`
/// to the packed signs of **every** copy at `x` (bit `j` set ⇔ copy `j`'s
/// sign is `+1`). The sign functions are fixed at construction, so an
/// entry stays valid for the sketch's lifetime (cleared on restore, where
/// the coefficients are overwritten); a churn-style stream that revisits
/// items across batches pays the `copies` Horner evaluations once per
/// distinct point instead of once per batch. Pure scratch: identical
/// signs come out either way, so estimates stay bit-identical, and the
/// table is skipped by snapshots.
#[derive(Debug, Clone, Default)]
struct SignCache {
    keys: Vec<u64>,
    bits: Vec<u64>,
}

impl SignCache {
    /// The packed signs for `x`, computing and caching them on a miss.
    /// Only callable when `copies.len() <= 64` (one bit per copy).
    fn lookup(&mut self, x: u64, copies: &[AmsCopy]) -> u64 {
        if self.keys.is_empty() {
            self.keys = vec![SIGN_CACHE_EMPTY; 1 << SIGN_CACHE_BITS];
            self.bits = vec![0; 1 << SIGN_CACHE_BITS];
        }
        // Fibonacci hashing: the multiplier spreads consecutive item ids
        // across slots; the top bits index the table.
        let slot = (x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - SIGN_CACHE_BITS)) as usize;
        if self.keys[slot] == x {
            return self.bits[slot];
        }
        let mut packed = 0u64;
        for (j, c) in copies.iter().enumerate() {
            if sign_of(&c.coeffs, x) == 1 {
                packed |= 1 << j;
            }
        }
        self.keys[slot] = x;
        self.bits[slot] = packed;
        packed
    }

    /// Drop every entry (the coefficients changed under us — restore).
    fn clear(&mut self) {
        self.keys.clear();
        self.bits.clear();
    }
}

/// AMS F2 estimator: median over `copies` independent atoms of `⟨Z, f⟩²`.
#[derive(Debug, Clone)]
pub struct AmsF2 {
    copies: Vec<AmsCopy>,
    /// Reusable batch scratch: distinct-point delta aggregation table.
    agg: RunAggregator<i64>,
    /// Cross-batch scratch: packed signs per reduced point.
    sign_cache: SignCache,
    /// Per-batch scratch: one packed-sign word per aggregated run.
    sign_scratch: Vec<u64>,
}

impl AmsF2 {
    /// Sketch with `copies ≥ 1` independent sign vectors (made odd).
    pub fn new(copies: usize, rng: &mut TranscriptRng) -> Self {
        let copies = if copies.is_multiple_of(2) {
            copies + 1
        } else {
            copies.max(1)
        };
        AmsF2 {
            copies: (0..copies).map(|_| AmsCopy::new(rng)).collect(),
            agg: RunAggregator::new(),
            sign_cache: SignCache::default(),
            sign_scratch: Vec::new(),
        }
    }

    /// Apply a turnstile update.
    pub fn update(&mut self, item: u64, delta: i64) {
        for c in &mut self.copies {
            c.counter += delta * c.sign(item);
        }
    }

    /// Median of the copies' squared counters — the F2 estimate.
    pub fn estimate(&self) -> f64 {
        let mut sq: Vec<f64> = self
            .copies
            .iter()
            .map(|c| (c.counter as f64) * (c.counter as f64))
            .collect();
        sq.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        sq[sq.len() / 2]
    }

    /// The copies (white-box view — the attack reads the sign seeds here).
    pub fn copies(&self) -> &[AmsCopy] {
        &self.copies
    }
}

impl Mergeable for AmsF2 {
    /// Linear-sketch merge: each copy maintains `⟨Z, f⟩`, which is linear
    /// in `f`, so counters add — **provided both instances use the same
    /// sign functions** (same public coefficients, i.e. constructed from
    /// the same seed). The merged sketch is bit-identical to single-stream
    /// ingestion of the concatenated stream.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.copies.len() != other.copies.len() {
            return Err(MergeError::incompatible(format!(
                "AmsF2 {} vs {} copies",
                self.copies.len(),
                other.copies.len()
            )));
        }
        if self
            .copies
            .iter()
            .zip(&other.copies)
            .any(|(a, b)| a.coeffs != b.coeffs)
        {
            return Err(MergeError::incompatible(
                "AmsF2 sign coefficients differ — shard instances must be \
                 constructed from the same public seed",
            ));
        }
        for (a, b) in self.copies.iter_mut().zip(&other.copies) {
            a.counter += b.counter;
        }
        Ok(())
    }
}

impl Snapshot for AmsF2 {
    /// Layout: `len | copies…`. The copy count is a construction parameter;
    /// the batch aggregator and sign cache are scratch — skipped.
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.copies.len());
        for c in &self.copies {
            c.snap(w);
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let len = r.take_usize()?;
        if len != self.copies.len() {
            return Err(SnapError::mismatch(
                format!("AmsF2({} copies)", self.copies.len()),
                format!("AmsF2({len} copies)"),
            ));
        }
        for c in &mut self.copies {
            c.restore(r)?;
        }
        // The restored coefficients need not match the ones the cache was
        // filled under; stale signs would silently corrupt every later
        // batch.
        self.sign_cache.clear();
        Ok(())
    }
}

impl SpaceUsage for AmsF2 {
    fn space_bits(&self) -> u64 {
        self.copies
            .iter()
            .map(|c| bits_for_signed(c.counter) + 4 * 61)
            .sum()
    }
}

impl StreamAlg for AmsF2 {
    type Update = Turnstile;
    type Output = f64;

    fn process(&mut self, update: &Turnstile, _rng: &mut TranscriptRng) {
        self.update(update.item, update.delta);
    }

    /// Batched ingestion: deltas are aggregated per item (sort +
    /// run-length) before touching the counters, so each distinct item's
    /// sign functions are evaluated once per batch instead of once per
    /// update. Each counter maintains `⟨Z, f⟩`, which is linear in the
    /// deltas, so `counter += Z(i)·(δ₁ + δ₂)` is exactly
    /// `counter += Z(i)·δ₁ + Z(i)·δ₂` — the final state is bit-identical
    /// to sequential processing (items whose deltas cancel contribute 0
    /// either way). Aggregation is by the reduced point `x = item mod P`
    /// (reduced once per update; the sign depends only on `x`), via the
    /// reusable [`RunAggregator`] — O(len), no sort.
    ///
    /// Sign evaluations are then resolved through the cross-batch
    /// [`SignCache`] (when the copies fit one packed word, the common
    /// case): each run looks up — or fills, Horner-evaluating every copy
    /// once — the packed signs for its point, and the copy-major
    /// accumulation loop turns into a bit test plus signed add per run.
    /// A churn stream revisiting its items pays zero field arithmetic on
    /// cache hits; the cached signs are the very values `sign_of` would
    /// return, and runs are consumed in the same order, so the counters
    /// stay bit-identical either way.
    fn process_batch(&mut self, updates: &[Turnstile], _rng: &mut TranscriptRng) {
        let runs = self.agg.aggregate(
            updates.iter().map(|u| (reduce64(u.item), u.delta)),
            updates.len(),
        );
        if self.copies.len() <= 64 {
            let mut signs = std::mem::take(&mut self.sign_scratch);
            signs.clear();
            signs.extend(
                runs.iter()
                    .map(|&(x, _)| self.sign_cache.lookup(x, &self.copies)),
            );
            for (j, copy) in self.copies.iter_mut().enumerate() {
                let mut acc = 0i64;
                for (packed, &(_, delta)) in signs.iter().zip(runs) {
                    if delta != 0 {
                        acc += if (packed >> j) & 1 == 1 {
                            delta
                        } else {
                            -delta
                        };
                    }
                }
                copy.counter += acc;
            }
            self.sign_scratch = signs;
        } else {
            // Too many copies for one packed word: the copy-major loop
            // keeps each copy's coefficients in registers while a local
            // accumulator sums `Z(x)·δ` over the whole batch.
            for copy in &mut self.copies {
                let coeffs = copy.coeffs;
                let mut acc = 0i64;
                for &(x, delta) in runs {
                    if delta != 0 {
                        acc += delta * sign_of(&coeffs, x);
                    }
                }
                copy.counter += acc;
            }
        }
    }

    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        Mergeable::merge(self, other)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        Snapshot::snap(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Snapshot::restore(self, r)
    }

    fn query(&self) -> f64 {
        self.estimate()
    }

    fn name(&self) -> &'static str {
        "AmsF2"
    }
}

/// White-box attack: scan item ids for items whose sign is `+1` in **every
/// copy**. A `2^{-copies}` fraction of the universe qualifies, so the scan
/// is polynomial for `copies = O(log n)`. Inserting `k` returned items once
/// each drives every counter to `k`, so the median estimate is `k²` while
/// the true `F2` is `k` — a `k`-factor inflation.
pub fn find_aligned_items(ams: &AmsF2, want: usize, budget: u64) -> Vec<u64> {
    let mut found = Vec::with_capacity(want.min(1024));
    for item in 0..budget {
        if ams.copies().iter().all(|c| c.sign(item) == 1) {
            found.push(item);
            if found.len() == want {
                break;
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_is_deterministic_pm_one() {
        let mut rng = TranscriptRng::from_seed(40);
        let ams = AmsF2::new(3, &mut rng);
        for item in 0..100u64 {
            for c in ams.copies() {
                let s = c.sign(item);
                assert!(s == 1 || s == -1);
                assert_eq!(s, c.sign(item));
            }
        }
    }

    #[test]
    fn signs_are_roughly_balanced() {
        let mut rng = TranscriptRng::from_seed(41);
        let ams = AmsF2::new(1, &mut rng);
        let plus = (0..10_000u64)
            .filter(|&i| ams.copies()[0].sign(i) == 1)
            .count();
        let frac = plus as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.05, "sign bias {frac}");
    }

    #[test]
    fn oblivious_estimate_is_constant_factor() {
        // Uniform stream: 512 items × 8 occurrences → F2 = 512·64 = 32768.
        let mut rng = TranscriptRng::from_seed(42);
        let mut ams = AmsF2::new(15, &mut rng);
        for t in 0..4096u64 {
            ams.update(t % 512, 1);
        }
        let f2 = 512.0 * 64.0;
        let est = ams.estimate();
        assert!(
            est > f2 / 8.0 && est < f2 * 8.0,
            "estimate {est} vs F2 {f2}"
        );
    }

    #[test]
    fn deletions_cancel() {
        let mut rng = TranscriptRng::from_seed(43);
        let mut ams = AmsF2::new(5, &mut rng);
        for i in 0..100u64 {
            ams.update(i, 2);
        }
        for i in 0..100u64 {
            ams.update(i, -2);
        }
        assert_eq!(ams.estimate(), 0.0);
    }

    #[test]
    fn white_box_attack_forces_unbounded_error() {
        let mut rng = TranscriptRng::from_seed(44);
        let mut ams = AmsF2::new(7, &mut rng);
        // ~2^-7 of ids align: a 64k budget yields hundreds.
        let aligned = find_aligned_items(&ams, 200, 1 << 16);
        assert!(
            aligned.len() >= 100,
            "found only {} aligned items",
            aligned.len()
        );
        let k = aligned.len() as f64;
        for &item in &aligned {
            ams.update(item, 1);
        }
        // True F2 = k (distinct items, each once); estimate = k².
        let est = ams.estimate();
        assert_eq!(est, k * k);
        assert!(
            est / k >= 100.0,
            "attack must force ≥100× inflation, got {}×",
            est / k
        );
    }

    #[test]
    fn aligned_fraction_shrinks_with_copies() {
        let mut rng = TranscriptRng::from_seed(45);
        let few = AmsF2::new(3, &mut rng);
        let many = AmsF2::new(11, &mut rng);
        let budget = 1 << 15;
        let n_few = find_aligned_items(&few, usize::MAX, budget).len();
        let n_many = find_aligned_items(&many, usize::MAX, budget).len();
        // Expected ratio 2^8; allow slack.
        assert!(n_few > 16 * n_many.max(1), "few {n_few} vs many {n_many}");
    }

    #[test]
    fn batch_matches_sequential() {
        let mut rng = TranscriptRng::from_seed(49);
        let mut seq = AmsF2::new(7, &mut rng);
        let mut bat = seq.clone();
        // Signed stream with repeats and full cancellations.
        let stream: Vec<Turnstile> = (0..4000u64)
            .map(|t| Turnstile {
                item: t % 97,
                delta: match t % 7 {
                    0 => -2,
                    1..=4 => 1,
                    _ => 3,
                },
            })
            .collect();
        let mut r1 = TranscriptRng::from_seed(50);
        let mut r2 = TranscriptRng::from_seed(50);
        for u in &stream {
            seq.process(u, &mut r1);
        }
        for c in stream.chunks(173) {
            bat.process_batch(c, &mut r2);
        }
        assert_eq!(seq.estimate(), bat.estimate());
        for (a, b) in seq.copies().iter().zip(bat.copies()) {
            assert_eq!(a.counter(), b.counter(), "counters must be bit-identical");
        }
    }

    #[test]
    fn merge_is_exact_for_same_seed_instances() {
        let mut rng = TranscriptRng::from_seed(47);
        let single = AmsF2::new(7, &mut rng);
        let mut a = single.clone();
        let mut b = single.clone();
        let mut single = single;
        for t in 0..2000u64 {
            let (item, delta) = (t % 97, if t % 5 == 0 { -1 } else { 2 });
            single.update(item, delta);
            if t % 2 == 0 {
                a.update(item, delta);
            } else {
                b.update(item, delta);
            }
        }
        a.merge(&b).unwrap();
        assert_eq!(a.estimate(), single.estimate());
        for (m, s) in a.copies().iter().zip(single.copies()) {
            assert_eq!(m.counter(), s.counter());
        }
    }

    #[test]
    fn merge_rejects_different_sign_seeds() {
        let mut rng = TranscriptRng::from_seed(48);
        let mut a = AmsF2::new(3, &mut rng);
        let b = AmsF2::new(3, &mut rng);
        assert!(matches!(a.merge(&b), Err(MergeError::Incompatible(_))));
        let c = AmsF2::new(5, &mut rng);
        assert!(matches!(a.merge(&c), Err(MergeError::Incompatible(_))));
    }

    #[test]
    fn space_counts_counters_and_seeds() {
        let mut rng = TranscriptRng::from_seed(46);
        let ams = AmsF2::new(5, &mut rng);
        assert!(ams.space_bits() >= 5 * 4 * 61);
    }
}
