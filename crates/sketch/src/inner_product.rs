//! Corollary 2.8: inner-product estimation from sampled vectors.
//!
//! Lemma 2.6 (`[JW18]`): unscaled uniform samples `f′, g′` of `f` and `g`
//! taken with rates `p_f ≥ s/m_f`, `p_g ≥ s/m_g` for `s = 1/ε²` satisfy
//! `⟨p_f⁻¹ f′, p_g⁻¹ g′⟩ = ⟨f, g⟩ ± ε‖f‖₁‖g‖₁` with probability ≥ 0.99.
//! Combined with the heavy-hitter vectors of Algorithm 2 via Lemma 2.7
//! (`[NNW12]`) this yields the white-box-robust inner-product estimator of
//! Corollary 2.8. Robustness is again the no-surviving-randomness
//! argument: each sample coin is used once and published.
//!
//! This module implements the sampling estimator with known stream-length
//! bounds; the unknown-length lift is exactly the epoch ladder of
//! Algorithm 2 (see [`crate::epochs`]) and is exercised in E11 through the
//! fixed-budget interface.

use std::collections::HashMap;
use wb_core::rng::TranscriptRng;
use wb_core::space::{bits_for_count, bits_for_universe, SpaceUsage};
use wb_core::stream::StreamAlg;

/// Which of the two interleaved streams an update belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The `f` stream.
    Left,
    /// The `g` stream.
    Right,
}

/// One update of the interleaved two-vector stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SideUpdate {
    /// Stream selector.
    pub side: Side,
    /// Universe element.
    pub item: u64,
}

/// Sampled inner-product estimator (Lemma 2.6 / Corollary 2.8).
#[derive(Debug, Clone)]
pub struct SampledInnerProduct {
    n: u64,
    p_left: f64,
    p_right: f64,
    left: HashMap<u64, u64>,
    right: HashMap<u64, u64>,
}

impl SampledInnerProduct {
    /// Estimator for accuracy `ε`, with per-stream length upper bounds.
    /// Sampling rates are `s/m` with `s = 1/ε²` (clamped to 1).
    pub fn new(n: u64, eps: f64, m_left: u64, m_right: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(m_left > 0 && m_right > 0);
        let s = 1.0 / (eps * eps);
        SampledInnerProduct {
            n,
            p_left: (s / m_left as f64).min(1.0),
            p_right: (s / m_right as f64).min(1.0),
            left: HashMap::new(),
            right: HashMap::new(),
        }
    }

    /// Process one interleaved update.
    pub fn update(&mut self, u: SideUpdate, rng: &mut TranscriptRng) {
        let (p, map) = match u.side {
            Side::Left => (self.p_left, &mut self.left),
            Side::Right => (self.p_right, &mut self.right),
        };
        if rng.bernoulli(p) {
            *map.entry(u.item).or_insert(0) += 1;
        }
    }

    /// `⟨p_f⁻¹ f′, p_g⁻¹ g′⟩` — the rescaled sampled inner product.
    pub fn estimate(&self) -> f64 {
        let (small, large, scale) = if self.left.len() <= self.right.len() {
            (&self.left, &self.right, self.p_left * self.p_right)
        } else {
            (&self.right, &self.left, self.p_left * self.p_right)
        };
        small
            .iter()
            .filter_map(|(k, &a)| large.get(k).map(|&b| a as f64 * b as f64))
            .sum::<f64>()
            / scale
    }

    /// Public sampling rates `(p_f, p_g)`.
    pub fn rates(&self) -> (f64, f64) {
        (self.p_left, self.p_right)
    }

    /// Number of retained samples on each side.
    pub fn sample_sizes(&self) -> (usize, usize) {
        (self.left.len(), self.right.len())
    }
}

impl SpaceUsage for SampledInnerProduct {
    fn space_bits(&self) -> u64 {
        let id_bits = bits_for_universe(self.n);
        self.left
            .values()
            .chain(self.right.values())
            .map(|&c| id_bits + bits_for_count(c))
            .sum()
    }
}

impl StreamAlg for SampledInnerProduct {
    type Update = SideUpdate;
    type Output = f64;

    fn process(&mut self, update: &SideUpdate, rng: &mut TranscriptRng) {
        self.update(*update, rng);
    }

    fn query(&self) -> f64 {
        self.estimate()
    }

    fn name(&self) -> &'static str {
        "SampledInnerProduct"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact inner product of two streams given as item lists.
    fn exact_ip(f: &[u64], g: &[u64]) -> f64 {
        let mut cf: HashMap<u64, u64> = HashMap::new();
        let mut cg: HashMap<u64, u64> = HashMap::new();
        for &i in f {
            *cf.entry(i).or_insert(0) += 1;
        }
        for &i in g {
            *cg.entry(i).or_insert(0) += 1;
        }
        cf.iter()
            .filter_map(|(k, &a)| cg.get(k).map(|&b| (a * b) as f64))
            .sum()
    }

    #[test]
    fn exact_at_rate_one() {
        let mut rng = TranscriptRng::from_seed(90);
        let f: Vec<u64> = (0..100).map(|i| i % 10).collect();
        let g: Vec<u64> = (0..50).map(|i| i % 5).collect();
        let mut est = SampledInnerProduct::new(100, 0.5, 4, 4); // rates clamp to 1
        assert_eq!(est.rates(), (1.0, 1.0));
        for &i in &f {
            est.update(
                SideUpdate {
                    side: Side::Left,
                    item: i,
                },
                &mut rng,
            );
        }
        for &i in &g {
            est.update(
                SideUpdate {
                    side: Side::Right,
                    item: i,
                },
                &mut rng,
            );
        }
        assert_eq!(est.estimate(), exact_ip(&f, &g));
    }

    #[test]
    fn error_within_eps_l1_l1() {
        let mut rng = TranscriptRng::from_seed(91);
        let eps = 0.1;
        let m = 20_000u64;
        // Correlated streams: both concentrated on items 0..20.
        let f: Vec<u64> = (0..m).map(|t| t % 20).collect();
        let g: Vec<u64> = (0..m).map(|t| (t * 3) % 20).collect();
        let mut est = SampledInnerProduct::new(1000, eps, m, m);
        for t in 0..m as usize {
            est.update(
                SideUpdate {
                    side: Side::Left,
                    item: f[t],
                },
                &mut rng,
            );
            est.update(
                SideUpdate {
                    side: Side::Right,
                    item: g[t],
                },
                &mut rng,
            );
        }
        let truth = exact_ip(&f, &g);
        let bound = eps * (m as f64) * (m as f64);
        let err = (est.estimate() - truth).abs();
        assert!(err <= bound, "error {err} exceeds ε‖f‖₁‖g‖₁ = {bound}");
    }

    #[test]
    fn disjoint_supports_give_zero() {
        let mut rng = TranscriptRng::from_seed(92);
        let mut est = SampledInnerProduct::new(1000, 0.2, 1000, 1000);
        for t in 0..1000u64 {
            est.update(
                SideUpdate {
                    side: Side::Left,
                    item: t % 10,
                },
                &mut rng,
            );
            est.update(
                SideUpdate {
                    side: Side::Right,
                    item: 500 + t % 10,
                },
                &mut rng,
            );
        }
        assert_eq!(est.estimate(), 0.0);
    }

    #[test]
    fn space_tracks_samples() {
        let mut rng = TranscriptRng::from_seed(93);
        let m = 100_000u64;
        let mut est = SampledInnerProduct::new(1 << 20, 0.1, m, m);
        for t in 0..m {
            est.update(
                SideUpdate {
                    side: Side::Left,
                    item: t,
                },
                &mut rng,
            );
        }
        // s = 100 expected samples; allow wide slack.
        let (left, _) = est.sample_sizes();
        assert!(left < 400, "sampled {left}, expected ~100");
        assert!(est.space_bits() < 400 * (20 + 8));
    }

    #[test]
    #[should_panic(expected = "eps must be in (0,1)")]
    fn rejects_bad_eps() {
        SampledInnerProduct::new(10, 0.0, 10, 10);
    }
}
