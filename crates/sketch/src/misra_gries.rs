//! The Misra–Gries deterministic heavy-hitters summary (Theorem 2.2,
//! `[MG82]`).
//!
//! `k = ⌈2/ε⌉` counters guarantee that every estimate satisfies
//! `f_i − (1/k)·m ≤ f̂_i ≤ f_i` and that every item with `f_i > ε·m` is
//! retained. Being deterministic, Misra–Gries is trivially robust to
//! white-box adversaries — it is the baseline the paper's Theorem 1.1
//! improves on for long streams: its space is
//! `O(ε⁻¹ (log m + log n))` bits (counters grow with `m`), versus the
//! robust randomized algorithm's `O(ε⁻¹ (log n + log ε⁻¹) + log log m)`.

use wb_core::merge::{MergeError, Mergeable};
use wb_core::rng::TranscriptRng;
use wb_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use wb_core::space::{bits_for_count, bits_for_universe, SpaceUsage};
use wb_core::stream::{for_each_run, InsertOnly, StreamAlg};

/// Misra–Gries summary with `k` counters over a universe of size `n`.
///
/// The live counters are two flat parallel arrays rather than a hash map:
/// `k` is small (`⌈2/ε⌉`), so a linear scan of the contiguous key array
/// (one or two cache lines, autovectorizable) beats hashing, and the
/// decrement-all step is a tight in-place compaction instead of a rehash —
/// the observable state (the `(item, count)` set) is identical.
#[derive(Debug, Clone)]
pub struct MisraGries {
    /// Live item keys, at most `k`; `counts[i]` is `keys[i]`'s counter.
    /// Order is an unobservable implementation detail (queries sort,
    /// estimates scan).
    keys: Vec<u64>,
    counts: Vec<u64>,
    k: usize,
    n: u64,
    processed: u64,
}

impl MisraGries {
    /// Summary with `k ≥ 1` counters (guarantee: additive error `m/k`).
    pub fn with_counters(k: usize, n: u64) -> Self {
        assert!(k >= 1, "need at least one counter");
        MisraGries {
            keys: Vec::with_capacity(k),
            counts: Vec::with_capacity(k),
            k,
            n,
            processed: 0,
        }
    }

    /// Summary sized for the `ε`-heavy-hitters guarantee with additive
    /// error `(ε/2)·m`, i.e. `k = ⌈2/ε⌉`.
    pub fn new(eps: f64, n: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        Self::with_counters((2.0 / eps).ceil() as usize, n)
    }

    /// Position of `item` among the live keys, if monitored — the probe on
    /// the per-update hot path. Four keys are compared per step with one
    /// combined any-match test (four independent equality lanes, which the
    /// backend can fuse into a single vector compare), so the scan takes
    /// one well-predicted branch per four keys instead of one per key.
    #[inline]
    fn find(&self, item: u64) -> Option<usize> {
        let mut chunks = self.keys.chunks_exact(4);
        let mut base = 0usize;
        for c in chunks.by_ref() {
            let m = [c[0] == item, c[1] == item, c[2] == item, c[3] == item];
            if m[0] | m[1] | m[2] | m[3] {
                let off = if m[0] {
                    0
                } else if m[1] {
                    1
                } else if m[2] {
                    2
                } else {
                    3
                };
                return Some(base + off);
            }
            base += 4;
        }
        chunks
            .remainder()
            .iter()
            .position(|&key| key == item)
            .map(|i| base + i)
    }

    /// Process one item occurrence.
    pub fn insert(&mut self, item: u64) {
        self.processed += 1;
        if let Some(pos) = self.find(item) {
            self.counts[pos] += 1;
            return;
        }
        if self.keys.len() < self.k {
            self.keys.push(item);
            self.counts.push(1);
            return;
        }
        // Decrement-all step; drop zeros (in-place compaction). Writes are
        // unconditional with a conditional advance — `live ≤ r` keeps them
        // safe, and dropping the data-dependent keep/skip branch (count-1
        // entries are common under churn) keeps the pipeline full.
        let mut live = 0;
        for r in 0..self.keys.len() {
            let c = self.counts[r] - 1;
            self.keys[live] = self.keys[r];
            self.counts[live] = c;
            live += usize::from(c > 0);
        }
        self.keys.truncate(live);
        self.counts.truncate(live);
    }

    /// Process a run of `w` consecutive occurrences of `item`.
    ///
    /// Exactly equivalent to calling [`MisraGries::insert`] `w` times: as
    /// soon as the item holds a counter (or a slot is free) the remaining
    /// occurrences collapse into one counter addition; while the table is
    /// full and the item unmonitored, decrement-all steps are replayed
    /// one by one, since each may free slots and change the outcome.
    pub fn insert_run(&mut self, item: u64, mut w: u64) {
        while w > 0 {
            if let Some(pos) = self.find(item) {
                self.counts[pos] += w;
                self.processed += w;
                return;
            }
            if self.keys.len() < self.k {
                self.keys.push(item);
                self.counts.push(w);
                self.processed += w;
                return;
            }
            self.insert(item);
            w -= 1;
        }
    }

    /// Lower-bound estimate `f̂_i ∈ [f_i − m/k, f_i]` of item `i`.
    pub fn estimate(&self, item: u64) -> u64 {
        self.keys
            .iter()
            .position(|&i| i == item)
            .map_or(0, |pos| self.counts[pos])
    }

    /// All retained `(item, estimate)` pairs, item-ascending.
    pub fn entries(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self
            .keys
            .iter()
            .copied()
            .zip(self.counts.iter().copied())
            .collect();
        v.sort_unstable();
        v
    }

    /// Number of counters configured.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Updates processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Worst-case additive estimation error at this point, `m/k`.
    pub fn error_bound(&self) -> f64 {
        self.processed as f64 / self.k as f64
    }
}

impl Mergeable for MisraGries {
    /// Classic `k`-counter merge (Agarwal–Cormode–Huang–Phillips–Wei–Yi):
    /// counters add pointwise; if more than `k` survive, the `(k+1)`-th
    /// largest count is subtracted from every counter and non-positive
    /// counters are dropped — the merged equivalent of the decrement-all
    /// step. The merged summary's additive error is at most
    /// `(m₁ + m₂)/(k+1)`, i.e. the same `ε`-heavy-hitters guarantee as
    /// single-stream ingestion of the concatenated stream.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.k != other.k || self.n != other.n {
            return Err(MergeError::incompatible(format!(
                "MisraGries (k={}, n={}) vs (k={}, n={})",
                self.k, self.n, other.k, other.n
            )));
        }
        for (&item, &count) in other.keys.iter().zip(&other.counts) {
            match self.keys.iter().position(|&i| i == item) {
                Some(pos) => self.counts[pos] += count,
                None => {
                    self.keys.push(item);
                    self.counts.push(count);
                }
            }
        }
        if self.keys.len() > self.k {
            let mut order: Vec<u64> = self.counts.clone();
            order.sort_unstable_by(|a, b| b.cmp(a));
            let cut = order[self.k];
            let mut live = 0;
            for r in 0..self.keys.len() {
                let c = self.counts[r].saturating_sub(cut);
                if c > 0 {
                    self.keys[live] = self.keys[r];
                    self.counts[live] = c;
                    live += 1;
                }
            }
            self.keys.truncate(live);
            self.counts.truncate(live);
        }
        self.processed += other.processed;
        Ok(())
    }
}

impl Snapshot for MisraGries {
    /// Layout: `k | n | processed | keys | counts`. `k` and `n` are
    /// construction parameters — validated against the restoring twin, not
    /// overwritten.
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.k);
        w.put_u64(self.n);
        w.put_u64(self.processed);
        w.put_u64_seq(&self.keys);
        w.put_u64_seq(&self.counts);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let k = r.take_usize()?;
        let n = r.take_u64()?;
        if k != self.k || n != self.n {
            return Err(SnapError::mismatch(
                format!("MisraGries(k={}, n={})", self.k, self.n),
                format!("MisraGries(k={k}, n={n})"),
            ));
        }
        let processed = r.take_u64()?;
        let keys = r.take_u64_seq()?;
        let counts = r.take_u64_seq()?;
        if keys.len() != counts.len() || keys.len() > k {
            return Err(SnapError::corrupt(format!(
                "MisraGries snapshot holds {} keys / {} counts for k={k}",
                keys.len(),
                counts.len()
            )));
        }
        if counts.contains(&0) {
            return Err(SnapError::corrupt("MisraGries zero counter"));
        }
        // k is small; a quadratic scan beats allocating a sort buffer.
        if keys
            .iter()
            .enumerate()
            .any(|(i, key)| keys[..i].contains(key))
        {
            return Err(SnapError::corrupt("MisraGries duplicate key"));
        }
        self.keys = keys;
        self.counts = counts;
        self.processed = processed;
        Ok(())
    }
}

impl SpaceUsage for MisraGries {
    /// Each live counter stores an id (`⌈log₂ n⌉` bits) and a count
    /// (`O(log m)` bits — this is the `log m` term of Theorem 2.2 that the
    /// paper's randomized algorithm removes).
    fn space_bits(&self) -> u64 {
        let id_bits = bits_for_universe(self.n);
        self.counts
            .iter()
            .map(|&c| id_bits + bits_for_count(c))
            .sum()
    }
}

impl StreamAlg for MisraGries {
    type Update = InsertOnly;
    type Output = Vec<(u64, f64)>;

    fn process(&mut self, update: &InsertOnly, _rng: &mut TranscriptRng) {
        self.insert(update.0);
    }

    /// Batched ingestion: consecutive equal items are collapsed into
    /// [`MisraGries::insert_run`] calls, skipping the per-update hash-map
    /// probe on runs. State is bit-identical to sequential processing.
    fn process_batch(&mut self, updates: &[InsertOnly], _rng: &mut TranscriptRng) {
        for_each_run(updates.iter().map(|u| u.0), |item, w| {
            self.insert_run(item, w)
        });
    }

    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        Mergeable::merge(self, other)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        Snapshot::snap(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Snapshot::restore(self, r)
    }

    fn query(&self) -> Vec<(u64, f64)> {
        self.entries()
            .into_iter()
            .map(|(i, c)| (i, c as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_core::game::ScriptAdversary;
    use wb_core::referee::HeavyHitterReferee;
    use wb_engine::Game;

    #[test]
    fn exact_when_few_distinct_items() {
        let mut mg = MisraGries::with_counters(10, 1000);
        for _ in 0..50 {
            mg.insert(1);
        }
        for _ in 0..30 {
            mg.insert(2);
        }
        assert_eq!(mg.estimate(1), 50);
        assert_eq!(mg.estimate(2), 30);
        assert_eq!(mg.estimate(3), 0);
    }

    #[test]
    fn estimates_never_exceed_truth_and_error_bounded() {
        // Adversarial-ish interleaving: 1 heavy item among uniform noise.
        let mut mg = MisraGries::with_counters(20, 1000);
        let mut true_freq = std::collections::HashMap::new();
        let mut m = 0u64;
        for round in 0..2000u64 {
            let item = if round % 3 == 0 {
                7
            } else {
                100 + (round % 50)
            };
            mg.insert(item);
            *true_freq.entry(item).or_insert(0u64) += 1;
            m += 1;
        }
        for (&item, &f) in &true_freq {
            let est = mg.estimate(item);
            assert!(est <= f, "overestimate for {item}: {est} > {f}");
            assert!(
                f - est <= m / 20,
                "error for {item}: {f}-{est} > {}",
                m / 20
            );
        }
    }

    #[test]
    fn heavy_item_always_retained() {
        // f_7 = 667 > m/k for k=4 ⇒ item 7 must survive.
        let mut mg = MisraGries::with_counters(4, 1000);
        for i in 0..2000u64 {
            mg.insert(if i % 3 != 2 { 7 } else { i });
        }
        assert!(mg.estimate(7) > 0, "heavy item evicted");
    }

    #[test]
    fn never_more_than_k_counters() {
        let mut mg = MisraGries::with_counters(5, 10_000);
        for i in 0..5000u64 {
            mg.insert(i);
        }
        assert!(mg.entries().len() <= 5);
    }

    #[test]
    fn space_grows_with_log_m() {
        // Feed one item m times: its counter has log m bits. This is the
        // term the paper's Theorem 1.1 gets rid of.
        let mut small = MisraGries::with_counters(1, 2);
        let mut large = MisraGries::with_counters(1, 2);
        for _ in 0..100u64 {
            small.insert(0);
        }
        for _ in 0..1_000_000u64 {
            large.insert(0);
        }
        assert!(large.space_bits() > small.space_bits());
        assert_eq!(
            large.space_bits() - small.space_bits(),
            bits_for_count(1_000_000) - bits_for_count(100)
        );
    }

    #[test]
    fn insert_run_and_batch_match_sequential() {
        // Mixed regime: spare capacity, then contention with decrement-alls.
        let stream: Vec<u64> = (0..4000u64)
            .map(|t| if t % 5 == 0 { 3 } else { t % 97 })
            .collect();
        for chunk in [1usize, 7, 64, 4000] {
            let mut seq = MisraGries::with_counters(8, 1 << 10);
            let mut bat = MisraGries::with_counters(8, 1 << 10);
            let mut rng_a = TranscriptRng::from_seed(9);
            let mut rng_b = TranscriptRng::from_seed(9);
            for &i in &stream {
                seq.process(&InsertOnly(i), &mut rng_a);
            }
            let updates: Vec<InsertOnly> = stream.iter().map(|&i| InsertOnly(i)).collect();
            for c in updates.chunks(chunk) {
                bat.process_batch(c, &mut rng_b);
            }
            assert_eq!(seq.entries(), bat.entries(), "chunk {chunk}");
            assert_eq!(seq.processed(), bat.processed(), "chunk {chunk}");
        }
    }

    #[test]
    fn passes_heavy_hitter_referee_in_game() {
        // ε = 0.1, additive tolerance m/k = εm/2: referee at ε tolerance.
        let mg = MisraGries::new(0.1, 1 << 16);
        let referee = HeavyHitterReferee::new(0.1, 0.1);
        // Zipf-ish script: item i appears ~ 1/(i+1) of the time.
        let mut script = Vec::new();
        for t in 0..5000u64 {
            let item = match t % 10 {
                0..=4 => 1,
                5..=7 => 2,
                8 => 3,
                _ => 50 + t % 97,
            };
            script.push(InsertOnly(item));
        }
        let report = Game::new(mg)
            .adversary(ScriptAdversary::new(script))
            .referee(referee)
            .max_rounds(5000)
            .seed(13)
            .run();
        assert!(report.survived(), "failed: {:?}", report.result.failure);
    }

    #[test]
    fn merge_matches_single_stream_guarantee() {
        // Split a skewed stream across 4 shard instances by item hash, merge,
        // and compare against single-stream ingestion: estimates must agree
        // within the combined additive bound m/(k+1).
        let stream: Vec<u64> = (0..6000u64)
            .map(|t| if t % 3 == 0 { 5 } else { t % 41 })
            .collect();
        let k = 8;
        let mut single = MisraGries::with_counters(k, 1 << 10);
        let mut shards: Vec<MisraGries> = (0..4)
            .map(|_| MisraGries::with_counters(k, 1 << 10))
            .collect();
        for &item in &stream {
            single.insert(item);
            shards[(item % 4) as usize].insert(item);
        }
        let mut merged = shards.remove(0);
        for s in &shards {
            merged.merge(s).unwrap();
        }
        assert_eq!(merged.processed(), single.processed());
        assert!(merged.entries().len() <= k, "capacity exceeded by merge");
        let m = stream.len() as u64;
        let truth = |i: u64| stream.iter().filter(|&&x| x == i).count() as u64;
        for (item, est) in merged.entries() {
            let f = truth(item);
            assert!(est <= f, "merged overestimate for {item}: {est} > {f}");
            assert!(f - est <= m / (k as u64 + 1), "merged error too large");
        }
        // The heavy item (1/3 of the stream) must survive the merge.
        assert!(merged.estimate(5) > 0, "heavy item lost in merge");
    }

    #[test]
    fn merge_rejects_mismatched_budgets() {
        let mut a = MisraGries::with_counters(4, 100);
        let b = MisraGries::with_counters(8, 100);
        assert!(matches!(a.merge(&b), Err(MergeError::Incompatible(_))));
    }

    #[test]
    fn error_bound_reporting() {
        let mut mg = MisraGries::with_counters(10, 100);
        for i in 0..100u64 {
            mg.insert(i % 7);
        }
        assert_eq!(mg.processed(), 100);
        assert!((mg.error_bound() - 10.0).abs() < 1e-9);
        assert_eq!(mg.capacity(), 10);
    }

    #[test]
    #[should_panic(expected = "eps must be in (0,1)")]
    fn rejects_bad_eps() {
        MisraGries::new(0.0, 10);
    }
}
