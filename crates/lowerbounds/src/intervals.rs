//! The interval-family dynamics of Theorem 1.11 (Lemmas 3.5–3.10).
//!
//! For any correct deterministic counter-with-timer, associate to each
//! state `u` at time `t` the interval `J_u = [min C_u, max C_u]` of counter
//! values it can represent, and let `I(t)` be the maximal intervals. The
//! lemmas force:
//!
//! * `I(1) = {[1,1]}` (Lemma 3.5);
//! * every interval of `I(t)` is contained in one of `I(t′)`, `t′ ≥ t`
//!   (Lemma 3.6);
//! * `[k, ℓ] ∈ I(t)` forces `[k+1, ℓ+1]` inside some interval of `I(t+1)`
//!   (Lemma 3.7);
//! * a count `k` exceptional more than `ε(k)` times stretches an interval
//!   past the approximation guarantee (Lemma 3.10), so the number of
//!   exceptional events is bounded and Lemma 3.9 yields a time `t₀ ≤ n+1`
//!   with `|I(t₀)| ≥ h + 1` for the largest `h` satisfying
//!   `(1 + Σ_{k≤h} ε(k))·h ≤ n`.
//!
//! [`width_lower_bound`] computes that certified `h + 1`;
//! [`interval_family`] extracts `I(t)` from a concrete [`TimedCounter`] so
//! experiments can watch the forced growth.

use crate::obdd::TimedCounter;

/// The error-budget function `ε(k)` of §3.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBudget {
    /// `ε(k) = δ·k` — a `(1+δ)`-multiplicative approximation.
    Multiplicative(f64),
    /// `ε(k) = (f−1)·k` — an `f`-multiplicative approximation (`f > 1`).
    FactorMultiplicative(f64),
    /// `ε(k) = c` — an additive-`c` approximation.
    Additive(f64),
}

impl ErrorBudget {
    /// Evaluate `ε(k)`.
    pub fn eval(&self, k: u64) -> f64 {
        match *self {
            ErrorBudget::Multiplicative(d) => d * k as f64,
            ErrorBudget::FactorMultiplicative(f) => (f - 1.0) * k as f64,
            ErrorBudget::Additive(c) => c,
        }
    }
}

/// Certified width lower bound for horizon `n`: returns `(h, h + 1)` where
/// `h` is the largest value with `(1 + Σ_{k=1}^h ε(k)) · h ≤ n` (Lemma
/// 3.9 + Lemma 3.10). Any correct deterministic counter-with-timer must
/// have at least `h + 1` states at some time `t₀ ≤ n + 1`, hence
/// `Ω(log h) = Ω(log n)` bits for constant-factor approximations.
pub fn width_lower_bound(n: u64, budget: ErrorBudget) -> (u64, u64) {
    let mut h = 0u64;
    let mut phi = 0.0f64; // Σ_{k ≤ h} ε(k)
    loop {
        let next = h + 1;
        let phi_next = phi + budget.eval(next);
        if (1.0 + phi_next) * next as f64 <= n as f64 {
            h = next;
            phi = phi_next;
        } else {
            return (h, h + 1);
        }
    }
}

/// A closed interval `[lo, hi]` of achievable counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountInterval {
    /// Smallest achievable count (the paper counts from 1; we report the
    /// ones-count directly, starting at 0).
    pub lo: u64,
    /// Largest achievable count.
    pub hi: u64,
}

/// Extract the family `I(t)` of **maximal** state intervals of a concrete
/// counter at every level `0..=n`: `result[t]` lists the maximal
/// `[min C_u, max C_u]` over reachable states `u` at time `t`, sorted by
/// `lo`.
pub fn interval_family<C: TimedCounter>(counter: &C, n: u64) -> Vec<Vec<CountInterval>> {
    // Reachable (min, max) count per state per level — same DP as the
    // verifier, without witness paths.
    let mut frontier: Vec<Option<(u64, u64)>> = vec![None; counter.width(0)];
    frontier[counter.start_state()] = Some((0, 0));
    let mut families = Vec::with_capacity(n as usize + 1);
    for t in 0..=n {
        let mut intervals: Vec<CountInterval> = frontier
            .iter()
            .flatten()
            .map(|&(lo, hi)| CountInterval { lo, hi })
            .collect();
        intervals.sort_by_key(|iv| (iv.lo, std::cmp::Reverse(iv.hi)));
        // Keep only maximal intervals (not contained in another).
        let mut maximal: Vec<CountInterval> = Vec::new();
        let mut best_hi: Option<u64> = None;
        for iv in intervals {
            if best_hi.is_none_or(|h| iv.hi > h) {
                // Not contained in any earlier (smaller-lo) interval.
                maximal.retain(|m| !(m.lo >= iv.lo && m.hi <= iv.hi));
                maximal.push(iv);
                best_hi = Some(best_hi.map_or(iv.hi, |h| h.max(iv.hi)));
            }
        }
        maximal.dedup();
        families.push(maximal);
        if t == n {
            break;
        }
        let mut next: Vec<Option<(u64, u64)>> = vec![None; counter.width(t + 1)];
        for (state, reach) in frontier.iter().enumerate() {
            let Some((lo, hi)) = *reach else { continue };
            for symbol in [0u64, 1u64] {
                let s2 = counter.step(t, state, symbol as u8);
                let (nlo, nhi) = (lo + symbol, hi + symbol);
                let entry = &mut next[s2];
                *entry = Some(match *entry {
                    None => (nlo, nhi),
                    Some((a, b)) => (a.min(nlo), b.max(nhi)),
                });
            }
        }
        frontier = next;
    }
    families
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_grows_as_cube_root_for_multiplicative() {
        // ε(k) = δk ⇒ h = Θ((n/δ)^{1/3}).
        let (h1, _) = width_lower_bound(1 << 10, ErrorBudget::Multiplicative(0.5));
        let (h2, _) = width_lower_bound(1 << 16, ErrorBudget::Multiplicative(0.5));
        let (h3, _) = width_lower_bound(1 << 22, ErrorBudget::Multiplicative(0.5));
        // Each 64× in n should grow h by ~4× (cube root).
        let r1 = h2 as f64 / h1 as f64;
        let r2 = h3 as f64 / h2 as f64;
        assert!((3.0..6.0).contains(&r1), "ratio {r1}");
        assert!((3.0..6.0).contains(&r2), "ratio {r2}");
    }

    #[test]
    fn lower_bound_certificate_is_tight_to_its_inequality() {
        let n = 10_000u64;
        let budget = ErrorBudget::Multiplicative(0.25);
        let (h, bound) = width_lower_bound(n, budget);
        assert_eq!(bound, h + 1);
        // h satisfies the inequality, h+1 does not.
        let phi = |hh: u64| (1..=hh).map(|k| budget.eval(k)).sum::<f64>();
        assert!((1.0 + phi(h)) * h as f64 <= n as f64);
        assert!((1.0 + phi(h + 1)) * (h + 1) as f64 > n as f64);
    }

    #[test]
    fn additive_budget_gives_sqrt_growth() {
        // ε(k) = c ⇒ (1 + ch)h ≤ n ⇒ h = Θ(√(n/c)).
        let (h1, _) = width_lower_bound(1 << 10, ErrorBudget::Additive(4.0));
        let (h2, _) = width_lower_bound(1 << 14, ErrorBudget::Additive(4.0));
        let r = h2 as f64 / h1 as f64;
        assert!((3.0..5.0).contains(&r), "ratio {r} (expect ~4 for 16× n)");
    }

    #[test]
    fn factor_budget_matches_delta_form() {
        let (a, _) = width_lower_bound(4096, ErrorBudget::Multiplicative(0.5));
        let (b, _) = width_lower_bound(4096, ErrorBudget::FactorMultiplicative(1.5));
        assert_eq!(a, b);
    }

    /// The exact counter: every reachable count is its own state.
    struct Exact;
    impl TimedCounter for Exact {
        fn width(&self, t: u64) -> usize {
            t as usize + 1
        }
        fn step(&self, _t: u64, state: usize, symbol: u8) -> usize {
            state + symbol as usize
        }
        fn estimate(&self, _t: u64, state: usize) -> f64 {
            state as f64
        }
    }

    #[test]
    fn exact_counter_family_is_singletons() {
        let fam = interval_family(&Exact, 6);
        // I(1) = {[0,0], [1,1]} in our 0-based count convention; the
        // paper's I(1) = {[1,1]} corresponds to our level-0 {[0,0]}.
        assert_eq!(fam[0], vec![CountInterval { lo: 0, hi: 0 }]);
        assert_eq!(fam[6].len(), 7, "all 7 counts distinct states");
        assert!(fam[6].iter().all(|iv| iv.lo == iv.hi));
    }

    /// Saturating counter: merges all counts ≥ w−1 into one state.
    struct Saturating(usize);
    impl TimedCounter for Saturating {
        fn width(&self, _t: u64) -> usize {
            self.0
        }
        fn step(&self, _t: u64, state: usize, symbol: u8) -> usize {
            (state + symbol as usize).min(self.0 - 1)
        }
        fn estimate(&self, _t: u64, state: usize) -> f64 {
            state as f64
        }
    }

    #[test]
    fn saturating_counter_grows_one_fat_interval() {
        // Lemma 3.10 in action: the top state's interval stretches with t.
        let fam = interval_family(&Saturating(4), 16);
        let top = fam[16].last().unwrap();
        assert_eq!(top.hi, 16, "max count reaches t");
        assert!(top.hi - top.lo >= 13, "top interval stretched: {top:?}");
        // Its width certifies the approximation failure: no estimate can
        // cover counts 3..16 within a small factor.
    }

    #[test]
    fn interval_family_respects_lemma_3_6_containment() {
        // Every interval at t is contained in some interval at t+1 for the
        // saturating counter (checked explicitly).
        let fam = interval_family(&Saturating(5), 12);
        for t in 0..12 {
            for iv in &fam[t] {
                assert!(
                    fam[t + 1].iter().any(|jv| jv.lo <= iv.lo && iv.hi <= jv.hi),
                    "interval {iv:?} at t={t} not contained at t+1"
                );
            }
        }
    }
}
