//! Theorem 1.8, executed: a white-box-robust streaming algorithm yields a
//! *deterministic* one-way protocol — so robust streaming space is lower
//! bounded by deterministic communication.
//!
//! The demonstration uses a parity-sketch equality stream (the natural
//! o(n)-space candidate for DetGapEQ): the state is `k` parity bits of the
//! inserted string under public random masks. Alice streams `x`, sends the
//! state (k bits) and a seed index; Bob streams `y` and answers "equal" iff
//! all parities vanish.
//!
//! Derandomization (the proof of Theorem 1.8, literally): for her input
//! `x`, Alice enumerates seeds and keeps the first whose parity masks
//! separate `x` from **every** valid unequal `y`. The experiment
//! [`reduction_experiment`] measures, per sketch width `k`, the fraction of
//! inputs for which any seed in the pool works:
//!
//! * for `k` well below `log₂(#inputs)` (the deterministic bound of
//!   Theorem 3.2 at this scale), **no** seed works — a `2^k`-value message
//!   cannot distinguish more than `2^k` rows;
//! * once `k` clears the bound, good seeds appear and the derandomized
//!   protocol is correct on all promise pairs.
//!
//! The streaming state size of any robust algorithm must therefore clear
//! the same bar — which is the content of Theorems 1.9/1.10 once DetGapEQ
//! is encoded into Fp moments or matrix rank (§3.1).

use super::games::{balanced_strings, hamming};
use wb_core::rng::{SplitMix64, TranscriptRng};
use wb_core::space::SpaceUsage;
use wb_core::stream::{InsertOnly, StreamAlg};

/// A `k`-bit parity (XOR) sketch of a characteristic vector over `[n]`,
/// with masks derived from a public seed.
#[derive(Debug, Clone)]
pub struct ParityEqualitySketch {
    /// Public mask per parity bit (`n ≤ 64` here: one word per mask).
    masks: Vec<u64>,
    /// The parity state — the entire message content.
    state: Vec<bool>,
}

impl ParityEqualitySketch {
    /// Sketch with `k` parities over universe `[n]` (`n ≤ 64`), masks
    /// expanded from `seed`.
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        assert!(n <= 64 && k >= 1);
        let mut sm = SplitMix64::new(seed);
        let mask_of = |w: u64| if n == 64 { w } else { w & ((1 << n) - 1) };
        ParityEqualitySketch {
            masks: (0..k).map(|_| mask_of(sm.next_u64())).collect(),
            state: vec![false; k],
        }
    }

    /// Toggle item `i` (insertions over GF(2): inserting `x` then `y`
    /// leaves the sketch of `x ⊕ y`).
    pub fn insert(&mut self, item: u64) {
        for (bit, mask) in self.state.iter_mut().zip(&self.masks) {
            if (mask >> item) & 1 == 1 {
                *bit = !*bit;
            }
        }
    }

    /// Insert a whole bitstring.
    pub fn insert_string(&mut self, s: &[bool]) {
        for (i, &b) in s.iter().enumerate() {
            if b {
                self.insert(i as u64);
            }
        }
    }

    /// `true` iff all parities vanish (the "equal" answer).
    pub fn is_zero(&self) -> bool {
        self.state.iter().all(|&b| !b)
    }

    /// The message Alice sends: the parity state.
    pub fn state_bits(&self) -> &[bool] {
        &self.state
    }
}

impl SpaceUsage for ParityEqualitySketch {
    fn space_bits(&self) -> u64 {
        self.state.len() as u64
    }
}

impl StreamAlg for ParityEqualitySketch {
    type Update = InsertOnly;
    type Output = bool;

    fn process(&mut self, update: &InsertOnly, _rng: &mut TranscriptRng) {
        self.insert(update.0);
    }

    fn query(&self) -> bool {
        self.is_zero()
    }

    fn name(&self) -> &'static str {
        "ParityEqualitySketch"
    }
}

/// Does `seed` make the `k`-parity sketch correct for input `x` against
/// every valid `y` (promise: `y = x` or `HAM ≥ gap`)?
pub fn seed_works_for(
    n: usize,
    k: usize,
    gap: usize,
    seed: u64,
    x: &[bool],
    ys: &[Vec<bool>],
) -> bool {
    for y in ys {
        let d = hamming(x, y);
        if d != 0 && d < gap {
            continue; // outside the promise
        }
        let mut sk = ParityEqualitySketch::new(n, k, seed);
        sk.insert_string(x);
        sk.insert_string(y);
        let says_equal = sk.is_zero();
        if says_equal != (d == 0) {
            return false;
        }
    }
    true
}

/// Result of running the Theorem 1.8 derandomization at one sketch width.
#[derive(Debug, Clone)]
pub struct ReductionReport {
    /// Sketch width `k` (= message bits beyond the seed index).
    pub k: usize,
    /// Fraction of Alice inputs for which some seed in the pool works.
    pub derandomizable_fraction: f64,
    /// The deterministic one-way bound `⌈log₂ #inputs⌉` at this scale.
    pub deterministic_bound: u32,
}

/// Run the derandomization over all balanced inputs of length `n` with
/// Hamming-gap promise `gap`, trying `seed_pool` seeds per input.
pub fn reduction_experiment(n: usize, k: usize, gap: usize, seed_pool: u64) -> ReductionReport {
    let inputs = balanced_strings(n);
    let det_bound = (inputs.len() as f64).log2().ceil() as u32;
    let mut ok = 0usize;
    for x in &inputs {
        if (0..seed_pool).any(|seed| seed_works_for(n, k, gap, seed, x, &inputs)) {
            ok += 1;
        }
    }
    ReductionReport {
        k,
        derandomizable_fraction: ok as f64 / inputs.len() as f64,
        deterministic_bound: det_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_sketch_detects_differences_with_good_seed() {
        let n = 8;
        let mut sk = ParityEqualitySketch::new(n, 8, 42);
        let x = [true, false, true, false, true, false, true, false];
        let y = [false, true, true, false, true, false, true, false];
        sk.insert_string(&x);
        sk.insert_string(&x);
        assert!(sk.is_zero(), "x ⊕ x = 0");
        let mut sk2 = ParityEqualitySketch::new(n, 8, 42);
        sk2.insert_string(&x);
        sk2.insert_string(&y);
        // x ⊕ y nonzero: with 8 parities over 8 bits this seed separates.
        assert!(!sk2.is_zero());
    }

    #[test]
    fn wide_sketches_derandomize_fully() {
        // k = 10 > log2(C(8,4)) = 6.13: every input finds a good seed.
        let report = reduction_experiment(8, 10, 2, 64);
        assert_eq!(report.derandomizable_fraction, 1.0);
        assert_eq!(report.deterministic_bound, 7);
    }

    #[test]
    fn narrow_sketches_cannot_be_derandomized() {
        // k = 2 ≪ 7 bits: a 4-value message cannot distinguish 70 rows, so
        // no seed can work for (almost) any input.
        let report = reduction_experiment(8, 2, 2, 64);
        assert!(
            report.derandomizable_fraction < 0.1,
            "fraction {} should be ~0",
            report.derandomizable_fraction
        );
    }

    #[test]
    fn crossover_tracks_the_deterministic_bound() {
        // Sweep k: the derandomizable fraction transitions from ~0 to 1
        // around the deterministic bound (7 bits at n = 8).
        let fractions: Vec<f64> = [2usize, 5, 7, 9]
            .iter()
            .map(|&k| reduction_experiment(8, k, 2, 64).derandomizable_fraction)
            .collect();
        assert!(fractions[0] < 0.1, "k=2: {fractions:?}");
        assert!(
            fractions[3] > 0.95,
            "k=9 must be (nearly) fully derandomizable: {fractions:?}"
        );
        // Monotone trend.
        assert!(fractions.windows(2).all(|w| w[0] <= w[1] + 0.05));
    }

    #[test]
    fn seed_works_respects_promise() {
        // With gap = 4, pairs at Hamming distance 2 are excluded, making
        // seeds easier to find than with gap = 2.
        let n = 8;
        let inputs = balanced_strings(n);
        let x = &inputs[0];
        let works_loose = (0..32u64)
            .filter(|&s| seed_works_for(n, 4, 4, s, x, &inputs))
            .count();
        let works_tight = (0..32u64)
            .filter(|&s| seed_works_for(n, 4, 2, s, x, &inputs))
            .count();
        assert!(works_loose >= works_tight);
    }
}
