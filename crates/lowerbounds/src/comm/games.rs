//! One-way two-player communication games and their deterministic lower
//! bounds, computed exactly at small scale.
//!
//! For a one-way deterministic protocol, Alice's message partitions her
//! inputs; two inputs `x, x′` can share a message only if `f(x, y) =
//! f(x′, y)` for **every** valid `y`. The one-way deterministic complexity
//! is therefore exactly `⌈log₂(#distinct rows of the communication
//! matrix)⌉` — [`one_way_deterministic_bound`] computes it by enumerating
//! the matrix. This is the quantity Theorem 1.8 transfers to white-box
//! streaming space.

/// A (promise) two-player game with boolean answer.
pub trait OneWayGame {
    /// Alice's valid inputs.
    fn alice_inputs(&self) -> Vec<Vec<bool>>;
    /// Bob's valid inputs *given* Alice's input (promise problems restrict
    /// the pairs).
    fn bob_inputs(&self, x: &[bool]) -> Vec<Vec<bool>>;
    /// The answer `f(x, y)`.
    fn answer(&self, x: &[bool], y: &[bool]) -> bool;
}

/// Plain Equality on `{0,1}^n`: deterministic one-way complexity `n`.
#[derive(Debug, Clone, Copy)]
pub struct Equality {
    /// String length.
    pub n: usize,
}

impl OneWayGame for Equality {
    fn alice_inputs(&self) -> Vec<Vec<bool>> {
        all_strings(self.n)
    }
    fn bob_inputs(&self, _x: &[bool]) -> Vec<Vec<bool>> {
        all_strings(self.n)
    }
    fn answer(&self, x: &[bool], y: &[bool]) -> bool {
        x == y
    }
}

/// `DetGapEQ_n` (Definition 3.1): balanced strings with the promise
/// `x = y` or `HAM(x, y) ≥ gap`. Deterministic complexity `Ω(n)`
/// (Theorem 3.2, `[BCW98]`).
#[derive(Debug, Clone, Copy)]
pub struct DetGapEquality {
    /// String length (even).
    pub n: usize,
    /// Hamming-distance promise for unequal pairs (paper: `n/10`).
    pub gap: usize,
}

impl OneWayGame for DetGapEquality {
    fn alice_inputs(&self) -> Vec<Vec<bool>> {
        balanced_strings(self.n)
    }
    fn bob_inputs(&self, x: &[bool]) -> Vec<Vec<bool>> {
        balanced_strings(self.n)
            .into_iter()
            .filter(|y| {
                let d = hamming(x, y);
                d == 0 || d >= self.gap
            })
            .collect()
    }
    fn answer(&self, x: &[bool], y: &[bool]) -> bool {
        x == y
    }
}

/// Index: Alice holds `x ∈ {0,1}^n`, Bob an index (one-hot encoded);
/// answer `x[i]`. One-way deterministic (and randomized) complexity `n`.
#[derive(Debug, Clone, Copy)]
pub struct Index {
    /// String length.
    pub n: usize,
}

impl OneWayGame for Index {
    fn alice_inputs(&self) -> Vec<Vec<bool>> {
        all_strings(self.n)
    }
    fn bob_inputs(&self, _x: &[bool]) -> Vec<Vec<bool>> {
        (0..self.n)
            .map(|i| (0..self.n).map(|j| j == i).collect())
            .collect()
    }
    fn answer(&self, x: &[bool], y: &[bool]) -> bool {
        let i = y.iter().position(|&b| b).expect("one-hot");
        x[i]
    }
}

/// All binary strings of length `n` (small `n` only).
pub fn all_strings(n: usize) -> Vec<Vec<bool>> {
    assert!(n <= 20, "enumeration explodes past n = 20");
    (0..1u32 << n)
        .map(|m| (0..n).map(|i| (m >> i) & 1 == 1).collect())
        .collect()
}

/// All balanced (weight `n/2`) strings of length `n`.
pub fn balanced_strings(n: usize) -> Vec<Vec<bool>> {
    all_strings(n)
        .into_iter()
        .filter(|s| s.iter().filter(|&&b| b).count() == n / 2)
        .collect()
}

/// Hamming distance.
pub fn hamming(x: &[bool], y: &[bool]) -> usize {
    x.iter().zip(y).filter(|(a, b)| a != b).count()
}

/// Exact one-way deterministic communication bound:
/// `⌈log₂(#distinct rows)⌉` of the communication matrix.
///
/// For promise problems, two rows are *distinguishable* only on Bob inputs
/// valid for **both** Alice inputs; rows are merged greedily when
/// compatible (an upper-bound-tight count for the games here).
pub fn one_way_deterministic_bound<G: OneWayGame>(game: &G) -> u32 {
    let xs = game.alice_inputs();
    // Row signature restricted to each x's own valid Bob set would not be
    // comparable across rows; instead compare on the union, treating
    // invalid pairs as wildcards that never separate rows.
    let mut classes: Vec<Vec<&Vec<bool>>> = Vec::new();
    'next_x: for x in &xs {
        for class in classes.iter_mut() {
            let rep = class[0];
            if rows_compatible(game, rep, x) {
                class.push(x);
                continue 'next_x;
            }
        }
        classes.push(vec![x]);
    }
    (classes.len() as f64).log2().ceil() as u32
}

fn rows_compatible<G: OneWayGame>(game: &G, a: &[bool], b: &[bool]) -> bool {
    // Compatible iff no Bob input valid for both separates them.
    let ys_a = game.bob_inputs(a);
    let ys_b = game.bob_inputs(b);
    for y in ys_a.iter().filter(|y| ys_b.contains(y)) {
        if game.answer(a, y) != game.answer(b, y) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_bound_is_n() {
        for n in [2usize, 4, 6] {
            assert_eq!(one_way_deterministic_bound(&Equality { n }), n as u32);
        }
    }

    #[test]
    fn index_bound_is_n() {
        for n in [2usize, 4, 6] {
            assert_eq!(one_way_deterministic_bound(&Index { n }), n as u32);
        }
    }

    #[test]
    fn gap_equality_bound_is_linear() {
        // Gap 2 on balanced strings: all C(n, n/2) rows stay distinct
        // (any two balanced x ≠ x′ have HAM ≥ 2, so x′ is a valid Bob input
        // for x and separates the rows). log2(C(8,4)) = log2(70) → 7 bits.
        let g = DetGapEquality { n: 8, gap: 2 };
        let bound = one_way_deterministic_bound(&g);
        assert_eq!(bound, 7, "log2(70) rounded up");
        // Linear shape: n=10 gives log2(C(10,5)) = log2(252) → 8.
        let g10 = DetGapEquality { n: 10, gap: 2 };
        assert_eq!(one_way_deterministic_bound(&g10), 8);
    }

    #[test]
    fn larger_gap_merges_rows() {
        // With a huge gap the promise excludes most unequal pairs, so rows
        // can merge and the bound drops below the gap-2 value.
        let tight = one_way_deterministic_bound(&DetGapEquality { n: 8, gap: 2 });
        let loose = one_way_deterministic_bound(&DetGapEquality { n: 8, gap: 8 });
        assert!(loose <= tight);
    }

    #[test]
    fn balanced_strings_count() {
        assert_eq!(balanced_strings(4).len(), 6);
        assert_eq!(balanced_strings(8).len(), 70);
        for s in balanced_strings(6) {
            assert_eq!(s.iter().filter(|&&b| b).count(), 3);
        }
    }

    #[test]
    fn hamming_basics() {
        let a = [true, false, true];
        let b = [true, true, false];
        assert_eq!(hamming(&a, &b), 2);
        assert_eq!(hamming(&a, &a), 0);
    }
}
