//! The communication-matrix model for white-box adversaries (§3.3 of the
//! paper), built concretely for small games.
//!
//! A one-way protocol induced by a streaming algorithm `A` defines a matrix
//! `M` whose rows are indexed by `(x, r_x)` (Alice's input and randomness)
//! and columns by `(y, r_y)`. Because `A` uses `s` bits of state, the rows
//! partition into at most `2^s` classes (`state(x, r_x)`), and for each
//! state the paper defines
//!
//! ```text
//! p_state = min_y  Pr_{r_y}[ M_{(x,r_x),(y,r_y)} = f(x, y) ]        (1)
//! ```
//!
//! Robustness against an unbounded white-box adversary means
//! `E_{r_x}[p_state(x, r_x)] ≥ p` for every `x`; a *computationally
//! bounded* adversary only forces the weaker average-over-its-chosen-`y`
//! guarantee. [`CommMatrix::analyze`] materializes all of this for small
//! input spaces so the experiments can watch `p_state` collapse as the
//! state gets smaller than the deterministic bound.

use std::collections::HashMap;

/// A materialized §3.3 communication matrix for one protocol.
#[derive(Debug, Clone)]
pub struct CommMatrix {
    /// Number of distinct states observed (≤ 2^s).
    pub distinct_states: usize,
    /// For each Alice input index: `E_{r_x}[p_state(x, r_x)]`.
    pub expected_p_state: Vec<f64>,
}

impl CommMatrix {
    /// Build the matrix for a protocol given by two closures:
    ///
    /// * `alice(x_idx, r_x) -> state` — run the streaming algorithm on the
    ///   stream encoding `x` with randomness `r_x`, return its state
    ///   (any hashable encoding);
    /// * `bob(state, x_idx, y_idx, r_y) -> bool` — continue from `state`
    ///   on the stream encoding `y` with randomness `r_y` and report
    ///   whether the final answer equals `f(x, y)`.
    ///
    /// `num_x`/`num_y` index the input spaces; `num_rx`/`num_ry` the
    /// randomness spaces (enumerated exhaustively — small scale only).
    pub fn analyze<S, FA, FB>(
        num_x: usize,
        num_y: usize,
        num_rx: u64,
        num_ry: u64,
        mut alice: FA,
        mut bob: FB,
    ) -> CommMatrix
    where
        S: std::hash::Hash + Eq + Clone,
        FA: FnMut(usize, u64) -> S,
        FB: FnMut(&S, usize, usize, u64) -> bool,
    {
        let mut states: HashMap<S, usize> = HashMap::new();
        let mut expected_p_state = Vec::with_capacity(num_x);
        for x in 0..num_x {
            let mut sum_p = 0.0;
            for rx in 0..num_rx {
                let state = alice(x, rx);
                let next_id = states.len();
                states.entry(state.clone()).or_insert(next_id);
                // p_state: worst case over y of the r_y success rate.
                let mut p_state = 1.0f64;
                for y in 0..num_y {
                    let correct = (0..num_ry).filter(|&ry| bob(&state, x, y, ry)).count();
                    p_state = p_state.min(correct as f64 / num_ry as f64);
                }
                sum_p += p_state;
            }
            expected_p_state.push(sum_p / num_rx as f64);
        }
        CommMatrix {
            distinct_states: states.len(),
            expected_p_state,
        }
    }

    /// The worst `E_{r_x}[p_state]` over Alice inputs — the robustness
    /// level `p` this protocol actually achieves against an unbounded
    /// white-box adversary.
    pub fn robustness(&self) -> f64 {
        self.expected_p_state
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::games::balanced_strings;
    use crate::comm::reduction::ParityEqualitySketch;

    /// Instantiate §3.3 for the parity-sketch equality protocol: Alice's
    /// state is the k parity bits of x under seed r_x; Bob toggles y into
    /// the state and answers "equal" iff it reads zero. (`r_y` is unused —
    /// Bob is deterministic given the public seed — so `num_ry = 1`.)
    fn parity_matrix(n: usize, k: usize, seeds: u64) -> CommMatrix {
        let inputs = balanced_strings(n);
        let inputs2 = inputs.clone();
        let inputs3 = inputs.clone();
        CommMatrix::analyze(
            inputs.len(),
            inputs2.len(),
            seeds,
            1,
            move |x_idx, rx| {
                let mut sk = ParityEqualitySketch::new(n, k, rx);
                sk.insert_string(&inputs2[x_idx]);
                // The state Alice sends: seed + parity bits.
                (rx, sk.state_bits().to_vec())
            },
            move |(rx, state_bits), x_idx, y_idx, _ry| {
                let mut sk = ParityEqualitySketch::new(n, k, *rx);
                // Rebuild Alice's state, then continue with y.
                sk.insert_string(&inputs3[x_idx]);
                assert_eq!(sk.state_bits(), &state_bits[..]);
                sk.insert_string(&inputs3[y_idx]);
                let says_equal = sk.is_zero();
                says_equal == (x_idx == y_idx)
            },
        )
    }

    #[test]
    fn wide_parity_sketch_achieves_high_robustness() {
        // k = 10 > log2(C(6,3) = 20) ≈ 4.3: most seeds separate x from all
        // y ≠ x, so the worst-case-over-y success is high on average.
        let m = parity_matrix(6, 10, 16);
        assert!(
            m.robustness() > 0.8,
            "robustness {} too low for a wide sketch",
            m.robustness()
        );
    }

    #[test]
    fn narrow_parity_sketch_has_low_robustness() {
        // k = 2: a 4-value state cannot distinguish 20 rows; for every
        // (x, r_x) there exists a fooling y, so p_state is far from 1. The
        // unbounded adversary of §3.3 picks exactly that y.
        let m = parity_matrix(6, 2, 16);
        assert!(
            m.robustness() < 0.5,
            "robustness {} too high for a narrow sketch",
            m.robustness()
        );
    }

    #[test]
    fn state_count_respects_the_2_to_s_bound() {
        let (n, k, seeds) = (6usize, 3usize, 8u64);
        let m = parity_matrix(n, k, seeds);
        // States are (seed, k bits): at most seeds · 2^k distinct.
        assert!(m.distinct_states <= (seeds as usize) << k);
        assert!(m.distinct_states > 1);
    }

    #[test]
    fn robustness_is_monotone_in_state_size() {
        let narrow = parity_matrix(6, 2, 8).robustness();
        let mid = parity_matrix(6, 5, 8).robustness();
        let wide = parity_matrix(6, 9, 8).robustness();
        assert!(narrow <= mid + 0.05, "{narrow} vs {mid}");
        assert!(mid <= wide + 0.05, "{mid} vs {wide}");
    }
}
