//! Communication-complexity machinery (§3.1, §3.3).
//!
//! * [`games`] — one-way games (Equality, DetGapEQ per Definition 3.1,
//!   Index) with exact deterministic bounds at small scale;
//! * [`reduction`] — Theorem 1.8 executed: derandomizing a streaming
//!   sketch into a deterministic one-way protocol, and the width/bound
//!   crossover that realizes the Ω(n) lower bounds of Theorems 1.9/1.10;
//! * [`matrix`] — the §3.3 communication-matrix model: states, `p_state`,
//!   and the robustness level a protocol actually achieves.

pub mod games;
pub mod matrix;
pub mod reduction;

pub use games::{
    balanced_strings, hamming, one_way_deterministic_bound, DetGapEquality, Equality, Index,
    OneWayGame,
};
pub use matrix::CommMatrix;
pub use reduction::{reduction_experiment, ParityEqualitySketch, ReductionReport};
