//! Leveled read-once branching programs (OBDDs) with a timer — the
//! computational model of Theorem 1.11.
//!
//! A deterministic streaming algorithm over alphabet `{0, 1}` that may
//! consult a free timer is exactly a time-indexed family of transition
//! functions and per-state estimates: [`TimedCounter`]. The
//! [`verify_counter`] checker computes, per level, the *reachable* states
//! together with the minimum and maximum achievable true counts, and
//! reports an explicit counterexample stream whenever some reachable
//! state's estimate violates the `(1+ε)` guarantee at some prefix — the
//! executable form of "the adversary finds a bad input".

/// A deterministic counter with timer over binary streams.
pub trait TimedCounter {
    /// Number of states available at time `t` (after `t` symbols).
    fn width(&self, t: u64) -> usize;

    /// Transition: state at time `t` reading `symbol ∈ {0,1}` → state at
    /// `t+1`.
    fn step(&self, t: u64, state: usize, symbol: u8) -> usize;

    /// The count estimate output in `state` at time `t`.
    fn estimate(&self, t: u64, state: usize) -> f64;

    /// Initial state at time 0.
    fn start_state(&self) -> usize {
        0
    }
}

/// A violation certificate: a concrete input stream and the prefix at
/// which the estimate broke the guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// The input bits (only the violating prefix).
    pub stream: Vec<u8>,
    /// True number of ones in the prefix.
    pub true_count: u64,
    /// The counter's estimate there.
    pub estimate: f64,
}

/// Reachability record per `(level, state)`.
#[derive(Debug, Clone)]
struct Reach {
    /// Minimum achievable ones-count, with a witness path.
    min_count: u64,
    min_path: Vec<u8>,
    /// Maximum achievable ones-count, with a witness path.
    max_count: u64,
    max_path: Vec<u8>,
}

/// Verify that `counter` is a `(1+eps)`-multiplicative approximation of the
/// ones-count on **every** prefix of **every** binary stream of length
/// `≤ n`. Returns the widths actually used per level on success, or the
/// first counterexample found.
///
/// The guarantee checked: `k/(1+eps) − slack ≤ estimate ≤ (1+eps)·k +
/// slack` with `slack = 1` absorbing integer rounding at tiny counts.
pub fn verify_counter<C: TimedCounter>(
    counter: &C,
    n: u64,
    eps: f64,
) -> Result<Vec<usize>, Counterexample> {
    let mut frontier: Vec<Option<Reach>> = vec![None; counter.width(0)];
    frontier[counter.start_state()] = Some(Reach {
        min_count: 0,
        min_path: vec![],
        max_count: 0,
        max_path: vec![],
    });
    let mut widths = Vec::with_capacity(n as usize + 1);

    for t in 0..=n {
        widths.push(frontier.iter().filter(|r| r.is_some()).count());
        // Check every reachable state at this level.
        for (state, reach) in frontier.iter().enumerate() {
            let Some(reach) = reach else { continue };
            let e = counter.estimate(t, state);
            // Binding constraints at the extreme achievable counts.
            let hi_ok = e <= (1.0 + eps) * reach.min_count as f64 + 1.0;
            let lo_ok = e >= reach.max_count as f64 / (1.0 + eps) - 1.0;
            if !hi_ok {
                return Err(Counterexample {
                    stream: reach.min_path.clone(),
                    true_count: reach.min_count,
                    estimate: e,
                });
            }
            if !lo_ok {
                return Err(Counterexample {
                    stream: reach.max_path.clone(),
                    true_count: reach.max_count,
                    estimate: e,
                });
            }
        }
        if t == n {
            break;
        }
        // Advance the frontier.
        let mut next: Vec<Option<Reach>> = vec![None; counter.width(t + 1)];
        for (state, reach) in frontier.iter().enumerate() {
            let Some(reach) = reach else { continue };
            for symbol in [0u8, 1u8] {
                let s2 = counter.step(t, state, symbol);
                assert!(s2 < next.len(), "transition out of declared width at t={t}");
                let min_count = reach.min_count + symbol as u64;
                let max_count = reach.max_count + symbol as u64;
                let entry = &mut next[s2];
                match entry {
                    None => {
                        let mut min_path = reach.min_path.clone();
                        min_path.push(symbol);
                        let mut max_path = reach.max_path.clone();
                        max_path.push(symbol);
                        *entry = Some(Reach {
                            min_count,
                            min_path,
                            max_count,
                            max_path,
                        });
                    }
                    Some(r) => {
                        if min_count < r.min_count {
                            r.min_count = min_count;
                            r.min_path = reach.min_path.clone();
                            r.min_path.push(symbol);
                        }
                        if max_count > r.max_count {
                            r.max_count = max_count;
                            r.max_path = reach.max_path.clone();
                            r.max_path.push(symbol);
                        }
                    }
                }
            }
        }
        frontier = next;
    }
    Ok(widths)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact counter: state = count (width t+1 at time t).
    pub struct Exact;
    impl TimedCounter for Exact {
        fn width(&self, t: u64) -> usize {
            t as usize + 1
        }
        fn step(&self, _t: u64, state: usize, symbol: u8) -> usize {
            state + symbol as usize
        }
        fn estimate(&self, _t: u64, state: usize) -> f64 {
            state as f64
        }
    }

    /// Saturating counter: counts up to `w − 1` then sticks.
    pub struct Saturating(pub usize);
    impl TimedCounter for Saturating {
        fn width(&self, _t: u64) -> usize {
            self.0
        }
        fn step(&self, _t: u64, state: usize, symbol: u8) -> usize {
            (state + symbol as usize).min(self.0 - 1)
        }
        fn estimate(&self, _t: u64, state: usize) -> f64 {
            state as f64
        }
    }

    #[test]
    fn exact_counter_verifies_at_any_eps() {
        let widths = verify_counter(&Exact, 32, 0.0).expect("exact is exact");
        assert_eq!(widths[32], 33, "width grows to t+1");
    }

    #[test]
    fn saturating_counter_fails_beyond_capacity() {
        // Width 8 counts to 7; at eps = 0.25 the guarantee dies once the
        // true count exceeds (7+1)·1.25.
        let err = verify_counter(&Saturating(8), 64, 0.25).expect_err("must fail");
        assert!(err.true_count > 7, "violation at count {}", err.true_count);
        assert_eq!(
            err.stream.iter().filter(|&&b| b == 1).count() as u64,
            err.true_count,
            "witness stream must realize the claimed count"
        );
        assert!((err.estimate - 7.0).abs() < 1e-9, "stuck at saturation");
    }

    #[test]
    fn saturating_counter_passes_short_horizons() {
        // Up to n = 8 the width-8 saturating counter is exact.
        assert!(verify_counter(&Saturating(8), 7, 0.0).is_ok());
    }

    #[test]
    fn counterexample_stream_replays() {
        let err = verify_counter(&Saturating(4), 32, 0.5).expect_err("fails");
        // Replaying the stream through the counter reproduces the estimate.
        let c = Saturating(4);
        let mut state = c.start_state();
        for (t, &b) in err.stream.iter().enumerate() {
            state = c.step(t as u64, state, b);
        }
        assert!((c.estimate(err.stream.len() as u64, state) - err.estimate).abs() < 1e-9);
    }
}
