//! Stream gadgets that carry DetGapEQ into concrete streaming problems —
//! the encoding step of Theorems 3.3 (Fp moments) and 1.10 (matrix rank).
//!
//! Alice holds a balanced `x ∈ {0,1}ⁿ`, Bob a balanced `y`, with the
//! promise `x = y` or `HAM(x, y) ≥ gap`:
//!
//! * **Fp gadget** (proof of Theorem 3.3): Alice streams the items of `x`,
//!   Bob appends the items of `y`; the induced frequency vector is `x + y`.
//!   If `x = y` every live coordinate has frequency 2, so
//!   `F_p = (n/2)·2^p`; if `HAM = d`, the overlap shrinks to
//!   `n/2 − d/2` coordinates of frequency 2 plus `d` of frequency 1, and
//!   the moments separate by a constant factor `C_p > 1` for every
//!   `p ≥ 0, p ≠ 1` (and exactly coincide at `p = 1` — which is why the
//!   theorem excludes it).
//! * **Rank gadget** (proof of Theorem 1.10): the matrix
//!   `[diag(x); diag(y)]` has rank `|supp(x) ∪ supp(y)| = n/2 + d/2` —
//!   rank `n/2` iff `x = y`, rank `≥ n/2 + gap/2` otherwise.
//!
//! A white-box-robust `C_p`-approximation (or `C`-approximation to rank)
//! therefore decides DetGapEQ through Theorem 1.8's reduction and must use
//! `Ω(n)` bits.

use super::comm::games::hamming;

/// Closed-form `F_p(x + y)` for balanced `x, y` at Hamming distance `d`
/// over length `n`: `(n − d)/2` coordinates of frequency 2 and `d` of
/// frequency 1.
pub fn fp_closed_form(n: u64, d: u64, p: u32) -> u64 {
    debug_assert!(d <= n);
    let twos = (n - d) / 2;
    if p == 0 {
        twos + d
    } else {
        twos * 2u64.pow(p) + d
    }
}

/// The distinguishing factor `C_p` the gadget guarantees at the promise
/// boundary: the ratio between the equal-case and the `d = gap` case
/// moments (or its inverse, whichever exceeds 1). Returns 1.0 exactly when
/// `p = 1` — no gap, matching the theorem's exclusion.
pub fn fp_gap_factor(n: u64, gap: u64, p: u32) -> f64 {
    let equal = fp_closed_form(n, 0, p) as f64;
    let apart = fp_closed_form(n, gap, p) as f64;
    if equal >= apart {
        equal / apart
    } else {
        apart / equal
    }
}

/// The rank of the Theorem 1.10 gadget matrix `[diag(x); diag(y)]`:
/// `|supp(x) ∪ supp(y)|`.
pub fn rank_of_gadget(x: &[bool], y: &[bool]) -> u64 {
    x.iter().zip(y).filter(|&(&a, &b)| a || b).count() as u64
}

/// The gadget matrix as integer rows (for streaming into `wb-linalg`):
/// `2n × n`, row `i` is `x[i]·e_i`, row `n+i` is `y[i]·e_i`.
pub fn rank_gadget_rows(x: &[bool], y: &[bool]) -> Vec<Vec<i64>> {
    let n = x.len();
    let mut rows = vec![vec![0i64; n]; 2 * n];
    for i in 0..n {
        if x[i] {
            rows[i][i] = 1;
        }
        if y[i] {
            rows[n + i][i] = 1;
        }
    }
    rows
}

/// Exhaustively verify, over all valid promise pairs at small `n`, that a
/// `C`-approximation to `F_p` decides DetGapEQ: the two cases' moment
/// ranges are separated by more than `C²` apart in ratio. Returns the
/// worst-case ratio observed.
pub fn verify_fp_gap(n: usize, gap: usize, p: u32) -> f64 {
    use super::comm::games::balanced_strings;
    let inputs = balanced_strings(n);
    let equal_value = fp_closed_form(n as u64, 0, p);
    let mut worst = f64::INFINITY;
    for x in &inputs {
        for y in &inputs {
            let d = hamming(x, y);
            if d == 0 || d < gap {
                continue;
            }
            let fp = fp_of_union_exact(x, y, p);
            let ratio = if equal_value >= fp {
                equal_value as f64 / fp as f64
            } else {
                fp as f64 / equal_value as f64
            };
            worst = worst.min(ratio);
        }
    }
    worst
}

/// Direct (non-closed-form) computation of `F_p(x + y)`.
pub fn fp_of_union_exact(x: &[bool], y: &[bool], p: u32) -> u64 {
    x.iter()
        .zip(y)
        .map(|(&a, &b)| {
            let f = u64::from(a) + u64::from(b);
            if f == 0 {
                0
            } else if p == 0 {
                1
            } else {
                f.pow(p)
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::games::balanced_strings;

    #[test]
    fn closed_form_matches_direct_computation() {
        for x in balanced_strings(8) {
            for y in balanced_strings(8) {
                let d = hamming(&x, &y) as u64;
                for p in [0u32, 1, 2, 3] {
                    assert_eq!(
                        fp_of_union_exact(&x, &y, p),
                        fp_closed_form(8, d, p),
                        "p={p}, d={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn p_equal_one_has_no_gap() {
        // F1 = n for every promise pair: the theorem's p ≠ 1 exclusion.
        assert_eq!(fp_gap_factor(100, 10, 1), 1.0);
        for d in [0u64, 10, 50] {
            assert_eq!(fp_closed_form(100, d, 1), 100);
        }
    }

    #[test]
    fn constant_gap_for_p_zero_and_two() {
        // d = n/10 (the paper's promise): constant-factor gaps.
        let n = 1000u64;
        let gap = n / 10;
        let c0 = fp_gap_factor(n, gap, 0);
        let c2 = fp_gap_factor(n, gap, 2);
        assert!(c0 > 1.04 && c0 < 1.2, "C0 = {c0}");
        assert!(c2 > 1.04 && c2 < 1.2, "C2 = {c2}");
        // The gap does not vanish as n grows (d scales with n).
        let c2_big = fp_gap_factor(100 * n, 100 * gap, 2);
        assert!((c2 - c2_big).abs() < 1e-9, "scale-invariant gap");
    }

    #[test]
    fn exhaustive_verification_at_small_n() {
        // Every promise pair at n = 8, gap = 2 is separated by ≥ the
        // boundary factor for p = 2.
        let worst = verify_fp_gap(8, 2, 2);
        let boundary = fp_gap_factor(8, 2, 2);
        assert!(
            worst >= boundary - 1e-9,
            "worst {worst} below boundary {boundary}"
        );
        assert!(worst > 1.0);
    }

    #[test]
    fn rank_gadget_separates_equality() {
        let x = vec![true, false, true, false];
        let y_eq = x.clone();
        let y_neq = vec![false, true, true, false]; // HAM = 2
        assert_eq!(rank_of_gadget(&x, &y_eq), 2);
        assert_eq!(rank_of_gadget(&x, &y_neq), 3);
        // Rows realize the claimed rank structure.
        let rows = rank_gadget_rows(&x, &y_neq);
        assert_eq!(rows.len(), 8);
        let live_cols: Vec<usize> = (0..4).filter(|&j| rows.iter().any(|r| r[j] != 0)).collect();
        assert_eq!(live_cols.len(), 3);
    }

    #[test]
    fn rank_gadget_gap_is_constant_factor() {
        // d = n/10 ⇒ rank ratio (n/2 + d/2)/(n/2) = 1 + d/n = 1.1.
        let n = 1000usize;
        let x: Vec<bool> = (0..n).map(|i| i < n / 2).collect();
        // y: flip d/2 ones off and d/2 zeros on.
        let d = n / 10;
        let y: Vec<bool> = (0..n)
            .map(|i| {
                if i < d / 2 {
                    false
                } else if (n / 2..n / 2 + d / 2).contains(&i) {
                    true
                } else {
                    i < n / 2
                }
            })
            .collect();
        assert_eq!(hamming(&x, &y), d);
        let ratio = rank_of_gadget(&x, &y) as f64 / rank_of_gadget(&x, &x) as f64;
        assert!((ratio - 1.1).abs() < 1e-9, "ratio {ratio}");
    }
}
