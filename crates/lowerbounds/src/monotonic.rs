//! Monotonic counters (Definition 3.4).
//!
//! A monotonic counter `χ : Σ* → ℕ∖{0}` starts at 1 and, for every prefix,
//! the set of one-symbol increments is exactly `{0, 1}` — some symbol
//! leaves the count, some symbol raises it by one. Theorem 1.11's interval
//! argument (Lemmas 3.5–3.10) is stated for this whole class; the
//! ones-counter is the canonical instance.

/// A monotonic counter over a finite alphabet.
pub trait MonotonicCounter {
    /// Alphabet size.
    fn alphabet(&self) -> usize;

    /// The increment caused by `symbol` at the current prefix
    /// (must be 0 or 1; both must occur over the alphabet).
    fn increment(&self, symbol: usize) -> u64;

    /// The counter value of a string (starts at 1 per Definition 3.4).
    fn value(&self, s: &[usize]) -> u64 {
        1 + s.iter().map(|&c| self.increment(c)).sum::<u64>()
    }
}

/// The ones-counter: `χ(σ) = 1 + #{i : σᵢ = 1}` over `Σ = {0, 1}`.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnesCounter;

impl MonotonicCounter for OnesCounter {
    fn alphabet(&self) -> usize {
        2
    }

    fn increment(&self, symbol: usize) -> u64 {
        debug_assert!(symbol < 2);
        symbol as u64
    }
}

/// Check Definition 3.4 on a counter: increments are in `{0, 1}` and both
/// values are realized.
pub fn is_monotonic<C: MonotonicCounter>(c: &C) -> bool {
    let incs: Vec<u64> = (0..c.alphabet()).map(|s| c.increment(s)).collect();
    incs.iter().all(|&i| i <= 1) && incs.contains(&0) && incs.contains(&1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ones_counter_satisfies_definition() {
        assert!(is_monotonic(&OnesCounter));
        assert_eq!(OnesCounter.value(&[]), 1);
        assert_eq!(OnesCounter.value(&[1, 0, 1, 1]), 4);
    }

    #[test]
    fn counter_can_reach_any_value_up_to_t_plus_one() {
        // After t symbols the value can be anything in {1, …, t+1}.
        let t = 5;
        for target in 1..=(t + 1) {
            let s: Vec<usize> = (0..t).map(|i| usize::from(i < target - 1)).collect();
            assert_eq!(OnesCounter.value(&s), target as u64);
        }
    }

    struct Bad;
    impl MonotonicCounter for Bad {
        fn alphabet(&self) -> usize {
            2
        }
        fn increment(&self, _symbol: usize) -> u64 {
            1 // never stays: not monotonic per Definition 3.4
        }
    }

    #[test]
    fn rejects_always_incrementing_counter() {
        assert!(!is_monotonic(&Bad));
    }
}
