//! # wb-lowerbounds — executable lower bounds (§3 of the paper)
//!
//! Lower bounds in this workspace are not just statements — they run:
//!
//! | module | paper anchor | contents |
//! |---|---|---|
//! | [`obdd`] | §3.2 model | read-once branching programs with timer; exhaustive verifier with explicit counterexample streams |
//! | [`monotonic`] | Definition 3.4 | monotonic counters |
//! | [`intervals`] | Lemmas 3.5–3.10 | the forced interval-family dynamics and the certified width bound of Theorem 1.11 |
//! | [`counting`] | Theorem 1.11 | candidate deterministic counters (exact, saturating, "deterministic Morris") and their verdicts |
//! | [`comm`] | §3.1 / Theorem 1.8 | one-way games, exact deterministic bounds, and the executed derandomization reduction |
//! | [`gadgets`] | Theorems 3.3 / 1.10 proofs | the DetGapEQ→Fp-moment and DetGapEQ→rank stream encodings with verified constant gaps |

pub mod comm;
pub mod counting;
pub mod gadgets;
pub mod intervals;
pub mod monotonic;
pub mod obdd;

pub use comm::{one_way_deterministic_bound, reduction_experiment, DetGapEquality, Equality};
pub use counting::{BucketCounter, ExactCounter, SaturatingCounter};
pub use intervals::{interval_family, width_lower_bound, CountInterval, ErrorBudget};
pub use obdd::{verify_counter, Counterexample, TimedCounter};
