//! Candidate deterministic counters-with-timer, checked against the
//! Theorem 1.11 machinery.
//!
//! Theorem 1.11 says: *no* deterministic `(1+ε)`-approximate counter with
//! timer beats `Ω(log n)` bits — i.e. `poly(n)` states. The natural
//! "deterministic Morris" attempts all die against the exhaustive verifier:
//!
//! * [`SaturatingCounter`] — caps the count; dies once the cap is passed;
//! * [`BucketCounter`] — stores `⌊log_{1+δ}⌋`-style buckets; deterministic
//!   rounding drifts and the verifier exhibits a stream where the bucket's
//!   achievable-count interval outgrows the guarantee (the Lemma 3.10
//!   stretch made concrete);
//! * [`ExactCounter`] — correct, with exactly the `t+1` states the theorem
//!   predicts are necessary (up to `poly`).

use crate::obdd::TimedCounter;

/// Exact counter: state = count.
#[derive(Debug, Clone, Copy)]
pub struct ExactCounter;

impl TimedCounter for ExactCounter {
    fn width(&self, t: u64) -> usize {
        t as usize + 1
    }
    fn step(&self, _t: u64, state: usize, symbol: u8) -> usize {
        state + symbol as usize
    }
    fn estimate(&self, _t: u64, state: usize) -> f64 {
        state as f64
    }
}

/// Saturating counter with `width` states: exact until `width − 1`, stuck
/// afterwards.
#[derive(Debug, Clone, Copy)]
pub struct SaturatingCounter {
    /// Number of states.
    pub width: usize,
}

impl TimedCounter for SaturatingCounter {
    fn width(&self, _t: u64) -> usize {
        self.width
    }
    fn step(&self, _t: u64, state: usize, symbol: u8) -> usize {
        (state + symbol as usize).min(self.width - 1)
    }
    fn estimate(&self, _t: u64, state: usize) -> f64 {
        state as f64
    }
}

/// "Deterministic Morris": geometric buckets. State `s` represents the
/// canonical count `v(s) = ⌊(1+δ)^s⌋`; an increment moves to the bucket of
/// `v(s) + 1`. Deterministic rounding makes distinct true counts collapse,
/// and the achievable-count interval of a bucket stretches until the
/// `(1+ε)` guarantee fails — exactly why derandomizing Morris is
/// impossible (Theorem 1.11 vs Lemma 2.1).
#[derive(Debug, Clone, Copy)]
pub struct BucketCounter {
    /// Bucket growth factor minus one.
    pub delta: f64,
    /// Number of buckets.
    pub width: usize,
}

impl BucketCounter {
    /// Canonical value of bucket `s`.
    pub fn canonical(&self, s: usize) -> u64 {
        if s == 0 {
            0
        } else {
            (1.0 + self.delta).powi(s as i32).floor() as u64
        }
    }

    /// Bucket of value `v` (smallest `s` with `canonical(s) ≥ v`).
    fn bucket_of(&self, v: u64) -> usize {
        let mut s = 0;
        while self.canonical(s) < v && s < self.width - 1 {
            s += 1;
        }
        s
    }
}

impl TimedCounter for BucketCounter {
    fn width(&self, _t: u64) -> usize {
        self.width
    }
    fn step(&self, _t: u64, state: usize, symbol: u8) -> usize {
        if symbol == 0 {
            state
        } else {
            self.bucket_of(self.canonical(state) + 1)
        }
    }
    fn estimate(&self, _t: u64, state: usize) -> f64 {
        self.canonical(state) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals::{interval_family, width_lower_bound, ErrorBudget};
    use crate::obdd::verify_counter;

    #[test]
    fn exact_counter_passes_and_uses_predicted_width() {
        let n = 64;
        let widths = verify_counter(&ExactCounter, n, 0.5).expect("exact is correct");
        let (_, bound) = width_lower_bound(n, ErrorBudget::Multiplicative(0.5));
        let max_width = *widths.iter().max().unwrap() as u64;
        assert!(
            max_width >= bound,
            "Theorem 1.11: correct counter width {max_width} ≥ certified bound {bound}"
        );
    }

    #[test]
    fn saturating_counter_dies_with_explicit_stream() {
        let err =
            verify_counter(&SaturatingCounter { width: 10 }, 100, 0.5).expect_err("cap must break");
        // The violating stream is the all-ones stream past the cap.
        assert!(err.true_count >= 14, "count {}", err.true_count);
        assert!(err.estimate <= 9.0);
    }

    #[test]
    fn bucket_counter_fails_the_guarantee() {
        // δ = 0.5, 16 buckets, horizon 64: deterministic Morris dies. The
        // increments-by-one drift means a bucket absorbs wildly different
        // true counts.
        let c = BucketCounter {
            delta: 0.5,
            width: 16,
        };
        let err = verify_counter(&c, 64, 0.5).expect_err("deterministic Morris must fail");
        // The witness is a genuine violation: replay and check by hand.
        let mut state = 0;
        for (t, &b) in err.stream.iter().enumerate() {
            state = c.step(t as u64, state, b);
        }
        let est = c.estimate(err.stream.len() as u64, state);
        let k = err.true_count as f64;
        assert!(
            est > 1.5 * k + 1.0 || est < k / 1.5 - 1.0,
            "est {est}, true {k}"
        );
    }

    #[test]
    fn bucket_counter_interval_stretch_matches_lemma_3_10() {
        // Watch the interval family: the top buckets accumulate stretched
        // intervals [lo, hi] with hi/lo exceeding the guarantee.
        let c = BucketCounter {
            delta: 0.5,
            width: 12,
        };
        let fam = interval_family(&c, 48);
        let worst = fam[48]
            .iter()
            .map(|iv| iv.hi as f64 / iv.lo.max(1) as f64)
            .fold(0.0f64, f64::max);
        assert!(
            worst > 2.25,
            "some interval must stretch past (1+ε)² = 2.25, got {worst}"
        );
    }

    #[test]
    fn any_correct_counter_beats_the_certificate_width() {
        // Sweep horizons: the certified bound grows ~ n^{1/3} and the
        // exact counter (the only correct one here) always exceeds it.
        for n in [16u64, 64, 256] {
            let widths = verify_counter(&ExactCounter, n, 0.25).unwrap();
            let (_, bound) = width_lower_bound(n, ErrorBudget::Multiplicative(0.25));
            assert!(*widths.iter().max().unwrap() as u64 >= bound, "n={n}");
        }
    }

    #[test]
    fn bucket_canonical_values_are_monotone() {
        let c = BucketCounter {
            delta: 0.3,
            width: 20,
        };
        for s in 1..20 {
            assert!(c.canonical(s) >= c.canonical(s - 1));
        }
    }
}
