//! Property-based tests for the OBDD verifier and the Theorem 1.11
//! certificate machinery.

use proptest::prelude::*;
use wb_lowerbounds::{
    interval_family, verify_counter, width_lower_bound, BucketCounter, ErrorBudget, ExactCounter,
    SaturatingCounter, TimedCounter,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn saturating_counter_is_exact_below_its_cap(width in 2usize..24) {
        // Horizon strictly below the cap: no stream can overflow, so the
        // counter is exact and must verify even at eps = 0.
        let n = (width - 1) as u64;
        let c = SaturatingCounter { width };
        let ok = verify_counter(&c, n, 0.0).is_ok();
        prop_assert!(ok);
    }

    #[test]
    fn saturating_counter_fails_past_cap_with_valid_witness(
        width in 2usize..16,
        slack in 2u64..6,
    ) {
        // Horizon comfortably past the cap at eps = 0.25: must fail, and
        // the counterexample must replay to the claimed estimate.
        let c = SaturatingCounter { width };
        let n = (width as u64) * slack + 8;
        let err = verify_counter(&c, n, 0.25).expect_err("cap must break");
        let mut state = c.start_state();
        for (t, &b) in err.stream.iter().enumerate() {
            state = c.step(t as u64, state, b);
        }
        let est = c.estimate(err.stream.len() as u64, state);
        prop_assert!((est - err.estimate).abs() < 1e-9);
        let ones = err.stream.iter().filter(|&&b| b == 1).count() as u64;
        prop_assert_eq!(ones, err.true_count);
        // The witness is a genuine violation of the (1+eps) guarantee.
        let k = err.true_count as f64;
        prop_assert!(
            err.estimate > 1.25 * k + 1.0 || err.estimate < k / 1.25 - 1.0,
            "estimate {} vs count {k} is not a violation",
            err.estimate
        );
    }

    #[test]
    fn exact_counter_always_verifies(n in 1u64..64, eps_hundredths in 0u64..100) {
        let eps = eps_hundredths as f64 / 100.0;
        let ok = verify_counter(&ExactCounter, n, eps).is_ok();
        prop_assert!(ok);
    }

    #[test]
    fn certificate_is_monotone_in_horizon(
        n1 in 16u64..10_000,
        factor in 2u64..16,
        delta_tenths in 1u64..10,
    ) {
        let delta = delta_tenths as f64 / 10.0;
        let (_, b1) = width_lower_bound(n1, ErrorBudget::Multiplicative(delta));
        let (_, b2) = width_lower_bound(n1 * factor, ErrorBudget::Multiplicative(delta));
        prop_assert!(b2 >= b1, "bound must not shrink with horizon");
    }

    #[test]
    fn certificate_shrinks_with_looser_error(n in 64u64..100_000) {
        let (_, tight) = width_lower_bound(n, ErrorBudget::Multiplicative(0.1));
        let (_, loose) = width_lower_bound(n, ErrorBudget::Multiplicative(2.0));
        prop_assert!(loose <= tight);
    }

    #[test]
    fn interval_families_obey_lemma_3_6(
        width in 2usize..10,
        delta_tenths in 2u64..10,
    ) {
        // Containment across time holds for arbitrary bucket counters —
        // Lemma 3.6 is structural, not correctness-dependent.
        let c = BucketCounter { delta: delta_tenths as f64 / 10.0, width };
        let fam = interval_family(&c, 24);
        for t in 0..24 {
            for iv in &fam[t] {
                prop_assert!(
                    fam[t + 1].iter().any(|j| j.lo <= iv.lo && iv.hi <= j.hi),
                    "interval {iv:?} at t={t} escapes containment"
                );
            }
        }
    }

    #[test]
    fn interval_families_obey_lemma_3_7(width in 2usize..10) {
        // The shifted interval [lo+1, hi+1] is contained at t+1.
        let c = BucketCounter { delta: 0.5, width };
        let fam = interval_family(&c, 20);
        for t in 0..20 {
            for iv in &fam[t] {
                prop_assert!(
                    fam[t + 1]
                        .iter()
                        .any(|j| j.lo <= iv.lo + 1 && iv.hi < j.hi),
                    "shifted interval from {iv:?} at t={t} escapes"
                );
            }
        }
    }
}
