//! The epoll session reactor: every TCP session multiplexed onto one
//! event-loop thread (`--backend epoll`, Linux only — the default there).
//!
//! Each session is a nonblocking state machine: a read buffer with
//! incremental line framing, a dispatch step through [`crate::dispatch`],
//! and a write queue with backpressure. A session has at most one parked
//! [`PendingOp`]; requests pipelined behind it wait in the read buffer, so
//! per-session reply order is the request order by construction.
//!
//! **Wakeups.** Handlers never block the loop: when a request hits inbox
//! backpressure or needs quiescence, it registers a [`Waiter`] carrying
//! the session's token and returns. Pool workers complete the condition
//! and poke the [`WakeHub`] — a token list plus a self-pipe whose read end
//! is registered in epoll — and the loop resumes the op. Tokens carry a
//! generation so a wakeup for a closed (possibly reused) session slot is
//! ignored.
//!
//! **Bounded submits.** The pool queue is bounded and blocking submission
//! would stall every session, so the reactor uses
//! `WorkerPool::try_submit`; a full queue defers the drain job to a retry
//! list flushed every loop tick (and flushed blockingly before the loop
//! exits, so the no-loss drain invariant survives).
//!
//! The syscall surface is three `extern "C"` declarations plus a pipe —
//! no new dependencies; non-Linux builds compile the thread backend only.

use crate::dispatch::{self, Outcome, PendingKind, PendingOp, Resumed};
use crate::json::Json;
use crate::proto::{ErrorKind, ProtoError};
use crate::server::{Shared, MAX_LINE_BYTES};
use crate::tenant::{TenantSlot, Waiter, WakeSink};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Raw epoll/pipe syscall surface (std-only: direct libc symbol imports).
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const O_NONBLOCK: c_int = 0o4000;
    pub const O_CLOEXEC: c_int = 0o2000000;

    /// `struct epoll_event`. The kernel ABI packs it on x86-64 (12 bytes);
    /// other architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// Thin safe wrapper over one epoll instance.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    fn new() -> io::Result<Poller> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, events)
    }

    fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, events)
    }

    fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait for readiness, retrying on EINTR. Fills `events` and returns
    /// the ready count.
    fn wait(&self, events: &mut Vec<sys::EpollEvent>, timeout_ms: i32) -> usize {
        events.clear();
        let cap = events.capacity().max(1);
        loop {
            let rc =
                unsafe { sys::epoll_wait(self.epfd, events.as_mut_ptr(), cap as i32, timeout_ms) };
            if rc >= 0 {
                unsafe { events.set_len(rc as usize) };
                return rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                panic!("epoll_wait failed: {err}");
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        let _ = unsafe { sys::close(self.epfd) };
    }
}

/// The reactor's wakeup sink: pool workers push the tokens of sessions
/// whose blocking condition changed, then poke a nonblocking self-pipe so
/// the sleeping `epoll_wait` returns. A full pipe is fine — a wakeup is
/// already pending and the token list carries the payload.
pub struct WakeHub {
    tokens: Mutex<Vec<u64>>,
    pipe_r: RawFd,
    pipe_w: RawFd,
}

impl WakeHub {
    fn new() -> io::Result<Arc<WakeHub>> {
        let mut fds = [0i32; 2];
        let rc = unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Arc::new(WakeHub {
            tokens: Mutex::new(Vec::new()),
            pipe_r: fds[0],
            pipe_w: fds[1],
        }))
    }

    fn take_tokens(&self) -> Vec<u64> {
        std::mem::take(&mut *self.tokens.lock().unwrap())
    }

    fn drain_pipe(&self) {
        let mut buf = [0u8; 256];
        loop {
            let n = unsafe { sys::read(self.pipe_r, buf.as_mut_ptr().cast(), buf.len()) };
            if n < buf.len() as isize {
                return;
            }
        }
    }
}

impl WakeSink for WakeHub {
    fn wake(&self, token: u64) {
        self.tokens.lock().unwrap().push(token);
        let byte = 1u8;
        // EAGAIN (pipe full) means a wakeup is already queued; any other
        // failure only costs latency — the loop's timeout re-checks.
        let _ = unsafe { sys::write(self.pipe_w, (&byte as *const u8).cast(), 1) };
    }
}

impl Drop for WakeHub {
    fn drop(&mut self) {
        unsafe {
            let _ = sys::close(self.pipe_r);
            let _ = sys::close(self.pipe_w);
        }
    }
}

/// A token that never resolves to a session: pokes the loop awake (drain
/// notification from [`crate::Server::begin_drain`]) without any resume.
pub const TOKEN_NOOP: u64 = 0;
const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
/// Session tokens start here; the low 32 bits are `slab index + BASE`,
/// the high 32 bits the slot generation.
const TOKEN_BASE: u64 = 2;

fn token_of(idx: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | (idx as u64 + TOKEN_BASE)
}

/// Per-pump read budget. Level-triggered epoll re-delivers readiness, so
/// capping one session's read keeps the loop fair without losing data.
const READ_BUDGET: usize = 256 * 1024;

/// Write-queue high-water mark: above this backlog the session stops
/// dispatching (and reading), so a client that pipelines requests but
/// never reads replies stalls its own socket instead of growing daemon
/// memory.
const WRITE_HIGH_WATER: usize = 1 << 20;

/// How long a drain-idle session stays registered before it is reaped —
/// the reactor's analogue of the thread backend's 200ms read timeout. A
/// stop-and-wait client that reads the `shutdown` reply and then sends
/// `bye` needs this window; without it the reply-then-send round trip
/// races the close and the client sees a broken pipe.
const DRAIN_GRACE: Duration = Duration::from_millis(200);

/// One nonblocking session state machine.
struct Session {
    stream: TcpStream,
    token: u64,
    gen: u32,
    /// Read buffer; `rpos` is the consumed prefix, `scan` the newline
    /// scan frontier (never rescan bytes known line-free).
    rbuf: Vec<u8>,
    rpos: usize,
    scan: usize,
    /// Write queue; `wpos` is the flushed prefix.
    wbuf: Vec<u8>,
    wpos: usize,
    /// The one parked op; requests behind it wait in `rbuf`.
    pending: Option<PendingOp>,
    /// Close once the write queue flushes (`bye`, oversized line).
    closing: bool,
    /// Peer closed its write half.
    eof: bool,
    /// Currently registered epoll interest.
    interest: u32,
    /// When the session first went idle under a drain; reset by any
    /// dispatched request. [`Reactor::close_idle`] reaps the session once
    /// this is [`DRAIN_GRACE`] old.
    drain_idle_since: Option<Instant>,
}

impl Session {
    fn new(stream: TcpStream, token: u64, gen: u32) -> Session {
        Session {
            stream,
            token,
            gen,
            rbuf: Vec::with_capacity(4096),
            rpos: 0,
            scan: 0,
            wbuf: Vec::new(),
            wpos: 0,
            pending: None,
            closing: false,
            eof: false,
            interest: sys::EPOLLIN | sys::EPOLLRDHUP,
            drain_idle_since: None,
        }
    }

    fn backlog(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    fn buffered(&self) -> usize {
        self.rbuf.len() - self.rpos
    }

    fn has_full_line(&self) -> bool {
        self.rbuf[self.rpos..].contains(&b'\n')
    }

    /// Pull socket bytes into the read buffer until `WouldBlock`, EOF, or
    /// the fairness budget.
    fn fill(&mut self) -> io::Result<()> {
        let mut budget = READ_BUDGET;
        let mut tmp = [0u8; 16 * 1024];
        while budget > 0 && !self.eof {
            match self.stream.read(&mut tmp) {
                Ok(0) => self.eof = true,
                Ok(k) => {
                    self.rbuf.extend_from_slice(&tmp[..k]);
                    budget = budget.saturating_sub(k);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Extract the next complete line (newline and any `\r` stripped).
    fn take_line(&mut self) -> Option<String> {
        match self.rbuf[self.scan..].iter().position(|&b| b == b'\n') {
            Some(rel) => {
                let end = self.scan + rel;
                let mut line: &[u8] = &self.rbuf[self.rpos..end];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                let s = String::from_utf8_lossy(line).into_owned();
                self.rpos = end + 1;
                self.scan = self.rpos;
                if self.rpos == self.rbuf.len() {
                    self.rbuf.clear();
                    self.rpos = 0;
                    self.scan = 0;
                } else if self.rpos >= 64 * 1024 {
                    self.rbuf.drain(..self.rpos);
                    self.scan -= self.rpos;
                    self.rpos = 0;
                }
                Some(s)
            }
            None => {
                self.scan = self.rbuf.len();
                None
            }
        }
    }

    /// Flush the write queue until `WouldBlock` or empty.
    fn flush(&mut self, shared: &Shared) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(k) => {
                    self.wpos += k;
                    shared
                        .reactor
                        .write_queue_bytes
                        .fetch_sub(k as u64, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    shared.reactor.write_stalls.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos >= 64 * 1024 {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        Ok(())
    }

    fn desired_interest(&self) -> u32 {
        let mut ev = 0;
        if self.pending.is_none() && !self.closing && !self.eof && self.backlog() < WRITE_HIGH_WATER
        {
            ev |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.backlog() > 0 {
            ev |= sys::EPOLLOUT;
        }
        ev
    }
}

/// The reactor's [`dispatch::DispatchMode`]: park via [`Waiter`]s, submit
/// via [`WorkerPool::try_submit`](wb_engine::pool::WorkerPool::try_submit)
/// with a deferral list for a full queue.
struct ReactorMode<'a> {
    hub: &'a Arc<WakeHub>,
    token: u64,
    deferred: &'a mut VecDeque<Arc<TenantSlot>>,
}

impl dispatch::DispatchMode for ReactorMode<'_> {
    fn waiter(&self) -> Option<Waiter> {
        Some(Waiter {
            token: self.token,
            sink: Arc::clone(self.hub) as Arc<dyn WakeSink>,
        })
    }

    fn schedule(&mut self, shared: &Arc<Shared>, slot: &Arc<TenantSlot>) {
        let job = Arc::clone(slot);
        match shared.pool.try_submit(Box::new(move || job.drain_inbox())) {
            Ok(()) => {}
            Err(_job) => {
                shared
                    .reactor
                    .deferred_submits
                    .fetch_add(1, Ordering::Relaxed);
                self.deferred.push_back(Arc::clone(slot));
            }
        }
    }
}

/// Create the epoll instance and wakeup hub. Called by
/// [`crate::Server::start`] so setup failures surface there, not inside
/// the reactor thread.
pub fn init() -> io::Result<(Poller, Arc<WakeHub>)> {
    Ok((Poller::new()?, WakeHub::new()?))
}

/// Poke the hub with a no-op token (drain notification).
pub fn poke(hub: &Arc<WakeHub>) {
    hub.wake(TOKEN_NOOP);
}

struct Reactor {
    shared: Arc<Shared>,
    poller: Poller,
    hub: Arc<WakeHub>,
    sessions: Vec<Option<Session>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    live: usize,
    /// Tenant drain jobs the bounded pool queue refused; retried every
    /// tick and flushed blockingly before the loop exits.
    deferred: VecDeque<Arc<TenantSlot>>,
}

/// Run the reactor until the daemon drains and every session closes.
pub fn run(shared: Arc<Shared>, listener: TcpListener, poller: Poller, hub: Arc<WakeHub>) {
    let listener_fd = listener.as_raw_fd();
    if let Err(e) = poller.add(listener_fd, TOKEN_LISTENER, sys::EPOLLIN) {
        eprintln!("wbd: reactor could not register the listener: {e}");
        return;
    }
    if let Err(e) = poller.add(hub.pipe_r, TOKEN_WAKE, sys::EPOLLIN) {
        eprintln!("wbd: reactor could not register the wake pipe: {e}");
        return;
    }
    let mut r = Reactor {
        shared,
        poller,
        hub,
        sessions: Vec::new(),
        gens: Vec::new(),
        free: Vec::new(),
        live: 0,
        deferred: VecDeque::new(),
    };
    let mut events: Vec<sys::EpollEvent> = Vec::with_capacity(256);
    let mut accepting = true;
    loop {
        let draining = r.shared.draining.load(Ordering::SeqCst);
        if draining && accepting {
            let _ = r.poller.delete(listener_fd);
            accepting = false;
        }
        if draining && r.live == 0 {
            break;
        }
        r.flush_deferred();
        // Short timeout while drain jobs wait on pool space; otherwise a
        // lazy tick that bounds drain-notice latency (like the thread
        // backend's read timeout).
        let timeout = if r.deferred.is_empty() { 200 } else { 5 };
        let n = r.poller.wait(&mut events, timeout);
        r.shared
            .reactor
            .ready_events
            .fetch_add(n as u64, Ordering::Relaxed);
        for e in events.iter().take(n) {
            // Copy out of the (packed) event before touching `r`.
            let (evs, token) = (e.events, e.data);
            match token {
                TOKEN_LISTENER => {
                    if accepting {
                        r.accept_ready(&listener);
                    }
                }
                TOKEN_WAKE => r.hub.drain_pipe(),
                token => r.pump_event(token, evs),
            }
        }
        let tokens = r.hub.take_tokens();
        r.shared
            .reactor
            .wakeups
            .fetch_add(tokens.len() as u64, Ordering::Relaxed);
        for token in tokens {
            r.pump_wake(token);
        }
        if draining {
            r.close_idle();
        }
    }
    // No sessions remain, but refused drain jobs may: hand every one to
    // the pool (blocking is fine now) so `Server::wait`'s `pool.drain()`
    // sees the full obligation — the no-loss invariant.
    r.flush_deferred_blocking();
}

impl Reactor {
    fn resolve(&self, token: u64) -> Option<usize> {
        let low = (token & 0xffff_ffff) as usize;
        if (low as u64) < TOKEN_BASE {
            return None;
        }
        let idx = low - TOKEN_BASE as usize;
        let gen = (token >> 32) as u32;
        match self.sessions.get(idx) {
            Some(Some(sess)) if sess.gen == gen => Some(idx),
            _ => None,
        }
    }

    fn accept_ready(&mut self, listener: &TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => self.register(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        stream.set_nodelay(true).ok();
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.sessions.push(None);
                self.gens.push(0);
                self.sessions.len() - 1
            }
        };
        let gen = self.gens[idx];
        let token = token_of(idx, gen);
        let sess = Session::new(stream, token, gen);
        if self
            .poller
            .add(sess.stream.as_raw_fd(), token, sess.interest)
            .is_err()
        {
            self.free.push(idx);
            return;
        }
        self.live += 1;
        let stats = &self.shared.reactor;
        stats.registered.fetch_add(1, Ordering::Relaxed);
        stats
            .sessions_peak
            .fetch_max(self.live as u64, Ordering::Relaxed);
        self.shared.sessions_opened.fetch_add(1, Ordering::Relaxed);
        self.shared.sessions_active.fetch_add(1, Ordering::Relaxed);
        self.sessions[idx] = Some(sess);
    }

    fn pump_event(&mut self, token: u64, _events: u32) {
        let Some(idx) = self.resolve(token) else {
            return;
        };
        let mut sess = self.sessions[idx].take().expect("resolved");
        let mut dead = false;
        if sess.pending.is_none() && !sess.closing && sess.fill().is_err() {
            dead = true;
        }
        if !dead {
            dead = self.advance(&mut sess);
        }
        if dead {
            self.finish_session(idx, sess);
        } else {
            self.sessions[idx] = Some(sess);
        }
    }

    fn pump_wake(&mut self, token: u64) {
        let Some(idx) = self.resolve(token) else {
            return;
        };
        let mut sess = self.sessions[idx].take().expect("resolved");
        let mut dead = false;
        if let Some(op) = sess.pending.take() {
            let mut mode = ReactorMode {
                hub: &self.hub,
                token: sess.token,
                deferred: &mut self.deferred,
            };
            match dispatch::resume(&self.shared, &mut mode, op) {
                Resumed::Done(reply) => {
                    self.queue_reply(&mut sess, &reply);
                    dead = self.advance(&mut sess);
                }
                Resumed::Still(op) => sess.pending = Some(op),
            }
        }
        if dead {
            self.finish_session(idx, sess);
        } else {
            self.sessions[idx] = Some(sess);
        }
    }

    /// Dispatch buffered lines, flush writes, refresh epoll interest, and
    /// decide whether the session closes now.
    fn advance(&mut self, sess: &mut Session) -> bool {
        loop {
            while sess.pending.is_none() && !sess.closing && sess.backlog() < WRITE_HIGH_WATER {
                match sess.take_line() {
                    Some(line) => {
                        if line.trim().is_empty() {
                            continue;
                        }
                        self.shared.requests.fetch_add(1, Ordering::Relaxed);
                        sess.drain_idle_since = None;
                        let mut mode = ReactorMode {
                            hub: &self.hub,
                            token: sess.token,
                            deferred: &mut self.deferred,
                        };
                        match dispatch::handle_line(&self.shared, &mut mode, &line) {
                            Outcome::Reply { reply, end } => {
                                self.queue_reply(sess, &reply);
                                if end {
                                    sess.closing = true;
                                }
                            }
                            Outcome::Pending(op) => {
                                self.shared
                                    .reactor
                                    .pending_ops
                                    .fetch_add(1, Ordering::Relaxed);
                                sess.pending = Some(op);
                            }
                        }
                    }
                    None => {
                        if sess.buffered() > MAX_LINE_BYTES {
                            // Same refusal as the thread backend: a typed
                            // error, then close — the buffer no longer frames
                            // requests.
                            self.shared.requests.fetch_add(1, Ordering::Relaxed);
                            let reply = ProtoError::new(
                                ErrorKind::BadRequest,
                                format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                            );
                            self.queue_reply(sess, &reply.to_json());
                            sess.closing = true;
                        }
                        break;
                    }
                }
            }
            if sess.flush(&self.shared).is_err() {
                return true;
            }
            let flushed = sess.backlog() == 0;
            if sess.closing {
                return flushed && sess.pending.is_none();
            }
            if sess.eof && sess.pending.is_none() && !sess.has_full_line() {
                // Mirror the thread backend's EOF rule: serve every complete
                // buffered line, discard a trailing partial one. Unflushed
                // replies are written best-effort (the peer may only have
                // closed its write half).
                return true;
            }
            if self.shared.draining.load(Ordering::SeqCst)
                && sess.pending.is_none()
                && sess.buffered() == 0
                && flushed
            {
                // EPOLLIN is off while an op is parked, so a pipelined request
                // (typically a trailing `bye`) may already sit unread in the
                // kernel buffer. The thread backend's pre-close read serves it;
                // match that with one nonblocking fill before declaring idle.
                if sess.eof || sess.fill().is_err() {
                    return true;
                }
                if sess.buffered() > 0 {
                    continue;
                }
                // Truly idle: stay registered (EPOLLIN re-armed below) so a
                // stop-and-wait client's trailing request still lands;
                // `close_idle` reaps the session after DRAIN_GRACE.
                if sess.drain_idle_since.is_none() {
                    sess.drain_idle_since = Some(Instant::now());
                }
            }
            let want = sess.desired_interest();
            if want != sess.interest
                && self
                    .poller
                    .modify(sess.stream.as_raw_fd(), sess.token, want)
                    .is_ok()
            {
                sess.interest = want;
            }
            return false;
        }
    }

    fn queue_reply(&self, sess: &mut Session, reply: &Json) {
        if reply.get("ok") == Some(&Json::Bool(false)) {
            self.shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
        }
        let mut out = reply.to_line();
        out.push('\n');
        sess.wbuf.extend_from_slice(out.as_bytes());
        self.shared
            .reactor
            .write_queue_bytes
            .fetch_add(out.len() as u64, Ordering::Relaxed);
    }

    /// Tear a session down. A parked ingest is finished synchronously —
    /// the batch was admitted, so its chunks are owed to the tenant even
    /// though nobody reads the reply; parked reads are simply dropped.
    fn finish_session(&mut self, idx: usize, sess: Session) {
        let _ = self.poller.delete(sess.stream.as_raw_fd());
        let backlog = sess.backlog() as u64;
        if backlog > 0 {
            self.shared
                .reactor
                .write_queue_bytes
                .fetch_sub(backlog, Ordering::Relaxed);
        }
        if let Some(op) = sess.pending {
            if matches!(op.kind, PendingKind::Ingest { .. }) {
                // The parked ingest may be waiting on a drain job that the
                // full pool queue pushed to the deferral list; hand those
                // over first or the blocking finish below waits forever.
                self.flush_deferred_blocking();
                dispatch::finish_ingest_blocking(&self.shared, op);
            }
        }
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(idx);
        self.live -= 1;
        self.shared
            .reactor
            .registered
            .fetch_sub(1, Ordering::Relaxed);
        self.shared.sessions_closed.fetch_add(1, Ordering::Relaxed);
        self.shared.sessions_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Drain sweep: close sessions that have been fully idle (no parked
    /// op, no buffered bytes, flushed) for [`DRAIN_GRACE`] — the
    /// reactor's version of the thread backend's drain-on-read-timeout.
    /// The grace window keeps EPOLLIN armed, so a stop-and-wait client
    /// that reads the `shutdown` reply and only then sends `bye` is
    /// served instead of hitting a closed socket.
    fn close_idle(&mut self) {
        for idx in 0..self.sessions.len() {
            let idle = match &self.sessions[idx] {
                Some(s) => s.pending.is_none() && s.buffered() == 0 && s.backlog() == 0,
                None => false,
            };
            if !idle {
                continue;
            }
            let mut sess = self.sessions[idx].take().expect("checked");
            let expired = match sess.drain_idle_since {
                Some(since) => since.elapsed() >= DRAIN_GRACE,
                None => {
                    sess.drain_idle_since = Some(Instant::now());
                    false
                }
            };
            if !expired && !sess.eof {
                self.sessions[idx] = Some(sess);
                continue;
            }
            // Same final nonblocking read as advance()'s drain rule: a
            // request that raced the drain may sit unread in the kernel
            // buffer; serve it instead of cutting the session off.
            if !sess.eof && sess.fill().is_ok() && sess.buffered() > 0 {
                if self.advance(&mut sess) {
                    self.finish_session(idx, sess);
                } else {
                    self.sessions[idx] = Some(sess);
                }
                continue;
            }
            self.finish_session(idx, sess);
        }
    }

    fn flush_deferred(&mut self) {
        while let Some(slot) = self.deferred.pop_front() {
            let job = Arc::clone(&slot);
            if self
                .shared
                .pool
                .try_submit(Box::new(move || job.drain_inbox()))
                .is_err()
            {
                self.deferred.push_front(slot);
                return;
            }
        }
    }

    fn flush_deferred_blocking(&mut self) {
        for slot in self.deferred.drain(..) {
            let job = Arc::clone(&slot);
            self.shared.pool.submit(Box::new(move || job.drain_inbox()));
        }
    }
}
