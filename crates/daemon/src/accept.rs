//! The thread-per-session backend: a blocking accept loop spawning one
//! thread per TCP connection. This is the portable fallback (`--backend
//! thread`, and the only backend off Linux); the epoll reactor in
//! [`crate::reactor`] serves the same protocol through
//! [`crate::dispatch`], so replies are byte-identical between the two.

use crate::dispatch::{self, Blocking, Outcome};
use crate::json::Json;
use crate::proto::{ErrorKind, ProtoError};
use crate::server::{Shared, MAX_LINE_BYTES};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Socket read timeout: the granularity at which idle sessions notice a
/// drain. Short enough that shutdown completes promptly, long enough to
/// stay off the scheduler's back.
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// Run the accept loop until the daemon drains, spawning a session thread
/// per connection and parking its handle in `sessions` for
/// [`crate::Server::wait`] to join.
pub fn accept_loop(
    shared: Arc<Shared>,
    listener: TcpListener,
    sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    // Nonblocking accept + short sleep: the simplest loop that can
    // notice the draining flag without a self-connect wakeup.
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                shared.sessions_opened.fetch_add(1, Ordering::Relaxed);
                shared.sessions_active.fetch_add(1, Ordering::Relaxed);
                let handle = std::thread::spawn(move || {
                    let _ = serve_session(&shared, stream);
                    shared.sessions_closed.fetch_add(1, Ordering::Relaxed);
                    shared.sessions_active.fetch_sub(1, Ordering::Relaxed);
                });
                sessions.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Serve one connection until EOF, `bye`, or drain-idle.
fn serve_session(shared: &Arc<Shared>, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true).ok();
    let mut reader = LineReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let line = match reader.next_line(&shared.draining)? {
            NextLine::Line(line) => line,
            NextLine::Closed => return Ok(()), // EOF or drain-idle
            NextLine::TooLong => {
                // One unbounded line must not exhaust daemon memory: reply
                // with a typed refusal and close this session (the buffer
                // no longer frames requests, so it cannot keep serving).
                shared.requests.fetch_add(1, Ordering::Relaxed);
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let reply = ProtoError::new(
                    ErrorKind::BadRequest,
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                );
                let mut out = reply.to_json().to_line();
                out.push('\n');
                writer.write_all(out.as_bytes())?;
                return Ok(());
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let (reply, end) = match dispatch::handle_line(shared, &mut Blocking, &line) {
            Outcome::Reply { reply, end } => (reply, end),
            Outcome::Pending(_) => unreachable!("blocking mode waits instead of parking"),
        };
        if reply.get("ok") == Some(&Json::Bool(false)) {
            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
        }
        let mut out = reply.to_line();
        out.push('\n');
        writer.write_all(out.as_bytes())?;
        if end {
            return Ok(());
        }
    }
}

/// One [`LineReader::next_line`] outcome.
enum NextLine {
    /// A full request line (newline stripped).
    Line(String),
    /// EOF, or the daemon is draining and the connection went idle.
    Closed,
    /// The client exceeded [`MAX_LINE_BYTES`] without a newline.
    TooLong,
}

/// A line reader over a read-timeout socket that never loses a partial
/// line: bytes accumulate across timeouts, and only a full `\n`-terminated
/// line is consumed. Returns [`NextLine::Closed`] on EOF or when the
/// daemon is draining and the connection has gone idle with no buffered
/// partial request.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineReader {
    fn new(stream: TcpStream) -> Self {
        LineReader {
            stream,
            buf: Vec::with_capacity(4096),
        }
    }

    fn next_line(&mut self, draining: &AtomicBool) -> std::io::Result<NextLine> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(NextLine::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            if self.buf.len() > MAX_LINE_BYTES {
                return Ok(NextLine::TooLong);
            }
            let mut tmp = [0u8; 4096];
            match self.stream.read(&mut tmp) {
                Ok(0) => return Ok(NextLine::Closed), // EOF (partial line discarded)
                Ok(k) => self.buf.extend_from_slice(&tmp[..k]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Idle tick: during a drain, a quiet session closes
                    // (its client got every reply it asked for); otherwise
                    // keep waiting.
                    if draining.load(Ordering::SeqCst) && self.buf.is_empty() {
                        return Ok(NextLine::Closed);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}
