//! Re-entrant request dispatch, shared by both session backends.
//!
//! The thread backend ([`crate::accept`]) and the epoll reactor
//! ([`crate::reactor`]) speak the same protocol over very different
//! session shapes: a thread can park inside a handler (condvar waits,
//! blocking pool submits), a reactor session must never block its event
//! loop. This module factors the difference into a [`DispatchMode`]:
//! handlers ask the mode for a [`Waiter`] when they hit a blocking
//! condition — `None` means "wait here" (thread backend), `Some` means
//! "register the waiter and return a [`PendingOp`]" (reactor). Everything
//! else — admission checks, typed errors, reply shapes, counter updates —
//! is written once, so the two backends cannot drift.
//!
//! A session has at most one [`PendingOp`] in flight: requests behind it
//! stay unread in the session buffer, which preserves per-session reply
//! order without any reply-slot bookkeeping (pipelined clients still get
//! their replies in request order).

use crate::json::{obj, Json};
use crate::metrics;
use crate::proto::{self, ErrorKind, ProtoError, Request};
use crate::server::{hex_id, write_atomic, Shared};
use crate::tenant::{Tenant, TenantSlot, TenantState, Waiter, INBOX_CHUNKS};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use wb_engine::Update;

/// How a session backend waits and schedules. The thread backend blocks
/// in place; the reactor registers wakeups and defers full-queue pool
/// submissions back to its event loop.
pub trait DispatchMode {
    /// A waiter for the current session, or `None` to block inline.
    /// Handlers call this exactly when a blocking condition holds under
    /// the slot lock; returning `Some` converts the request into a
    /// [`PendingOp`].
    fn waiter(&self) -> Option<Waiter>;

    /// Hand `slot`'s freshly-scheduled inbox to a pool worker. Called with
    /// the slot lock released and `scheduled` already set.
    fn schedule(&mut self, shared: &Arc<Shared>, slot: &Arc<TenantSlot>);
}

/// Blocking mode: condvar waits, blocking pool submission. The thread
/// backend's mode, and the teardown mode the reactor uses to finish a
/// pending ingest whose client vanished.
pub struct Blocking;

impl DispatchMode for Blocking {
    fn waiter(&self) -> Option<Waiter> {
        None
    }

    fn schedule(&mut self, shared: &Arc<Shared>, slot: &Arc<TenantSlot>) {
        let job = Arc::clone(slot);
        shared.pool.submit(Box::new(move || job.drain_inbox()));
    }
}

/// One dispatched request: either a finished reply or a parked operation.
pub enum Outcome {
    /// The reply is ready; `end` closes the session after it is sent.
    Reply {
        /// The reply line object.
        reply: Json,
        /// `true` for `bye`: flush the reply, then close.
        end: bool,
    },
    /// The request blocked (only under a mode whose [`DispatchMode::waiter`]
    /// returns `Some`); the owning reactor resumes it on wakeup.
    Pending(PendingOp),
}

impl Outcome {
    fn reply(reply: Json) -> Outcome {
        Outcome::Reply { reply, end: false }
    }
}

/// A request parked on a tenant, waiting for inbox space or quiescence.
pub struct PendingOp {
    /// The tenant the op is parked on.
    pub slot: Arc<TenantSlot>,
    /// What remains to be done.
    pub kind: PendingKind,
}

/// The resumable half of each blocking request.
pub enum PendingKind {
    /// An admitted ingest with chunks still to enqueue. The whole batch
    /// was counted `accepted` at admission — these chunks are owed to the
    /// tenant even if the client disconnects (see
    /// [`finish_ingest_blocking`]).
    Ingest {
        /// The admitted batch size, echoed in the reply.
        accepted: u64,
        /// Chunks not yet in the inbox.
        remaining: VecDeque<Vec<Update>>,
    },
    /// A `query` waiting for read-your-writes quiescence.
    Query,
    /// A `snapshot-stats` waiting for quiescence.
    SnapshotStats,
    /// A `snapshot` waiting for quiescence; the destination was resolved
    /// at dispatch time.
    Snapshot {
        /// Resolved destination file.
        path: String,
    },
}

/// A [`resume`] outcome.
pub enum Resumed {
    /// The op completed; here is its reply.
    Done(Json),
    /// Still blocked; a fresh waiter was registered.
    Still(PendingOp),
}

/// Dispatch one request line.
pub fn handle_line(shared: &Arc<Shared>, mode: &mut dyn DispatchMode, line: &str) -> Outcome {
    let request = match proto::parse_request(line) {
        Ok(r) => r,
        Err(e) => return Outcome::reply(e.to_json()),
    };
    match request {
        Request::Hello {
            tenant,
            alg,
            seed,
            params,
        } => Outcome::reply(
            handle_hello(shared, &tenant, &alg, seed, &params).unwrap_or_else(|e| e.to_json()),
        ),
        Request::Ingest { tenant, updates } => handle_ingest(shared, mode, &tenant, updates)
            .unwrap_or_else(|e| Outcome::reply(e.to_json())),
        Request::Query { tenant } => handle_quiescent(shared, mode, &tenant, PendingKind::Query),
        Request::SnapshotStats { tenant } => {
            handle_quiescent(shared, mode, &tenant, PendingKind::SnapshotStats)
        }
        Request::Snapshot { tenant, path } => match snapshot_path(shared, &tenant, path.as_deref())
        {
            Ok(path) => handle_quiescent(shared, mode, &tenant, PendingKind::Snapshot { path }),
            Err(e) => Outcome::reply(e.to_json()),
        },
        Request::Restore { path } => {
            Outcome::reply(handle_restore(shared, &path).unwrap_or_else(|e| e.to_json()))
        }
        Request::Metrics => Outcome::reply(obj(vec![
            ("ok", Json::Bool(true)),
            ("metrics", metrics::snapshot(shared)),
        ])),
        Request::Top => Outcome::reply(obj(vec![
            ("ok", Json::Bool(true)),
            ("text", Json::from(metrics::top_text(shared).as_str())),
        ])),
        Request::Bye => Outcome::Reply {
            reply: obj(vec![("ok", Json::Bool(true))]),
            end: true,
        },
        Request::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            Outcome::reply(obj(vec![
                ("ok", Json::Bool(true)),
                ("draining", Json::Bool(true)),
            ]))
        }
    }
}

/// Retry a parked op after a tenant wakeup. Spurious wakes re-register:
/// the op either completes now or parks again with a fresh waiter.
pub fn resume(shared: &Arc<Shared>, mode: &mut dyn DispatchMode, op: PendingOp) -> Resumed {
    let PendingOp { slot, kind } = op;
    match kind {
        PendingKind::Ingest {
            accepted,
            mut remaining,
        } => match push_chunks(shared, mode, &slot, &mut remaining) {
            Pushed::Complete { pending } => Resumed::Done(ingest_reply(accepted, pending)),
            Pushed::Blocked => Resumed::Still(PendingOp {
                slot,
                kind: PendingKind::Ingest {
                    accepted,
                    remaining,
                },
            }),
        },
        kind => {
            let mut st = slot.state.lock().unwrap();
            if st.inbox.is_empty() && !st.scheduled {
                let reply = finish_quiescent(&mut st, &kind).unwrap_or_else(|e| e.to_json());
                drop(st);
                Resumed::Done(reply)
            } else {
                let waiter = mode
                    .waiter()
                    .expect("resume is only reached from a waiter-capable mode");
                st.waiters.push(waiter);
                drop(st);
                Resumed::Still(PendingOp { slot, kind })
            }
        }
    }
}

/// Finish a pending ingest synchronously. Session teardown path: the
/// client is gone and its reply undeliverable, but the batch was admitted
/// (`accepted` counted), so every remaining chunk must still reach the
/// inbox — the no-loss drain invariant (`applied == accepted`) does not
/// care who was listening. Callers must ensure any deferred pool submit
/// for this slot has been flushed first, or the condvar wait below would
/// wait on a drain job that was never handed to a worker.
pub fn finish_ingest_blocking(shared: &Arc<Shared>, op: PendingOp) {
    if let PendingKind::Ingest { mut remaining, .. } = op.kind {
        let mut mode = Blocking;
        match push_chunks(shared, &mut mode, &op.slot, &mut remaining) {
            Pushed::Complete { .. } => {}
            Pushed::Blocked => unreachable!("blocking mode waits instead of parking"),
        }
    }
}

fn handle_hello(
    shared: &Arc<Shared>,
    tenant: &str,
    alg: &str,
    seed: Option<u64>,
    params: &proto::HelloParams,
) -> Result<Json, ProtoError> {
    if shared.draining.load(Ordering::SeqCst) {
        return Err(ProtoError::new(
            ErrorKind::Draining,
            "daemon is draining; no new tenants",
        ));
    }
    let seed_base = seed.unwrap_or(shared.cfg.seed);
    let check_existing =
        |tenants: &BTreeMap<String, Arc<TenantSlot>>| -> Option<Result<Json, ProtoError>> {
            tenants.get(tenant).map(|slot| {
                let st = slot.state.lock().unwrap();
                st.tenant.check_hello_matches(alg, seed_base)?;
                Ok(hello_reply(&st.tenant))
            })
        };
    let over_cap = |tenants: &BTreeMap<String, Arc<TenantSlot>>| -> Result<(), ProtoError> {
        if tenants.len() >= shared.cfg.max_tenants {
            return Err(ProtoError::new(
                ErrorKind::MaxTenants,
                format!("tenant cap {} reached", shared.cfg.max_tenants),
            ));
        }
        Ok(())
    };
    {
        let tenants = shared.tenants.lock().unwrap();
        if let Some(existing) = check_existing(&tenants) {
            return existing;
        }
        over_cap(&tenants)?;
    }
    // Construct outside the tenants lock: building an algorithm (ctor +
    // probe_mergeable + shard instances) can be slow, and holding the map
    // mutex would stall every request that needs a tenant lookup across
    // all tenants for the duration. (On the reactor this construction
    // happens on the event-loop thread — a deliberate tradeoff: `hello`
    // is rare next to ingest, and a CPU-bound ctor delays other sessions
    // by the construction time but never deadlocks them.)
    let created = Tenant::create(
        tenant,
        alg,
        seed_base,
        params,
        shared.cfg.shards,
        shared.cfg.chunk,
    )?;
    let mut tenants = shared.tenants.lock().unwrap();
    if let Some(existing) = check_existing(&tenants) {
        // Lost a create race with another session. Both constructions are
        // byte-identical (the same derived seeds), so adopt the winner.
        return existing;
    }
    over_cap(&tenants)?;
    // Re-check the drain flag under the same lock as the insert: a drain
    // that began while we were constructing (after the entry check above)
    // must not gain a tenant it will never flush — the drain path snapshots
    // and reports over the registry as it stood when the flag flipped.
    if shared.draining.load(Ordering::SeqCst) {
        return Err(ProtoError::new(
            ErrorKind::Draining,
            "daemon is draining; no new tenants",
        ));
    }
    let reply = hello_reply(&created);
    tenants.insert(tenant.to_string(), Arc::new(TenantSlot::new(created)));
    Ok(reply)
}

fn handle_ingest(
    shared: &Arc<Shared>,
    mode: &mut dyn DispatchMode,
    tenant: &str,
    updates: Vec<Update>,
) -> Result<Outcome, ProtoError> {
    if shared.draining.load(Ordering::SeqCst) {
        return Err(ProtoError::new(
            ErrorKind::Draining,
            "daemon is draining; ingest refused",
        ));
    }
    let slot = lookup(shared, tenant)?;
    let accepted = updates.len() as u64;
    {
        let mut st = slot.state.lock().unwrap();
        if let Err(e) = st.tenant.validate_batch(&updates) {
            st.tenant.rejected += accepted;
            return Err(e);
        }
        let quota = shared.cfg.max_updates_per_tenant;
        if quota > 0 && st.tenant.accepted.saturating_add(accepted) > quota {
            st.tenant.rejected += accepted;
            return Err(ProtoError::new(
                ErrorKind::QuotaExceeded,
                format!(
                    "tenant '{tenant}' has accepted {} of its {quota}-update quota; \
                     a batch of {accepted} does not fit",
                    st.tenant.accepted
                ),
            ));
        }
        // Accepted: all-or-nothing, counted before queueing so a drain
        // that starts right now still applies every one of these updates.
        st.tenant.accepted += accepted;
        st.tenant.batches += 1;
    }
    let chunk = shared.cfg.chunk.max(1);
    let mut remaining: VecDeque<Vec<Update>> =
        updates.chunks(chunk).map(|piece| piece.to_vec()).collect();
    match push_chunks(shared, mode, &slot, &mut remaining) {
        Pushed::Complete { pending } => Ok(Outcome::reply(ingest_reply(accepted, pending))),
        Pushed::Blocked => Ok(Outcome::Pending(PendingOp {
            slot,
            kind: PendingKind::Ingest {
                accepted,
                remaining,
            },
        })),
    }
}

/// A [`push_chunks`] outcome.
enum Pushed {
    /// Every chunk reached the inbox; `pending` is the inbox depth at
    /// completion (the reply's `pending_chunks`).
    Complete {
        /// Inbox depth when the last chunk landed.
        pending: u64,
    },
    /// The inbox filled and the mode parks instead of waiting; a waiter
    /// was registered.
    Blocked,
}

/// Move chunks from `remaining` into the slot inbox, scheduling a drain
/// job the moment the inbox goes from unowned to owned (before any later
/// chunk can hit a full inbox — the drain job is the only thing that
/// frees space, so a batch longer than `INBOX_CHUNKS` chunks would
/// otherwise wait on a job never submitted).
fn push_chunks(
    shared: &Arc<Shared>,
    mode: &mut dyn DispatchMode,
    slot: &Arc<TenantSlot>,
    remaining: &mut VecDeque<Vec<Update>>,
) -> Pushed {
    let mut st = slot.state.lock().unwrap();
    loop {
        if remaining.is_empty() {
            return Pushed::Complete {
                pending: st.inbox.len() as u64,
            };
        }
        while st.inbox.len() >= INBOX_CHUNKS {
            st.inbox_stalls += 1;
            match mode.waiter() {
                None => st = slot.cv.wait(st).unwrap(),
                Some(waiter) => {
                    st.waiters.push(waiter);
                    return Pushed::Blocked;
                }
            }
        }
        let piece = remaining.pop_front().expect("checked non-empty");
        st.inbox.push_back(piece);
        if !st.scheduled {
            // Submit outside the slot lock — the pool queue is bounded and
            // blocking-mode submission may park (counted as a pool stall).
            st.scheduled = true;
            drop(st);
            mode.schedule(shared, slot);
            st = slot.state.lock().unwrap();
        }
    }
}

fn ingest_reply(accepted: u64, pending: u64) -> Json {
    obj(vec![
        ("ok", Json::Bool(true)),
        ("accepted", Json::from(accepted)),
        ("pending_chunks", Json::from(pending)),
    ])
}

/// Serve a read op that needs quiescence (`query`, `snapshot-stats`,
/// `snapshot`): wait for it in blocking mode, park on it otherwise.
fn handle_quiescent(
    shared: &Arc<Shared>,
    mode: &mut dyn DispatchMode,
    tenant: &str,
    kind: PendingKind,
) -> Outcome {
    let slot = match lookup(shared, tenant) {
        Ok(slot) => slot,
        Err(e) => return Outcome::reply(e.to_json()),
    };
    let mut st = slot.state.lock().unwrap();
    while !st.inbox.is_empty() || st.scheduled {
        match mode.waiter() {
            None => st = slot.cv.wait(st).unwrap(),
            Some(waiter) => {
                st.waiters.push(waiter);
                drop(st);
                return Outcome::Pending(PendingOp { slot, kind });
            }
        }
    }
    let reply = finish_quiescent(&mut st, &kind).unwrap_or_else(|e| e.to_json());
    Outcome::reply(reply)
}

/// Complete a quiescent read op under the slot lock (inbox empty, no
/// worker owns the tenant).
fn finish_quiescent(st: &mut TenantState, kind: &PendingKind) -> Result<Json, ProtoError> {
    match kind {
        PendingKind::Query => {
            let answer = st.tenant.query()?;
            Ok(obj(vec![
                ("ok", Json::Bool(true)),
                ("tenant", Json::from(st.tenant.id.as_str())),
                ("answer", proto::answer_to_json(&answer)),
                ("space_bits", Json::from(st.tenant.space_bits())),
                ("processed", Json::from(st.tenant.applied)),
            ]))
        }
        PendingKind::SnapshotStats => Ok(obj(vec![
            ("ok", Json::Bool(true)),
            ("stats", metrics::tenant_json(st)),
        ])),
        PendingKind::Snapshot { path } => {
            let frame = st
                .tenant
                .snapshot_bytes()
                .map_err(|e| ProtoError::new(ErrorKind::SnapshotFailed, e.to_string()))?;
            write_atomic(std::path::Path::new(path), &frame).map_err(|e| {
                ProtoError::new(
                    ErrorKind::SnapshotFailed,
                    format!("could not write {path}: {e}"),
                )
            })?;
            Ok(obj(vec![
                ("ok", Json::Bool(true)),
                ("tenant", Json::from(st.tenant.id.as_str())),
                ("path", Json::from(path.as_str())),
                ("bytes", Json::from(frame.len() as u64)),
                ("applied", Json::from(st.tenant.applied)),
            ]))
        }
        PendingKind::Ingest { .. } => unreachable!("ingest resumes through push_chunks"),
    }
}

/// Resolve where a `snapshot` writes: the request's explicit path, else
/// the daemon's `--state-dir` (with the tenant id hex-encoded so arbitrary
/// id strings stay filesystem-safe).
fn snapshot_path(shared: &Shared, tenant: &str, path: Option<&str>) -> Result<String, ProtoError> {
    match (path, &shared.cfg.state_dir) {
        (Some(p), _) => Ok(p.to_string()),
        (None, Some(dir)) => Ok(format!("{dir}/{}.wbsnap", hex_id(tenant))),
        (None, None) => Err(ProtoError::new(
            ErrorKind::BadRequest,
            "snapshot needs a 'path' (or start wbd with --state-dir)",
        )),
    }
}

fn handle_restore(shared: &Arc<Shared>, path: &str) -> Result<Json, ProtoError> {
    if shared.draining.load(Ordering::SeqCst) {
        return Err(ProtoError::new(
            ErrorKind::Draining,
            "daemon is draining; no new tenants",
        ));
    }
    let bytes = std::fs::read(path).map_err(|e| {
        ProtoError::new(
            ErrorKind::SnapshotFailed,
            format!("could not read {path}: {e}"),
        )
    })?;
    let restored = Tenant::restore_bytes(&bytes).map_err(|e| {
        ProtoError::new(
            ErrorKind::SnapshotFailed,
            format!("could not restore {path}: {e}"),
        )
    })?;
    let mut tenants = shared.tenants.lock().unwrap();
    if tenants.contains_key(&restored.id) {
        return Err(ProtoError::new(
            ErrorKind::TenantMismatch,
            format!(
                "tenant '{}' already exists; restore refuses to replace live state",
                restored.id
            ),
        ));
    }
    if tenants.len() >= shared.cfg.max_tenants {
        return Err(ProtoError::new(
            ErrorKind::MaxTenants,
            format!("tenant cap {} reached", shared.cfg.max_tenants),
        ));
    }
    if shared.draining.load(Ordering::SeqCst) {
        return Err(ProtoError::new(
            ErrorKind::Draining,
            "daemon is draining; no new tenants",
        ));
    }
    let mut reply = hello_reply(&restored);
    if let Json::Obj(members) = &mut reply {
        members.push(("applied".to_string(), Json::from(restored.applied)));
    }
    let id = restored.id.clone();
    tenants.insert(id, Arc::new(TenantSlot::new(restored)));
    Ok(reply)
}

/// Look up `tenant`, typed-erroring when it has not said `hello`.
fn lookup(shared: &Arc<Shared>, tenant: &str) -> Result<Arc<TenantSlot>, ProtoError> {
    shared
        .tenants
        .lock()
        .unwrap()
        .get(tenant)
        .cloned()
        .ok_or_else(|| {
            ProtoError::new(
                ErrorKind::UnknownTenant,
                format!("tenant '{tenant}' has not said hello"),
            )
        })
}

pub(crate) fn hello_reply(t: &Tenant) -> Json {
    obj(vec![
        ("ok", Json::Bool(true)),
        ("tenant", Json::from(t.id.as_str())),
        ("alg", Json::from(t.alg_name.as_str())),
        ("model", Json::from(t.model.label())),
        ("shards", Json::from(t.shards as u64)),
        ("tenant_seed", Json::from(t.tenant_seed)),
    ])
}
