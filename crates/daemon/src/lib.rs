//! # wb-daemon — `wbd`, the multi-tenant white-box streaming daemon
//!
//! The engine's binaries play one game and exit; `wbd` is the
//! long-running form the paper's model actually describes — a shared
//! service whose co-tenants are the adversary. A single node accepts
//! newline-delimited JSON over TCP, multiplexes thousands of tenants onto
//! the [`wb_engine::pool`] work queue, shards mergeable tenants through
//! [`wb_engine::shard::ShardPipeline`]s, and answers sketch queries
//! online, with every backpressure point (tenant inboxes, pool queue,
//! shard queues) bounded and counted.
//!
//! **Determinism contract.** A tenant's state is a pure function of its
//! own update sequence and its derived seeds
//! (`derive_seed(base, ["tenant", id])`, then `["ctor"]` / `["game"]`):
//! final answers are byte-identical to an offline engine run of the same
//! stream, for any session interleaving, `--threads` count, or ingest
//! batch sizes. The root `daemon_loopback` / `daemon_determinism` tests
//! assert exactly this.
//!
//! **White-box caveat.** Serving sketches over a socket does not hide
//! them: in this model every tenant's internal state and random tape are
//! public by definition (seeds are derived from public inputs and echoed
//! by `hello`). `wbd` never pretends otherwise — `snapshot-stats` and
//! `metrics` expose state cheerfully; only algorithms that are robust
//! under full exposure should be deployed multi-tenant.
//!
//! Modules: [`json`] (hand-rolled reader/writer), [`proto`] (wire types +
//! typed errors), [`tenant`] (per-tenant engine + inbox), [`dispatch`]
//! (re-entrant request handling shared by both backends), [`accept`]
//! (thread-per-session backend), [`reactor`] (the Linux epoll backend),
//! [`server`] (listener, backend selection, graceful drain), [`metrics`]
//! (snapshots and the `top` view), [`client`] (the scripting client).

pub mod accept;
pub mod client;
pub mod dispatch;
pub mod json;
pub mod metrics;
pub mod proto;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod server;
pub mod tenant;

pub use json::Json;
pub use proto::{ErrorKind, ProtoError, Request};
pub use server::{Backend, DaemonConfig, Server};
