//! The `wbd` wire protocol: newline-delimited JSON, one request and one
//! reply per line.
//!
//! ```text
//! request  = hello | ingest | query | snapshot-stats | snapshot | restore
//!          | metrics | top | bye | shutdown
//! hello    = {"cmd":"hello","tenant":ID,"alg":NAME,
//!             "seed"?:U64,"n"?:U64,"eps"?:F64,"shards"?:N}
//! ingest   = {"cmd":"ingest","tenant":ID,"updates":[U, ...]}
//! U        = ITEM | [ITEM, DELTA]          ; bare int = insert, pair = turnstile
//! query    = {"cmd":"query","tenant":ID}
//! snapshot-stats = {"cmd":"snapshot-stats","tenant":ID}
//! snapshot = {"cmd":"snapshot","tenant":ID,"path"?:PATH}
//! restore  = {"cmd":"restore","path":PATH}
//! metrics  = {"cmd":"metrics"}
//! top      = {"cmd":"top"}
//! bye      = {"cmd":"bye"}
//! shutdown = {"cmd":"shutdown"}
//! ```
//!
//! `snapshot` quiesces the tenant and writes its full engine state (sketch,
//! transcript RNG, counters) to `path` — or to the daemon's `--state-dir`
//! when the path is omitted — using the versioned `wb_core::snap` codec.
//! `restore` reads such a file and registers the tenant it holds; later
//! ingest continues draw-for-draw as if the daemon had never restarted.
//!
//! Every reply is `{"ok":true, ...}` or a **typed error**
//! `{"ok":false,"error":{"kind":KIND,"message":TEXT}}` — protocol-level bad
//! input never panics the daemon or drops the connection; the session keeps
//! serving after an error reply. Error kinds are a closed set (see
//! [`ErrorKind`]) so scripted clients can branch without string matching.

use crate::json::{obj, Json};
use wb_engine::Update;

/// Closed set of protocol error kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed JSON, missing/mistyped fields, unknown command.
    BadRequest,
    /// `alg` is not a registry algorithm (or construction failed —
    /// `n == 0`, bad ε, …). Carries the registry's typed message.
    InvalidParameter,
    /// The tenant named in the request has not said `hello`.
    UnknownTenant,
    /// `hello` for an existing tenant with a different algorithm or seed.
    TenantMismatch,
    /// The daemon's `--max-tenants` cap is reached.
    MaxTenants,
    /// An update in the batch is outside the tenant algorithm's stream
    /// model (deletion into insert-only, zero delta, |delta| beyond the
    /// expansion bound). The whole batch is rejected — accepted batches
    /// are all-or-nothing.
    WrongModel,
    /// The tenant's algorithm previously failed and can no longer serve.
    TenantFailed,
    /// The batch would push the tenant past the daemon's
    /// `--max-updates-per-tenant` admission quota. All-or-nothing like
    /// every admission check: the whole batch is rejected, the tenant
    /// keeps serving queries and stays under quota.
    QuotaExceeded,
    /// The daemon is draining and no longer accepts this request.
    Draining,
    /// A `snapshot`/`restore` could not complete (I/O failure, corrupt or
    /// mismatched snapshot file, failed tenant).
    SnapshotFailed,
}

impl ErrorKind {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::InvalidParameter => "invalid_parameter",
            ErrorKind::UnknownTenant => "unknown_tenant",
            ErrorKind::TenantMismatch => "tenant_mismatch",
            ErrorKind::MaxTenants => "max_tenants",
            ErrorKind::WrongModel => "wrong_model",
            ErrorKind::TenantFailed => "tenant_failed",
            ErrorKind::QuotaExceeded => "quota_exceeded",
            ErrorKind::Draining => "draining",
            ErrorKind::SnapshotFailed => "snapshot_failed",
        }
    }
}

/// A typed protocol error: kind + human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoError {
    /// Which closed-set failure this is.
    pub kind: ErrorKind,
    /// Diagnostic detail (safe to show; carries the engine's typed
    /// `WbError` text where one exists).
    pub message: String,
}

impl ProtoError {
    /// Build an error.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ProtoError {
            kind,
            message: message.into(),
        }
    }

    /// The `{"ok":false,...}` reply line for this error.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("ok", Json::Bool(false)),
            (
                "error",
                obj(vec![
                    ("kind", Json::from(self.kind.label())),
                    ("message", Json::from(self.message.as_str())),
                ]),
            ),
        ])
    }
}

/// Tenant construction parameters carried by `hello` (a protocol-facing
/// subset of the registry's `Params`; omitted fields keep registry
/// defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct HelloParams {
    /// Universe size override.
    pub n: Option<u64>,
    /// Accuracy override.
    pub eps: Option<f64>,
    /// Per-tenant shard count override (None = daemon default).
    pub shards: Option<usize>,
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Attach to (or create) a tenant.
    Hello {
        /// Tenant id (any non-empty string).
        tenant: String,
        /// Registry algorithm name.
        alg: String,
        /// Tenant seed base; `None` uses the daemon master seed. The
        /// effective per-tenant seed is always derived via
        /// `derive_seed(base, ["tenant", id])`.
        seed: Option<u64>,
        /// Constructor overrides.
        params: HelloParams,
    },
    /// Append updates to a tenant's stream.
    Ingest {
        /// Target tenant.
        tenant: String,
        /// The parsed batch.
        updates: Vec<Update>,
    },
    /// Ask the tenant's sketch its fixed query.
    Query {
        /// Target tenant.
        tenant: String,
    },
    /// Per-tenant statistics.
    SnapshotStats {
        /// Target tenant.
        tenant: String,
    },
    /// Persist a tenant's full engine state to disk.
    Snapshot {
        /// Target tenant.
        tenant: String,
        /// Destination file; `None` uses the daemon's `--state-dir`.
        path: Option<String>,
    },
    /// Register the tenant stored in a snapshot file.
    Restore {
        /// Source file written by a prior `snapshot`.
        path: String,
    },
    /// Whole-daemon metrics (JSON).
    Metrics,
    /// Whole-daemon metrics (rendered text, `wbd-top` style).
    Top,
    /// End this session (the daemon keeps running).
    Bye,
    /// Graceful drain: stop accepting, flush every queue, answer
    /// in-flight queries, emit a final metrics snapshot, exit.
    Shutdown,
}

/// Parse one request line. Errors are [`ErrorKind::BadRequest`] with a
/// message pointing at the offending field.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let bad = |msg: String| ProtoError::new(ErrorKind::BadRequest, msg);
    let v = Json::parse(line).map_err(|e| bad(format!("malformed JSON: {e}")))?;
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field 'cmd'".to_string()))?;
    let tenant_of = |v: &Json| -> Result<String, ProtoError> {
        match v.get("tenant").and_then(Json::as_str) {
            Some(t) if !t.is_empty() => Ok(t.to_string()),
            _ => Err(bad("missing non-empty string field 'tenant'".to_string())),
        }
    };
    match cmd {
        "hello" => {
            let tenant = tenant_of(&v)?;
            let alg = v
                .get("alg")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("hello needs a string field 'alg'".to_string()))?
                .to_string();
            let seed = match v.get("seed") {
                None => None,
                Some(s) => Some(
                    s.as_u64()
                        .ok_or_else(|| bad("'seed' must be a u64".to_string()))?,
                ),
            };
            let n = match v.get("n") {
                None => None,
                Some(x) => Some(
                    x.as_u64()
                        .ok_or_else(|| bad("'n' must be a u64".to_string()))?,
                ),
            };
            let eps = match v.get("eps") {
                None => None,
                Some(Json::Float(x)) => Some(*x),
                Some(Json::Int(i)) => Some(*i as f64),
                Some(_) => return Err(bad("'eps' must be a number".to_string())),
            };
            let shards = match v.get("shards") {
                None => None,
                Some(x) => Some(
                    x.as_u64()
                        .filter(|&s| s >= 1)
                        .ok_or_else(|| bad("'shards' must be a u64 >= 1".to_string()))?
                        as usize,
                ),
            };
            Ok(Request::Hello {
                tenant,
                alg,
                seed,
                params: HelloParams { n, eps, shards },
            })
        }
        "ingest" => {
            let tenant = tenant_of(&v)?;
            let raw = v
                .get("updates")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("ingest needs an array field 'updates'".to_string()))?;
            let mut updates = Vec::with_capacity(raw.len());
            for (i, u) in raw.iter().enumerate() {
                updates.push(parse_update(u).map_err(|e| bad(format!("updates[{i}]: {e}")))?);
            }
            Ok(Request::Ingest { tenant, updates })
        }
        "query" => Ok(Request::Query {
            tenant: tenant_of(&v)?,
        }),
        "snapshot-stats" => Ok(Request::SnapshotStats {
            tenant: tenant_of(&v)?,
        }),
        "snapshot" => {
            let tenant = tenant_of(&v)?;
            let path = match v.get("path") {
                None => None,
                Some(p) => Some(
                    p.as_str()
                        .filter(|p| !p.is_empty())
                        .ok_or_else(|| bad("'path' must be a non-empty string".to_string()))?
                        .to_string(),
                ),
            };
            Ok(Request::Snapshot { tenant, path })
        }
        "restore" => match v.get("path").and_then(Json::as_str) {
            Some(p) if !p.is_empty() => Ok(Request::Restore {
                path: p.to_string(),
            }),
            _ => Err(bad(
                "restore needs a non-empty string field 'path'".to_string()
            )),
        },
        "metrics" => Ok(Request::Metrics),
        "top" => Ok(Request::Top),
        "bye" => Ok(Request::Bye),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(bad(format!(
            "unknown command '{other}' (known: hello, ingest, query, snapshot-stats, \
             snapshot, restore, metrics, top, bye, shutdown)"
        ))),
    }
}

/// One update: a bare non-negative integer is an insert; a two-element
/// `[item, delta]` array is a turnstile update. (Model membership — e.g.
/// deletions into insert-only tenants — is checked later against the
/// tenant, not here; this is pure shape.)
fn parse_update(u: &Json) -> Result<Update, String> {
    match u {
        Json::Int(_) => u
            .as_u64()
            .map(Update::Insert)
            .ok_or_else(|| "bare update must be a non-negative u64 item".to_string()),
        Json::Arr(pair) if pair.len() == 2 => {
            let item = pair[0]
                .as_u64()
                .ok_or_else(|| "turnstile item must be a u64".to_string())?;
            let delta = pair[1]
                .as_i64()
                .ok_or_else(|| "turnstile delta must be an i64".to_string())?;
            Ok(Update::Turnstile { item, delta })
        }
        _ => Err("update must be ITEM or [ITEM, DELTA]".to_string()),
    }
}

/// Render an erased answer as the protocol's tagged object.
pub fn answer_to_json(answer: &wb_engine::Answer) -> Json {
    match answer {
        wb_engine::Answer::Items(items) => obj(vec![
            ("type", Json::from("items")),
            (
                "items",
                Json::Arr(
                    items
                        .iter()
                        .map(|&(item, est)| Json::Arr(vec![Json::from(item), Json::from(est)]))
                        .collect(),
                ),
            ),
        ]),
        wb_engine::Answer::Scalar(x) => obj(vec![
            ("type", Json::from("scalar")),
            ("value", Json::from(*x)),
        ]),
        wb_engine::Answer::Count(c) => obj(vec![
            ("type", Json::from("count")),
            ("value", Json::from(*c)),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        let hello = parse_request(
            r#"{"cmd":"hello","tenant":"t1","alg":"misra_gries","seed":7,"n":1024,"eps":0.25,"shards":4}"#,
        )
        .unwrap();
        assert_eq!(
            hello,
            Request::Hello {
                tenant: "t1".into(),
                alg: "misra_gries".into(),
                seed: Some(7),
                params: HelloParams {
                    n: Some(1024),
                    eps: Some(0.25),
                    shards: Some(4),
                },
            }
        );
        let ingest =
            parse_request(r#"{"cmd":"ingest","tenant":"t1","updates":[5,[9,-2],[3,4]]}"#).unwrap();
        assert_eq!(
            ingest,
            Request::Ingest {
                tenant: "t1".into(),
                updates: vec![
                    Update::Insert(5),
                    Update::Turnstile { item: 9, delta: -2 },
                    Update::Turnstile { item: 3, delta: 4 },
                ],
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"query","tenant":"t1"}"#).unwrap(),
            Request::Query {
                tenant: "t1".into()
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request(r#"{"cmd":"snapshot","tenant":"t1","path":"/tmp/t1.wbsnap"}"#).unwrap(),
            Request::Snapshot {
                tenant: "t1".into(),
                path: Some("/tmp/t1.wbsnap".into()),
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"snapshot","tenant":"t1"}"#).unwrap(),
            Request::Snapshot {
                tenant: "t1".into(),
                path: None,
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"restore","path":"/tmp/t1.wbsnap"}"#).unwrap(),
            Request::Restore {
                path: "/tmp/t1.wbsnap".into(),
            }
        );
        assert_eq!(parse_request(r#"{"cmd":"top"}"#).unwrap(), Request::Top);
        assert_eq!(parse_request(r#"{"cmd":"bye"}"#).unwrap(), Request::Bye);
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn bad_requests_are_typed_not_fatal() {
        for line in [
            "not json",
            r#"{"cmd":"frobnicate"}"#,
            r#"{"no_cmd":1}"#,
            r#"{"cmd":"hello","tenant":"","alg":"x"}"#,
            r#"{"cmd":"hello","tenant":"t"}"#,
            r#"{"cmd":"ingest","tenant":"t","updates":[[1,2,3]]}"#,
            r#"{"cmd":"ingest","tenant":"t","updates":["five"]}"#,
            r#"{"cmd":"ingest","tenant":"t","updates":[-4]}"#,
            r#"{"cmd":"hello","tenant":"t","alg":"x","seed":-1}"#,
            r#"{"cmd":"snapshot","tenant":"t","path":""}"#,
            r#"{"cmd":"restore"}"#,
            r#"{"cmd":"restore","path":17}"#,
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest, "{line}");
            let reply = err.to_json().to_line();
            assert!(
                reply.starts_with(r#"{"ok":false,"error":{"kind":"bad_request""#),
                "{reply}"
            );
        }
    }

    #[test]
    fn error_labels_are_stable() {
        assert_eq!(ErrorKind::WrongModel.label(), "wrong_model");
        assert_eq!(ErrorKind::InvalidParameter.label(), "invalid_parameter");
        assert_eq!(ErrorKind::UnknownTenant.label(), "unknown_tenant");
    }
}
