//! Hand-rolled JSON reader/writer for the wire protocol (the workspace is
//! offline-vendored — no serde), in the spirit of the engine's report
//! emitters but bidirectional: the daemon must *parse* client lines, not
//! just emit them.
//!
//! The dialect is the protocol's subset of RFC 8259: objects, arrays,
//! strings with the common escapes, `true`/`false`/`null`, and numbers.
//! Integers are kept exact in an `i128` (items are full-range `u64`, which
//! `f64` would silently round above 2^53); anything with a fraction or
//! exponent parses as a float. `\uXXXX` escapes decode including surrogate
//! pairs. Parsing rejects trailing garbage — one value per line, as the
//! newline-delimited protocol requires.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal, exact (wide enough for any `u64` or `i64`).
    Int(i128),
    /// A number with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, first value wins on duplicate keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup: `Some(value)` if this is an object with `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer as a `u64`, if this is a non-negative in-range integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The integer as an `i64`, if this is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(i) => i64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parse exactly one JSON value from `input` (surrounding whitespace
    /// allowed, trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Serialize onto `out` (compact, no whitespace — one line).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) => {
                // JSON has no NaN/Infinity; the protocol maps them to null.
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The compact one-line serialization.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Int(n as i128)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n as i128)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

/// Build an object from `(key, value)` pairs — the daemon's response
/// constructor.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b' ' | b'\t' | b'\n' | b'\r') = bytes.get(*pos) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

/// Maximum container nesting. The parser recurses per `[`/`{`, so without
/// a limit a line of tens of KB of `[` would overflow the session thread's
/// stack and abort the whole process; the protocol only ever needs depth
/// ~3.
const MAX_DEPTH: usize = 64;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut s = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let hi = parse_hex4(bytes, pos)?;
                        // A high surrogate must pair with a following \u
                        // low surrogate to form one scalar value.
                        let c = if (0xd800..0xdc00).contains(&hi) {
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let lo = parse_hex4(bytes, pos)?;
                                let combined =
                                    0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(hi)
                        };
                        s.push(c.ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?);
                        continue; // pos already advanced past the hex digits
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(format!("raw control byte in string at byte {}", *pos))
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through as-is: the input
                // is a &str, so the bytes are valid UTF-8 already.
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                s.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("valid utf8"));
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let hex = bytes
        .get(*pos..*pos + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .ok_or_else(|| format!("short \\u escape at byte {}", *pos))?;
    let v = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
    *pos += 4;
    Ok(v)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    if float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number '{text}'"))
    } else {
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| format!("bad number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let line = r#"{"cmd":"ingest","updates":[1,2,[7,-3],18446744073709551615],"ok":true,"x":null,"rate":1.5}"#;
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("cmd").unwrap().as_str(), Some("ingest"));
        let updates = v.get("updates").unwrap().as_arr().unwrap();
        assert_eq!(updates[0].as_u64(), Some(1));
        assert_eq!(updates[2].as_arr().unwrap()[1].as_i64(), Some(-3));
        assert_eq!(updates[3].as_u64(), Some(u64::MAX), "u64::MAX stays exact");
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("x"), Some(&Json::Null));
        assert_eq!(v.get("rate"), Some(&Json::Float(1.5)));
        // Re-serialize and re-parse: stable.
        assert_eq!(Json::parse(&v.to_line()).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::parse(r#""a\"b\\c\ndAé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé😀"));
        let out = Json::Str("tab\there\n\"q\"".to_string()).to_line();
        assert_eq!(out, r#""tab\there\n\"q\"""#);
        assert_eq!(
            Json::parse(&out).unwrap().as_str(),
            Some("tab\there\n\"q\"")
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "[1,2",
            r#"{"a":}"#,
            r#"{"a":1}{"#,
            "tru",
            "1 2",
            r#""unterminated"#,
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // Way past any thread's stack if the parser recursed unbounded.
        for open in ["[", "{\"k\":"] {
            let bomb = open.repeat(200_000);
            let err = Json::parse(&bomb).unwrap_err();
            assert!(err.contains("nesting"), "{err}");
        }
        // The limit is generous for real protocol traffic (depth ~3).
        let fine = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&fine).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(Json::parse(&too_deep).is_err());
    }

    #[test]
    fn numbers_keep_integer_precision() {
        assert_eq!(
            Json::parse("9007199254740993").unwrap().as_u64(),
            Some(9007199254740993)
        );
        assert_eq!(Json::parse("-5").unwrap().as_i64(), Some(-5));
        assert_eq!(Json::parse("-5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("2.5e3").unwrap(), Json::Float(2500.0));
        assert_eq!(Json::Float(f64::NAN).to_line(), "null");
    }
}
