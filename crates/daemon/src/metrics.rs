//! Metrics snapshots: the `metrics` JSON object and the `top` text view.
//!
//! Everything here is a *read*: snapshots lock each tenant slot briefly but
//! never wait for quiescence, so metrics stay responsive while ingestion
//! is saturated. Counter sources:
//!
//! | counter | source |
//! |---|---|
//! | per-tenant accepted/applied/rejected, rate | tenant counters |
//! | per-tenant pending chunks, inbox stalls | the bounded inbox |
//! | per-shard loads, skew, queue stalls | `wb_engine::shard::ShardStats` |
//! | pool depth, peak, submit stalls | `wb_engine::pool::PoolStats` |
//! | session lifecycle, request/error counts | server atomics |

use crate::json::{obj, Json};
use crate::server::Shared;
use crate::tenant::TenantState;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

/// Read the session lifecycle counters: `(opened, closed, active)`. The
/// active gauge is its own transition-tracked counter, not
/// `opened - closed` — deriving it by subtraction would mask lifecycle
/// drift (a double-close pushes the difference silently toward zero). The
/// debug assertion catches that drift at the source in test builds.
fn session_gauges(shared: &Shared) -> (u64, u64, u64) {
    let opened = shared.sessions_opened.load(Ordering::Relaxed);
    let closed = shared.sessions_closed.load(Ordering::Relaxed);
    let active = shared.sessions_active.load(Ordering::Relaxed);
    debug_assert!(
        closed <= opened,
        "session lifecycle drift: {closed} closed but only {opened} opened"
    );
    (opened, closed, active)
}

/// The per-tenant stats object (also the `snapshot-stats` payload).
pub fn tenant_json(st: &TenantState) -> Json {
    let t = &st.tenant;
    let mut members = vec![
        ("id", Json::from(t.id.as_str())),
        ("alg", Json::from(t.alg_name.as_str())),
        ("model", Json::from(t.model.label())),
        ("shards", Json::from(t.shards as u64)),
        ("accepted", Json::from(t.accepted)),
        ("applied", Json::from(t.applied)),
        ("rejected", Json::from(t.rejected)),
        ("batches", Json::from(t.batches)),
        ("queries", Json::from(t.queries)),
        ("ingest_rate_ups", Json::from(t.ingest_rate())),
        ("pending_chunks", Json::from(st.inbox.len() as u64)),
        ("inbox_stalls", Json::from(st.inbox_stalls)),
        ("space_bits", Json::from(t.space_bits())),
        ("failed", Json::Bool(t.failure().is_some())),
    ];
    if let Some(stats) = t.shard_stats() {
        members.push((
            "shard_loads",
            Json::Arr(stats.loads.iter().map(|&l| Json::from(l as u64)).collect()),
        ));
        members.push(("shard_skew", Json::from(stats.skew())));
        members.push((
            "shard_queue_stalls",
            Json::Arr(stats.queue_stalls.iter().map(|&s| Json::from(s)).collect()),
        ));
    }
    obj(members)
}

/// The whole-daemon metrics object (the `metrics` payload and the final
/// drain snapshot).
pub fn snapshot(shared: &Shared) -> Json {
    let pool = shared.pool.stats();
    let (opened, closed, active) = session_gauges(shared);
    let tenants = shared.tenants.lock().unwrap();
    let mut per_tenant = Vec::with_capacity(tenants.len());
    let (mut accepted, mut applied, mut rejected, mut inbox_stalls) = (0u64, 0u64, 0u64, 0u64);
    let mut shard_queue_stalls = 0u64;
    for slot in tenants.values() {
        let st = slot.state.lock().unwrap();
        accepted += st.tenant.accepted;
        applied += st.tenant.applied;
        rejected += st.tenant.rejected;
        inbox_stalls += st.inbox_stalls;
        if let Some(stats) = st.tenant.shard_stats() {
            shard_queue_stalls += stats.total_stalls();
        }
        per_tenant.push(tenant_json(&st));
    }
    let reactor = &shared.reactor;
    obj(vec![
        (
            "uptime_ms",
            Json::from(shared.start.elapsed().as_millis() as u64),
        ),
        ("backend", Json::from(shared.backend.label())),
        (
            "draining",
            Json::Bool(shared.draining.load(Ordering::SeqCst)),
        ),
        (
            "sessions",
            obj(vec![
                ("opened", Json::from(opened)),
                ("closed", Json::from(closed)),
                ("active", Json::from(active)),
                (
                    "requests",
                    Json::from(shared.requests.load(Ordering::Relaxed)),
                ),
                (
                    "protocol_errors",
                    Json::from(shared.protocol_errors.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        (
            "pool",
            obj(vec![
                ("workers", Json::from(shared.pool.workers() as u64)),
                ("submitted", Json::from(pool.submitted)),
                ("completed", Json::from(pool.completed)),
                ("depth", Json::from(pool.depth)),
                ("peak_depth", Json::from(pool.peak_depth)),
                ("submit_stalls", Json::from(pool.submit_stalls)),
                ("panicked", Json::from(pool.panicked)),
            ]),
        ),
        (
            "reactor",
            obj(vec![
                (
                    "registered",
                    Json::from(reactor.registered.load(Ordering::Relaxed)),
                ),
                (
                    "sessions_peak",
                    Json::from(reactor.sessions_peak.load(Ordering::Relaxed)),
                ),
                (
                    "ready_events",
                    Json::from(reactor.ready_events.load(Ordering::Relaxed)),
                ),
                (
                    "wakeups",
                    Json::from(reactor.wakeups.load(Ordering::Relaxed)),
                ),
                (
                    "pending_ops",
                    Json::from(reactor.pending_ops.load(Ordering::Relaxed)),
                ),
                (
                    "deferred_submits",
                    Json::from(reactor.deferred_submits.load(Ordering::Relaxed)),
                ),
                (
                    "write_queue_bytes",
                    Json::from(reactor.write_queue_bytes.load(Ordering::Relaxed)),
                ),
                (
                    "write_stalls",
                    Json::from(reactor.write_stalls.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        (
            "tenants",
            obj(vec![
                ("count", Json::from(tenants.len() as u64)),
                ("accepted", Json::from(accepted)),
                ("applied", Json::from(applied)),
                ("rejected", Json::from(rejected)),
                ("inbox_stalls", Json::from(inbox_stalls)),
                ("shard_queue_stalls", Json::from(shard_queue_stalls)),
            ]),
        ),
        ("per_tenant", Json::Arr(per_tenant)),
    ])
}

/// How many tenants the `top` view lists (heaviest first).
const TOP_ROWS: usize = 32;

/// Render the `wbd-top`-style text view: a header line plus the heaviest
/// tenants by accepted updates.
pub fn top_text(shared: &Shared) -> String {
    let pool = shared.pool.stats();
    let (opened, _closed, active) = session_gauges(shared);
    let tenants = shared.tenants.lock().unwrap();
    let mut rows: Vec<(u64, String)> = Vec::with_capacity(tenants.len());
    for slot in tenants.values() {
        let st = slot.state.lock().unwrap();
        let t = &st.tenant;
        let skew = t
            .shard_stats()
            .map_or("-".to_string(), |s| format!("{:.2}", s.skew()));
        rows.push((
            t.accepted,
            format!(
                "{:<16} {:<13} {:>6} {:>10} {:>8} {:>12.1} {:>6} {:>7} {:>11}{}",
                t.id,
                t.alg_name,
                t.shards,
                t.accepted,
                t.rejected,
                t.ingest_rate(),
                skew,
                st.inbox.len(),
                t.space_bits(),
                if t.failure().is_some() {
                    "  FAILED"
                } else {
                    ""
                },
            ),
        ));
    }
    rows.sort_by_key(|row| std::cmp::Reverse(row.0));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "wbd  uptime {:.1}s  tenants {}  sessions {} active / {} total  \
         pool {} workers depth {} peak {} stalls {}",
        shared.start.elapsed().as_secs_f64(),
        tenants.len(),
        active,
        opened,
        shared.pool.workers(),
        pool.depth,
        pool.peak_depth,
        pool.submit_stalls,
    );
    let _ = writeln!(
        out,
        "{:<16} {:<13} {:>6} {:>10} {:>8} {:>12} {:>6} {:>7} {:>11}",
        "TENANT",
        "ALG",
        "SHARDS",
        "ACCEPTED",
        "REJECTED",
        "RATE(upd/s)",
        "SKEW",
        "PENDING",
        "SPACE(bits)",
    );
    for (_, row) in rows.into_iter().take(TOP_ROWS) {
        let _ = writeln!(out, "{row}");
    }
    out
}
