//! `wbd client`: a scripting-friendly client — protocol lines in on stdin,
//! reply lines out on stdout.
//!
//! Every non-empty input line is sent verbatim (it must be one protocol
//! JSON object) and the daemon's reply line is printed. With `--pipeline
//! N`, up to N requests stay in flight before the client reads a reply —
//! the daemon answers strictly in request order per session, so replies
//! are matched to requests positionally. Exit status:
//!
//! * `0` — every reply parsed as JSON (and, under `--strict`, none was
//!   `"ok":false`);
//! * `1` — connection failure, a malformed reply, or (`--strict`) an
//!   error reply.
//!
//! Lines starting with `#` are comments; a leading `!` marks a request
//! whose reply is *expected* to be an error (so `--strict` scripts can
//! cover rejection paths: `!{"cmd":"ingest",...}` passes only if the
//! daemon refuses it).

use crate::json::Json;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Drive `input` against the daemon at `addr`, writing replies to `out`,
/// keeping up to `pipeline` requests in flight (`0` and `1` both mean
/// stop-and-wait). Returns `Ok(())` when the script passed,
/// `Err(reason)` otherwise.
pub fn run_script(
    addr: &str,
    input: &mut dyn BufRead,
    out: &mut dyn Write,
    strict: bool,
    pipeline: usize,
) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    let window = pipeline.max(1);
    // Expected-error flags of in-flight requests, oldest first: the
    // daemon replies in request order per session, so matching is
    // positional.
    let mut inflight: VecDeque<bool> = VecDeque::new();
    let mut line = String::new();
    loop {
        line.clear();
        match input.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => return Err(format!("stdin: {e}")),
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (expect_error, request) = match trimmed.strip_prefix('!') {
            Some(rest) => (true, rest),
            None => (false, trimmed),
        };
        while inflight.len() >= window {
            pull_reply(&mut reader, &mut inflight, out, strict)?;
        }
        writer
            .write_all(request.as_bytes())
            .and_then(|_| writer.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        inflight.push_back(expect_error);
        // `bye` ends the session server-side; stop reading stdin and
        // drain the outstanding replies. Decide from the request's parsed
        // `cmd` — a substring match would end the script early on any
        // request merely mentioning "bye" (e.g. a tenant named so).
        let is_bye = Json::parse(request)
            .ok()
            .is_some_and(|req| req.get("cmd").and_then(Json::as_str) == Some("bye"));
        if is_bye {
            break;
        }
    }
    while !inflight.is_empty() {
        pull_reply(&mut reader, &mut inflight, out, strict)?;
    }
    Ok(())
}

/// Read one reply line and check it against the oldest in-flight request.
fn pull_reply(
    reader: &mut BufReader<TcpStream>,
    inflight: &mut VecDeque<bool>,
    out: &mut dyn Write,
    strict: bool,
) -> Result<(), String> {
    let expect_error = inflight.pop_front().expect("no request in flight");
    let mut reply = String::new();
    match reader.read_line(&mut reply) {
        Ok(0) => return Err("daemon closed the connection mid-script".to_string()),
        Ok(_) => {}
        Err(e) => return Err(format!("recv: {e}")),
    }
    let reply = reply.trim_end();
    let parsed = Json::parse(reply).map_err(|e| format!("malformed reply {reply:?}: {e}"))?;
    let ok = parsed.get("ok") == Some(&Json::Bool(true));
    writeln!(out, "{reply}").map_err(|e| e.to_string())?;
    if strict && ok == expect_error {
        return Err(if expect_error {
            format!("expected an error reply, got: {reply}")
        } else {
            format!("error reply: {reply}")
        });
    }
    Ok(())
}
