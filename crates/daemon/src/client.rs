//! `wbd client`: a scripting-friendly client — protocol lines in on stdin,
//! reply lines out on stdout.
//!
//! Every non-empty input line is sent verbatim (it must be one protocol
//! JSON object) and the daemon's reply line is printed. Exit status:
//!
//! * `0` — every reply parsed as JSON (and, under `--strict`, none was
//!   `"ok":false`);
//! * `1` — connection failure, a malformed reply, or (`--strict`) an
//!   error reply.
//!
//! Lines starting with `#` are comments; a leading `!` marks a request
//! whose reply is *expected* to be an error (so `--strict` scripts can
//! cover rejection paths: `!{"cmd":"ingest",...}` passes only if the
//! daemon refuses it).

use crate::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Drive `input` against the daemon at `addr`, writing replies to `out`.
/// Returns `Ok(())` when the script passed, `Err(reason)` otherwise.
pub fn run_script(
    addr: &str,
    input: &mut dyn BufRead,
    out: &mut dyn Write,
    strict: bool,
) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match input.read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e) => return Err(format!("stdin: {e}")),
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (expect_error, request) = match trimmed.strip_prefix('!') {
            Some(rest) => (true, rest),
            None => (false, trimmed),
        };
        writer
            .write_all(request.as_bytes())
            .and_then(|_| writer.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        match reader.read_line(&mut reply) {
            Ok(0) => return Err("daemon closed the connection mid-script".to_string()),
            Ok(_) => {}
            Err(e) => return Err(format!("recv: {e}")),
        }
        let reply = reply.trim_end();
        let parsed = Json::parse(reply).map_err(|e| format!("malformed reply {reply:?}: {e}"))?;
        let ok = parsed.get("ok") == Some(&Json::Bool(true));
        writeln!(out, "{reply}").map_err(|e| e.to_string())?;
        if strict && ok == expect_error {
            return Err(if expect_error {
                format!("expected an error reply, got: {reply}")
            } else {
                format!("error reply: {reply}")
            });
        }
        // `bye` ends the session server-side; stop reading stdin. Decide
        // from the request's parsed `cmd` — a substring match would end
        // the script early on any request merely mentioning "bye" (e.g.
        // a tenant named so).
        let is_bye = Json::parse(request)
            .ok()
            .is_some_and(|req| req.get("cmd").and_then(Json::as_str) == Some("bye"));
        if is_bye {
            return Ok(());
        }
    }
}
