//! Per-tenant state: one erased algorithm instance (sharded through a
//! [`ShardPipeline`] when the algorithm merges), its derived random tape,
//! a bounded ingest inbox, and the tenant-level counters the metrics layer
//! exports.
//!
//! **Determinism.** A tenant's final state is a pure function of its own
//! update sequence: ingest chunks are applied in arrival order by exactly
//! one worker at a time (the `scheduled` flag hands the tenant to a single
//! pool job; the inbox is FIFO), and all engine randomness derives from the
//! tenant seed — `derive_seed(base, ["tenant", id])`, then `["ctor"]` for
//! constructor randomness and `["game"]` for the ingest tape (the sharded
//! path feeds `["game"]` to [`ShardConfig::master_seed`], which derives the
//! per-shard tapes exactly as an offline run would). Chunk boundaries are
//! pure transport by the engine's batching contract, so the daemon's state
//! after any interleaving of sessions is byte-identical to an offline run
//! of the concatenated per-tenant stream — the white-box model's adversary
//! loses nothing by the engine being behind a socket.
//!
//! **Backpressure.** The inbox holds at most [`INBOX_CHUNKS`] chunks;
//! sessions pushing faster than the pool drains block on the slot condvar
//! (counted in `inbox_stalls`) so memory stays bounded per tenant and
//! pressure propagates to the client socket instead of the heap.

use crate::proto::{ErrorKind, HelloParams, ProtoError};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;
use wb_core::rng::{derive_seed, TranscriptRng};
use wb_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use wb_core::WbError;
use wb_engine::registry::{self, Params};
use wb_engine::shard::{probe_mergeable, Partition, ShardConfig, ShardPipeline, ShardStats};
use wb_engine::{Answer, DynStreamAlg, StreamModel, Update};

/// Bounded inbox depth, in chunks. Small on purpose: the pool, not the
/// inbox, is where throughput comes from; the inbox only decouples socket
/// reads from sketch updates.
pub const INBOX_CHUNKS: usize = 8;

/// The engine half of a tenant.
enum TenantEngine {
    /// One flat instance — the only mode for unmergeable algorithms.
    Flat {
        alg: Box<dyn DynStreamAlg>,
        rng: TranscriptRng,
    },
    /// A live sharded pipeline (mergeable algorithms, shards >= 2).
    Sharded { pipeline: ShardPipeline },
    /// The algorithm failed mid-stream (budget exhausted, …); the error is
    /// replayed to every later request.
    Failed { error: WbError },
}

/// A tenant: engine + identity + counters. Lives inside a
/// [`TenantSlot`]'s mutex.
pub struct Tenant {
    /// Tenant id (protocol string).
    pub id: String,
    /// Registry algorithm name.
    pub alg_name: String,
    /// The seed base `hello` declared (daemon master if omitted) — echoed
    /// so clients can reproduce the offline run.
    pub seed_base: u64,
    /// `derive_seed(seed_base, ["tenant", id])`.
    pub tenant_seed: u64,
    /// The algorithm's stream model, checked per update **before** a batch
    /// is accepted (so an accepted batch can never fail on model grounds
    /// inside the asynchronous ingest path).
    pub model: StreamModel,
    /// Constructor parameters (with the derived ctor seed) — kept so the
    /// sharded query path can build fresh merge targets.
    params: Params,
    /// Shard count (1 = flat).
    pub shards: usize,
    /// Ingest chunk size the engine was built with (the sharded pipeline's
    /// staging unit) — recorded in snapshots so a restored twin rebuilds
    /// the identical pipeline even under a different daemon `--chunk`.
    batch: usize,
    engine: TenantEngine,
    /// Updates accepted (whole batches; all-or-nothing).
    pub accepted: u64,
    /// Updates actually applied to the engine by workers. After a drain,
    /// `applied == accepted` for every tenant — the no-loss guarantee.
    pub applied: u64,
    /// Updates rejected at the protocol layer (model/shape), summed over
    /// rejected batches.
    pub rejected: u64,
    /// Accepted ingest batches.
    pub batches: u64,
    /// Queries answered.
    pub queries: u64,
    /// Creation time, for the cumulative ingest rate.
    pub created: Instant,
}

impl Tenant {
    /// Build a tenant: construct the algorithm from the registry (typed
    /// `invalid_parameter` errors for unknown names, `n == 0`, bad ε, …),
    /// probe mergeability, and set up the sharded pipeline when it applies.
    pub fn create(
        id: &str,
        alg_name: &str,
        seed_base: u64,
        hello: &HelloParams,
        default_shards: usize,
        batch: usize,
    ) -> Result<Tenant, ProtoError> {
        let tenant_seed = derive_seed(seed_base, &["tenant", id]);
        let mut params = Params::default().with_seed(derive_seed(tenant_seed, &["ctor"]));
        if let Some(n) = hello.n {
            params = params.with_n(n);
        }
        if let Some(eps) = hello.eps {
            params = params.with_eps(eps);
        }
        let invalid = |e: &WbError| ProtoError::new(ErrorKind::InvalidParameter, e.to_string());
        // Construct once up front so every parameter error surfaces here,
        // synchronously, as a typed reply — never inside the ingest path.
        let flat = registry::get(alg_name, &params).map_err(|e| invalid(&e))?;
        let model = flat.model_dyn();
        let wanted_shards = hello.shards.unwrap_or(default_shards).max(1);
        let ctor = |_: usize| registry::get(alg_name, &params);
        let mergeable = wanted_shards > 1 && probe_mergeable(&ctor).map_err(|e| invalid(&e))?;
        let shards = if mergeable { wanted_shards } else { 1 };
        let game_seed = derive_seed(tenant_seed, &["game"]);
        let engine = if shards > 1 {
            let cfg = ShardConfig {
                shards,
                partition: Partition::Hash,
                threads: 1,
                batch,
                master_seed: game_seed,
            };
            TenantEngine::Sharded {
                pipeline: ShardPipeline::new(&ctor, &cfg).map_err(|e| invalid(&e))?,
            }
        } else {
            TenantEngine::Flat {
                alg: flat,
                rng: TranscriptRng::from_seed(game_seed),
            }
        };
        Ok(Tenant {
            id: id.to_string(),
            alg_name: alg_name.to_string(),
            seed_base,
            tenant_seed,
            model,
            params,
            shards,
            batch,
            engine,
            accepted: 0,
            applied: 0,
            rejected: 0,
            batches: 0,
            queries: 0,
            created: Instant::now(),
        })
    }

    /// `hello` to an existing tenant must re-declare the same algorithm
    /// and seed base — a mismatch is a typed refusal, never a silent
    /// re-seed.
    pub fn check_hello_matches(&self, alg_name: &str, seed_base: u64) -> Result<(), ProtoError> {
        if self.alg_name != alg_name || self.seed_base != seed_base {
            return Err(ProtoError::new(
                ErrorKind::TenantMismatch,
                format!(
                    "tenant '{}' exists with alg '{}' and seed {} (got alg '{}', seed {})",
                    self.id, self.alg_name, self.seed_base, alg_name, seed_base
                ),
            ));
        }
        Ok(())
    }

    /// Validate a batch against the tenant's stream model *before*
    /// accepting it (all-or-nothing): the typed rejection carries the
    /// first offending index, reusing the engine's per-update rule
    /// ([`StreamModel::accepts`] mirrors `from_update_weighted`).
    pub fn validate_batch(&self, updates: &[Update]) -> Result<(), ProtoError> {
        if let TenantEngine::Failed { error } = &self.engine {
            return Err(ProtoError::new(ErrorKind::TenantFailed, error.to_string()));
        }
        for (i, u) in updates.iter().enumerate() {
            if !self.model.accepts(u) {
                return Err(ProtoError::new(
                    ErrorKind::WrongModel,
                    format!(
                        "updates[{i}] {u:?} is outside {}'s {} model",
                        self.alg_name,
                        self.model.label()
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Apply one accepted chunk (called by pool workers, in arrival
    /// order). Unexpected mid-stream failures (budget exhaustion — model
    /// errors were excluded at accept time) poison the tenant; the error
    /// replays on every later request.
    pub fn apply_chunk(&mut self, chunk: &[Update]) {
        self.applied += chunk.len() as u64;
        match &mut self.engine {
            TenantEngine::Flat { alg, rng } => {
                if let Err(error) = alg.process_batch_dyn(chunk, rng) {
                    self.engine = TenantEngine::Failed { error };
                }
            }
            TenantEngine::Sharded { pipeline } => {
                pipeline.push(chunk);
                if pipeline.all_failed() {
                    let error = pipeline
                        .first_failure()
                        .cloned()
                        .unwrap_or_else(|| WbError::invalid("sharded pipeline failed"));
                    self.engine = TenantEngine::Failed { error };
                }
            }
            TenantEngine::Failed { .. } => {}
        }
    }

    /// Answer the tenant's fixed query. The sharded path flushes staging
    /// and merges into fresh instances without consuming shard state, so
    /// ingestion can continue afterwards.
    pub fn query(&mut self) -> Result<Answer, ProtoError> {
        self.queries += 1;
        match &mut self.engine {
            TenantEngine::Flat { alg, .. } => Ok(alg.query_dyn()),
            TenantEngine::Sharded { pipeline } => {
                let alg_name = self.alg_name.clone();
                let params = self.params.clone();
                let ctor = move |_: usize| registry::get(&alg_name, &params);
                match pipeline.snapshot_merged(&ctor) {
                    Ok(merged) => Ok(merged.query_dyn()),
                    Err(error) => {
                        let reply = ProtoError::new(ErrorKind::TenantFailed, error.to_string());
                        self.engine = TenantEngine::Failed { error };
                        Err(reply)
                    }
                }
            }
            TenantEngine::Failed { error } => {
                Err(ProtoError::new(ErrorKind::TenantFailed, error.to_string()))
            }
        }
    }

    /// The failure poisoning this tenant, if any.
    pub fn failure(&self) -> Option<&WbError> {
        match &self.engine {
            TenantEngine::Failed { error } => Some(error),
            _ => None,
        }
    }

    /// Current space usage in bits (merged cost for sharded tenants is the
    /// sum of shard costs — that is what the node actually holds).
    pub fn space_bits(&self) -> u64 {
        match &self.engine {
            TenantEngine::Flat { alg, .. } => alg.space_bits_dyn(),
            TenantEngine::Sharded { pipeline } => pipeline.space_bits(),
            TenantEngine::Failed { .. } => 0,
        }
    }

    /// Per-shard routing stats (loads always; stalls stay zero inline).
    /// `None` for flat tenants.
    pub fn shard_stats(&self) -> Option<ShardStats> {
        match &self.engine {
            TenantEngine::Sharded { pipeline } => Some(pipeline.stats()),
            _ => None,
        }
    }

    /// Serialize this tenant's full state — identity, counters, and the
    /// live engine (sketch + transcript RNG, or the sharded pipeline) —
    /// into one `wb_core::snap` frame. Callers must quiesce first (empty
    /// inbox), so `applied == accepted` holds inside every frame. Failed
    /// tenants refuse: their error chains are not serializable and a
    /// restored twin could not honour the replay contract.
    pub fn snapshot_bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        if self.failure().is_some() {
            return Err(SnapError::unsupported(format!(
                "tenant '{}' has failed and cannot be snapshotted",
                self.id
            )));
        }
        let mut w = SnapWriter::new();
        w.put_str("wbd-tenant");
        w.put_str(&self.id);
        w.put_str(&self.alg_name);
        w.put_u64(self.seed_base);
        w.put_u64(self.tenant_seed);
        w.put_u64(self.params.n);
        w.put_f64(self.params.eps);
        w.put_usize(self.shards);
        w.put_usize(self.batch);
        w.put_u64(self.accepted);
        w.put_u64(self.applied);
        w.put_u64(self.rejected);
        w.put_u64(self.batches);
        w.put_u64(self.queries);
        match &mut self.engine {
            TenantEngine::Flat { alg, rng } => {
                w.put_bool(false);
                w.put_bytes(&alg.snapshot_dyn()?);
                rng.snap(&mut w);
            }
            TenantEngine::Sharded { pipeline } => {
                w.put_bool(true);
                w.put_bytes(&pipeline.checkpoint()?);
            }
            TenantEngine::Failed { .. } => unreachable!("checked above"),
        }
        Ok(w.finish())
    }

    /// Rebuild a tenant from a [`Self::snapshot_bytes`] frame: construct a
    /// twin through the normal [`Self::create`] path (same derived seeds,
    /// same shard routing), then overwrite its mutable engine state and
    /// counters. The embedded `tenant_seed` and shard count cross-validate
    /// the reconstruction — a registry or seed-derivation drift surfaces as
    /// a typed error instead of a silently different tenant.
    pub fn restore_bytes(bytes: &[u8]) -> Result<Tenant, SnapError> {
        let mut r = SnapReader::new(bytes)?;
        let label = r.take_str()?;
        if label != "wbd-tenant" {
            return Err(SnapError::mismatch("wbd-tenant", label));
        }
        let id = r.take_str()?;
        let alg_name = r.take_str()?;
        let seed_base = r.take_u64()?;
        let tenant_seed = r.take_u64()?;
        let n = r.take_u64()?;
        let eps = r.take_f64()?;
        let shards = r.take_usize()?;
        let batch = r.take_usize()?;
        let accepted = r.take_u64()?;
        let applied = r.take_u64()?;
        let rejected = r.take_u64()?;
        let batches = r.take_u64()?;
        let queries = r.take_u64()?;
        if applied != accepted {
            return Err(SnapError::corrupt(format!(
                "tenant snapshot holds {applied} applied of {accepted} accepted updates; \
                 snapshots are only taken at quiescence"
            )));
        }
        let hello = HelloParams {
            n: Some(n),
            eps: Some(eps),
            shards: Some(shards.max(1)),
        };
        let mut t = Tenant::create(
            &id,
            &alg_name,
            seed_base,
            &hello,
            shards.max(1),
            batch.max(1),
        )
        .map_err(|e| SnapError::corrupt(format!("cannot rebuild tenant '{id}': {}", e.message)))?;
        if t.tenant_seed != tenant_seed {
            return Err(SnapError::corrupt(format!(
                "tenant '{id}' derives seed {} but the snapshot recorded {tenant_seed}",
                t.tenant_seed
            )));
        }
        if t.shards != shards {
            return Err(SnapError::corrupt(format!(
                "tenant '{id}' rebuilds with {} shards but the snapshot recorded {shards}",
                t.shards
            )));
        }
        let sharded = r.take_bool()?;
        let engine_bytes = r.take_bytes()?;
        match (&mut t.engine, sharded) {
            (TenantEngine::Flat { alg, rng }, false) => {
                alg.restore_dyn(&engine_bytes)?;
                rng.restore(&mut r)?;
            }
            (TenantEngine::Sharded { pipeline }, true) => pipeline.resume(&engine_bytes)?,
            _ => {
                return Err(SnapError::corrupt(format!(
                    "tenant '{id}' snapshot engine mode disagrees with its shard count"
                )))
            }
        }
        r.finish()?;
        t.accepted = accepted;
        t.applied = applied;
        t.rejected = rejected;
        t.batches = batches;
        t.queries = queries;
        Ok(t)
    }

    /// Cumulative ingest rate in updates/second since creation.
    pub fn ingest_rate(&self) -> f64 {
        let secs = self.created.elapsed().as_secs_f64();
        if secs > 0.0 {
            self.accepted as f64 / secs
        } else {
            0.0
        }
    }
}

/// Where a reactor session asks to be poked when a tenant's inbox makes
/// progress. The trait keeps `tenant.rs` portable: the Linux reactor
/// implements it over its wakeup pipe; the thread backend never registers
/// one (it blocks on [`TenantSlot::cv`] instead).
pub trait WakeSink: Send + Sync {
    /// Record `token` as runnable and wake the event loop that owns it.
    fn wake(&self, token: u64);
}

/// One parked reactor session: its token and the sink that reaches its
/// reactor. Registered under the slot lock while the blocking condition
/// holds, drained (woken) by the worker that changes the condition — the
/// classic no-lost-wakeup shape, with re-registration on spurious wakes.
pub struct Waiter {
    /// The session token the reactor resolves back to a pending op.
    pub token: u64,
    /// The owning reactor's wakeup sink.
    pub sink: std::sync::Arc<dyn WakeSink>,
}

/// What a session observes about a tenant while holding the slot lock.
pub struct TenantState {
    /// The tenant itself.
    pub tenant: Tenant,
    /// FIFO of accepted-but-unapplied chunks.
    pub inbox: VecDeque<Vec<Update>>,
    /// Whether a pool job currently owns this tenant's inbox.
    pub scheduled: bool,
    /// How often a session found the inbox full and had to wait.
    pub inbox_stalls: u64,
    /// Reactor sessions parked on this tenant (inbox space or quiescence).
    /// Every applied chunk and every worker hand-back drains the list;
    /// still-blocked sessions re-register after re-checking.
    pub waiters: Vec<Waiter>,
}

/// A registered tenant behind its lock + condvar (the condvar signals
/// "inbox drained a chunk" — both queries waiting for quiescence and
/// sessions waiting for inbox space block on it).
pub struct TenantSlot {
    /// The guarded state.
    pub state: Mutex<TenantState>,
    /// Signalled on every applied chunk and on worker hand-back.
    pub cv: Condvar,
}

impl TenantSlot {
    /// Wrap a fresh tenant.
    pub fn new(tenant: Tenant) -> Self {
        TenantSlot {
            state: Mutex::new(TenantState {
                tenant,
                inbox: VecDeque::new(),
                scheduled: false,
                inbox_stalls: 0,
                waiters: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Run the worker half: apply inbox chunks in FIFO order until the
    /// inbox is empty, then hand the tenant back (clear `scheduled`)
    /// atomically with the emptiness check, so no chunk is ever left
    /// behind without a worker owning it. Both wait mechanisms are
    /// notified at every progress point: the condvar for blocking
    /// sessions, the registered [`Waiter`]s for reactor sessions.
    pub fn drain_inbox(&self) {
        let mut st = self.state.lock().unwrap();
        loop {
            match st.inbox.pop_front() {
                Some(chunk) => {
                    // Applied under the lock: per-tenant serialization is
                    // what makes the daemon deterministic, and observers
                    // (queries) must never see a popped-but-unapplied
                    // chunk.
                    st.tenant.apply_chunk(&chunk);
                    self.cv.notify_all();
                    wake_waiters(&mut st);
                }
                None => {
                    st.scheduled = false;
                    self.cv.notify_all();
                    wake_waiters(&mut st);
                    return;
                }
            }
        }
    }

    /// Block until every accepted chunk has been applied (read-your-writes
    /// for queries and stats).
    pub fn await_quiescent(&self) -> std::sync::MutexGuard<'_, TenantState> {
        let mut st = self.state.lock().unwrap();
        while !st.inbox.is_empty() || st.scheduled {
            st = self.cv.wait(st).unwrap();
        }
        st
    }
}

/// Drain the waiter list, poking each sink. Spurious wakes are fine — the
/// reactor re-checks its pending condition and re-registers — so a single
/// list serves both "inbox space" and "quiescence" waiters without the
/// worker distinguishing them.
fn wake_waiters(st: &mut TenantState) {
    for w in st.waiters.drain(..) {
        w.sink.wake(w.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hello_defaults() -> HelloParams {
        HelloParams {
            n: Some(1 << 10),
            eps: None,
            shards: None,
        }
    }

    #[test]
    fn create_routes_mergeable_algs_to_shards() {
        let t = Tenant::create("a", "misra_gries", 42, &hello_defaults(), 4, 64).unwrap();
        assert_eq!(t.shards, 4);
        assert!(t.shard_stats().is_some());
        let t = Tenant::create("a", "morris", 42, &hello_defaults(), 4, 64).unwrap();
        assert_eq!(t.shards, 1, "unmergeable algorithms stay flat");
        assert!(t.shard_stats().is_none());
    }

    #[test]
    fn create_rejects_bad_parameters_with_typed_errors() {
        let err = match Tenant::create("a", "no_such_alg", 42, &hello_defaults(), 1, 64) {
            Ok(_) => panic!("unknown algorithm must be rejected"),
            Err(e) => e,
        };
        assert_eq!(err.kind, ErrorKind::InvalidParameter);
        let zero_n = HelloParams {
            n: Some(0),
            eps: None,
            shards: None,
        };
        let err = match Tenant::create("a", "misra_gries", 42, &zero_n, 1, 64) {
            Ok(_) => panic!("n == 0 must be rejected"),
            Err(e) => e,
        };
        assert_eq!(err.kind, ErrorKind::InvalidParameter);
        assert!(err.message.contains("n"), "{}", err.message);
    }

    #[test]
    fn model_validation_rejects_before_accepting() {
        let t = Tenant::create("a", "misra_gries", 42, &hello_defaults(), 1, 64).unwrap();
        let bad = vec![Update::Insert(1), Update::Turnstile { item: 2, delta: -1 }];
        let err = t.validate_batch(&bad).unwrap_err();
        assert_eq!(err.kind, ErrorKind::WrongModel);
        assert!(err.message.contains("updates[1]"), "{}", err.message);
        // Turnstile tenants take everything.
        let t = Tenant::create("a", "exact_l0", 42, &hello_defaults(), 1, 64).unwrap();
        assert!(t.validate_batch(&bad).is_ok());
    }

    #[test]
    fn tenant_state_matches_offline_run_flat_and_sharded() {
        let updates: Vec<Update> = (0..500u64).map(|i| Update::Insert(i % 17)).collect();
        for default_shards in [1usize, 4] {
            let mut t = Tenant::create(
                "tenant-x",
                "misra_gries",
                99,
                &hello_defaults(),
                default_shards,
                64,
            )
            .unwrap();
            for chunk in updates.chunks(33) {
                t.apply_chunk(chunk);
            }
            let answer = t.query().unwrap();

            // Offline replica with the same derived seeds.
            let tenant_seed = derive_seed(99, &["tenant", "tenant-x"]);
            let params = Params::default()
                .with_seed(derive_seed(tenant_seed, &["ctor"]))
                .with_n(1 << 10);
            let game_seed = derive_seed(tenant_seed, &["game"]);
            let offline = if default_shards > 1 {
                let cfg = ShardConfig {
                    shards: default_shards,
                    partition: Partition::Hash,
                    threads: 1,
                    batch: 64,
                    master_seed: game_seed,
                };
                wb_engine::shard::ingest_sharded(
                    &|_| registry::get("misra_gries", &params),
                    &updates,
                    &cfg,
                )
                .unwrap()
                .merged
                .query_dyn()
            } else {
                let mut alg = registry::get("misra_gries", &params).unwrap();
                let mut rng = TranscriptRng::from_seed(game_seed);
                alg.process_batch_dyn(&updates, &mut rng).unwrap();
                alg.query_dyn()
            };
            assert_eq!(answer, offline, "shards = {default_shards}");
        }
    }

    #[test]
    fn tenant_snapshot_restore_continues_draw_for_draw() {
        // Flat (morris: unmergeable, RNG-hungry) and sharded (misra_gries)
        // tenants, snapshotted mid-stream: the restored twin must end in
        // exactly the state of an uninterrupted tenant fed the same stream.
        let updates: Vec<Update> = (0..900u64).map(|i| Update::Insert(i % 23)).collect();
        for (alg, default_shards) in [("morris", 1usize), ("misra_gries", 4)] {
            let mut reference = Tenant::create("t", alg, 7, &hello_defaults(), default_shards, 64)
                .expect("reference tenant");
            for chunk in updates.chunks(50) {
                reference.apply_chunk(chunk);
            }
            let want = reference.query().unwrap();

            let mut live = Tenant::create("t", alg, 7, &hello_defaults(), default_shards, 64)
                .expect("live tenant");
            for chunk in updates[..450].chunks(50) {
                live.apply_chunk(chunk);
            }
            // `apply_chunk` is the worker half; the session half counts
            // acceptance. Mirror it so the quiescence invariant holds.
            live.accepted = live.applied;
            let frame = live.snapshot_bytes().expect("snapshot");
            let mut resumed = Tenant::restore_bytes(&frame).expect("restore");
            assert_eq!(resumed.accepted, live.accepted);
            assert_eq!(resumed.applied, live.applied);
            assert_eq!(resumed.shards, live.shards);
            for chunk in updates[450..].chunks(50) {
                resumed.apply_chunk(chunk);
            }
            assert_eq!(resumed.query().unwrap(), want, "alg = {alg}");
        }
    }

    #[test]
    fn tenant_restore_rejects_tampered_frames() {
        let mut t = Tenant::create("t", "count_min", 3, &hello_defaults(), 1, 64).unwrap();
        t.apply_chunk(&[Update::Insert(5); 20]);
        t.accepted = t.applied;
        let frame = t.snapshot_bytes().unwrap();
        // Truncation and bit-flips both surface as typed errors, never as a
        // silently different tenant.
        assert!(Tenant::restore_bytes(&frame[..frame.len() - 3]).is_err());
        let mut flipped = frame.clone();
        flipped[0] ^= 0xff; // magic
        assert!(Tenant::restore_bytes(&flipped).is_err());
        // The untampered frame still restores.
        assert!(Tenant::restore_bytes(&frame).is_ok());
    }

    #[test]
    fn slot_drains_fifo_and_quiesces() {
        let t = Tenant::create("a", "count_min", 1, &hello_defaults(), 1, 64).unwrap();
        let slot = TenantSlot::new(t);
        {
            let mut st = slot.state.lock().unwrap();
            st.inbox.push_back(vec![Update::Insert(1); 10]);
            st.inbox.push_back(vec![Update::Insert(2); 5]);
            st.scheduled = true;
        }
        slot.drain_inbox();
        let st = slot.await_quiescent();
        assert!(st.inbox.is_empty());
        assert!(!st.scheduled);
    }
}
