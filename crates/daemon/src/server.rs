//! The `wbd` server: listener setup, backend selection, tenant registry,
//! and graceful drain.
//!
//! Two session backends serve the same protocol through
//! [`crate::dispatch`]:
//!
//! * **epoll reactor** ([`crate::reactor`], Linux, the default there) —
//!   every session multiplexed as a nonblocking state machine on one
//!   event-loop thread; blocking conditions park as pending ops resumed
//!   by pool-worker wakeups.
//! * **thread-per-session** ([`crate::accept`], `--backend thread` and
//!   every non-Linux platform) — one OS thread per connection, blocking
//!   inside handlers.
//!
//! Sessions are stateless beyond their socket: every request names its
//! tenant, so one connection can drive many tenants and many connections
//! can drive one (ingest batches for a tenant are serialized through its
//! inbox wherever they arrive from). Ingestion runs on the shared
//! [`WorkerPool`].
//!
//! **Graceful drain.** A `shutdown` request (or [`Server::begin_drain`])
//! flips the draining flag: accepting stops, new `hello`/`ingest`
//! requests get a typed `draining` refusal, in-flight queries still answer,
//! idle sessions close, the pool finishes every accepted chunk, and the
//! final metrics snapshot is returned from [`Server::wait`] — no accepted
//! update is ever dropped, on either backend.

use crate::json::Json;
use crate::metrics;
use crate::tenant::{Tenant, TenantSlot};
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use wb_engine::pool::WorkerPool;

/// Maximum request-line size. Generous — an ingest batch of ~400k
/// turnstile updates still fits — but bounded, so one newline-less client
/// cannot grow a session buffer without limit.
pub(crate) const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// Which session backend serves connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The Linux epoll reactor: all sessions on one event-loop thread.
    Epoll,
    /// Thread-per-session: the portable fallback.
    Thread,
}

impl Backend {
    /// Stable label (metrics, `--backend` values).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Epoll => "epoll",
            Backend::Thread => "thread",
        }
    }

    /// Parse a `--backend` value.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "epoll" => Some(Backend::Epoll),
            "thread" => Some(Backend::Thread),
            _ => None,
        }
    }
}

impl Default for Backend {
    fn default() -> Backend {
        if cfg!(target_os = "linux") {
            Backend::Epoll
        } else {
            Backend::Thread
        }
    }
}

/// Server configuration — the `wbd` flags.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address (`--listen`), e.g. `127.0.0.1:7070`; port `0` binds
    /// an ephemeral port (the loopback tests use this).
    pub listen: String,
    /// Session backend (`--backend epoll|thread`). Defaults to the epoll
    /// reactor on Linux; requesting `epoll` elsewhere falls back to
    /// `thread` with a warning.
    pub backend: Backend,
    /// Ingest pool workers (`--threads`; `0` = one per core).
    pub threads: usize,
    /// Default per-tenant shard count (`--shards`); unmergeable algorithms
    /// fall back to one flat instance regardless.
    pub shards: usize,
    /// Tenant cap (`--max-tenants`).
    pub max_tenants: usize,
    /// Per-tenant admission quota (`--max-updates-per-tenant`): an ingest
    /// batch that would push a tenant's lifetime `accepted` past this is
    /// refused whole with a typed `quota_exceeded` reply. `0` disables the
    /// quota.
    pub max_updates_per_tenant: u64,
    /// Ingest chunk size (`--chunk`): the unit of inbox queueing and of
    /// the sharded pipelines' staging buffers.
    pub chunk: usize,
    /// Master seed (`--seed`); tenant seeds derive from it unless `hello`
    /// carries its own.
    pub seed: u64,
    /// Tenant persistence directory (`--state-dir`). When set, every
    /// tenant is snapshotted here after the graceful drain, every
    /// `*.wbsnap` file found here is restored at startup, and `snapshot`
    /// requests may omit their `path`. `None` disables persistence.
    pub state_dir: Option<String>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            listen: "127.0.0.1:7070".to_string(),
            backend: Backend::default(),
            threads: 0,
            shards: 4,
            max_tenants: 4096,
            max_updates_per_tenant: 0,
            chunk: 1024,
            seed: 42,
            state_dir: None,
        }
    }
}

/// Reactor-backend counters and gauges (all zero under `--backend
/// thread`). Cheap relaxed atomics — the reactor thread is the only
/// writer for most of them.
#[derive(Default)]
pub struct ReactorStats {
    /// Session fds currently registered in epoll.
    pub registered: AtomicU64,
    /// Peak concurrently registered sessions.
    pub sessions_peak: AtomicU64,
    /// Ready events delivered by `epoll_wait`, cumulative.
    pub ready_events: AtomicU64,
    /// Wakeup tokens delivered through the hub, cumulative.
    pub wakeups: AtomicU64,
    /// Requests that parked as pending ops, cumulative.
    pub pending_ops: AtomicU64,
    /// Pool submissions refused by the bounded queue and deferred to the
    /// reactor's retry list, cumulative.
    pub deferred_submits: AtomicU64,
    /// Bytes currently queued in session write buffers.
    pub write_queue_bytes: AtomicU64,
    /// Socket writes that hit `WouldBlock` (client slow to read),
    /// cumulative.
    pub write_stalls: AtomicU64,
}

/// Shared daemon state: config, tenant registry, ingest pool, counters.
pub struct Shared {
    /// The launch configuration.
    pub cfg: DaemonConfig,
    /// The backend actually serving (resolved from `cfg.backend`; `epoll`
    /// off Linux falls back to `thread`).
    pub backend: Backend,
    /// Registered tenants (BTreeMap so metrics iterate deterministically).
    pub tenants: Mutex<BTreeMap<String, Arc<TenantSlot>>>,
    /// The ingest worker pool.
    pub pool: WorkerPool,
    /// Set once a drain begins; never cleared.
    pub draining: AtomicBool,
    /// Sessions ever opened.
    pub sessions_opened: AtomicU64,
    /// Sessions closed.
    pub sessions_closed: AtomicU64,
    /// Sessions currently live — maintained by explicit open/close
    /// transitions, not derived by subtracting the two counters above (a
    /// derived gauge masks lifecycle bugs: a double-close would push the
    /// subtraction silently toward zero instead of tripping the
    /// `closed <= opened` debug assertion).
    pub sessions_active: AtomicU64,
    /// Requests served (including error replies).
    pub requests: AtomicU64,
    /// Requests answered with a typed error.
    pub protocol_errors: AtomicU64,
    /// Reactor-backend gauges.
    pub reactor: ReactorStats,
    /// Server start time.
    pub start: Instant,
}

/// The backend-specific running half of a [`Server`].
enum Runtime {
    /// Accept thread + per-session threads.
    Thread {
        accept: Option<std::thread::JoinHandle<()>>,
        sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    },
    /// The reactor thread and its wakeup hub.
    #[cfg(target_os = "linux")]
    Reactor {
        handle: Option<std::thread::JoinHandle<()>>,
        hub: Arc<crate::reactor::WakeHub>,
    },
}

/// A running server over a [`Shared`].
pub struct Server {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    runtime: Runtime,
}

impl Server {
    /// Bind `cfg.listen` and start accepting. Returns once the listener is
    /// live (so callers can read [`Server::addr`] immediately).
    pub fn start(cfg: DaemonConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let backend = resolve_backend(cfg.backend);
        let workers = wb_engine::pool::effective_threads(cfg.threads);
        let pool = WorkerPool::new(cfg.threads, (workers * 4).max(16));
        let shared = Arc::new(Shared {
            cfg,
            backend,
            tenants: Mutex::new(BTreeMap::new()),
            pool,
            draining: AtomicBool::new(false),
            sessions_opened: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            sessions_active: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            reactor: ReactorStats::default(),
            start: Instant::now(),
        });
        if let Err(e) = restore_state_dir(&shared) {
            eprintln!("wbd: state-dir restore failed: {e}");
        }
        let runtime = spawn_backend(&shared, listener, backend)?;
        Ok(Server {
            shared,
            addr,
            runtime,
        })
    }

    /// The bound address (resolves `--listen` port `0`).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared state (metrics snapshots, tests).
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Flip the draining flag from outside a session (signal handlers,
    /// tests). Equivalent to a `shutdown` request.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        #[cfg(target_os = "linux")]
        if let Runtime::Reactor { hub, .. } = &self.runtime {
            crate::reactor::poke(hub);
        }
    }

    /// Block until the server has fully drained: accepting stopped, every
    /// session closed, every accepted chunk applied. Returns the final
    /// metrics snapshot.
    pub fn wait(mut self) -> Json {
        match &mut self.runtime {
            Runtime::Thread { accept, sessions } => {
                if let Some(handle) = accept.take() {
                    let _ = handle.join();
                }
                // Sessions keep being served while draining; each closes
                // when its client disconnects or goes idle. Join whatever
                // exists, then re-check (a session observed mid-join could
                // not have spawned more — the accept loop is down).
                loop {
                    let batch: Vec<_> = {
                        let mut guard = sessions.lock().unwrap();
                        guard.drain(..).collect()
                    };
                    if batch.is_empty() {
                        break;
                    }
                    for handle in batch {
                        let _ = handle.join();
                    }
                }
            }
            #[cfg(target_os = "linux")]
            Runtime::Reactor { handle, hub } => {
                // Poke the loop so it notices the drain flag without
                // waiting out its poll timeout.
                crate::reactor::poke(hub);
                if let Some(handle) = handle.take() {
                    let _ = handle.join();
                }
            }
        }
        // No producers remain: flush every queued chunk, then snapshot.
        self.shared.pool.drain();
        if let Err(e) = persist_state_dir(&self.shared) {
            eprintln!("wbd: state-dir persist failed: {e}");
        }
        metrics::snapshot(&self.shared)
    }
}

#[cfg(target_os = "linux")]
fn resolve_backend(requested: Backend) -> Backend {
    requested
}

#[cfg(not(target_os = "linux"))]
fn resolve_backend(requested: Backend) -> Backend {
    if requested == Backend::Epoll {
        eprintln!("wbd: epoll backend is Linux-only; falling back to thread-per-session");
    }
    Backend::Thread
}

fn spawn_backend(
    shared: &Arc<Shared>,
    listener: TcpListener,
    backend: Backend,
) -> std::io::Result<Runtime> {
    match backend {
        Backend::Thread => {
            let sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
                Arc::new(Mutex::new(Vec::new()));
            let accept_shared = Arc::clone(shared);
            let accept_sessions = Arc::clone(&sessions);
            let accept = std::thread::spawn(move || {
                crate::accept::accept_loop(accept_shared, listener, accept_sessions);
            });
            Ok(Runtime::Thread {
                accept: Some(accept),
                sessions,
            })
        }
        #[cfg(target_os = "linux")]
        Backend::Epoll => {
            let (poller, hub) = crate::reactor::init()?;
            let run_shared = Arc::clone(shared);
            let run_hub = Arc::clone(&hub);
            let handle = std::thread::spawn(move || {
                crate::reactor::run(run_shared, listener, poller, run_hub);
            });
            Ok(Runtime::Reactor {
                handle: Some(handle),
                hub,
            })
        }
        #[cfg(not(target_os = "linux"))]
        Backend::Epoll => unreachable!("resolve_backend rewrites epoll off Linux"),
    }
}

/// Hex-encode a tenant id so arbitrary id strings stay filesystem-safe.
pub(crate) fn hex_id(id: &str) -> String {
    id.bytes().fold(String::new(), |mut s, b| {
        let _ = std::fmt::Write::write_fmt(&mut s, format_args!("{b:02x}"));
        s
    })
}

/// Write `bytes` to `path` atomically (tmp + rename): a crash mid-write
/// leaves either the previous snapshot or none, never a torn frame.
pub(crate) fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Startup half of `--state-dir`: restore every `*.wbsnap` file present.
/// Individual corrupt files are reported and skipped — one bad snapshot
/// must not keep the daemon from serving the rest.
fn restore_state_dir(shared: &Arc<Shared>) -> std::io::Result<()> {
    let Some(dir) = shared.cfg.state_dir.clone() else {
        return Ok(());
    };
    std::fs::create_dir_all(&dir)?;
    let mut paths: Vec<_> = std::fs::read_dir(&dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "wbsnap"))
        .collect();
    paths.sort();
    for p in paths {
        match std::fs::read(&p)
            .map_err(|e| e.to_string())
            .and_then(|b| Tenant::restore_bytes(&b).map_err(|e| e.to_string()))
        {
            Ok(t) => {
                shared
                    .tenants
                    .lock()
                    .unwrap()
                    .insert(t.id.clone(), Arc::new(TenantSlot::new(t)));
            }
            Err(e) => eprintln!("wbd: skipping {}: {e}", p.display()),
        }
    }
    Ok(())
}

/// Drain half of `--state-dir`: snapshot every live tenant. Failed tenants
/// cannot snapshot; they are reported and skipped.
fn persist_state_dir(shared: &Arc<Shared>) -> std::io::Result<()> {
    let Some(dir) = shared.cfg.state_dir.clone() else {
        return Ok(());
    };
    std::fs::create_dir_all(&dir)?;
    let tenants = shared.tenants.lock().unwrap();
    for (id, slot) in tenants.iter() {
        let mut st = slot.state.lock().unwrap();
        debug_assert!(st.inbox.is_empty(), "persist ran before the pool drained");
        match st.tenant.snapshot_bytes() {
            Ok(frame) => {
                let path = format!("{dir}/{}.wbsnap", hex_id(id));
                if let Err(e) = write_atomic(std::path::Path::new(&path), &frame) {
                    eprintln!("wbd: could not persist tenant '{id}': {e}");
                }
            }
            Err(e) => eprintln!("wbd: could not persist tenant '{id}': {e}"),
        }
    }
    Ok(())
}
