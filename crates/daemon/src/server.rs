//! The `wbd` server: accept loop, session threads, tenant registry, and
//! graceful drain.
//!
//! Each TCP connection gets a session thread speaking the newline-delimited
//! JSON protocol (see [`crate::proto`]). Sessions are stateless beyond
//! their socket: every request names its tenant, so one connection can
//! drive many tenants and many connections can drive one (ingest batches
//! for a tenant are serialized through its inbox wherever they arrive
//! from). Ingestion runs on the shared [`WorkerPool`]; sessions block only
//! on protocol I/O, inbox backpressure, and read-your-writes queries.
//!
//! **Graceful drain.** A `shutdown` request (or [`Server::begin_drain`])
//! flips the draining flag: the accept loop stops, new `hello`/`ingest`
//! requests get a typed `draining` refusal, in-flight queries still answer,
//! idle sessions close, the pool finishes every accepted chunk, and the
//! final metrics snapshot is returned from [`Server::wait`] — no accepted
//! update is ever dropped.

use crate::json::{obj, Json};
use crate::metrics;
use crate::proto::{self, ErrorKind, ProtoError, Request};
use crate::tenant::{Tenant, TenantSlot, INBOX_CHUNKS};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use wb_engine::pool::WorkerPool;

/// Server configuration — the `wbd` flags.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address (`--listen`), e.g. `127.0.0.1:7070`; port `0` binds
    /// an ephemeral port (the loopback tests use this).
    pub listen: String,
    /// Ingest pool workers (`--threads`; `0` = one per core).
    pub threads: usize,
    /// Default per-tenant shard count (`--shards`); unmergeable algorithms
    /// fall back to one flat instance regardless.
    pub shards: usize,
    /// Tenant cap (`--max-tenants`).
    pub max_tenants: usize,
    /// Ingest chunk size (`--chunk`): the unit of inbox queueing and of
    /// the sharded pipelines' staging buffers.
    pub chunk: usize,
    /// Master seed (`--seed`); tenant seeds derive from it unless `hello`
    /// carries its own.
    pub seed: u64,
    /// Tenant persistence directory (`--state-dir`). When set, every
    /// tenant is snapshotted here after the graceful drain, every
    /// `*.wbsnap` file found here is restored at startup, and `snapshot`
    /// requests may omit their `path`. `None` disables persistence.
    pub state_dir: Option<String>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            listen: "127.0.0.1:7070".to_string(),
            threads: 0,
            shards: 4,
            max_tenants: 4096,
            chunk: 1024,
            seed: 42,
            state_dir: None,
        }
    }
}

/// Shared daemon state: config, tenant registry, ingest pool, counters.
pub struct Shared {
    /// The launch configuration.
    pub cfg: DaemonConfig,
    /// Registered tenants (BTreeMap so metrics iterate deterministically).
    pub tenants: Mutex<BTreeMap<String, Arc<TenantSlot>>>,
    /// The ingest worker pool.
    pub pool: WorkerPool,
    /// Set once a drain begins; never cleared.
    pub draining: AtomicBool,
    /// Sessions ever opened.
    pub sessions_opened: AtomicU64,
    /// Sessions closed.
    pub sessions_closed: AtomicU64,
    /// Sessions currently live — maintained by explicit open/close
    /// transitions, not derived by subtracting the two counters above (a
    /// derived gauge masks lifecycle bugs: a double-close would push the
    /// subtraction silently toward zero instead of tripping the
    /// `closed <= opened` debug assertion).
    pub sessions_active: AtomicU64,
    /// Requests served (including error replies).
    pub requests: AtomicU64,
    /// Requests answered with a typed error.
    pub protocol_errors: AtomicU64,
    /// Server start time.
    pub start: Instant,
}

/// Socket read timeout: the granularity at which idle sessions notice a
/// drain. Short enough that shutdown completes promptly, long enough to
/// stay off the scheduler's back.
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// A running server: accept thread + session threads over a [`Shared`].
pub struct Server {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Bind `cfg.listen` and start accepting. Returns once the listener is
    /// live (so callers can read [`Server::addr`] immediately).
    pub fn start(cfg: DaemonConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = wb_engine::pool::effective_threads(cfg.threads);
        let pool = WorkerPool::new(cfg.threads, (workers * 4).max(16));
        let shared = Arc::new(Shared {
            cfg,
            tenants: Mutex::new(BTreeMap::new()),
            pool,
            draining: AtomicBool::new(false),
            sessions_opened: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            sessions_active: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            start: Instant::now(),
        });
        if let Err(e) = restore_state_dir(&shared) {
            eprintln!("wbd: state-dir restore failed: {e}");
        }
        let sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_sessions = Arc::clone(&sessions);
        let accept_handle = std::thread::spawn(move || {
            // Nonblocking accept + short sleep: the simplest loop that can
            // notice the draining flag without a self-connect wakeup.
            while !accept_shared.draining.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let shared = Arc::clone(&accept_shared);
                        shared.sessions_opened.fetch_add(1, Ordering::Relaxed);
                        shared.sessions_active.fetch_add(1, Ordering::Relaxed);
                        let handle = std::thread::spawn(move || {
                            let _ = serve_session(&shared, stream);
                            shared.sessions_closed.fetch_add(1, Ordering::Relaxed);
                            shared.sessions_active.fetch_sub(1, Ordering::Relaxed);
                        });
                        accept_sessions.lock().unwrap().push(handle);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        });
        Ok(Server {
            shared,
            addr,
            accept_handle: Some(accept_handle),
            sessions,
        })
    }

    /// The bound address (resolves `--listen` port `0`).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared state (metrics snapshots, tests).
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Flip the draining flag from outside a session (signal handlers,
    /// tests). Equivalent to a `shutdown` request.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Block until the server has fully drained: accept loop stopped,
    /// every session closed, every accepted chunk applied. Returns the
    /// final metrics snapshot.
    pub fn wait(mut self) -> Json {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Sessions keep being served while draining; each closes when its
        // client disconnects or goes idle. Join whatever exists, then
        // re-check (a session observed mid-join could not have spawned
        // more — the accept loop is down).
        loop {
            let batch: Vec<_> = {
                let mut guard = self.sessions.lock().unwrap();
                guard.drain(..).collect()
            };
            if batch.is_empty() {
                break;
            }
            for handle in batch {
                let _ = handle.join();
            }
        }
        // No producers remain: flush every queued chunk, then snapshot.
        self.shared.pool.drain();
        if let Err(e) = persist_state_dir(&self.shared) {
            eprintln!("wbd: state-dir persist failed: {e}");
        }
        metrics::snapshot(&self.shared)
    }
}

/// Serve one connection until EOF, `bye`, or drain-idle.
fn serve_session(shared: &Arc<Shared>, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true).ok();
    let mut reader = LineReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let line = match reader.next_line(&shared.draining)? {
            NextLine::Line(line) => line,
            NextLine::Closed => return Ok(()), // EOF or drain-idle
            NextLine::TooLong => {
                // One unbounded line must not exhaust daemon memory: reply
                // with a typed refusal and close this session (the buffer
                // no longer frames requests, so it cannot keep serving).
                shared.requests.fetch_add(1, Ordering::Relaxed);
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let reply = ProtoError::new(
                    ErrorKind::BadRequest,
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                );
                let mut out = reply.to_json().to_line();
                out.push('\n');
                writer.write_all(out.as_bytes())?;
                return Ok(());
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let (reply, end) = handle_line(shared, &line);
        if reply.get("ok") == Some(&Json::Bool(false)) {
            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
        }
        let mut out = reply.to_line();
        out.push('\n');
        writer.write_all(out.as_bytes())?;
        if end {
            return Ok(());
        }
    }
}

/// Dispatch one request line; returns the reply and whether the session
/// ends after sending it.
fn handle_line(shared: &Arc<Shared>, line: &str) -> (Json, bool) {
    let request = match proto::parse_request(line) {
        Ok(r) => r,
        Err(e) => return (e.to_json(), false),
    };
    match request {
        Request::Hello {
            tenant,
            alg,
            seed,
            params,
        } => {
            let reply =
                handle_hello(shared, &tenant, &alg, seed, &params).unwrap_or_else(|e| e.to_json());
            (reply, false)
        }
        Request::Ingest { tenant, updates } => {
            let reply = handle_ingest(shared, &tenant, updates).unwrap_or_else(|e| e.to_json());
            (reply, false)
        }
        Request::Query { tenant } => {
            let reply = with_slot(shared, &tenant, |slot| {
                let mut st = slot.await_quiescent();
                let answer = st.tenant.query()?;
                Ok(obj(vec![
                    ("ok", Json::Bool(true)),
                    ("tenant", Json::from(tenant.as_str())),
                    ("answer", proto::answer_to_json(&answer)),
                    ("space_bits", Json::from(st.tenant.space_bits())),
                    ("processed", Json::from(st.tenant.applied)),
                ]))
            })
            .unwrap_or_else(|e| e.to_json());
            (reply, false)
        }
        Request::SnapshotStats { tenant } => {
            let reply = with_slot(shared, &tenant, |slot| {
                let st = slot.await_quiescent();
                Ok(obj(vec![
                    ("ok", Json::Bool(true)),
                    ("stats", metrics::tenant_json(&st)),
                ]))
            })
            .unwrap_or_else(|e| e.to_json());
            (reply, false)
        }
        Request::Snapshot { tenant, path } => {
            let reply =
                handle_snapshot(shared, &tenant, path.as_deref()).unwrap_or_else(|e| e.to_json());
            (reply, false)
        }
        Request::Restore { path } => {
            let reply = handle_restore(shared, &path).unwrap_or_else(|e| e.to_json());
            (reply, false)
        }
        Request::Metrics => (
            obj(vec![
                ("ok", Json::Bool(true)),
                ("metrics", metrics::snapshot(shared)),
            ]),
            false,
        ),
        Request::Top => (
            obj(vec![
                ("ok", Json::Bool(true)),
                ("text", Json::from(metrics::top_text(shared).as_str())),
            ]),
            false,
        ),
        Request::Bye => (obj(vec![("ok", Json::Bool(true))]), true),
        Request::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            (
                obj(vec![
                    ("ok", Json::Bool(true)),
                    ("draining", Json::Bool(true)),
                ]),
                false,
            )
        }
    }
}

/// Look up `tenant` and run `f` on its slot.
fn with_slot<F>(shared: &Arc<Shared>, tenant: &str, f: F) -> Result<Json, ProtoError>
where
    F: FnOnce(&Arc<TenantSlot>) -> Result<Json, ProtoError>,
{
    let slot = shared
        .tenants
        .lock()
        .unwrap()
        .get(tenant)
        .cloned()
        .ok_or_else(|| {
            ProtoError::new(
                ErrorKind::UnknownTenant,
                format!("tenant '{tenant}' has not said hello"),
            )
        })?;
    f(&slot)
}

fn handle_hello(
    shared: &Arc<Shared>,
    tenant: &str,
    alg: &str,
    seed: Option<u64>,
    params: &proto::HelloParams,
) -> Result<Json, ProtoError> {
    if shared.draining.load(Ordering::SeqCst) {
        return Err(ProtoError::new(
            ErrorKind::Draining,
            "daemon is draining; no new tenants",
        ));
    }
    let seed_base = seed.unwrap_or(shared.cfg.seed);
    let check_existing =
        |tenants: &BTreeMap<String, Arc<TenantSlot>>| -> Option<Result<Json, ProtoError>> {
            tenants.get(tenant).map(|slot| {
                let st = slot.state.lock().unwrap();
                st.tenant.check_hello_matches(alg, seed_base)?;
                Ok(hello_reply(&st.tenant))
            })
        };
    let over_cap = |tenants: &BTreeMap<String, Arc<TenantSlot>>| -> Result<(), ProtoError> {
        if tenants.len() >= shared.cfg.max_tenants {
            return Err(ProtoError::new(
                ErrorKind::MaxTenants,
                format!("tenant cap {} reached", shared.cfg.max_tenants),
            ));
        }
        Ok(())
    };
    {
        let tenants = shared.tenants.lock().unwrap();
        if let Some(existing) = check_existing(&tenants) {
            return existing;
        }
        over_cap(&tenants)?;
    }
    // Construct outside the tenants lock: building an algorithm (ctor +
    // probe_mergeable + shard instances) can be slow, and holding the map
    // mutex would stall every request that needs a tenant lookup across
    // all tenants for the duration.
    let created = Tenant::create(
        tenant,
        alg,
        seed_base,
        params,
        shared.cfg.shards,
        shared.cfg.chunk,
    )?;
    let mut tenants = shared.tenants.lock().unwrap();
    if let Some(existing) = check_existing(&tenants) {
        // Lost a create race with another session. Both constructions are
        // byte-identical (the same derived seeds), so adopt the winner.
        return existing;
    }
    over_cap(&tenants)?;
    // Re-check the drain flag under the same lock as the insert: a drain
    // that began while we were constructing (after the entry check above)
    // must not gain a tenant it will never flush — the drain path snapshots
    // and reports over the registry as it stood when the flag flipped.
    if shared.draining.load(Ordering::SeqCst) {
        return Err(ProtoError::new(
            ErrorKind::Draining,
            "daemon is draining; no new tenants",
        ));
    }
    let reply = hello_reply(&created);
    tenants.insert(tenant.to_string(), Arc::new(TenantSlot::new(created)));
    Ok(reply)
}

/// Resolve where a `snapshot` writes: the request's explicit path, else
/// the daemon's `--state-dir` (with the tenant id hex-encoded so arbitrary
/// id strings stay filesystem-safe).
fn snapshot_path(shared: &Shared, tenant: &str, path: Option<&str>) -> Result<String, ProtoError> {
    match (path, &shared.cfg.state_dir) {
        (Some(p), _) => Ok(p.to_string()),
        (None, Some(dir)) => Ok(format!("{dir}/{}.wbsnap", hex_id(tenant))),
        (None, None) => Err(ProtoError::new(
            ErrorKind::BadRequest,
            "snapshot needs a 'path' (or start wbd with --state-dir)",
        )),
    }
}

fn hex_id(id: &str) -> String {
    id.bytes().fold(String::new(), |mut s, b| {
        let _ = std::fmt::Write::write_fmt(&mut s, format_args!("{b:02x}"));
        s
    })
}

fn handle_snapshot(
    shared: &Arc<Shared>,
    tenant: &str,
    path: Option<&str>,
) -> Result<Json, ProtoError> {
    let path = snapshot_path(shared, tenant, path)?;
    with_slot(shared, tenant, |slot| {
        let mut st = slot.await_quiescent();
        let frame = st
            .tenant
            .snapshot_bytes()
            .map_err(|e| ProtoError::new(ErrorKind::SnapshotFailed, e.to_string()))?;
        write_atomic(std::path::Path::new(&path), &frame).map_err(|e| {
            ProtoError::new(
                ErrorKind::SnapshotFailed,
                format!("could not write {path}: {e}"),
            )
        })?;
        Ok(obj(vec![
            ("ok", Json::Bool(true)),
            ("tenant", Json::from(tenant)),
            ("path", Json::from(path.as_str())),
            ("bytes", Json::from(frame.len() as u64)),
            ("applied", Json::from(st.tenant.applied)),
        ]))
    })
}

fn handle_restore(shared: &Arc<Shared>, path: &str) -> Result<Json, ProtoError> {
    if shared.draining.load(Ordering::SeqCst) {
        return Err(ProtoError::new(
            ErrorKind::Draining,
            "daemon is draining; no new tenants",
        ));
    }
    let bytes = std::fs::read(path).map_err(|e| {
        ProtoError::new(
            ErrorKind::SnapshotFailed,
            format!("could not read {path}: {e}"),
        )
    })?;
    let restored = Tenant::restore_bytes(&bytes).map_err(|e| {
        ProtoError::new(
            ErrorKind::SnapshotFailed,
            format!("could not restore {path}: {e}"),
        )
    })?;
    let mut tenants = shared.tenants.lock().unwrap();
    if tenants.contains_key(&restored.id) {
        return Err(ProtoError::new(
            ErrorKind::TenantMismatch,
            format!(
                "tenant '{}' already exists; restore refuses to replace live state",
                restored.id
            ),
        ));
    }
    if tenants.len() >= shared.cfg.max_tenants {
        return Err(ProtoError::new(
            ErrorKind::MaxTenants,
            format!("tenant cap {} reached", shared.cfg.max_tenants),
        ));
    }
    if shared.draining.load(Ordering::SeqCst) {
        return Err(ProtoError::new(
            ErrorKind::Draining,
            "daemon is draining; no new tenants",
        ));
    }
    let mut reply = hello_reply(&restored);
    if let Json::Obj(members) = &mut reply {
        members.push(("applied".to_string(), Json::from(restored.applied)));
    }
    let id = restored.id.clone();
    tenants.insert(id, Arc::new(TenantSlot::new(restored)));
    Ok(reply)
}

/// Write `bytes` to `path` atomically (tmp + rename): a crash mid-write
/// leaves either the previous snapshot or none, never a torn frame.
fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Startup half of `--state-dir`: restore every `*.wbsnap` file present.
/// Individual corrupt files are reported and skipped — one bad snapshot
/// must not keep the daemon from serving the rest.
fn restore_state_dir(shared: &Arc<Shared>) -> std::io::Result<()> {
    let Some(dir) = shared.cfg.state_dir.clone() else {
        return Ok(());
    };
    std::fs::create_dir_all(&dir)?;
    let mut paths: Vec<_> = std::fs::read_dir(&dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "wbsnap"))
        .collect();
    paths.sort();
    for p in paths {
        match std::fs::read(&p)
            .map_err(|e| e.to_string())
            .and_then(|b| Tenant::restore_bytes(&b).map_err(|e| e.to_string()))
        {
            Ok(t) => {
                shared
                    .tenants
                    .lock()
                    .unwrap()
                    .insert(t.id.clone(), Arc::new(TenantSlot::new(t)));
            }
            Err(e) => eprintln!("wbd: skipping {}: {e}", p.display()),
        }
    }
    Ok(())
}

/// Drain half of `--state-dir`: snapshot every live tenant. Failed tenants
/// cannot snapshot; they are reported and skipped.
fn persist_state_dir(shared: &Arc<Shared>) -> std::io::Result<()> {
    let Some(dir) = shared.cfg.state_dir.clone() else {
        return Ok(());
    };
    std::fs::create_dir_all(&dir)?;
    let tenants = shared.tenants.lock().unwrap();
    for (id, slot) in tenants.iter() {
        let mut st = slot.state.lock().unwrap();
        debug_assert!(st.inbox.is_empty(), "persist ran before the pool drained");
        match st.tenant.snapshot_bytes() {
            Ok(frame) => {
                let path = format!("{dir}/{}.wbsnap", hex_id(id));
                if let Err(e) = write_atomic(std::path::Path::new(&path), &frame) {
                    eprintln!("wbd: could not persist tenant '{id}': {e}");
                }
            }
            Err(e) => eprintln!("wbd: could not persist tenant '{id}': {e}"),
        }
    }
    Ok(())
}

fn hello_reply(t: &Tenant) -> Json {
    obj(vec![
        ("ok", Json::Bool(true)),
        ("tenant", Json::from(t.id.as_str())),
        ("alg", Json::from(t.alg_name.as_str())),
        ("model", Json::from(t.model.label())),
        ("shards", Json::from(t.shards as u64)),
        ("tenant_seed", Json::from(t.tenant_seed)),
    ])
}

fn handle_ingest(
    shared: &Arc<Shared>,
    tenant: &str,
    updates: Vec<wb_engine::Update>,
) -> Result<Json, ProtoError> {
    if shared.draining.load(Ordering::SeqCst) {
        return Err(ProtoError::new(
            ErrorKind::Draining,
            "daemon is draining; ingest refused",
        ));
    }
    with_slot(shared, tenant, |slot| {
        let mut st = slot.state.lock().unwrap();
        if let Err(e) = st.tenant.validate_batch(&updates) {
            st.tenant.rejected += updates.len() as u64;
            return Err(e);
        }
        // Accepted: all-or-nothing, counted before queueing so a drain
        // that starts right now still applies every one of these updates.
        st.tenant.accepted += updates.len() as u64;
        st.tenant.batches += 1;
        let chunk = shared.cfg.chunk.max(1);
        let accepted = updates.len() as u64;
        for piece in updates.chunks(chunk) {
            while st.inbox.len() >= INBOX_CHUNKS {
                st.inbox_stalls += 1;
                st = slot.cv.wait(st).unwrap();
            }
            st.inbox.push_back(piece.to_vec());
            if !st.scheduled {
                // Hand the inbox to a worker *now*, before any later piece
                // can hit a full inbox: the drain job is the only thing
                // that frees space, so a batch longer than INBOX_CHUNKS
                // chunks would otherwise wait on a job never submitted.
                // Submit outside the slot lock — the pool queue is bounded
                // and submission may block (counted as a pool stall).
                st.scheduled = true;
                drop(st);
                let job = Arc::clone(slot);
                shared.pool.submit(Box::new(move || job.drain_inbox()));
                st = slot.state.lock().unwrap();
            }
        }
        let pending = st.inbox.len() as u64;
        Ok(obj(vec![
            ("ok", Json::Bool(true)),
            ("accepted", Json::from(accepted)),
            ("pending_chunks", Json::from(pending)),
        ]))
    })
}

/// Maximum request-line size. Generous — an ingest batch of ~400k
/// turnstile updates still fits — but bounded, so one newline-less client
/// cannot grow a session buffer without limit.
const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// One [`LineReader::next_line`] outcome.
enum NextLine {
    /// A full request line (newline stripped).
    Line(String),
    /// EOF, or the daemon is draining and the connection went idle.
    Closed,
    /// The client exceeded [`MAX_LINE_BYTES`] without a newline.
    TooLong,
}

/// A line reader over a read-timeout socket that never loses a partial
/// line: bytes accumulate across timeouts, and only a full `\n`-terminated
/// line is consumed. Returns [`NextLine::Closed`] on EOF or when the
/// daemon is draining and the connection has gone idle with no buffered
/// partial request.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineReader {
    fn new(stream: TcpStream) -> Self {
        LineReader {
            stream,
            buf: Vec::with_capacity(4096),
        }
    }

    fn next_line(&mut self, draining: &AtomicBool) -> std::io::Result<NextLine> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(NextLine::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            if self.buf.len() > MAX_LINE_BYTES {
                return Ok(NextLine::TooLong);
            }
            let mut tmp = [0u8; 4096];
            match self.stream.read(&mut tmp) {
                Ok(0) => return Ok(NextLine::Closed), // EOF (partial line discarded)
                Ok(k) => self.buf.extend_from_slice(&tmp[..k]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Idle tick: during a drain, a quiet session closes
                    // (its client got every reply it asked for); otherwise
                    // keep waiting.
                    if draining.load(Ordering::SeqCst) && self.buf.is_empty() {
                        return Ok(NextLine::Closed);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}
