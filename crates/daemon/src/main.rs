//! `wbd` — the white-box streaming daemon binary.
//!
//! Server mode (default):
//!
//! ```text
//! wbd [--listen ADDR] [--threads N] [--shards N] [--max-tenants N]
//!     [--chunk N] [--seed N] [--state-dir DIR]
//! ```
//!
//! With `--state-dir DIR`, every `*.wbsnap` tenant snapshot found in DIR
//! is restored before the socket opens, every tenant is snapshotted back
//! to DIR after the graceful drain, and `snapshot` requests may omit
//! their `path` — so a `shutdown` + restart round-trips all tenant state.
//!
//! Prints `{"event":"listening","addr":"..."}` once the socket is bound,
//! runs until a client sends `shutdown` (or the process receives EOF-level
//! drain via that request), then prints `{"event":"final_metrics",...}`
//! after the graceful drain completes.
//!
//! Client mode:
//!
//! ```text
//! wbd client --connect ADDR [--strict]
//! ```
//!
//! forwards protocol lines from stdin and prints replies; see
//! [`wb_daemon::client`] for the script conventions (`#` comments, `!`
//! expected-error prefix).

use std::io::Write as _;
use std::process::ExitCode;
use wb_daemon::json::{obj, Json};
use wb_daemon::{client, DaemonConfig, Server};

fn die(msg: &str) -> ! {
    eprintln!("wbd: {msg}");
    eprintln!(
        "usage: wbd [--listen ADDR] [--backend epoll|thread] [--threads N] [--shards N] \
         [--max-tenants N] [--max-updates-per-tenant N] [--chunk N] [--seed N] [--state-dir DIR]"
    );
    eprintln!("       wbd client --connect ADDR [--strict] [--pipeline N]");
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let raw = value.unwrap_or_else(|| die(&format!("{flag} requires a value")));
    raw.parse()
        .unwrap_or_else(|_| die(&format!("{flag}: invalid value {raw:?}")))
}

fn run_client(mut args: std::env::Args) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut strict = false;
    let mut pipeline = 1usize;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => {
                addr = Some(
                    args.next()
                        .unwrap_or_else(|| die("--connect requires an address")),
                )
            }
            "--strict" => strict = true,
            "--pipeline" => {
                pipeline = parse_num("--pipeline", args.next());
                if pipeline == 0 {
                    die("--pipeline must be >= 1");
                }
            }
            other => die(&format!("unknown client flag {other:?}")),
        }
    }
    let addr = addr.unwrap_or_else(|| die("client mode requires --connect ADDR"));
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match client::run_script(
        &addr,
        &mut stdin.lock(),
        &mut stdout.lock(),
        strict,
        pipeline,
    ) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("wbd client: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _argv0 = args.next();
    let mut cfg = DaemonConfig::default();
    let mut first = true;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "client" if first => return run_client(args),
            "--listen" => {
                cfg.listen = args
                    .next()
                    .unwrap_or_else(|| die("--listen requires an address"))
            }
            "--threads" => cfg.threads = parse_num("--threads", args.next()),
            "--shards" => {
                cfg.shards = parse_num("--shards", args.next());
                if cfg.shards == 0 {
                    die("--shards must be >= 1");
                }
            }
            "--backend" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| die("--backend requires 'epoll' or 'thread'"));
                cfg.backend = wb_daemon::Backend::parse(&raw)
                    .unwrap_or_else(|| die(&format!("--backend: unknown backend {raw:?}")));
            }
            "--max-tenants" => cfg.max_tenants = parse_num("--max-tenants", args.next()),
            "--max-updates-per-tenant" => {
                cfg.max_updates_per_tenant = parse_num("--max-updates-per-tenant", args.next())
            }
            "--chunk" => {
                cfg.chunk = parse_num("--chunk", args.next());
                if cfg.chunk == 0 {
                    die("--chunk must be >= 1");
                }
            }
            "--seed" => cfg.seed = parse_num("--seed", args.next()),
            "--state-dir" => {
                cfg.state_dir = Some(
                    args.next()
                        .unwrap_or_else(|| die("--state-dir requires a directory")),
                )
            }
            other => die(&format!("unknown flag {other:?}")),
        }
        first = false;
    }
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("wbd: {e}");
            return ExitCode::FAILURE;
        }
    };
    let listening = obj(vec![
        ("event", Json::from("listening")),
        ("addr", Json::from(server.addr().to_string().as_str())),
    ]);
    println!("{}", listening.to_line());
    let _ = std::io::stdout().flush();
    let final_metrics = server.wait();
    let done = obj(vec![
        ("event", Json::from("final_metrics")),
        ("metrics", final_metrics),
    ]);
    println!("{}", done.to_line());
    ExitCode::SUCCESS
}
