//! String periods.
//!
//! The period of `S` (length `n`) is the smallest `π` such that
//! `S[0 .. n−π] = S[π .. n]` — equivalently `n − fail(n)` for the KMP
//! failure function. Algorithm 6 takes the pattern's period as part of the
//! input (as in `[PP09]`); this module computes it for the harnesses.

/// Smallest period of `s` (`s.len()` for an aperiodic string; 0 for empty).
pub fn period(s: &[u64]) -> usize {
    if s.is_empty() {
        return 0;
    }
    let fail = failure_function(s);
    s.len() - fail[s.len()]
}

/// KMP failure function: `fail[i]` = length of the longest proper border of
/// `s[0..i]` (`fail[0] = 0` by convention; array has `len+1` entries).
pub fn failure_function(s: &[u64]) -> Vec<usize> {
    let n = s.len();
    let mut fail = vec![0usize; n + 1];
    let mut k = 0usize;
    for i in 1..n {
        while k > 0 && s[i] != s[k] {
            k = fail[k];
        }
        if s[i] == s[k] {
            k += 1;
        }
        fail[i + 1] = k;
    }
    fail
}

/// `true` iff `pi` is *a* period of `s` (not necessarily the smallest):
/// `s[i] == s[i + pi]` for all valid `i`.
pub fn is_period(s: &[u64], pi: usize) -> bool {
    if pi == 0 {
        return s.is_empty();
    }
    (0..s.len().saturating_sub(pi)).all(|i| s[i] == s[i + pi])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Vec<u64> {
        s.bytes().map(u64::from).collect()
    }

    #[test]
    fn known_periods() {
        assert_eq!(period(&sym("abcabcab")), 3);
        assert_eq!(period(&sym("aaaa")), 1);
        assert_eq!(period(&sym("abcd")), 4);
        assert_eq!(period(&sym("abab")), 2);
        assert_eq!(period(&sym("a")), 1);
        assert_eq!(period(&[]), 0);
    }

    #[test]
    fn period_is_valid_and_minimal() {
        for s in ["abaaba", "xyxyxyx", "aabaabaab", "zzzzz", "qwe"] {
            let v = sym(s);
            let p = period(&v);
            assert!(is_period(&v, p), "{s}: {p} not a period");
            for smaller in 1..p {
                assert!(!is_period(&v, smaller), "{s}: {smaller} < {p} is a period");
            }
        }
    }

    #[test]
    fn failure_function_known_values() {
        // "ababaca": classic KMP example.
        let f = failure_function(&sym("ababaca"));
        assert_eq!(f, vec![0, 0, 0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn is_period_edge_cases() {
        assert!(is_period(&[], 0));
        assert!(!is_period(&sym("ab"), 0));
        assert!(is_period(&sym("ab"), 2), "full length is always a period");
        assert!(is_period(&sym("ab"), 5), "over-length trivially holds");
    }
}
