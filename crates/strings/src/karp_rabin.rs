//! Karp–Rabin fingerprints — the classic randomized string hash that is
//! **not** robust to white-box adversaries (§2.6 of the paper).
//!
//! The fingerprint of `U ∈ Σ*` is `Σᵢ U[i]·xⁱ mod p` for a random prime `p`
//! and evaluation point `x`. Against oblivious inputs, Schwartz–Zippel makes
//! collisions vanishingly rare. Against a white-box adversary the scheme
//! collapses: `p` and `x` are visible, so the adversary computes the
//! multiplicative order of `x` mod `p` (Fermat's little theorem gives
//! `x^{p−1} ≡ 1`, and factoring `p−1` gives the exact order) and moves a
//! set character by one order-length — producing a different string with an
//! identical fingerprint. See [`crate::attacks::kr_order_collision`].

use wb_core::rng::TranscriptRng;
use wb_core::space::{bits_for_count, SpaceUsage};
use wb_crypto::modular::{add_mod, mul_mod};
use wb_crypto::prime::random_prime;

/// Public Karp–Rabin parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KarpRabinParams {
    /// Prime modulus.
    pub p: u64,
    /// Evaluation point `x ∈ [2, p−1)`.
    pub x: u64,
}

impl KarpRabinParams {
    /// Generate from public randomness with a `bits`-bit prime.
    pub fn generate(bits: u32, rng: &mut TranscriptRng) -> Self {
        let p = random_prime(bits, rng);
        let x = rng.range(2, p - 1);
        KarpRabinParams { p, x }
    }
}

/// Streaming Karp–Rabin fingerprint `Σᵢ U[i]·xⁱ mod p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KarpRabin {
    params: KarpRabinParams,
    acc: u64,
    /// `x^len mod p` — the multiplier for the next character.
    x_pow: u64,
    len: u64,
}

impl KarpRabin {
    /// Empty-string fingerprint.
    pub fn new(params: KarpRabinParams) -> Self {
        KarpRabin {
            params,
            acc: 0,
            x_pow: 1,
            len: 0,
        }
    }

    /// Absorb one character value `c < p`.
    pub fn absorb(&mut self, c: u64) {
        debug_assert!(c < self.params.p);
        let p = self.params.p;
        self.acc = add_mod(self.acc, mul_mod(c % p, self.x_pow, p), p);
        self.x_pow = mul_mod(self.x_pow, self.params.x, p);
        self.len += 1;
    }

    /// Current fingerprint value.
    pub fn value(&self) -> u64 {
        self.acc
    }

    /// Characters absorbed.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` iff nothing absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Public parameters (the white-box leak).
    pub fn params(&self) -> &KarpRabinParams {
        &self.params
    }

    /// One-shot fingerprint of a symbol slice.
    pub fn fingerprint(params: KarpRabinParams, symbols: &[u64]) -> u64 {
        let mut kr = KarpRabin::new(params);
        for &c in symbols {
            kr.absorb(c);
        }
        kr.value()
    }
}

impl SpaceUsage for KarpRabin {
    fn space_bits(&self) -> u64 {
        // Accumulator, power, length counter, two public parameters.
        2 * bits_for_count(self.params.p) + bits_for_count(self.len) + 2 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_crypto::modular::pow_mod;

    fn params() -> KarpRabinParams {
        let mut rng = TranscriptRng::from_seed(200);
        KarpRabinParams::generate(31, &mut rng)
    }

    #[test]
    fn matches_direct_polynomial_evaluation() {
        let ps = params();
        let s = [3u64, 1, 4, 1, 5];
        let direct: u64 = s.iter().enumerate().fold(0u64, |acc, (i, &c)| {
            add_mod(acc, mul_mod(c, pow_mod(ps.x, i as u64, ps.p), ps.p), ps.p)
        });
        assert_eq!(KarpRabin::fingerprint(ps, &s), direct);
    }

    #[test]
    fn distinguishes_random_strings() {
        let ps = params();
        let a = [1u64, 0, 1, 1, 0, 1, 0, 0];
        let b = [1u64, 0, 1, 1, 0, 1, 0, 1];
        assert_ne!(
            KarpRabin::fingerprint(ps, &a),
            KarpRabin::fingerprint(ps, &b)
        );
    }

    #[test]
    fn empty_and_zero_prefix() {
        let ps = params();
        let kr = KarpRabin::new(ps);
        assert!(kr.is_empty());
        assert_eq!(kr.value(), 0);
        // A zero character changes length but not the accumulator.
        let mut kr2 = KarpRabin::new(ps);
        kr2.absorb(0);
        assert_eq!(kr2.value(), 0);
        assert_eq!(kr2.len(), 1);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let ps = params();
        let s: Vec<u64> = (0..50).map(|i| (i * 7) % 2).collect();
        let mut kr = KarpRabin::new(ps);
        for &c in &s {
            kr.absorb(c);
        }
        assert_eq!(kr.value(), KarpRabin::fingerprint(ps, &s));
    }
}
