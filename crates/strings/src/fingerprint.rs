//! Robust string fingerprints (Lemma 2.24) built on the DL-exponent hash.
//!
//! The paper replaces Karp–Rabin with `h(U) = g^{int(U)} mod p`
//! (Theorem 2.5's CRHF family): computable online as characters arrive,
//! concatenation-composable, and collision-finding requires computing the
//! order of `g` — hard for a `T`-time-bounded adversary when `p` is sized
//! to the budget. [`StreamingEquality`] is Lemma 2.24's equality tester for
//! two adaptively-chosen strings in `O(log min(T, n))` bits.

use wb_core::rng::TranscriptRng;
use wb_core::space::SpaceUsage;
use wb_core::stream::StreamAlg;
pub use wb_crypto::crhf::{DlExpHash, DlExpParams};

/// Which of the two compared strings a character extends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Track {
    /// Extend `U`.
    U,
    /// Extend `V`.
    V,
}

/// A character appended to one of the two tracked strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CharUpdate {
    /// Target string.
    pub track: Track,
    /// Symbol value (`< base`).
    pub symbol: u64,
}

/// Lemma 2.24: streaming equality of two adaptively-built strings.
///
/// Maintains one [`DlExpHash`] per string; answers "equal so far?" at every
/// step. A white-box adversary that forces `U ≠ V` with equal answers must
/// have produced a DL-exponent collision.
#[derive(Debug, Clone, Copy)]
pub struct StreamingEquality {
    hu: DlExpHash,
    hv: DlExpHash,
}

impl StreamingEquality {
    /// Tester over symbols in `[0, base)` with a fresh public prime.
    pub fn generate(bits: u32, base: u64, rng: &mut TranscriptRng) -> Self {
        let params = DlExpParams::generate(bits, base, rng);
        Self::new(params)
    }

    /// Tester with explicit public parameters.
    pub fn new(params: DlExpParams) -> Self {
        StreamingEquality {
            hu: DlExpHash::new(params),
            hv: DlExpHash::new(params),
        }
    }

    /// Append a symbol to one of the strings.
    pub fn push(&mut self, u: CharUpdate) {
        match u.track {
            Track::U => self.hu.absorb(u.symbol),
            Track::V => self.hv.absorb(u.symbol),
        }
    }

    /// `true` iff the fingerprints (lengths and hash values) agree.
    pub fn equal(&self) -> bool {
        self.hu.len() == self.hv.len() && self.hu.value() == self.hv.value()
    }

    /// The two fingerprints (white-box view).
    pub fn fingerprints(&self) -> (&DlExpHash, &DlExpHash) {
        (&self.hu, &self.hv)
    }
}

impl SpaceUsage for StreamingEquality {
    fn space_bits(&self) -> u64 {
        self.hu.space_bits() + self.hv.space_bits()
    }
}

impl StreamAlg for StreamingEquality {
    type Update = CharUpdate;
    type Output = bool;

    fn process(&mut self, update: &CharUpdate, _rng: &mut TranscriptRng) {
        self.push(*update);
    }

    fn query(&self) -> bool {
        self.equal()
    }

    fn name(&self) -> &'static str {
        "StreamingEquality"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_prefixes_test_equal() {
        let mut rng = TranscriptRng::from_seed(210);
        let mut eq = StreamingEquality::generate(40, 2, &mut rng);
        for c in [1u64, 0, 1, 1] {
            eq.push(CharUpdate {
                track: Track::U,
                symbol: c,
            });
            eq.push(CharUpdate {
                track: Track::V,
                symbol: c,
            });
            assert!(eq.equal());
        }
    }

    #[test]
    fn divergence_is_detected_immediately_and_persistently() {
        let mut rng = TranscriptRng::from_seed(211);
        let mut eq = StreamingEquality::generate(40, 2, &mut rng);
        eq.push(CharUpdate {
            track: Track::U,
            symbol: 1,
        });
        eq.push(CharUpdate {
            track: Track::V,
            symbol: 0,
        });
        assert!(!eq.equal());
        // Extending both identically cannot repair the divergence.
        for c in [1u64, 1, 0, 1] {
            eq.push(CharUpdate {
                track: Track::U,
                symbol: c,
            });
            eq.push(CharUpdate {
                track: Track::V,
                symbol: c,
            });
            assert!(!eq.equal(), "diverged strings must stay unequal");
        }
    }

    #[test]
    fn length_mismatch_is_unequal_even_with_zero_padding() {
        // int(U) treats "01" and "1" identically; the length check must
        // separate them (this is why the fingerprint carries the length).
        let mut rng = TranscriptRng::from_seed(212);
        let mut eq = StreamingEquality::generate(40, 2, &mut rng);
        eq.push(CharUpdate {
            track: Track::U,
            symbol: 0,
        });
        eq.push(CharUpdate {
            track: Track::U,
            symbol: 1,
        });
        eq.push(CharUpdate {
            track: Track::V,
            symbol: 1,
        });
        assert!(!eq.equal());
    }

    #[test]
    fn space_is_constant_in_string_length() {
        let mut rng = TranscriptRng::from_seed(213);
        let mut eq = StreamingEquality::generate(40, 2, &mut rng);
        for i in 0..10_000u64 {
            let c = i & 1;
            eq.push(CharUpdate {
                track: Track::U,
                symbol: c,
            });
            eq.push(CharUpdate {
                track: Track::V,
                symbol: c,
            });
        }
        // Two fingerprints: value (≤40 bits) + length counter (log of the
        // length) + three public parameters each — constant in the string
        // length, unlike storing the strings (20000 bits here).
        assert!(eq.space_bits() <= 400, "space {} bits", eq.space_bits());
    }
}
