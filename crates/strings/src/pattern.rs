//! Algorithm 6 / Theorem 1.7: streaming pattern matching robust against
//! `T`-time white-box adversaries.
//!
//! Given a pattern `P` with period `p`, the matcher keeps the robust
//! fingerprints `ψ = h(P[0..p))` and `φ = h(P)`, slides a width-`p` window
//! fingerprint over the text, and maintains a single *chain* of candidate
//! positions spaced `p` apart (Lemma 2.25: matches of a period-`p` pattern
//! cannot be closer than `p`). A full-length fingerprint comparison at
//! `m + |P|` confirms each candidate, using the concatenation law of the
//! DL-exponent hash to subtract the prefix `T[0..m)`.
//!
//! **Space note (documented substitution, DESIGN.md §3):** the paper states
//! `O(log T)` bits; this implementation buffers the last `p` text symbols
//! (to slide the window) and up to `⌈|P|/p⌉` chain anchors — i.e.
//! `O(p + |P|/p)` words ≥ `2√|P|`. The `[PP09]` trick that removes the buffer
//! fingerprints the pattern at `log |P|` scales; we keep the flat version
//! for clarity and verify the same correctness guarantee. All state is
//! public; robustness rests on the collision resistance of the fingerprint
//! alone.
//!
//! The chain-restart rule follows the paper's pseudocode literally. For
//! patterns whose period word is *bordered* the pseudocode can discard an
//! in-progress candidate on overlapping window matches; harnesses use
//! unbordered period words or aperiodic patterns (see tests), matching the
//! paper's implicit assumption.

use crate::period::period;
use std::collections::VecDeque;
use wb_core::rng::TranscriptRng;
use wb_core::space::{bits_for_count, SpaceUsage};
use wb_core::stream::StreamAlg;
use wb_crypto::crhf::{DlExpHash, DlExpParams};
use wb_crypto::modular::{mul_mod, pow_mod};

/// Reference matcher: all occurrence positions of `pattern` in `text`.
pub fn naive_find_all(pattern: &[u64], text: &[u64]) -> Vec<u64> {
    if pattern.is_empty() || text.len() < pattern.len() {
        return Vec::new();
    }
    (0..=text.len() - pattern.len())
        .filter(|&i| &text[i..i + pattern.len()] == pattern)
        .map(|i| i as u64)
        .collect()
}

/// One chain of `p`-aligned candidate occurrences.
#[derive(Debug, Clone)]
struct Chain {
    /// Start position of the current candidate.
    m: u64,
    /// Captured `(position, h(T[0..position)))` anchors, front = current.
    anchors: VecDeque<(u64, u64)>,
}

/// Algorithm 6: streaming pattern matcher.
#[derive(Debug, Clone)]
pub struct StreamingPatternMatcher {
    params: DlExpParams,
    pattern_len: u64,
    period: u64,
    /// Fingerprint of `P[0..p)`.
    psi: u64,
    /// Fingerprint of `P`.
    phi: u64,
    /// `B^{|P|} mod (p−1)` — exponent for prefix subtraction.
    shift_full: u64,
    /// `B^{p−1} mod (p−1)` — exponent of the window's leading symbol.
    shift_out: u64,
    /// `g^{−1} mod p`.
    g_inv: u64,
    /// Prefix fingerprint of the whole text.
    h_pref: DlExpHash,
    /// Window fingerprint value (last ≤ `period` symbols).
    window: u64,
    /// The window's symbols.
    win_syms: VecDeque<u64>,
    /// Prefix-hash ring for lengths `j−p ..= j`.
    pref_ring: VecDeque<u64>,
    chain: Option<Chain>,
    /// All confirmed match positions (output log, not counted as state).
    matches: Vec<u64>,
}

impl StreamingPatternMatcher {
    /// Matcher for `pattern` (nonempty, symbols `< params.base`); the
    /// period is computed with [`period`].
    pub fn new(pattern: &[u64], params: DlExpParams) -> Self {
        assert!(!pattern.is_empty(), "pattern must be nonempty");
        assert!(
            pattern.iter().all(|&c| c < params.base),
            "pattern symbols must be below the alphabet base"
        );
        let p = period(pattern) as u64;
        let psi = DlExpHash::hash_symbols(params, &pattern[..p as usize]);
        let phi = DlExpHash::hash_symbols(params, pattern);
        let group_ord = params.p - 1;
        StreamingPatternMatcher {
            params,
            pattern_len: pattern.len() as u64,
            period: p,
            psi,
            phi,
            shift_full: pow_mod(params.base, pattern.len() as u64, group_ord),
            shift_out: pow_mod(params.base, p - 1, group_ord),
            g_inv: pow_mod(params.g, params.p - 2, params.p),
            h_pref: DlExpHash::new(params),
            window: 1,
            win_syms: VecDeque::with_capacity(p as usize),
            pref_ring: VecDeque::with_capacity(p as usize + 2),
            chain: None,
            matches: Vec::new(),
        }
    }

    /// Feed one text symbol; returns `Some(position)` if an occurrence
    /// ending at this symbol was confirmed.
    pub fn push(&mut self, c: u64) -> Option<u64> {
        assert!(c < self.params.base, "symbol must be below the base");
        let pr = self.params.p;
        let p = self.period;

        // (1) Prefix fingerprint and its ring.
        self.h_pref.absorb(c);
        let j = self.h_pref.len();
        self.pref_ring.push_back(self.h_pref.value());
        if self.pref_ring.len() > p as usize + 1 {
            self.pref_ring.pop_front();
        }

        // (2) Window fingerprint (slide once full).
        if self.win_syms.len() == p as usize {
            let out = self.win_syms.pop_front().expect("window full");
            // Remove leading symbol: w ← w · g^{−out·B^{p−1}}.
            let e = mul_mod(out, self.shift_out, pr - 1);
            let factor = pow_mod(self.g_inv, e, pr);
            self.window = mul_mod(self.window, factor, pr);
        }
        // Append: w ← w^B · g^c.
        self.window = mul_mod(
            pow_mod(self.window, self.params.base, pr),
            pow_mod(self.params.g, c, pr),
            pr,
        );
        self.win_syms.push_back(c);

        // (3) Window match: a candidate occurrence starts at i = j − p.
        if j >= p && self.window == self.psi {
            let i = j - p;
            // h(T[0..i)) is the oldest ring entry (length j − p)… unless
            // i = 0, where the empty-prefix hash is 1.
            let anchor_hash = if i == 0 {
                1
            } else {
                *self.pref_ring.front().expect("ring nonempty")
            };
            match &mut self.chain {
                Some(chain) if (i - chain.m).is_multiple_of(p) => {
                    // Aligned continuation: capture as a future anchor.
                    if chain.anchors.back().map(|&(pos, _)| pos) != Some(i) {
                        chain.anchors.push_back((i, anchor_hash));
                    }
                }
                _ => {
                    // Paper's rule: m ← i (new or misaligned chain).
                    let mut anchors = VecDeque::new();
                    anchors.push_back((i, anchor_hash));
                    self.chain = Some(Chain { m: i, anchors });
                }
            }
        }

        // (4) Full-length confirmation at j = m + |P|.
        let mut confirmed = None;
        if let Some(chain) = &mut self.chain {
            if j == chain.m + self.pattern_len {
                let (_, anchor_hash) = *chain.anchors.front().expect("front is current");
                // h(T[m..j)) = h_pref · (anchor^{B^{|P|}})^{−1}.
                let lifted = pow_mod(anchor_hash, self.shift_full, pr);
                let lifted_inv = pow_mod(lifted, pr - 2, pr);
                let segment = mul_mod(self.h_pref.value(), lifted_inv, pr);
                if segment == self.phi {
                    confirmed = Some(chain.m);
                    self.matches.push(chain.m);
                }
                // Advance to the next captured aligned candidate.
                chain.anchors.pop_front();
                match chain.anchors.front() {
                    Some(&(pos, _)) => chain.m = pos,
                    None => self.chain = None,
                }
            }
        }
        confirmed
    }

    /// All confirmed occurrence positions so far.
    pub fn matches(&self) -> &[u64] {
        &self.matches
    }

    /// The pattern's period.
    pub fn pattern_period(&self) -> u64 {
        self.period
    }

    /// The public fingerprints `(ψ, φ)` (white-box view).
    pub fn fingerprints(&self) -> (u64, u64) {
        (self.psi, self.phi)
    }
}

impl SpaceUsage for StreamingPatternMatcher {
    /// Window symbols + prefix ring + chain anchors + fingerprint state
    /// (the output log of matches is excluded — it is the answer, not
    /// working state).
    fn space_bits(&self) -> u64 {
        let word = bits_for_count(self.params.p);
        let base_bits = bits_for_count(self.params.base.max(2) - 1);
        let chain_bits = self
            .chain
            .as_ref()
            .map_or(0, |c| c.anchors.len() as u64 * (word + 64));
        self.h_pref.space_bits()
            + word // window value
            + self.win_syms.len() as u64 * base_bits
            + self.pref_ring.len() as u64 * word
            + chain_bits
            + 4 * word // psi, phi, shifts
    }
}

impl StreamAlg for StreamingPatternMatcher {
    type Update = u64;
    type Output = usize;

    fn process(&mut self, update: &u64, _rng: &mut TranscriptRng) {
        self.push(*update);
    }

    /// Number of occurrences found so far.
    fn query(&self) -> usize {
        self.matches.len()
    }

    fn name(&self) -> &'static str {
        "StreamingPatternMatcher"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Vec<u64> {
        s.bytes().map(|b| (b - b'a') as u64).collect()
    }

    fn run_matcher(pattern: &str, text: &str, seed: u64) -> Vec<u64> {
        let mut rng = TranscriptRng::from_seed(seed);
        let params = DlExpParams::generate(40, 26, &mut rng);
        let mut m = StreamingPatternMatcher::new(&sym(pattern), params);
        for c in sym(text) {
            m.push(c);
        }
        m.matches().to_vec()
    }

    #[test]
    fn single_occurrence() {
        assert_eq!(run_matcher("abc", "xxabcxx", 220), vec![2]);
    }

    #[test]
    fn no_occurrence() {
        assert_eq!(run_matcher("abc", "ababab", 221), Vec::<u64>::new());
    }

    #[test]
    fn overlapping_periodic_pattern() {
        // P = "abab" (period 2) in "ababab": occurrences at 0 and 2.
        assert_eq!(run_matcher("abab", "ababab", 222), vec![0, 2]);
    }

    #[test]
    fn long_periodic_run() {
        // P = "ababab" in "ab"×20: occurrences at 0, 2, …, 34.
        let text: String = "ab".repeat(20);
        let expect: Vec<u64> = (0..=34).step_by(2).collect();
        assert_eq!(run_matcher("ababab", &text, 223), expect);
    }

    #[test]
    fn matches_at_start_and_end() {
        assert_eq!(run_matcher("ab", "abxxab", 224), vec![0, 4]);
    }

    #[test]
    fn agrees_with_naive_on_random_texts() {
        let mut rng = TranscriptRng::from_seed(225);
        let params = DlExpParams::generate(40, 4, &mut rng);
        for trial in 0..30u64 {
            let pat_len = 2 + (trial % 5) as usize;
            let pattern: Vec<u64> = (0..pat_len).map(|_| rng.below(2)).collect();
            let text: Vec<u64> = (0..200).map(|_| rng.below(2)).collect();
            let mut m = StreamingPatternMatcher::new(&pattern, params);
            for &c in &text {
                m.push(c);
            }
            let naive = naive_find_all(&pattern, &text);
            // The single-chain pseudocode may drop occurrences for bordered
            // period words; for this corpus, verify no false positives and
            // that every reported match is genuine, plus full agreement
            // when the period word is unbordered.
            for &pos in m.matches() {
                assert!(
                    naive.contains(&pos),
                    "false positive at {pos} (trial {trial}, P={pattern:?})"
                );
            }
            let p = crate::period::period(&pattern);
            let period_word = &pattern[..p];
            let unbordered = (1..p).all(|b| period_word[..b] != period_word[p - b..]);
            if unbordered {
                assert_eq!(
                    m.matches(),
                    &naive[..],
                    "missed occurrences (trial {trial}, P={pattern:?})"
                );
            }
        }
    }

    #[test]
    fn push_reports_position_on_confirmation() {
        let mut rng = TranscriptRng::from_seed(226);
        let params = DlExpParams::generate(40, 26, &mut rng);
        let mut m = StreamingPatternMatcher::new(&sym("ab"), params);
        assert_eq!(m.push(sym("a")[0]), None);
        assert_eq!(m.push(sym("b")[0]), Some(0));
        assert_eq!(m.push(sym("a")[0]), None);
        assert_eq!(m.push(sym("b")[0]), Some(2));
    }

    #[test]
    fn space_scales_with_period_not_text() {
        let mut rng = TranscriptRng::from_seed(227);
        let params = DlExpParams::generate(40, 26, &mut rng);
        let mut m = StreamingPatternMatcher::new(&sym("abcabcabcabc"), params);
        let text = sym(&"xyz".repeat(2000));
        let mut peak = 0;
        for &c in &text {
            m.push(c);
            peak = peak.max(m.space_bits());
        }
        // period = 3: window of 3 symbols + ring of 4 hashes + constants;
        // far below text length (6000 symbols ≈ 30000 bits).
        assert!(peak < 1500, "peak space {peak} bits");
        assert_eq!(m.pattern_period(), 3);
    }

    #[test]
    fn pattern_equal_to_period_length() {
        // Aperiodic pattern: period == length; chain advance works when the
        // capture point coincides with the confirmation point.
        assert_eq!(run_matcher("abcd", "abcdabcdabcd", 228), vec![0, 4, 8]);
    }

    #[test]
    #[should_panic(expected = "pattern must be nonempty")]
    fn rejects_empty_pattern() {
        let mut rng = TranscriptRng::from_seed(229);
        let params = DlExpParams::generate(40, 26, &mut rng);
        StreamingPatternMatcher::new(&[], params);
    }
}
