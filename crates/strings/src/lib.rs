//! # wb-strings — string algorithms in the white-box model (§2.6)
//!
//! | module | paper anchor | contents |
//! |---|---|---|
//! | [`karp_rabin`] | §2.6 motivation | classic Karp–Rabin fingerprint (non-robust baseline) |
//! | [`attacks`] | §2.6 | the order/Fermat collision attack on Karp–Rabin; budget-bounded searches against the robust hash |
//! | [`fingerprint`] | Lemma 2.24 / Theorem 2.5 | DL-exponent fingerprints, streaming equality of adaptive strings |
//! | [`mod@period`] | Lemma 2.25 substrate | string periods via KMP |
//! | [`pattern`] | Algorithm 6 / Theorem 1.7 | streaming pattern matching |

pub mod attacks;
pub mod fingerprint;
pub mod karp_rabin;
pub mod pattern;
pub mod period;

pub use fingerprint::{CharUpdate, StreamingEquality, Track};
pub use karp_rabin::{KarpRabin, KarpRabinParams};
pub use pattern::{naive_find_all, StreamingPatternMatcher};
pub use period::period;
