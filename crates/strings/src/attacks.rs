//! White-box attacks on string fingerprints (§2.6 of the paper).
//!
//! The paper's observation: *"an adversary can use the information about
//! the internal parameters of the Karp–Rabin fingerprint to easily generate
//! a collision"* — by Fermat's little theorem, `x^{p−1} ≡ 1 (mod p)`, so
//! shifting a set character by one multiplicative order of `x` preserves
//! the fingerprint. [`kr_order_collision`] implements exactly that: it
//! factors `p − 1` (poly-time for word-sized `p` via Pollard rho), computes
//! `ord_p(x)`, and emits two distinct equal-fingerprint strings.
//!
//! Against the DL-exponent fingerprint the same adversary budget fails:
//! producing a collision requires the order of `g`, whose computation is
//! the very problem the construction assumes hard — at workspace scale this
//! is a *cost measurement* (experiment E7), demonstrated here by
//! [`dlexp_random_collision_search`] failing within budgets that break
//! Karp–Rabin instantly.

use crate::karp_rabin::KarpRabinParams;
use wb_core::rng::TranscriptRng;
use wb_crypto::crhf::{DlExpHash, DlExpParams};
use wb_crypto::prime::multiplicative_order;

/// A crafted Karp–Rabin collision: two distinct 0/1 strings of length
/// `ord + 1` with identical fingerprints under the published parameters.
///
/// `U` has a 1 at position 0; `V` has the 1 moved to position
/// `ord = ord_p(x)`; since `x^0 ≡ x^{ord}`, the polynomial values agree.
pub fn kr_order_collision(params: &KarpRabinParams) -> (Vec<u64>, Vec<u64>) {
    let ord = multiplicative_order(params.x, params.p);
    let len = ord as usize + 1;
    let mut u = vec![0u64; len];
    let mut v = vec![0u64; len];
    u[0] = 1;
    v[ord as usize] = 1;
    (u, v)
}

/// Generic bounded adversary against any fingerprint: random search for a
/// colliding pair among `budget` random strings of length `len`. Returns
/// the pair if found. (This is what a `T`-time adversary without structural
/// insight can do; against a `b`-bit fingerprint it needs `~2^{b/2}`
/// samples.)
pub fn dlexp_random_collision_search(
    params: DlExpParams,
    len: usize,
    budget: u64,
    rng: &mut TranscriptRng,
) -> Option<(Vec<u64>, Vec<u64>)> {
    use std::collections::HashMap;
    let mut seen: HashMap<u64, Vec<u64>> = HashMap::new();
    for _ in 0..budget {
        let s: Vec<u64> = (0..len).map(|_| rng.below(params.base)).collect();
        let h = DlExpHash::hash_symbols(params, &s);
        if let Some(prev) = seen.get(&h) {
            if prev != &s {
                return Some((prev.clone(), s));
            }
        } else {
            seen.insert(h, s);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::karp_rabin::KarpRabin;

    #[test]
    fn order_attack_breaks_karp_rabin() {
        // Small prime so the crafted strings stay test-sized; the attack
        // itself scales to any word-sized p (factoring p−1 is easy there).
        let params = KarpRabinParams { p: 257, x: 3 };
        let (u, v) = kr_order_collision(&params);
        assert_ne!(u, v, "attack must produce distinct strings");
        assert_eq!(
            KarpRabin::fingerprint(params, &u),
            KarpRabin::fingerprint(params, &v),
            "fingerprints must collide"
        );
        assert_eq!(u.len(), v.len());
    }

    #[test]
    fn order_attack_works_for_generated_params() {
        let mut rng = TranscriptRng::from_seed(230);
        // 18-bit prime: order can be up to 2^18; strings are that long.
        let params = KarpRabinParams::generate(18, &mut rng);
        let (u, v) = kr_order_collision(&params);
        assert_eq!(
            KarpRabin::fingerprint(params, &u),
            KarpRabin::fingerprint(params, &v)
        );
        assert_ne!(u, v);
    }

    #[test]
    fn attack_length_matches_order() {
        // x = p−1 has order 2: the collision is as short as it gets.
        let params = KarpRabinParams { p: 101, x: 100 };
        let (u, v) = kr_order_collision(&params);
        assert_eq!(u.len(), 3);
        assert_eq!(
            KarpRabin::fingerprint(params, &u),
            KarpRabin::fingerprint(params, &v)
        );
    }

    #[test]
    fn dlexp_resists_the_equivalent_budget() {
        // The KR attack above costs ~√p order-finding work. Give the random
        // collision search a comparable budget against the DL-exponent hash
        // over a 40-bit prime — it must fail (birthday needs ~2^20 samples;
        // we grant 2^12).
        let mut rng = TranscriptRng::from_seed(231);
        let params = DlExpParams::generate(40, 2, &mut rng);
        let found = dlexp_random_collision_search(params, 64, 1 << 12, &mut rng);
        assert!(found.is_none(), "collision found within a tiny budget");
    }

    #[test]
    fn dlexp_collision_search_succeeds_at_toy_scale() {
        // Sanity-check the attack machinery itself: over a 14-bit prime the
        // birthday bound is ~2^7, so the search must succeed — confirming
        // that resistance above is parameter-driven, not a broken search.
        let mut rng = TranscriptRng::from_seed(232);
        let params = DlExpParams::generate(14, 2, &mut rng);
        let found = dlexp_random_collision_search(params, 64, 1 << 10, &mut rng)
            .expect("birthday collision at toy scale");
        let (a, b) = found;
        assert_ne!(a, b);
        assert_eq!(
            DlExpHash::hash_symbols(params, &a),
            DlExpHash::hash_symbols(params, &b)
        );
    }
}
