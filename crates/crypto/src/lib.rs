//! # wb-crypto — cryptographic substrate for white-box robust streaming
//!
//! The paper's computationally-bounded-adversary algorithms (Theorems 1.2,
//! 1.3, 1.5, 1.6, 1.7) lean on two cryptographic objects that remain useful
//! even when **everything is public** — there is no secret key in the
//! white-box model:
//!
//! * **collision-resistant hash functions** (Definition 2.4): publishing
//!   the parameters does not help an efficient adversary find collisions;
//! * **SIS sketching matrices** (Definition 2.15, Theorem 2.16): publishing
//!   `A` does not help an efficient adversary find a *short* kernel vector.
//!
//! This crate builds those objects — and the number theory beneath them —
//! from scratch:
//!
//! | module | contents |
//! |---|---|
//! | [`modular`] | `u64` modular arithmetic with `u128` intermediates |
//! | [`mersenne`] | the fast-reduction Mersenne-61 field used by the word-level hashes |
//! | [`prime`] | deterministic Miller–Rabin, prime/safe-prime generation, Pollard-rho factorization, multiplicative orders |
//! | [`mod@sha256`] | FIPS 180-4 SHA-256, tested against official vectors |
//! | [`oracle`] | the random oracle model of §2.3, instantiated with SHA-256 |
//! | [`crhf`] | Pedersen compression + Merkle–Damgård (Theorem 2.5), and the streaming DL-exponent hash used for string fingerprints (§2.6) |
//! | [`sis`] | SIS matrices (explicit / oracle-backed), the streaming update primitive, and the attack toolbox (brute force, birthday, unbounded mod-q kernel) |
//!
//! Parameters are word-sized (≤ 62-bit moduli) by design: the experiments
//! measure *scaling* of attack cost, not production security — see
//! DESIGN.md §3.

pub mod crhf;
pub mod mersenne;
pub mod modular;
pub mod oracle;
pub mod prime;
pub mod sha256;
pub mod sis;

pub use crhf::{DlExpHash, DlExpParams, PedersenHash, PedersenMd, PedersenParams};
pub use oracle::RandomOracle;
pub use sha256::{sha256, sha256_u64, Sha256};
pub use sis::{SisMatrix, SisParams};
