//! Primality testing, prime generation, factorization and multiplicative
//! orders.
//!
//! * [`is_prime`] — Miller–Rabin, *deterministic* for all `u64` inputs
//!   using the verified witness set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
//!   31, 37}` (Sorenson–Webster).
//! * [`random_prime`] / [`random_safe_prime`] — generation from public
//!   randomness (everything in the white-box model is public).
//! * [`factorize`] — trial division + Pollard's rho; used by the *attack*
//!   side of the workspace (e.g. the Karp–Rabin order attack in
//!   `wb-strings` factors `p−1` to compute multiplicative orders).
//! * [`multiplicative_order`] — order of `a` in `Z_p^*`.

use crate::modular::{gcd, mul_mod, pow_mod};
use wb_core::rng::TranscriptRng;

/// Deterministic Miller–Rabin primality test for `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n - 1 = d · 2^s with d odd
    let mut d = n - 1;
    let mut s = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        s += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Uniform random prime with exactly `bits` bits (`2 ≤ bits ≤ 62`).
///
/// Rejection-samples odd candidates with the top bit set.
pub fn random_prime(bits: u32, rng: &mut TranscriptRng) -> u64 {
    assert!((2..=62).contains(&bits), "bits must be in [2, 62]");
    if bits == 2 {
        return if rng.bernoulli(0.5) { 2 } else { 3 };
    }
    loop {
        let mut cand = rng.next_u64() >> (64 - bits);
        cand |= 1 << (bits - 1); // exact bit length
        cand |= 1; // odd
        if is_prime(cand) {
            return cand;
        }
    }
}

/// Random safe prime `p = 2q + 1` (`q` prime) with exactly `bits` bits.
///
/// Safe primes give a large prime-order subgroup (the quadratic residues)
/// for Pedersen hashing. `bits` is the size of `p`; feasible up to ~40 bits
/// in tests, larger in release experiments.
pub fn random_safe_prime(bits: u32, rng: &mut TranscriptRng) -> u64 {
    assert!((4..=62).contains(&bits), "bits must be in [4, 62]");
    loop {
        let q = random_prime(bits - 1, rng);
        let p = 2 * q + 1;
        if p >> (bits - 1) == 1 && is_prime(p) {
            return p;
        }
    }
}

/// Factorization of `n` as sorted `(prime, exponent)` pairs.
///
/// Trial division by small primes, then Pollard's rho (Brent variant) on
/// the remaining cofactor. Complete for all `u64`.
pub fn factorize(mut n: u64) -> Vec<(u64, u32)> {
    let mut factors: Vec<(u64, u32)> = Vec::new();
    if n < 2 {
        return factors;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47] {
        if p * p > n {
            break;
        }
        let mut e = 0;
        while n.is_multiple_of(p) {
            n /= p;
            e += 1;
        }
        if e > 0 {
            factors.push((p, e));
        }
    }
    let mut stack = vec![n];
    let mut found: Vec<u64> = Vec::new();
    while let Some(m) = stack.pop() {
        if m == 1 {
            continue;
        }
        if is_prime(m) {
            found.push(m);
            continue;
        }
        let d = pollard_rho(m);
        stack.push(d);
        stack.push(m / d);
    }
    found.sort_unstable();
    let mut i = 0;
    while i < found.len() {
        let p = found[i];
        let mut e = 0;
        while i < found.len() && found[i] == p {
            e += 1;
            i += 1;
        }
        factors.push((p, e));
    }
    factors.sort_unstable();
    factors
}

/// Pollard's rho with Brent cycle detection; `n` must be composite and odd
/// with no factor below 50 (guaranteed by the caller, [`factorize`]).
fn pollard_rho(n: u64) -> u64 {
    debug_assert!(n > 1 && !is_prime(n));
    if n.is_multiple_of(2) {
        return 2;
    }
    // Deterministic sequence of (c, x0) attempts; for u64 this always
    // terminates quickly in practice.
    for c in 1u64.. {
        let f = |x: u64| (mul_mod(x, x, n) + c) % n;
        let mut x = 2u64;
        let mut y = 2u64;
        let mut d = 1u64;
        let mut count = 0u64;
        while d == 1 {
            x = f(x);
            y = f(f(y));
            d = gcd(x.abs_diff(y), n);
            count += 1;
            if count > 1 << 24 {
                break; // try next c
            }
        }
        if d != n && d != 1 {
            return d;
        }
    }
    unreachable!("pollard_rho exhausted u64 parameter space")
}

/// Multiplicative order of `a` in `Z_p^*` for prime `p` and `a ≢ 0`.
///
/// Factors `p − 1` and strips each prime factor while the power stays 1.
/// This is the *adversary's* tool: computing orders is exactly what breaks
/// Karp–Rabin fingerprints under white-box observation (§2.6 of the paper).
pub fn multiplicative_order(a: u64, p: u64) -> u64 {
    assert!(is_prime(p), "modulus must be prime");
    assert!(!a.is_multiple_of(p), "a must be a unit");
    let mut order = p - 1;
    for (q, e) in factorize(p - 1) {
        for _ in 0..e {
            if order.is_multiple_of(q) && pow_mod(a, order / q, p) == 1 {
                order /= q;
            } else {
                break;
            }
        }
    }
    order
}

/// A generator of the full group `Z_p^*` for prime `p`.
pub fn find_primitive_root(p: u64, rng: &mut TranscriptRng) -> u64 {
    assert!(is_prime(p) && p > 2);
    let factors = factorize(p - 1);
    loop {
        let g = rng.range(2, p);
        if factors
            .iter()
            .all(|&(q, _)| pow_mod(g, (p - 1) / q, p) != 1)
        {
            return g;
        }
    }
}

/// A generator of the order-`q` quadratic-residue subgroup of `Z_p^*` for a
/// safe prime `p = 2q + 1`: any square other than 1 generates it.
pub fn qr_generator(p: u64, rng: &mut TranscriptRng) -> u64 {
    debug_assert!(is_prime(p) && is_prime((p - 1) / 2));
    loop {
        let a = rng.range(2, p - 1);
        let g = mul_mod(a, a, p);
        if g != 1 {
            return g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primality() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 65537, (1 << 61) - 1];
        for p in primes {
            assert!(is_prime(p), "{p} is prime");
        }
        let composites = [0u64, 1, 4, 6, 9, 15, 1 << 20, 3215031751, 25326001];
        for c in composites {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn strong_pseudoprimes_rejected() {
        // Known strong pseudoprimes to small bases; the deterministic
        // witness set must reject them all.
        for n in [2047u64, 1373653, 9080191, 1050535501, 350269456337] {
            assert!(!is_prime(n), "{n} must be rejected");
        }
    }

    #[test]
    fn random_prime_has_exact_bits() {
        let mut rng = TranscriptRng::from_seed(1);
        for bits in [8u32, 16, 31, 45, 62] {
            let p = random_prime(bits, &mut rng);
            assert!(is_prime(p));
            assert_eq!(64 - p.leading_zeros(), bits, "p={p} bits");
        }
    }

    #[test]
    fn safe_prime_structure() {
        let mut rng = TranscriptRng::from_seed(2);
        let p = random_safe_prime(24, &mut rng);
        assert!(is_prime(p));
        assert!(is_prime((p - 1) / 2));
        assert_eq!(64 - p.leading_zeros(), 24);
    }

    #[test]
    fn factorize_known_values() {
        assert_eq!(factorize(1), vec![]);
        assert_eq!(factorize(2), vec![(2, 1)]);
        assert_eq!(factorize(360), vec![(2, 3), (3, 2), (5, 1)]);
        assert_eq!(factorize(97), vec![(97, 1)]);
        assert_eq!(factorize(1 << 32), vec![(2, 32)]);
        // semiprime with ~30-bit factors exercises Pollard rho
        let a = 1_000_003u64;
        let b = 998_244_353u64;
        assert_eq!(factorize(a * b), vec![(a, 1), (b, 1)]);
    }

    #[test]
    fn factorize_reassembles() {
        for n in [720u64, 123456789, 9_999_999_967, (1 << 61) - 2] {
            let product: u64 = factorize(n).iter().map(|&(p, e)| p.pow(e)).product();
            assert_eq!(product, n);
        }
    }

    #[test]
    fn orders_divide_group_order() {
        let p = 1_000_003u64; // prime
        for a in [2u64, 3, 5, 10, 999_999] {
            let ord = multiplicative_order(a, p);
            assert_eq!((p - 1) % ord, 0);
            assert_eq!(pow_mod(a, ord, p), 1);
            // Minimality: no proper divisor works.
            for (q, _) in factorize(ord) {
                assert_ne!(pow_mod(a, ord / q, p), 1);
            }
        }
    }

    #[test]
    fn primitive_root_generates() {
        let mut rng = TranscriptRng::from_seed(3);
        let p = 65537u64;
        let g = find_primitive_root(p, &mut rng);
        assert_eq!(multiplicative_order(g, p), p - 1);
    }

    #[test]
    fn qr_generator_has_order_q() {
        let mut rng = TranscriptRng::from_seed(4);
        let p = random_safe_prime(20, &mut rng);
        let q = (p - 1) / 2;
        let g = qr_generator(p, &mut rng);
        assert_eq!(multiplicative_order(g, p), q);
    }
}
