//! Modular arithmetic over `u64` moduli with exact `u128` intermediates.
//!
//! These are the word-level primitives under every cryptographic object in
//! the workspace: Pedersen hashing, DL-exponent fingerprints, SIS sketches
//! over `Z_q`, and the Gaussian elimination in `wb-linalg`. All functions
//! are branch-light and allocation-free.

/// `(a + b) mod m`. Requires `a, b < m`.
#[inline]
pub fn add_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m);
    let (s, overflow) = a.overflowing_add(b);
    if overflow || s >= m {
        s.wrapping_sub(m)
    } else {
        s
    }
}

/// `(a - b) mod m`. Requires `a, b < m`.
#[inline]
pub fn sub_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m);
    if a >= b {
        a - b
    } else {
        a.wrapping_sub(b).wrapping_add(m)
    }
}

/// `(a · b) mod m` via a 128-bit product. Requires `m > 0`.
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `a^e mod m` by square-and-multiply. Defines `0^0 = 1`. Requires `m > 0`.
pub fn pow_mod(mut a: u64, mut e: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    if m == 1 {
        return 0;
    }
    a %= m;
    let mut acc: u64 = 1;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul_mod(acc, a, m);
        }
        a = mul_mod(a, a, m);
        e >>= 1;
    }
    acc
}

/// Greatest common divisor.
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Modular inverse of `a` mod `m` if `gcd(a, m) = 1`, else `None`.
///
/// Extended Euclid over signed 128-bit to avoid overflow.
pub fn inv_mod(a: u64, m: u64) -> Option<u64> {
    if m == 0 {
        return None;
    }
    let (mut old_r, mut r) = (a as i128 % m as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return None;
    }
    let mut inv = old_s % m as i128;
    if inv < 0 {
        inv += m as i128;
    }
    Some(inv as u64)
}

/// Reduce a signed value into `[0, m)`.
#[inline]
pub fn reduce_signed(x: i64, m: u64) -> u64 {
    debug_assert!(m > 0);
    let r = x.rem_euclid(m as i64);
    // For m > i64::MAX this path is unused in the workspace (q is always a
    // prime well below 2^62); keep the cast checked in debug builds.
    debug_assert!(m <= i64::MAX as u64);
    r as u64
}

/// Lift `x ∈ [0, m)` to its balanced representative in `(-m/2, m/2]`.
#[inline]
pub fn balanced(x: u64, m: u64) -> i64 {
    debug_assert!(x < m && m <= i64::MAX as u64);
    if x > m / 2 {
        x as i64 - m as i64
    } else {
        x as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: u64 = (1 << 61) - 1; // Mersenne prime 2^61 - 1

    #[test]
    fn add_sub_roundtrip() {
        let a = M - 5;
        let b = 17;
        assert_eq!(add_mod(a, b, M), 12);
        assert_eq!(sub_mod(12, b, M), a);
        assert_eq!(sub_mod(0, 1, M), M - 1);
        assert_eq!(add_mod(M - 1, 1, M), 0);
    }

    #[test]
    fn mul_matches_u128() {
        let pairs = [(3u64, 5u64), (M - 1, M - 1), (1 << 60, 12345)];
        for (a, b) in pairs {
            assert_eq!(
                mul_mod(a, b, M),
                ((a as u128 * b as u128) % M as u128) as u64
            );
        }
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(pow_mod(2, 10, 1_000_003), 1024);
        assert_eq!(pow_mod(0, 0, 97), 1, "0^0 = 1 by convention");
        assert_eq!(pow_mod(5, 0, 97), 1);
        assert_eq!(pow_mod(7, 1, 97), 7);
        assert_eq!(pow_mod(123, 456, 1), 0, "mod 1 is always 0");
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) ≡ 1 mod p for prime p and gcd(a, p) = 1.
        for a in [2u64, 3, 12345, M - 2] {
            assert_eq!(pow_mod(a, M - 1, M), 1);
        }
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(1, 1), 1);
        assert_eq!(gcd(M, M), M);
    }

    #[test]
    fn inverse_correctness() {
        for a in [1u64, 2, 3, 65537, M - 1] {
            let inv = inv_mod(a, M).expect("prime modulus: inverse exists");
            assert_eq!(mul_mod(a, inv, M), 1);
        }
        assert_eq!(inv_mod(6, 9), None, "gcd(6,9)=3: no inverse");
        assert_eq!(inv_mod(0, 7), None);
        assert_eq!(inv_mod(3, 0), None);
    }

    #[test]
    fn signed_reduction_and_balance() {
        assert_eq!(reduce_signed(-1, 7), 6);
        assert_eq!(reduce_signed(-7, 7), 0);
        assert_eq!(reduce_signed(13, 7), 6);
        assert_eq!(balanced(6, 7), -1);
        assert_eq!(balanced(3, 7), 3);
        assert_eq!(balanced(4, 8), 4);
        assert_eq!(balanced(5, 8), -3);
    }
}
