//! Arithmetic in the Mersenne-prime field `Z_p` with `p = 2⁶¹ − 1`.
//!
//! Several structures in the workspace (AMS sign hashes, CountMin row
//! hashes, the rank-decision modulus) work modulo `M61 = 2⁶¹ − 1`, where
//! reduction is two shifts and an add instead of a division. This module
//! centralizes the fast path with the standard identity
//! `x mod (2⁶¹ − 1) = (x & M61) + (x >> 61)` (applied twice).

/// The Mersenne prime `2⁶¹ − 1`.
pub const M61: u64 = (1 << 61) - 1;

/// Reduce a 64-bit value mod `M61`.
#[inline]
pub fn reduce64(x: u64) -> u64 {
    let r = (x & M61) + (x >> 61);
    if r >= M61 {
        r - M61
    } else {
        r
    }
}

/// Reduce a 128-bit value mod `M61`.
#[inline]
pub fn reduce128(x: u128) -> u64 {
    // Split into 61-bit limbs: x = a + b·2^61 + c·2^122 with c < 2^6.
    let a = (x & M61 as u128) as u64;
    let b = ((x >> 61) & M61 as u128) as u64;
    let c = (x >> 122) as u64;
    reduce64(reduce64(a.wrapping_add(b)).wrapping_add(c))
}

/// Reduce a value below `2^125` mod `M61` — the shape of every universal
/// hash `a·x + b` with `a, b < M61` and `x` any `u64`.
///
/// Uses `2^64 ≡ 8 (mod 2^61 − 1)`: with `x = hi·2^64 + lo` and
/// `hi < 2^61`, the sum `lo + 8·hi < 2^65` is congruent to `x` and folds
/// with one shift-add round plus a final [`reduce64`] — roughly half the
/// instruction count of the generic [`reduce128`], with an identical
/// (canonical) result. Debug-asserts the precondition; release callers
/// must guarantee it.
#[inline]
pub fn reduce125(x: u128) -> u64 {
    debug_assert!(x >> 125 == 0, "reduce125 needs x < 2^125");
    let lo = x as u64;
    let hi = (x >> 64) as u64; // < 2^61
    let s = lo as u128 + ((hi as u128) << 3); // ≡ x (mod M61), < 2^65
    let t = (s as u64 & M61) + ((s >> 61) as u64); // < 2^61 + 2^4
    reduce64(t)
}

/// `(a + b) mod M61` for `a, b < M61`.
#[inline]
pub fn add61(a: u64, b: u64) -> u64 {
    debug_assert!(a < M61 && b < M61);
    let s = a + b; // < 2^62: no overflow
    if s >= M61 {
        s - M61
    } else {
        s
    }
}

/// `(a · b) mod M61` via one 128-bit product and shift-reduction.
#[inline]
pub fn mul61(a: u64, b: u64) -> u64 {
    debug_assert!(a < M61 && b < M61);
    reduce128(a as u128 * b as u128)
}

/// `a^e mod M61` on the fast path.
pub fn pow61(mut a: u64, mut e: u64) -> u64 {
    a = reduce64(a);
    let mut acc = 1u64;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul61(acc, a);
        }
        a = mul61(a, a);
        e >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::{mul_mod, pow_mod};
    use wb_core::rng::TranscriptRng;

    #[test]
    fn m61_is_prime() {
        assert!(crate::prime::is_prime(M61));
    }

    #[test]
    fn reduce64_matches_modulo() {
        for x in [0u64, 1, M61 - 1, M61, M61 + 1, u64::MAX] {
            assert_eq!(reduce64(x), x % M61, "x = {x}");
        }
    }

    #[test]
    fn reduce128_matches_modulo() {
        let cases = [
            0u128,
            1,
            M61 as u128,
            u64::MAX as u128,
            u128::MAX,
            (M61 as u128) * (M61 as u128),
            (M61 as u128 - 1) * (M61 as u128 - 1),
        ];
        for x in cases {
            assert_eq!(reduce128(x) as u128, x % M61 as u128, "x = {x}");
        }
    }

    #[test]
    fn reduce125_matches_reduce128_below_its_bound() {
        let max = (1u128 << 125) - 1;
        let cases = [
            0u128,
            1,
            M61 as u128,
            M61 as u128 + 1,
            u64::MAX as u128,
            (M61 as u128) * (M61 as u128),
            (M61 as u128 - 2) * (u64::MAX as u128) + M61 as u128 - 1,
            max - 1,
            max,
        ];
        for x in cases {
            assert_eq!(reduce125(x), reduce128(x), "x = {x}");
        }
        // Dense sweep around every 2^k boundary below the bound.
        for k in 0..125u32 {
            let p = 1u128 << k;
            for d in 0..4u128 {
                for x in [p.saturating_sub(d), (p + d).min(max)] {
                    assert_eq!(reduce125(x), reduce128(x), "x = {x}");
                }
            }
        }
        // Random a·x + b hash shapes — the exact caller profile.
        let mut rng = TranscriptRng::from_seed(63);
        for _ in 0..2000 {
            let a = rng.below(M61);
            let b = rng.below(M61);
            let x = rng.next_u64();
            let h = a as u128 * x as u128 + b as u128;
            assert_eq!(reduce125(h), reduce128(h), "h = {h}");
        }
    }

    #[test]
    fn fast_ops_agree_with_generic_modular_on_random_inputs() {
        let mut rng = TranscriptRng::from_seed(61);
        for _ in 0..2000 {
            let a = rng.below(M61);
            let b = rng.below(M61);
            assert_eq!(mul61(a, b), mul_mod(a, b, M61));
            assert_eq!(add61(a, b), (a + b) % M61);
        }
    }

    #[test]
    fn pow_agrees_with_generic() {
        let mut rng = TranscriptRng::from_seed(62);
        for _ in 0..50 {
            let a = rng.below(M61);
            let e = rng.below(1 << 20);
            assert_eq!(pow61(a, e), pow_mod(a, e, M61));
        }
        // Fermat on the fast path.
        assert_eq!(pow61(123456789, M61 - 1), 1);
    }
}
