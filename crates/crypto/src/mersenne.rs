//! Arithmetic in the Mersenne-prime field `Z_p` with `p = 2⁶¹ − 1`.
//!
//! Several structures in the workspace (AMS sign hashes, CountMin row
//! hashes, the rank-decision modulus) work modulo `M61 = 2⁶¹ − 1`, where
//! reduction is two shifts and an add instead of a division. This module
//! centralizes the fast path with the standard identity
//! `x mod (2⁶¹ − 1) = (x & M61) + (x >> 61)` (applied twice).

/// The Mersenne prime `2⁶¹ − 1`.
pub const M61: u64 = (1 << 61) - 1;

/// Reduce a 64-bit value mod `M61`.
#[inline]
pub fn reduce64(x: u64) -> u64 {
    let r = (x & M61) + (x >> 61);
    if r >= M61 {
        r - M61
    } else {
        r
    }
}

/// Reduce a 128-bit value mod `M61`.
#[inline]
pub fn reduce128(x: u128) -> u64 {
    // Split into 61-bit limbs: x = a + b·2^61 + c·2^122 with c < 2^6.
    let a = (x & M61 as u128) as u64;
    let b = ((x >> 61) & M61 as u128) as u64;
    let c = (x >> 122) as u64;
    reduce64(reduce64(a.wrapping_add(b)).wrapping_add(c))
}

/// `(a + b) mod M61` for `a, b < M61`.
#[inline]
pub fn add61(a: u64, b: u64) -> u64 {
    debug_assert!(a < M61 && b < M61);
    let s = a + b; // < 2^62: no overflow
    if s >= M61 {
        s - M61
    } else {
        s
    }
}

/// `(a · b) mod M61` via one 128-bit product and shift-reduction.
#[inline]
pub fn mul61(a: u64, b: u64) -> u64 {
    debug_assert!(a < M61 && b < M61);
    reduce128(a as u128 * b as u128)
}

/// `a^e mod M61` on the fast path.
pub fn pow61(mut a: u64, mut e: u64) -> u64 {
    a = reduce64(a);
    let mut acc = 1u64;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul61(acc, a);
        }
        a = mul61(a, a);
        e >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::{mul_mod, pow_mod};
    use wb_core::rng::TranscriptRng;

    #[test]
    fn m61_is_prime() {
        assert!(crate::prime::is_prime(M61));
    }

    #[test]
    fn reduce64_matches_modulo() {
        for x in [0u64, 1, M61 - 1, M61, M61 + 1, u64::MAX] {
            assert_eq!(reduce64(x), x % M61, "x = {x}");
        }
    }

    #[test]
    fn reduce128_matches_modulo() {
        let cases = [
            0u128,
            1,
            M61 as u128,
            u64::MAX as u128,
            u128::MAX,
            (M61 as u128) * (M61 as u128),
            (M61 as u128 - 1) * (M61 as u128 - 1),
        ];
        for x in cases {
            assert_eq!(reduce128(x) as u128, x % M61 as u128, "x = {x}");
        }
    }

    #[test]
    fn fast_ops_agree_with_generic_modular_on_random_inputs() {
        let mut rng = TranscriptRng::from_seed(61);
        for _ in 0..2000 {
            let a = rng.below(M61);
            let b = rng.below(M61);
            assert_eq!(mul61(a, b), mul_mod(a, b, M61));
            assert_eq!(add61(a, b), (a + b) % M61);
        }
    }

    #[test]
    fn pow_agrees_with_generic() {
        let mut rng = TranscriptRng::from_seed(62);
        for _ in 0..50 {
            let a = rng.below(M61);
            let e = rng.below(1 << 20);
            assert_eq!(pow61(a, e), pow_mod(a, e, M61));
        }
        // Fermat on the fast path.
        assert_eq!(pow61(123456789, M61 - 1), 1);
    }
}
