//! The Short Integer Solution problem (Definition 2.15) and sketching
//! matrices derived from it.
//!
//! A SIS instance is a uniformly random matrix `A ∈ Z_q^{d×w}`; a solution
//! is a **nonzero, short** integer vector `z` (here `‖z‖_∞ ≤ β_∞`) with
//! `A z ≡ 0 (mod q)`. Ajtai's worst-case-to-average-case reduction
//! (Theorem 2.16) makes finding such `z` as hard as worst-case lattice
//! problems; Assumption 2.17 of the paper is that no poly-time adversary
//! can do it.
//!
//! The streaming algorithms (Algorithm 5 for L0, Theorem 1.6 for rank) use
//! `A` as a linear sketch: a sketch equal to `0` certifies that the sketched
//! sub-vector is zero *unless the adversary has produced a SIS solution*.
//! The matrix can be stored explicitly or regenerated column-by-column from
//! a [`RandomOracle`] (which removes the `d·w·log q` storage term — the
//! random-oracle space saving of Theorem 1.5).
//!
//! Attack tooling (for experiments that *measure* the hardness scaling):
//!
//! * [`brute_force_short_kernel`] — exhaustive search over `‖z‖_∞ ≤ β_∞`,
//!   cost `(2β_∞+1)^w`;
//! * [`birthday_kernel_search`] — meet-in-the-middle over random 0/1
//!   splits, cost ~`q^{d/2}` samples for `{−1,0,1}` solutions;
//! * [`mod_q_kernel`] — the **unbounded** adversary: Gaussian elimination
//!   finds a mod-q kernel vector whenever `w > d`, but the result is
//!   generally *not short* — exhibiting exactly the gap between
//!   computationally bounded and unbounded adversaries the paper's upper
//!   and lower bounds straddle.

use crate::modular::{add_mod, inv_mod, mul_mod, reduce_signed, sub_mod};
use crate::oracle::RandomOracle;
use wb_core::rng::TranscriptRng;
use wb_core::space::{bits_for_universe, SpaceUsage};

/// Public parameters of a SIS instance / sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SisParams {
    /// Sketch dimension (rows of `A`).
    pub d: usize,
    /// Input dimension (columns of `A`).
    pub w: usize,
    /// Modulus (prime in this workspace).
    pub q: u64,
    /// Shortness bound `β_∞` on solutions.
    pub beta_inf: u64,
}

impl SisParams {
    /// Basic sanity checks.
    pub fn validate(&self) -> Result<(), wb_core::WbError> {
        if self.d == 0 || self.w == 0 {
            return Err(wb_core::WbError::invalid("SIS dims must be positive"));
        }
        if self.q < 2 {
            return Err(wb_core::WbError::invalid("SIS modulus must be ≥ 2"));
        }
        if self.beta_inf == 0 || self.beta_inf >= self.q {
            return Err(wb_core::WbError::invalid("need 0 < β_∞ < q"));
        }
        Ok(())
    }
}

/// A SIS sketching matrix, stored explicitly or derived from a random
/// oracle column-by-column.
#[derive(Debug, Clone)]
pub enum SisMatrix {
    /// Matrix stored in memory (column-major).
    Explicit {
        /// Public parameters.
        params: SisParams,
        /// `cols[j]` is the `d`-dimensional column `A_j`.
        cols: Vec<Vec<u64>>,
    },
    /// Columns regenerated on demand from a public random oracle.
    Oracle {
        /// Public parameters.
        params: SisParams,
        /// The public oracle.
        oracle: RandomOracle,
    },
}

impl SisMatrix {
    /// Uniformly random explicit matrix from public randomness.
    pub fn random_explicit(params: SisParams, rng: &mut TranscriptRng) -> Self {
        params.validate().expect("invalid SIS params");
        let cols = (0..params.w)
            .map(|_| (0..params.d).map(|_| rng.below(params.q)).collect())
            .collect();
        SisMatrix::Explicit { params, cols }
    }

    /// **Failure injection**: a matrix with a *planted* short kernel vector
    /// (returned alongside). The trapdoor simulates an adversary that has
    /// actually broken SIS, so experiments can verify that the security
    /// argument of Theorem 1.5 is load-bearing — the sketch *must* fail
    /// once a short kernel is known.
    ///
    /// Construction: draw `A'` uniformly on the first `w−1` columns and a
    /// short `z'` with `z'_last = 1`; set the last column to
    /// `−A'·z'_{0..w−1} (mod q)`, making `z'` a kernel vector. The marginal
    /// distribution of the matrix is still uniform.
    pub fn planted(params: SisParams, rng: &mut TranscriptRng) -> (Self, Vec<i64>) {
        params.validate().expect("invalid SIS params");
        assert!(params.w >= 2, "planting needs ≥ 2 columns");
        let mut cols: Vec<Vec<u64>> = (0..params.w - 1)
            .map(|_| (0..params.d).map(|_| rng.below(params.q)).collect())
            .collect();
        // Short trapdoor with ±1/0 entries and a fixed 1 in the last slot.
        let mut z: Vec<i64> = (0..params.w - 1).map(|_| rng.below(3) as i64 - 1).collect();
        z.push(1);
        // last column = −Σ_j z_j · col_j (mod q)
        let mut last = vec![0u64; params.d];
        for (j, col) in cols.iter().enumerate() {
            let c = reduce_signed(z[j], params.q);
            for (acc, &v) in last.iter_mut().zip(col) {
                *acc = add_mod(*acc, mul_mod(c, v, params.q), params.q);
            }
        }
        for v in &mut last {
            *v = sub_mod(0, *v, params.q);
        }
        cols.push(last);
        let m = SisMatrix::Explicit { params, cols };
        debug_assert!(is_sis_solution(&m, &z));
        (m, z)
    }

    /// Oracle-backed matrix (columns regenerated on demand).
    pub fn from_oracle(params: SisParams, tag: &[u8]) -> Self {
        params.validate().expect("invalid SIS params");
        SisMatrix::Oracle {
            params,
            oracle: RandomOracle::new(tag),
        }
    }

    /// Public parameters.
    pub fn params(&self) -> &SisParams {
        match self {
            SisMatrix::Explicit { params, .. } => params,
            SisMatrix::Oracle { params, .. } => params,
        }
    }

    /// Column `j` of `A` as a fresh vector.
    pub fn column(&self, j: usize) -> Vec<u64> {
        let p = *self.params();
        assert!(j < p.w, "column index out of range");
        match self {
            SisMatrix::Explicit { cols, .. } => cols[j].clone(),
            SisMatrix::Oracle { oracle, .. } => oracle.zq_column(j as u64, p.d, p.q),
        }
    }

    /// `acc ← acc + coeff · A_j (mod q)` — the streaming update primitive.
    pub fn add_scaled_column(&self, j: usize, coeff: i64, acc: &mut [u64]) {
        let p = *self.params();
        debug_assert_eq!(acc.len(), p.d);
        let c = reduce_signed(coeff, p.q);
        if c == 0 {
            return;
        }
        match self {
            SisMatrix::Explicit { cols, .. } => {
                for (a, &v) in acc.iter_mut().zip(&cols[j]) {
                    *a = add_mod(*a, mul_mod(c, v, p.q), p.q);
                }
            }
            SisMatrix::Oracle { oracle, .. } => {
                for (row, a) in acc.iter_mut().enumerate() {
                    let v = oracle.zq_at(j as u64 * p.d as u64 + row as u64, p.q);
                    *a = add_mod(*a, mul_mod(c, v, p.q), p.q);
                }
            }
        }
    }

    /// `A x mod q` for an integer vector `x` of length `w`.
    pub fn apply(&self, x: &[i64]) -> Vec<u64> {
        let p = *self.params();
        assert_eq!(x.len(), p.w);
        let mut acc = vec![0u64; p.d];
        for (j, &coeff) in x.iter().enumerate() {
            self.add_scaled_column(j, coeff, &mut acc);
        }
        acc
    }
}

impl SpaceUsage for SisMatrix {
    /// Explicit storage costs `d·w·⌈log₂ q⌉` bits; the oracle-backed matrix
    /// costs only its tag — this is the space gap of Theorem 1.5.
    fn space_bits(&self) -> u64 {
        let p = self.params();
        match self {
            SisMatrix::Explicit { .. } => p.d as u64 * p.w as u64 * bits_for_universe(p.q),
            SisMatrix::Oracle { oracle, .. } => oracle.space_bits(),
        }
    }
}

/// Is `z` a valid SIS solution for `m`? (nonzero, `‖z‖_∞ ≤ β_∞`,
/// `A z ≡ 0 mod q`).
pub fn is_sis_solution(m: &SisMatrix, z: &[i64]) -> bool {
    let p = m.params();
    z.len() == p.w
        && z.iter().any(|&v| v != 0)
        && z.iter().all(|&v| v.unsigned_abs() <= p.beta_inf)
        && m.apply(z).iter().all(|&v| v == 0)
}

/// Exhaustive search over `{−β..β}^w` in odometer order, capped at `budget`
/// candidates. Returns the first solution found.
///
/// Cost `(2β+1)^w`: feasible only at toy parameters — which is the point of
/// the hardness-scaling experiment (E4).
pub fn brute_force_short_kernel(m: &SisMatrix, budget: u64) -> Option<Vec<i64>> {
    let p = *m.params();
    let beta = p.beta_inf as i64;
    let radix = (2 * beta + 1) as u64;
    let mut z = vec![-beta; p.w];
    let mut tried = 0u64;
    loop {
        if tried >= budget {
            return None;
        }
        tried += 1;
        if is_sis_solution(m, &z) {
            return Some(z);
        }
        // odometer increment
        let mut i = 0;
        loop {
            if i == p.w {
                return None; // exhausted the whole box
            }
            z[i] += 1;
            if z[i] > beta {
                z[i] = -beta;
                i += 1;
            } else {
                break;
            }
        }
        let _ = radix;
    }
}

/// Birthday / meet-in-the-middle search for a `{−1, 0, 1}` solution:
/// samples random 0/1 vectors, hashes their sketches, and returns the
/// difference of any colliding pair. Expected cost ~`q^{d/2}` samples.
pub fn birthday_kernel_search(
    m: &SisMatrix,
    samples: u64,
    rng: &mut TranscriptRng,
) -> Option<Vec<i64>> {
    use std::collections::HashMap;
    let p = *m.params();
    if p.beta_inf < 1 {
        return None;
    }
    let mut seen: HashMap<Vec<u64>, Vec<i64>> = HashMap::new();
    for _ in 0..samples {
        let x: Vec<i64> = (0..p.w).map(|_| (rng.next_u64() & 1) as i64).collect();
        let sketch = m.apply(&x);
        if let Some(prev) = seen.get(&sketch) {
            let diff: Vec<i64> = x.iter().zip(prev).map(|(a, b)| a - b).collect();
            if diff.iter().any(|&v| v != 0) {
                debug_assert!(is_sis_solution(m, &diff));
                return Some(diff);
            }
        } else {
            seen.insert(sketch, x);
        }
    }
    None
}

/// The unbounded adversary: a nonzero mod-q kernel vector of `A` via
/// Gaussian elimination, whenever one exists (always for `w > d`).
///
/// The returned vector has entries in `[0, q)` and is **generally not
/// short** — lifting it to a short representative is exactly the hard part.
/// Requires `q` prime.
// Index-based loops: rows `r` and `row` of `a` are borrowed simultaneously,
// which iterator adapters cannot express without `split_at_mut` noise.
#[allow(clippy::needless_range_loop)]
pub fn mod_q_kernel(m: &SisMatrix) -> Option<Vec<u64>> {
    let p = *m.params();
    let q = p.q;
    // Row-major copy of A.
    let mut a: Vec<Vec<u64>> = (0..p.d).map(|_| vec![0u64; p.w]).collect();
    for j in 0..p.w {
        let col = m.column(j);
        for (i, &v) in col.iter().enumerate() {
            a[i][j] = v;
        }
    }
    // Forward elimination with pivot tracking.
    let mut pivot_col_of_row: Vec<usize> = Vec::new();
    let mut row = 0usize;
    let mut is_pivot = vec![false; p.w];
    for col in 0..p.w {
        if row == p.d {
            break;
        }
        let pr = (row..p.d).find(|&r| a[r][col] != 0);
        let Some(pr) = pr else { continue };
        a.swap(row, pr);
        let inv = inv_mod(a[row][col], q).expect("q prime, pivot nonzero");
        for v in a[row].iter_mut() {
            *v = mul_mod(*v, inv, q);
        }
        for r in 0..p.d {
            if r != row && a[r][col] != 0 {
                let factor = a[r][col];
                for c in 0..p.w {
                    let t = mul_mod(factor, a[row][c], q);
                    a[r][c] = sub_mod(a[r][c], t, q);
                }
            }
        }
        is_pivot[col] = true;
        pivot_col_of_row.push(col);
        row += 1;
    }
    // Free column → kernel vector.
    let free = (0..p.w).find(|&c| !is_pivot[c])?;
    let mut z = vec![0u64; p.w];
    z[free] = 1;
    for (r, &pc) in pivot_col_of_row.iter().enumerate() {
        // pivot var = -a[r][free] * z[free]
        z[pc] = sub_mod(0, a[r][free], q);
    }
    // Verify.
    let zi: Vec<i64> = z.iter().map(|&v| v as i64).collect();
    debug_assert!(m.apply(&zi).iter().all(|&v| v == 0));
    Some(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_params() -> SisParams {
        SisParams {
            d: 3,
            w: 8,
            q: 97,
            beta_inf: 2,
        }
    }

    #[test]
    fn params_validation() {
        assert!(toy_params().validate().is_ok());
        assert!(SisParams {
            d: 0,
            ..toy_params()
        }
        .validate()
        .is_err());
        assert!(SisParams {
            q: 1,
            ..toy_params()
        }
        .validate()
        .is_err());
        assert!(SisParams {
            beta_inf: 0,
            ..toy_params()
        }
        .validate()
        .is_err());
        assert!(SisParams {
            beta_inf: 97,
            ..toy_params()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn explicit_apply_matches_columns() {
        let mut rng = TranscriptRng::from_seed(1);
        let m = SisMatrix::random_explicit(toy_params(), &mut rng);
        // A·e_j = column j.
        for j in 0..8 {
            let mut e = vec![0i64; 8];
            e[j] = 1;
            assert_eq!(m.apply(&e), m.column(j));
        }
        // Linearity with negative coefficients.
        let x = vec![1i64, -1, 0, 2, 0, 0, -3, 1];
        let y = m.apply(&x);
        let mut manual = vec![0u64; 3];
        for (j, &c) in x.iter().enumerate() {
            m.add_scaled_column(j, c, &mut manual);
        }
        assert_eq!(y, manual);
    }

    #[test]
    fn oracle_matrix_is_consistent_and_matches_explicit_protocol() {
        let params = toy_params();
        let m = SisMatrix::from_oracle(params, b"sis-test");
        let c2a = m.column(2);
        let c2b = m.column(2);
        assert_eq!(c2a, c2b);
        assert!(c2a.iter().all(|&v| v < params.q));
        // add_scaled_column must agree with column() for the oracle path.
        let mut acc = vec![0u64; params.d];
        m.add_scaled_column(2, 1, &mut acc);
        assert_eq!(acc, c2a);
    }

    #[test]
    fn oracle_space_is_constant_explicit_space_scales() {
        let params = SisParams {
            d: 4,
            w: 16,
            q: 97,
            beta_inf: 2,
        };
        let mut rng = TranscriptRng::from_seed(2);
        let exp = SisMatrix::random_explicit(params, &mut rng);
        let ora = SisMatrix::from_oracle(params, b"t");
        assert_eq!(exp.space_bits(), 4 * 16 * 7);
        assert_eq!(ora.space_bits(), 8); // 1-byte tag
    }

    #[test]
    fn solution_checker() {
        let params = toy_params();
        let m = SisMatrix::from_oracle(params, b"check");
        assert!(!is_sis_solution(&m, &[0i64; 8]), "zero vector excluded");
        assert!(
            !is_sis_solution(&m, &[3i64, 0, 0, 0, 0, 0, 0, 0]),
            "too long in ∞-norm"
        );
    }

    #[test]
    fn brute_force_finds_planted_solution() {
        // Plant: make column 1 = -column 0 mod q so (1, 1, 0, ...) wait —
        // column1 = q - column0 means col0 + col1 ≡ 0, so z = (1,1,0,...).
        let params = SisParams {
            d: 2,
            w: 4,
            q: 31,
            beta_inf: 1,
        };
        let cols = vec![
            vec![5u64, 7],
            vec![26u64, 24], // = -col0 mod 31
            vec![3u64, 3],
            vec![9u64, 1],
        ];
        let m = SisMatrix::Explicit { params, cols };
        let z = brute_force_short_kernel(&m, 1 << 16).expect("planted solution");
        assert!(is_sis_solution(&m, &z));
    }

    #[test]
    fn brute_force_respects_budget() {
        let params = SisParams {
            d: 6,
            w: 6,
            q: 1_000_003,
            beta_inf: 1,
        };
        let m = SisMatrix::from_oracle(params, b"hard");
        // Square random matrix mod a large prime is a.s. nonsingular: no
        // kernel at all; search must stop at the budget.
        assert_eq!(brute_force_short_kernel(&m, 1000), None);
    }

    #[test]
    fn birthday_finds_collision_at_toy_scale() {
        let params = SisParams {
            d: 2,
            w: 32,
            q: 13,
            beta_inf: 1,
        };
        let m = SisMatrix::from_oracle(params, b"bday");
        let mut rng = TranscriptRng::from_seed(3);
        // Sketch space has 13^2 = 169 values; a few hundred samples collide.
        let z = birthday_kernel_search(&m, 2000, &mut rng).expect("collision");
        assert!(is_sis_solution(&m, &z));
    }

    #[test]
    fn mod_q_kernel_exists_iff_wide() {
        let mut rng = TranscriptRng::from_seed(4);
        // Wide: w > d ⇒ kernel exists.
        let wide = SisMatrix::random_explicit(
            SisParams {
                d: 3,
                w: 6,
                q: 101,
                beta_inf: 1,
            },
            &mut rng,
        );
        let z = mod_q_kernel(&wide).expect("wide matrix has kernel");
        let zi: Vec<i64> = z.iter().map(|&v| v as i64).collect();
        assert!(wide.apply(&zi).iter().all(|&v| v == 0));
        assert!(z.iter().any(|&v| v != 0));
    }

    #[test]
    fn mod_q_kernel_is_generally_not_short() {
        // The unbounded adversary's vector typically has large entries —
        // demonstrating the bounded/unbounded gap.
        let mut rng = TranscriptRng::from_seed(5);
        let params = SisParams {
            d: 8,
            w: 12,
            q: 1_000_003,
            beta_inf: 2,
        };
        let m = SisMatrix::random_explicit(params, &mut rng);
        let z = mod_q_kernel(&m).expect("kernel exists");
        let max = z
            .iter()
            .map(|&v| crate::modular::balanced(v, params.q).unsigned_abs())
            .max()
            .unwrap();
        assert!(
            max > params.beta_inf,
            "mod-q kernel happened to be short (max {max}); astronomically unlikely"
        );
    }
    #[test]
    fn planted_trapdoor_is_a_valid_solution() {
        let mut rng = TranscriptRng::from_seed(6);
        let params = SisParams {
            d: 6,
            w: 24,
            q: 1_000_003,
            beta_inf: 2,
        };
        let (m, z) = SisMatrix::planted(params, &mut rng);
        assert!(is_sis_solution(&m, &z), "trapdoor must solve the instance");
        assert!(z.iter().all(|&v| v.abs() <= 1));
        assert_eq!(z[params.w - 1], 1);
    }

    #[test]
    fn planted_matrix_looks_uniform_per_column() {
        // Column means should sit near q/2 — a coarse uniformity check on
        // the planted construction.
        let mut rng = TranscriptRng::from_seed(7);
        let params = SisParams {
            d: 64,
            w: 8,
            q: 1_000_003,
            beta_inf: 2,
        };
        let (m, _) = SisMatrix::planted(params, &mut rng);
        for j in 0..params.w {
            let col = m.column(j);
            let mean = col.iter().sum::<u64>() as f64 / col.len() as f64;
            let expect = (params.q - 1) as f64 / 2.0;
            assert!(
                (mean - expect).abs() < expect * 0.35,
                "column {j} mean {mean} far from {expect}"
            );
        }
    }
}
