//! The random oracle model (Bellare–Rogaway), instantiated with SHA-256.
//!
//! §2.3 of the paper: *"In the random oracle model, we assume a publicly
//! accessible random function which can be accessed by us and the
//! adversary. … In practice, one can use SHA256 as the random oracle."*
//!
//! A [`RandomOracle`] is a deterministic public function: it has **no secret
//! state**, so in the space accounting of the model it costs only its
//! domain-separation tag. Algorithms use it to regenerate sketch-matrix
//! columns on the fly (Algorithm 5 and Theorem 1.6), which is precisely the
//! paper's mechanism for dropping the matrix storage term from the space
//! bound.

use crate::sha256::Sha256;
use wb_core::space::SpaceUsage;

/// A public random function keyed by a domain-separation tag.
///
/// Queries are answered as `SHA256(tag ‖ len(tag) ‖ input)`, with helper
/// encodings for indexed u64 draws and uniform `Z_q` elements (rejection
/// sampling, so the distribution is exactly uniform).
#[derive(Debug, Clone)]
pub struct RandomOracle {
    tag: Vec<u8>,
}

impl RandomOracle {
    /// Oracle with the given domain-separation tag.
    pub fn new(tag: &[u8]) -> Self {
        RandomOracle { tag: tag.to_vec() }
    }

    /// The public tag.
    pub fn tag(&self) -> &[u8] {
        &self.tag
    }

    /// Raw 32-byte oracle output on `input`.
    pub fn query(&self, input: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&self.tag);
        h.update(&(self.tag.len() as u64).to_be_bytes());
        h.update(input);
        h.finalize()
    }

    /// Uniform 64-bit word at position `(index, counter)`.
    pub fn u64_at(&self, index: u64, counter: u64) -> u64 {
        let mut input = [0u8; 16];
        input[..8].copy_from_slice(&index.to_be_bytes());
        input[8..].copy_from_slice(&counter.to_be_bytes());
        let d = self.query(&input);
        u64::from_be_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]])
    }

    /// Uniform element of `Z_q` at logical position `index`, by rejection
    /// sampling over the counter dimension. Requires `q > 0`.
    pub fn zq_at(&self, index: u64, q: u64) -> u64 {
        assert!(q > 0);
        if q.is_power_of_two() {
            return self.u64_at(index, 0) & (q - 1);
        }
        let zone = u64::MAX - (u64::MAX % q);
        let mut counter = 0u64;
        loop {
            let w = self.u64_at(index, counter);
            if w < zone {
                return w % q;
            }
            counter += 1;
        }
    }

    /// A length-`dim` column of uniform `Z_q` elements for column index `j`.
    ///
    /// Position encoding is `j * dim + row`, so distinct `(j, row)` pairs
    /// never collide for `dim > 0`.
    pub fn zq_column(&self, j: u64, dim: usize, q: u64) -> Vec<u64> {
        (0..dim as u64)
            .map(|row| self.zq_at(j * dim as u64 + row, q))
            .collect()
    }
}

impl SpaceUsage for RandomOracle {
    /// A random oracle is a public function; only the domain tag is state.
    fn space_bits(&self) -> u64 {
        (self.tag.len() as u64) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_tag_separated() {
        let o1 = RandomOracle::new(b"exp-a");
        let o2 = RandomOracle::new(b"exp-a");
        let o3 = RandomOracle::new(b"exp-b");
        assert_eq!(o1.query(b"x"), o2.query(b"x"));
        assert_ne!(o1.query(b"x"), o3.query(b"x"));
        assert_ne!(o1.query(b"x"), o1.query(b"y"));
    }

    #[test]
    fn tag_length_prefix_prevents_sliding() {
        // tag "ab" on input "c" must differ from tag "a" on input "bc".
        let o_ab = RandomOracle::new(b"ab");
        let o_a = RandomOracle::new(b"a");
        assert_ne!(o_ab.query(b"c"), o_a.query(b"bc"));
    }

    #[test]
    fn zq_uniform_range_and_coverage() {
        let o = RandomOracle::new(b"zq");
        let q = 7u64;
        let mut seen = [false; 7];
        for i in 0..500 {
            let v = o.zq_at(i, q);
            assert!(v < q);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn zq_mean_near_half_q() {
        let o = RandomOracle::new(b"mean");
        let q = 1_000_003u64;
        let n = 4000u64;
        let sum: u64 = (0..n).map(|i| o.zq_at(i, q)).sum();
        let mean = sum as f64 / n as f64;
        let expect = (q - 1) as f64 / 2.0;
        assert!(
            (mean - expect).abs() < expect * 0.05,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn columns_are_consistent_and_distinct() {
        let o = RandomOracle::new(b"col");
        let c0 = o.zq_column(0, 8, 97);
        let c0_again = o.zq_column(0, 8, 97);
        let c1 = o.zq_column(1, 8, 97);
        assert_eq!(c0, c0_again, "oracle must answer consistently");
        assert_ne!(c0, c1);
        assert!(c0.iter().all(|&v| v < 97));
        // Column j=1 must not overlap column j=0's entries by index sliding.
        let boundary = o.zq_at(8, 97); // first entry of column 1 when dim=8
        assert_eq!(c1[0], boundary);
    }

    #[test]
    fn power_of_two_q_fast_path() {
        let o = RandomOracle::new(b"pow2");
        for i in 0..100 {
            assert!(o.zq_at(i, 1024) < 1024);
        }
    }

    #[test]
    fn space_is_tag_only() {
        assert_eq!(RandomOracle::new(b"abcd").space_bits(), 32);
        assert_eq!(RandomOracle::new(b"").space_bits(), 0);
    }
}
