//! Collision-resistant hash functions (Definition 2.4 of the paper).
//!
//! Two constructions:
//!
//! * [`PedersenHash`] / [`PedersenMd`] — the discrete-log-based CRHF of
//!   Theorem 2.5 (Katz–Lindell §7.73 / folklore): a fixed-input-length
//!   compression function `h(x₁, x₂) = g^{x₁} · h^{x₂} mod p` over the
//!   prime-order quadratic-residue subgroup of a safe prime, extended to
//!   arbitrary-length inputs with Merkle–Damgård strengthening. Collision
//!   ⇒ discrete log of `h` base `g`. Used by the `(φ, ε)`-heavy-hitters
//!   algorithm (Theorem 1.2) and vertex-neighborhood identification
//!   (Theorem 1.3), where whole objects are hashed into a small universe.
//! * [`DlExpHash`] — the *streaming* exponent hash the paper uses for
//!   string fingerprints (§2.6): `h(U) = g^{int(U)} mod p`, computable
//!   character by character and supporting the concatenation law
//!   `h(U∘V) = h(U)^{B^{|V|}} · h(V)`. Its collision resistance for
//!   unbounded-length inputs rests on the multiplicative order of `g` being
//!   hard to compute; at the word-sized demo parameters used here that is a
//!   *scaling* statement measured by the attack experiments, not a
//!   production security claim (see DESIGN.md §3).
//!
//! Everything is public — the white-box adversary sees `p, q, g, h` the
//! moment they are generated. Collision resistance (unlike, say, a PRF key)
//! survives publication: that is exactly why the paper reaches for CRHFs.

use crate::modular::{mul_mod, pow_mod};
use crate::prime::{qr_generator, random_prime, random_safe_prime};
use wb_core::rng::TranscriptRng;
use wb_core::space::{bits_for_count, SpaceUsage};

/// Public parameters of a Pedersen compression function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PedersenParams {
    /// Safe prime `p = 2q + 1`.
    pub p: u64,
    /// Prime order of the QR subgroup, `q = (p − 1) / 2`.
    pub q: u64,
    /// First generator of the QR subgroup.
    pub g: u64,
    /// Second generator, with `log_g h` unknown to everyone (sampled from
    /// public randomness; knowing the *transcript* does not reveal the
    /// discrete log — that still takes a DL computation).
    pub h: u64,
}

/// Fixed-input-length Pedersen hash `Z_q × Z_q → QR_p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PedersenHash {
    params: PedersenParams,
}

impl PedersenHash {
    /// Generates fresh public parameters. `bits` is the size of `p`
    /// (`34 ≤ bits ≤ 62`, so that 32-bit blocks fit in `Z_q`).
    pub fn generate(bits: u32, rng: &mut TranscriptRng) -> Self {
        assert!((34..=62).contains(&bits), "need 34..=62 bit safe prime");
        let p = random_safe_prime(bits, rng);
        let q = (p - 1) / 2;
        let g = qr_generator(p, rng);
        let h = loop {
            let cand = qr_generator(p, rng);
            if cand != g {
                break cand;
            }
        };
        PedersenHash {
            params: PedersenParams { p, q, g, h },
        }
    }

    /// Construct from existing public parameters.
    pub fn from_params(params: PedersenParams) -> Self {
        PedersenHash { params }
    }

    /// The public parameters.
    pub fn params(&self) -> &PedersenParams {
        &self.params
    }

    /// `g^{x₁} · h^{x₂} mod p`; requires `x₁, x₂ < q`.
    pub fn compress(&self, x1: u64, x2: u64) -> u64 {
        debug_assert!(x1 < self.params.q && x2 < self.params.q);
        mul_mod(
            pow_mod(self.params.g, x1, self.params.p),
            pow_mod(self.params.h, x2, self.params.p),
            self.params.p,
        )
    }
}

impl SpaceUsage for PedersenHash {
    /// Public parameters: four residues mod `p`.
    fn space_bits(&self) -> u64 {
        4 * bits_for_count(self.params.p)
    }
}

/// Arbitrary-length CRHF: Merkle–Damgård over [`PedersenHash`] with length
/// strengthening.
///
/// The chaining value (a group element in `[1, p)`) is folded into `Z_q` by
/// reduction mod `q` between rounds. At the word-sized demo parameters this
/// loses at most one bit of the chaining value per round (`p = 2q + 1`); the
/// fold is injective on `[0, q)` and maps `[q, p)` onto `[0, q)`, so a
/// collision in the fold still pins the chaining value to one of two known
/// preimages — the unit tests check collision-freeness empirically and the
/// attack experiments measure search cost.
#[derive(Debug, Clone, Copy)]
pub struct PedersenMd {
    inner: PedersenHash,
}

impl PedersenMd {
    /// Generate fresh public parameters (see [`PedersenHash::generate`]).
    pub fn generate(bits: u32, rng: &mut TranscriptRng) -> Self {
        PedersenMd {
            inner: PedersenHash::generate(bits, rng),
        }
    }

    /// Construct from existing parameters.
    pub fn from_params(params: PedersenParams) -> Self {
        PedersenMd {
            inner: PedersenHash::from_params(params),
        }
    }

    /// The underlying compression function.
    pub fn inner(&self) -> &PedersenHash {
        &self.inner
    }

    /// Hash a slice of `u64` words to a group element in `[1, p)`.
    ///
    /// Words are split into 32-bit halves (each `< q` since `q > 2^32`),
    /// chained through the compression function, and finished with a length
    /// block (Merkle–Damgård strengthening).
    pub fn hash_words(&self, words: &[u64]) -> u64 {
        let q = self.inner.params.q;
        let mut state = 1u64 % q; // public IV
        let absorb = |state: &mut u64, block: u64| {
            *state = self.inner.compress(*state, block) % q;
        };
        for &w in words {
            absorb(&mut state, w >> 32);
            absorb(&mut state, w & 0xFFFF_FFFF);
        }
        absorb(&mut state, words.len() as u64 & 0xFFFF_FFFF);
        // Final output: full group element (not folded), so the output
        // universe is [1, p).
        self.inner.compress(state, 0x5A5A_5A5A)
    }

    /// Hash arbitrary bytes (packed big-endian into u64 words, with the byte
    /// length absorbed, so `"ab" ‖ "c"` and `"a" ‖ "bc"` differ).
    pub fn hash_bytes(&self, data: &[u8]) -> u64 {
        let mut words: Vec<u64> = Vec::with_capacity(data.len() / 8 + 2);
        for chunk in data.chunks(8) {
            let mut w = 0u64;
            for &b in chunk {
                w = (w << 8) | b as u64;
            }
            words.push(w);
        }
        words.push(data.len() as u64);
        self.hash_words(&words)
    }

    /// Output width in bits (`⌈log₂ p⌉`).
    pub fn output_bits(&self) -> u64 {
        bits_for_count(self.inner.params.p)
    }
}

impl SpaceUsage for PedersenMd {
    fn space_bits(&self) -> u64 {
        self.inner.space_bits()
    }
}

/// Public parameters of the streaming DL-exponent hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DlExpParams {
    /// Prime modulus. The *factorization of `p − 1` is not published*;
    /// computing the order of `g` (the collision-finding step) requires the
    /// adversary to factor it.
    pub p: u64,
    /// Group element whose order is the hidden quantity.
    pub g: u64,
    /// Alphabet radix `B`: symbols are integers in `[0, B)`.
    pub base: u64,
}

impl DlExpParams {
    /// Generate parameters with a `bits`-bit prime and alphabet radix
    /// `base ≥ 2`.
    pub fn generate(bits: u32, base: u64, rng: &mut TranscriptRng) -> Self {
        assert!(base >= 2);
        let p = random_prime(bits, rng);
        let g = rng.range(2, p - 1);
        DlExpParams { p, g, base }
    }
}

/// Streaming exponent hash `h(U) = g^{int_B(U)} mod p` (§2.6 of the paper).
///
/// Supports O(1)-space left-to-right absorption and the concatenation law
/// used by the streaming pattern matcher (Algorithm 6):
/// `h(U ∘ V) = h(U)^{B^{|V|}} · h(V) mod p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DlExpHash {
    params: DlExpParams,
    /// Current value `g^{int(U)} mod p`.
    acc: u64,
    /// Number of symbols absorbed.
    len: u64,
}

impl DlExpHash {
    /// Empty-string hash (`g^0 = 1`).
    pub fn new(params: DlExpParams) -> Self {
        DlExpHash {
            params,
            acc: 1,
            len: 0,
        }
    }

    /// The public parameters.
    pub fn params(&self) -> &DlExpParams {
        &self.params
    }

    /// Absorb one symbol `c ∈ [0, B)`: `int ← int·B + c`, i.e.
    /// `acc ← acc^B · g^c mod p`.
    pub fn absorb(&mut self, c: u64) {
        debug_assert!(c < self.params.base);
        let p = self.params.p;
        self.acc = mul_mod(
            pow_mod(self.acc, self.params.base, p),
            pow_mod(self.params.g, c, p),
            p,
        );
        self.len += 1;
    }

    /// Current hash value in `[1, p)`.
    pub fn value(&self) -> u64 {
        self.acc
    }

    /// Number of symbols absorbed.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` iff no symbols have been absorbed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Concatenation law: the hash of `U ∘ V` from the hashes of `U` and
    /// `V`. Exponent arithmetic is done mod `p − 1` (valid by Fermat).
    pub fn concat(&self, v: &DlExpHash) -> DlExpHash {
        debug_assert_eq!(self.params, v.params);
        let p = self.params.p;
        // B^{|V|} mod (p-1): a^{e mod (p-1)} = a^e for units a by Fermat.
        let shift = pow_mod(self.params.base, v.len, p - 1);
        DlExpHash {
            params: self.params,
            acc: mul_mod(pow_mod(self.acc, shift, p), v.acc, p),
            len: self.len + v.len,
        }
    }

    /// One-shot hash of a symbol slice.
    pub fn hash_symbols(params: DlExpParams, symbols: &[u64]) -> u64 {
        let mut h = DlExpHash::new(params);
        for &c in symbols {
            h.absorb(c);
        }
        h.value()
    }
}

impl SpaceUsage for DlExpHash {
    /// Accumulator + length counter + public parameters (three residues).
    fn space_bits(&self) -> u64 {
        bits_for_count(self.acc) + bits_for_count(self.len) + 3 * bits_for_count(self.params.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pedersen() -> PedersenHash {
        let mut rng = TranscriptRng::from_seed(100);
        PedersenHash::generate(36, &mut rng)
    }

    #[test]
    fn pedersen_params_sane() {
        let h = pedersen();
        let p = h.params().p;
        let q = h.params().q;
        assert_eq!(p, 2 * q + 1);
        assert!(crate::prime::is_prime(p) && crate::prime::is_prime(q));
        // Generators have order q.
        assert_eq!(pow_mod(h.params().g, q, p), 1);
        assert_eq!(pow_mod(h.params().h, q, p), 1);
        assert_ne!(h.params().g, h.params().h);
    }

    #[test]
    fn pedersen_compress_is_homomorphic() {
        // compress(a+b, c+d) = compress(a,c)·compress(b,d): the Pedersen
        // structure the SIS/DL arguments rely on.
        let h = pedersen();
        let q = h.params().q;
        let p = h.params().p;
        let (a, b, c, d) = (123 % q, 456 % q, 789 % q, 1011 % q);
        let lhs = h.compress((a + b) % q, (c + d) % q);
        let rhs = mul_mod(h.compress(a, c), h.compress(b, d), p);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn pedersen_md_distinguishes_lengths_and_content() {
        let mut rng = TranscriptRng::from_seed(101);
        let md = PedersenMd::generate(36, &mut rng);
        assert_ne!(md.hash_bytes(b"ab"), md.hash_bytes(b"ba"));
        assert_ne!(md.hash_bytes(b"a"), md.hash_bytes(b"a\0"));
        assert_ne!(md.hash_bytes(b""), md.hash_bytes(b"\0"));
        assert_eq!(md.hash_bytes(b"hello"), md.hash_bytes(b"hello"));
        // Concatenation-sliding must be blocked by length strengthening.
        assert_ne!(md.hash_words(&[1, 2]), md.hash_words(&[1, 2, 0]));
    }

    #[test]
    fn pedersen_md_no_collisions_in_small_sample() {
        let mut rng = TranscriptRng::from_seed(102);
        let md = PedersenMd::generate(40, &mut rng);
        let mut seen = std::collections::HashMap::new();
        for i in 0..2000u64 {
            let v = md.hash_words(&[i]);
            if let Some(prev) = seen.insert(v, i) {
                panic!("collision between {prev} and {i}");
            }
        }
    }

    #[test]
    fn dlexp_matches_direct_exponentiation() {
        let mut rng = TranscriptRng::from_seed(103);
        let params = DlExpParams::generate(40, 2, &mut rng);
        // int(1011₂) = 11
        let mut h = DlExpHash::new(params);
        for c in [1u64, 0, 1, 1] {
            h.absorb(c);
        }
        assert_eq!(h.value(), pow_mod(params.g, 11, params.p));
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn dlexp_concat_law() {
        let mut rng = TranscriptRng::from_seed(104);
        let params = DlExpParams::generate(40, 4, &mut rng);
        let u = [3u64, 1, 0, 2, 3];
        let v = [0u64, 2, 1];
        let mut hu = DlExpHash::new(params);
        u.iter().for_each(|&c| hu.absorb(c));
        let mut hv = DlExpHash::new(params);
        v.iter().for_each(|&c| hv.absorb(c));
        let mut huv = DlExpHash::new(params);
        u.iter().chain(v.iter()).for_each(|&c| huv.absorb(c));
        let composed = hu.concat(&hv);
        assert_eq!(composed.value(), huv.value());
        assert_eq!(composed.len(), 8);
    }

    #[test]
    fn dlexp_concat_with_empty_is_identity() {
        let mut rng = TranscriptRng::from_seed(105);
        let params = DlExpParams::generate(38, 2, &mut rng);
        let mut hu = DlExpHash::new(params);
        [1u64, 1, 0, 1].iter().for_each(|&c| hu.absorb(c));
        let he = DlExpHash::new(params);
        assert_eq!(hu.concat(&he).value(), hu.value());
        assert_eq!(he.concat(&hu).value(), hu.value());
    }

    #[test]
    fn dlexp_distinct_short_strings_distinct_hashes() {
        // For strings shorter than log_B(ord(g)) the map int() is injective
        // below the group order w.h.p., so no collisions should appear.
        let mut rng = TranscriptRng::from_seed(106);
        let params = DlExpParams::generate(40, 2, &mut rng);
        let mut seen = std::collections::HashMap::new();
        for x in 0..256u64 {
            let symbols: Vec<u64> = (0..8).rev().map(|i| (x >> i) & 1).collect();
            let v = DlExpHash::hash_symbols(params, &symbols);
            if let Some(prev) = seen.insert(v, x) {
                panic!("collision between {prev:08b} and {x:08b}");
            }
        }
    }

    #[test]
    fn space_accounting_present() {
        let mut rng = TranscriptRng::from_seed(107);
        let params = DlExpParams::generate(40, 2, &mut rng);
        let h = DlExpHash::new(params);
        assert!(h.space_bits() > 0);
        let md = PedersenMd::generate(36, &mut rng);
        assert!(md.space_bits() >= 4 * 36);
        assert!(md.output_bits() >= 36);
    }
}
