//! The paper's literal rank-decision procedure: enumerate short integer
//! vectors `x` and test `H A x ≡ 0 (mod q)` (Theorem 1.6's proof).
//!
//! This is exponential in the number of columns — the paper's streaming
//! algorithm is allowed unbounded computation — so it runs only at tiny
//! sizes, where it cross-validates the Gaussian-elimination decision rule
//! used by [`crate::rank_decision::RankDecisionSketch`] (see the
//! substitution note there).

use crate::matrix::ZqMatrix;

/// Enumerate nonzero integer vectors with `‖x‖_∞ ≤ bound` in odometer
/// order and return the first with `M x ≡ 0 (mod q)`, or `None` after
/// exhausting the box or `budget` candidates.
pub fn enumerate_short_kernel(m: &ZqMatrix, bound: i64, budget: u64) -> Option<Vec<i64>> {
    assert!(bound >= 1);
    let w = m.cols();
    let mut x = vec![-bound; w];
    let mut tried = 0u64;
    loop {
        if tried >= budget {
            return None;
        }
        tried += 1;
        if x.iter().any(|&v| v != 0) && m.mul_vec_signed(&x).iter().all(|&v| v == 0) {
            return Some(x);
        }
        let mut i = 0;
        loop {
            if i == w {
                return None;
            }
            x[i] += 1;
            if x[i] > bound {
                x[i] = -bound;
                i += 1;
            } else {
                break;
            }
        }
    }
}

/// The paper's decision rule at tiny scale: `rank(A) < k` iff a short
/// kernel vector of `HA` exists within the enumeration box.
pub fn paper_rank_below_k(sketch: &ZqMatrix, bound: i64, budget: u64) -> bool {
    enumerate_short_kernel(sketch, bound, budget).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauss::rank;
    use crate::rank_decision::{EntryUpdate, RankDecisionSketch};

    #[test]
    fn finds_planted_short_kernel() {
        // Columns 0 and 1 are equal: x = (1, −1, 0) is a kernel vector.
        let m = ZqMatrix::from_rows(97, &[vec![3, 3, 5], vec![7, 7, 1]]);
        let z = enumerate_short_kernel(&m, 1, 1 << 12).expect("planted kernel");
        assert!(m.mul_vec_signed(&z).iter().all(|&v| v == 0));
        assert!(z.iter().any(|&v| v != 0));
        assert!(z.iter().all(|&v| v.abs() <= 1));
    }

    #[test]
    fn full_rank_square_has_no_short_kernel() {
        let m = ZqMatrix::from_rows(1_000_003, &[vec![1, 0], vec![0, 1]]);
        assert_eq!(enumerate_short_kernel(&m, 3, 1 << 12), None);
    }

    #[test]
    fn respects_budget() {
        let m = ZqMatrix::from_rows(1_000_003, &[vec![1, 2, 3, 4, 5, 6]]);
        // Kernel exists but the budget of 1 candidate (the all -bound
        // vector) is too small to find it.
        assert_eq!(enumerate_short_kernel(&m, 2, 1), None);
    }

    #[test]
    fn enumeration_agrees_with_gaussian_decision_at_tiny_scale() {
        // Stream tiny matrices into the sketch and compare the paper's
        // enumeration rule against rank_q(HA) = k.
        let cases: Vec<(Vec<Vec<i64>>, usize)> = vec![
            (vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]], 3), // rank 3
            (vec![vec![1, 1, 0], vec![2, 2, 0], vec![0, 0, 1]], 3), // rank 2
            (vec![vec![1, 2, 3], vec![2, 4, 6], vec![3, 6, 9]], 2), // rank 1
        ];
        for (rows, k) in cases {
            let n = rows.len();
            let mut sk = RankDecisionSketch::new(n, k, b"enum-check");
            for (i, row) in rows.iter().enumerate() {
                for (j, &v) in row.iter().enumerate() {
                    if v != 0 {
                        sk.update(EntryUpdate {
                            row: i,
                            col: j,
                            delta: v,
                        });
                    }
                }
            }
            let gaussian_says_below = rank(sk.sketch()) < k;
            // Kernel entries for these 3×3 integer matrices are tiny;
            // bound 4 and a generous budget suffice.
            let paper_says_below = paper_rank_below_k(sk.sketch(), 4, 1 << 16);
            assert_eq!(
                gaussian_says_below, paper_says_below,
                "decision mismatch on {rows:?} (k={k})"
            );
        }
    }
}
