//! # wb-linalg — linear algebra in the white-box model (§2.5)
//!
//! | module | paper anchor | contents |
//! |---|---|---|
//! | [`matrix`] | substrate | dense matrices over `Z_q` |
//! | [`gauss`] | substrate | rank / kernel / RREF over `Z_q` |
//! | [`rank_decision`] | Theorem 1.6 | the streaming `H·A` rank-decision sketch + exact baseline |
//! | [`enumeration`] | Theorem 1.6 proof | the paper's literal short-vector enumeration rule |
//! | [`basis`] | §1.1.1 corollary | streaming linearly-independent row basis |

pub mod basis;
pub mod enumeration;
pub mod gauss;
pub mod matrix;
pub mod rank_decision;

pub use basis::RowBasisTracker;
pub use gauss::{kernel_vector, rank, rref, Echelon};
pub use matrix::ZqMatrix;
pub use rank_decision::{EntryUpdate, ExactRankDecision, RankDecisionSketch};
