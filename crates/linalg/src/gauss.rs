//! Gaussian elimination over `Z_q` (prime `q`): rank, kernel vectors,
//! reduced row-echelon form, and independent-row selection.

use crate::matrix::ZqMatrix;
use wb_crypto::modular::{inv_mod, mul_mod, sub_mod};

/// Result of reduced row-echelon elimination.
#[derive(Debug, Clone)]
pub struct Echelon {
    /// The reduced matrix.
    pub rref: ZqMatrix,
    /// Pivot column of each nonzero row, in order.
    pub pivot_cols: Vec<usize>,
    /// Indices of the original rows that carried pivots (a maximal
    /// linearly independent row set).
    pub pivot_rows: Vec<usize>,
}

impl Echelon {
    /// The rank.
    pub fn rank(&self) -> usize {
        self.pivot_cols.len()
    }
}

/// Reduced row-echelon form with row tracking. Requires prime `q`.
pub fn rref(m: &ZqMatrix) -> Echelon {
    let q = m.q();
    let (rows, cols) = (m.rows(), m.cols());
    let mut a = m.clone();
    // Track which original row each working row came from.
    let mut origin: Vec<usize> = (0..rows).collect();
    let mut pivot_cols = Vec::new();
    let mut pivot_rows = Vec::new();
    let mut r = 0usize;
    for c in 0..cols {
        if r == rows {
            break;
        }
        let Some(pr) = (r..rows).find(|&i| a.get(i, c) != 0) else {
            continue;
        };
        if pr != r {
            for j in 0..cols {
                let (x, y) = (a.get(r, j), a.get(pr, j));
                a.set(r, j, y);
                a.set(pr, j, x);
            }
            origin.swap(r, pr);
        }
        let inv = inv_mod(a.get(r, c), q).expect("prime modulus, nonzero pivot");
        for j in 0..cols {
            let v = mul_mod(a.get(r, j), inv, q);
            a.set(r, j, v);
        }
        for i in 0..rows {
            if i != r && a.get(i, c) != 0 {
                let f = a.get(i, c);
                for j in 0..cols {
                    let t = mul_mod(f, a.get(r, j), q);
                    let v = sub_mod(a.get(i, j), t, q);
                    a.set(i, j, v);
                }
            }
        }
        pivot_cols.push(c);
        pivot_rows.push(origin[r]);
        r += 1;
    }
    Echelon {
        rref: a,
        pivot_cols,
        pivot_rows,
    }
}

/// Rank of `m` over `Z_q`.
pub fn rank(m: &ZqMatrix) -> usize {
    rref(m).rank()
}

/// A nonzero kernel vector of `m` over `Z_q` (entries in `[0, q)`), or
/// `None` if the kernel is trivial.
pub fn kernel_vector(m: &ZqMatrix) -> Option<Vec<u64>> {
    let q = m.q();
    let e = rref(m);
    let free = (0..m.cols()).find(|c| !e.pivot_cols.contains(c))?;
    let mut z = vec![0u64; m.cols()];
    z[free] = 1;
    for (row, &pc) in e.pivot_cols.iter().enumerate() {
        z[pc] = sub_mod(0, e.rref.get(row, free), q);
    }
    debug_assert!(m
        .mul_vec_signed(&z.iter().map(|&v| v as i64).collect::<Vec<_>>())
        .iter()
        .all(|&v| v == 0));
    Some(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_core::rng::TranscriptRng;

    #[test]
    fn rank_of_identity_and_zero() {
        assert_eq!(rank(&ZqMatrix::identity(5, 97)), 5);
        assert_eq!(rank(&ZqMatrix::zero(4, 6, 97)), 0);
    }

    #[test]
    fn rank_of_planted_low_rank() {
        // rows 2 and 3 are multiples of row 1.
        let m = ZqMatrix::from_rows(
            101,
            &[
                vec![1, 2, 3],
                vec![2, 4, 6],
                vec![50, 100, 150],
                vec![0, 1, 0],
            ],
        );
        assert_eq!(rank(&m), 2);
    }

    #[test]
    fn random_square_matrices_are_usually_full_rank() {
        let mut rng = TranscriptRng::from_seed(310);
        let mut full = 0;
        for _ in 0..20 {
            let m = ZqMatrix::random(6, 6, 1_000_003, &mut rng);
            if rank(&m) == 6 {
                full += 1;
            }
        }
        assert!(full >= 19, "only {full}/20 full rank");
    }

    #[test]
    fn kernel_vector_is_in_kernel() {
        let m = ZqMatrix::from_rows(97, &[vec![1, 2, 3], vec![4, 5, 6]]);
        let z = kernel_vector(&m).expect("wide matrix has kernel");
        assert!(z.iter().any(|&v| v != 0));
        let zi: Vec<i64> = z.iter().map(|&v| v as i64).collect();
        assert!(m.mul_vec_signed(&zi).iter().all(|&v| v == 0));
    }

    #[test]
    fn full_column_rank_has_no_kernel() {
        let m = ZqMatrix::from_rows(97, &[vec![1, 0], vec![0, 1], vec![1, 1]]);
        assert_eq!(kernel_vector(&m), None);
    }

    #[test]
    fn pivot_rows_are_independent_generators() {
        let m = ZqMatrix::from_rows(
            101,
            &[vec![1, 1, 0], vec![2, 2, 0], vec![0, 0, 1], vec![1, 1, 1]],
        );
        let e = rref(&m);
        assert_eq!(e.rank(), 2);
        // Pivot rows must themselves form a rank-2 submatrix.
        let sub_rows: Vec<Vec<i64>> = e
            .pivot_rows
            .iter()
            .map(|&i| m.row(i).iter().map(|&v| v as i64).collect())
            .collect();
        let sub = ZqMatrix::from_rows(101, &sub_rows);
        assert_eq!(rank(&sub), 2);
    }

    #[test]
    fn rref_is_idempotent_in_rank() {
        let mut rng = TranscriptRng::from_seed(311);
        let m = ZqMatrix::random(5, 8, 97, &mut rng);
        let e = rref(&m);
        assert_eq!(rank(&e.rref), e.rank());
    }
}
