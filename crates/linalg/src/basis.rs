//! Streaming linearly-independent basis extraction — the corollary of
//! Theorem 1.6 mentioned in §1.1.1.
//!
//! Each row `a_i` of the streamed matrix is sketched as `s_i = H'·a_i ∈
//! Z_q^k` with a shared oracle-derived `H' ∈ Z_q^{k×n}`. For a
//! computationally bounded adversary, a set of rows whose sketches are
//! independent is independent, and (as long as the row space's rank is at
//! most `k`) dependent rows have dependent sketches w.h.p. — so running
//! Gaussian elimination on the `n × k` sketch matrix yields the indices of
//! a maximal linearly independent row set in `O(nk log q)` bits.

use crate::gauss::rref;
use crate::matrix::ZqMatrix;
use crate::rank_decision::{EntryUpdate, Q61};
use wb_core::rng::TranscriptRng;
use wb_core::space::SpaceUsage;
use wb_core::stream::StreamAlg;
use wb_crypto::modular::{add_mod, mul_mod, reduce_signed};
use wb_crypto::oracle::RandomOracle;

/// Streaming row-basis tracker.
#[derive(Debug, Clone)]
pub struct RowBasisTracker {
    n: usize,
    k: usize,
    q: u64,
    oracle: RandomOracle,
    /// `n × k`: row `i` holds the sketch `H'·a_i`.
    sketches: ZqMatrix,
}

impl RowBasisTracker {
    /// Tracker for an `n`-row matrix with sketch width `k` (an upper bound
    /// on the rank of interest).
    pub fn new(n: usize, k: usize, tag: &[u8]) -> Self {
        assert!(n >= 1 && k >= 1);
        RowBasisTracker {
            n,
            k,
            q: Q61,
            oracle: RandomOracle::new(tag),
            sketches: ZqMatrix::zero(n, k, Q61),
        }
    }

    /// Entry `H'[r][j]`, regenerated on demand.
    fn h_entry(&self, r: usize, j: usize) -> u64 {
        self.oracle.zq_at((j * self.k + r) as u64, self.q)
    }

    /// Turnstile update `A[i][j] += δ`: `s_i[r] += δ·H'[r][j]`.
    pub fn update(&mut self, u: EntryUpdate) {
        assert!(u.row < self.n && u.col < self.n);
        let c = reduce_signed(u.delta, self.q);
        if c == 0 {
            return;
        }
        for r in 0..self.k {
            let h = self.h_entry(r, u.col);
            let cur = self.sketches.get(u.row, r);
            self.sketches
                .set(u.row, r, add_mod(cur, mul_mod(c, h, self.q), self.q));
        }
    }

    /// Indices of a maximal linearly independent set of rows (w.h.p., for
    /// row spaces of rank ≤ `k`), ascending.
    pub fn basis_rows(&self) -> Vec<usize> {
        let mut rows = rref(&self.sketches).pivot_rows;
        rows.sort_unstable();
        rows
    }

    /// Rank estimate (= number of basis rows).
    pub fn rank_estimate(&self) -> usize {
        rref(&self.sketches).rank()
    }
}

impl SpaceUsage for RowBasisTracker {
    fn space_bits(&self) -> u64 {
        self.sketches.space_bits() + self.oracle.space_bits()
    }
}

impl StreamAlg for RowBasisTracker {
    type Update = EntryUpdate;
    type Output = Vec<usize>;

    fn process(&mut self, update: &EntryUpdate, _rng: &mut TranscriptRng) {
        self.update(*update);
    }

    fn query(&self) -> Vec<usize> {
        self.basis_rows()
    }

    fn name(&self) -> &'static str {
        "RowBasisTracker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_rows(rows: &[Vec<i64>], k: usize, tag: &[u8]) -> RowBasisTracker {
        let n = rows.len();
        let mut t = RowBasisTracker::new(n, k, tag);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0 {
                    t.update(EntryUpdate {
                        row: i,
                        col: j,
                        delta: v,
                    });
                }
            }
        }
        t
    }

    #[test]
    fn independent_rows_all_selected() {
        let rows = vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]];
        let t = stream_rows(&rows, 3, b"indep");
        assert_eq!(t.basis_rows(), vec![0, 1, 2]);
        assert_eq!(t.rank_estimate(), 3);
    }

    #[test]
    fn dependent_rows_pruned() {
        let rows = vec![
            vec![1, 2, 0, 0],
            vec![2, 4, 0, 0], // 2·r0
            vec![0, 0, 1, 1],
            vec![1, 2, 1, 1], // r0 + r2
        ];
        let t = stream_rows(&rows, 4, b"dep");
        let basis = t.basis_rows();
        assert_eq!(basis.len(), 2, "rank 2: {basis:?}");
        // The selected rows must genuinely span: indices {0 or 1} and {2 or 3}.
        assert!(basis.iter().any(|&i| i == 0 || i == 1));
        assert!(basis.iter().any(|&i| i == 2 || i == 3));
    }

    #[test]
    fn zero_rows_never_selected() {
        let rows = vec![vec![0, 0], vec![1, 1]];
        let t = stream_rows(&rows, 2, b"zero");
        assert_eq!(t.basis_rows(), vec![1]);
    }

    #[test]
    fn turnstile_dependency_creation() {
        // Start independent, then edit row 1 to equal row 0.
        let mut t = stream_rows(&[vec![1, 0], vec![0, 1]], 2, b"turn");
        assert_eq!(t.rank_estimate(), 2);
        t.update(EntryUpdate {
            row: 1,
            col: 0,
            delta: 1,
        });
        t.update(EntryUpdate {
            row: 1,
            col: 1,
            delta: -1,
        });
        assert_eq!(t.rank_estimate(), 1);
    }

    #[test]
    fn space_is_nk_words() {
        let t = RowBasisTracker::new(32, 4, b"space");
        assert_eq!(t.space_bits(), 32 * 4 * 61 + 5 * 8);
    }
}
