//! Theorem 1.6: the streaming rank-decision sketch.
//!
//! The algorithm maintains `H·A` for a public random `H ∈ Z_q^{k×n}` whose
//! entries are regenerated from the random oracle, under turnstile updates
//! to the entries (or rows) of `A`. At query time it decides whether
//! `rank(A) ≥ k`:
//!
//! * if `rank(A) < k`, an integer kernel vector `x` with entries bounded by
//!   `poly(n)^k` exists, it is nonzero mod `q` (because `q` exceeds the
//!   bound), and `H A x ≡ 0` — so `rank_q(HA) < k`;
//! * if `rank(A) ≥ k` and `rank_q(HA) < k`, then any kernel vector of `HA`
//!   yields `y = Ax ≠ 0 (mod q)` with `H y ≡ 0` and `y` bounded — a SIS
//!   solution for `H`, contradicting Assumption 2.17 for a computationally
//!   bounded adversary.
//!
//! **Documented substitution (DESIGN.md §3/§4):** the paper's decision step
//! enumerates all short integer vectors (the streaming algorithm is allowed
//! unbounded *computation*); we decide by `rank_q(HA) = k` via Gaussian
//! elimination, which is equivalent under the same assumption by the
//! argument above. The literal enumeration procedure is implemented in
//! [`crate::enumeration`] and cross-checked at tiny sizes. Likewise the
//! paper takes `q ≥ n^{k·log n}`; a 61-bit prime covers the kernel-entry
//! bound `poly(n)^k` at all workspace scales (`n ≤ 256, k ≤ 8`), and the
//! space accounting notes `log q = Θ(k log n)` at paper scales.

use crate::gauss::rank;
use crate::matrix::ZqMatrix;
use wb_core::rng::TranscriptRng;
use wb_core::space::{bits_for_universe, SpaceUsage};
use wb_core::stream::StreamAlg;
use wb_crypto::modular::{add_mod, mul_mod, reduce_signed};
use wb_crypto::oracle::RandomOracle;

/// A turnstile update to one entry of the streamed matrix `A`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryUpdate {
    /// Row index of `A`.
    pub row: usize,
    /// Column index of `A`.
    pub col: usize,
    /// Signed change.
    pub delta: i64,
}

/// 61-bit prime modulus used by the sketches.
pub const Q61: u64 = (1 << 61) - 1;

/// Theorem 1.6: the `H·A` sketch for the rank-decision problem.
#[derive(Debug, Clone)]
pub struct RankDecisionSketch {
    n: usize,
    k: usize,
    q: u64,
    oracle: RandomOracle,
    /// `H·A ∈ Z_q^{k×n}`.
    sketch: ZqMatrix,
}

impl RankDecisionSketch {
    /// Sketch deciding `rank(A) ≥ k` for an `n × n` matrix `A`, with `H`
    /// drawn from the public random oracle under `tag`.
    pub fn new(n: usize, k: usize, tag: &[u8]) -> Self {
        assert!(n >= 1 && k >= 1 && k <= n, "need 1 ≤ k ≤ n");
        RankDecisionSketch {
            n,
            k,
            q: Q61,
            oracle: RandomOracle::new(tag),
            sketch: ZqMatrix::zero(k, n, Q61),
        }
    }

    /// Entry `H[r][i]`, regenerated on demand (never stored).
    pub fn h_entry(&self, r: usize, i: usize) -> u64 {
        debug_assert!(r < self.k && i < self.n);
        self.oracle.zq_at((i * self.k + r) as u64, self.q)
    }

    /// Apply a turnstile update `A[i][j] += δ`:
    /// `HA[:, j] += δ · H[:, i]`.
    pub fn update(&mut self, u: EntryUpdate) {
        assert!(u.row < self.n && u.col < self.n, "index out of range");
        let c = reduce_signed(u.delta, self.q);
        if c == 0 {
            return;
        }
        for r in 0..self.k {
            let h = self.h_entry(r, u.row);
            let cur = self.sketch.get(r, u.col);
            self.sketch
                .set(r, u.col, add_mod(cur, mul_mod(c, h, self.q), self.q));
        }
    }

    /// Add an entire row vector to row `i` of `A` (the paper's row-update
    /// model; Remark 2.23 allows positive and negative entries).
    pub fn update_row(&mut self, i: usize, v: &[i64]) {
        assert_eq!(v.len(), self.n);
        for (j, &delta) in v.iter().enumerate() {
            if delta != 0 {
                self.update(EntryUpdate {
                    row: i,
                    col: j,
                    delta,
                });
            }
        }
    }

    /// Decide `rank(A) ≥ k` (see module docs for the guarantee).
    pub fn rank_at_least_k(&self) -> bool {
        rank(&self.sketch) == self.k
    }

    /// The sketch `H·A` (white-box view; also the attack surface).
    pub fn sketch(&self) -> &ZqMatrix {
        &self.sketch
    }

    /// Target rank threshold `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Matrix dimension `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The modulus.
    pub fn q(&self) -> u64 {
        self.q
    }
}

impl SpaceUsage for RankDecisionSketch {
    /// `k·n` residues (`H` is regenerated from the oracle). At paper scales
    /// `log q = Θ(k log n)`, giving the stated `Õ(nk²)` bits.
    fn space_bits(&self) -> u64 {
        self.sketch.space_bits() + self.oracle.space_bits()
    }
}

impl StreamAlg for RankDecisionSketch {
    type Update = EntryUpdate;
    type Output = bool;

    fn process(&mut self, update: &EntryUpdate, _rng: &mut TranscriptRng) {
        self.update(*update);
    }

    fn query(&self) -> bool {
        self.rank_at_least_k()
    }

    fn name(&self) -> &'static str {
        "RankDecisionSketch"
    }
}

/// Exact baseline: stores all of `A` (`Θ(n² log)` bits) and computes the
/// rank directly.
#[derive(Debug, Clone)]
pub struct ExactRankDecision {
    a: ZqMatrix,
    k: usize,
}

impl ExactRankDecision {
    /// Exact decision for an `n × n` matrix and threshold `k`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k >= 1 && k <= n);
        ExactRankDecision {
            a: ZqMatrix::zero(n, n, Q61),
            k,
        }
    }

    /// Apply a turnstile entry update.
    pub fn update(&mut self, u: EntryUpdate) {
        self.a.add_entry(u.row, u.col, u.delta);
    }

    /// Exact rank of the accumulated matrix (over `Z_q`, faithful for
    /// integer matrices with entries below `q`).
    pub fn rank(&self) -> usize {
        rank(&self.a)
    }

    /// Exact decision.
    pub fn rank_at_least_k(&self) -> bool {
        self.rank() >= self.k
    }
}

impl SpaceUsage for ExactRankDecision {
    fn space_bits(&self) -> u64 {
        self.a.rows() as u64 * self.a.cols() as u64 * bits_for_universe(self.a.q())
    }
}

impl StreamAlg for ExactRankDecision {
    type Update = EntryUpdate;
    type Output = bool;

    fn process(&mut self, update: &EntryUpdate, _rng: &mut TranscriptRng) {
        self.update(*update);
    }

    fn query(&self) -> bool {
        self.rank_at_least_k()
    }

    fn name(&self) -> &'static str {
        "ExactRankDecision"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stream an integer matrix into both the sketch and the exact baseline.
    fn stream_matrix(
        rows: &[Vec<i64>],
        k: usize,
        tag: &[u8],
    ) -> (RankDecisionSketch, ExactRankDecision) {
        let n = rows.len();
        let mut sk = RankDecisionSketch::new(n, k, tag);
        let mut ex = ExactRankDecision::new(n, k);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0 {
                    let u = EntryUpdate {
                        row: i,
                        col: j,
                        delta: v,
                    };
                    sk.update(u);
                    ex.update(u);
                }
            }
        }
        (sk, ex)
    }

    #[test]
    fn full_rank_detected() {
        let rows = vec![
            vec![1, 0, 0, 0],
            vec![0, 2, 0, 0],
            vec![0, 0, 3, 0],
            vec![0, 0, 0, 4],
        ];
        for k in 1..=4 {
            let (sk, ex) = stream_matrix(&rows, k, b"full");
            assert!(sk.rank_at_least_k(), "k={k}");
            assert!(ex.rank_at_least_k(), "k={k}");
        }
    }

    #[test]
    fn low_rank_detected() {
        // rank 2: rows 2,3 are combinations of rows 0,1.
        let rows = vec![
            vec![1, 2, 3, 4],
            vec![5, 6, 7, 8],
            vec![6, 8, 10, 12], // r0 + r1
            vec![2, 4, 6, 8],   // 2·r0
        ];
        for (k, expect) in [(1, true), (2, true), (3, false), (4, false)] {
            let (sk, ex) = stream_matrix(&rows, k, b"low");
            assert_eq!(sk.rank_at_least_k(), expect, "sketch k={k}");
            assert_eq!(ex.rank_at_least_k(), expect, "exact k={k}");
        }
    }

    #[test]
    fn turnstile_cancellation_drops_rank() {
        let n = 4;
        let mut sk = RankDecisionSketch::new(n, 2, b"cancel");
        // Insert identity, then delete one diagonal entry.
        for i in 0..n {
            sk.update(EntryUpdate {
                row: i,
                col: i,
                delta: 1,
            });
        }
        assert!(sk.rank_at_least_k());
        for i in 1..n {
            sk.update(EntryUpdate {
                row: i,
                col: i,
                delta: -1,
            });
        }
        // A now has a single 1: rank 1 < 2.
        assert!(!sk.rank_at_least_k());
    }

    #[test]
    fn negative_entries_are_handled() {
        let rows = vec![vec![1, -1], vec![-2, 2]]; // rank 1
        let (sk, ex) = stream_matrix(&rows, 2, b"neg");
        assert!(!sk.rank_at_least_k());
        assert!(!ex.rank_at_least_k());
        let (sk1, _) = stream_matrix(&rows, 1, b"neg1");
        assert!(sk1.rank_at_least_k());
    }

    #[test]
    fn sketch_agrees_with_exact_on_random_instances() {
        let mut rng = TranscriptRng::from_seed(320);
        for trial in 0..10u64 {
            let n = 6;
            let target_rank = 1 + (trial % 5) as usize;
            // Build a random matrix of exactly target_rank by outer
            // products.
            let mut rows = vec![vec![0i64; n]; n];
            for _ in 0..target_rank {
                let u: Vec<i64> = (0..n).map(|_| rng.below(5) as i64 - 2).collect();
                let v: Vec<i64> = (0..n).map(|_| rng.below(5) as i64 - 2).collect();
                for i in 0..n {
                    for j in 0..n {
                        rows[i][j] += u[i] * v[j];
                    }
                }
            }
            for k in 1..=n {
                let (sk, ex) = stream_matrix(&rows, k, format!("r{trial}k{k}").as_bytes());
                assert_eq!(
                    sk.rank_at_least_k(),
                    ex.rank_at_least_k(),
                    "trial {trial}, k={k}"
                );
            }
        }
    }

    #[test]
    fn space_is_kn_not_n_squared() {
        let n = 64;
        let sk = RankDecisionSketch::new(n, 4, b"space");
        let ex = ExactRankDecision::new(n, 4);
        assert!(sk.space_bits() < ex.space_bits() / 8);
    }

    #[test]
    fn h_entries_are_deterministic_public() {
        let sk = RankDecisionSketch::new(8, 3, b"pub");
        let sk2 = RankDecisionSketch::new(8, 3, b"pub");
        for r in 0..3 {
            for i in 0..8 {
                assert_eq!(sk.h_entry(r, i), sk2.h_entry(r, i));
                assert!(sk.h_entry(r, i) < sk.q());
            }
        }
    }

    #[test]
    #[should_panic(expected = "need 1 ≤ k ≤ n")]
    fn rejects_k_above_n() {
        RankDecisionSketch::new(4, 5, b"bad");
    }
}
