//! Dense matrices over `Z_q` (prime `q`).

use wb_core::rng::TranscriptRng;
use wb_core::space::{bits_for_universe, SpaceUsage};
use wb_crypto::modular::{add_mod, mul_mod, reduce_signed, sub_mod};

/// A dense `rows × cols` matrix over `Z_q`, row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZqMatrix {
    rows: usize,
    cols: usize,
    q: u64,
    data: Vec<u64>,
}

impl ZqMatrix {
    /// Zero matrix.
    pub fn zero(rows: usize, cols: usize, q: u64) -> Self {
        assert!(rows > 0 && cols > 0 && q >= 2);
        ZqMatrix {
            rows,
            cols,
            q,
            data: vec![0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize, q: u64) -> Self {
        let mut m = Self::zero(n, n, q);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Uniformly random matrix from public randomness.
    pub fn random(rows: usize, cols: usize, q: u64, rng: &mut TranscriptRng) -> Self {
        let mut m = Self::zero(rows, cols, q);
        for v in &mut m.data {
            *v = rng.below(q);
        }
        m
    }

    /// Build from integer rows (entries reduced mod `q`).
    pub fn from_rows(q: u64, rows: &[Vec<i64>]) -> Self {
        assert!(!rows.is_empty() && !rows[0].is_empty());
        let r = rows.len();
        let c = rows[0].len();
        let mut m = Self::zero(r, c, q);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, reduce_signed(v, q));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The modulus.
    pub fn q(&self) -> u64 {
        self.q
    }

    /// Entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> u64 {
        self.data[i * self.cols + j]
    }

    /// Set entry `(i, j)` to `v < q`.
    pub fn set(&mut self, i: usize, j: usize, v: u64) {
        debug_assert!(v < self.q);
        self.data[i * self.cols + j] = v;
    }

    /// `A[i][j] += delta (mod q)` — the turnstile entry update.
    pub fn add_entry(&mut self, i: usize, j: usize, delta: i64) {
        let v = self.get(i, j);
        self.data[i * self.cols + j] = add_mod(v, reduce_signed(delta, self.q), self.q);
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[u64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    pub fn mul(&self, rhs: &ZqMatrix) -> ZqMatrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        assert_eq!(self.q, rhs.q, "modulus mismatch");
        let mut out = ZqMatrix::zero(self.rows, rhs.cols, self.q);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    let prod = mul_mod(a, rhs.get(k, j), self.q);
                    let cur = out.get(i, j);
                    out.set(i, j, add_mod(cur, prod, self.q));
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · x` for an integer vector.
    pub fn mul_vec_signed(&self, x: &[i64]) -> Vec<u64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|i| {
                let mut acc = 0u64;
                for (j, &xj) in x.iter().enumerate() {
                    let c = reduce_signed(xj, self.q);
                    acc = add_mod(acc, mul_mod(self.get(i, j), c, self.q), self.q);
                }
                acc
            })
            .collect()
    }

    /// `self − rhs (mod q)`.
    pub fn sub(&self, rhs: &ZqMatrix) -> ZqMatrix {
        assert_eq!((self.rows, self.cols, self.q), (rhs.rows, rhs.cols, rhs.q));
        let mut out = self.clone();
        for (o, &r) in out.data.iter_mut().zip(&rhs.data) {
            *o = sub_mod(*o, r, self.q);
        }
        out
    }

    /// `true` iff all entries are zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&v| v == 0)
    }
}

impl SpaceUsage for ZqMatrix {
    fn space_bits(&self) -> u64 {
        self.rows as u64 * self.cols as u64 * bits_for_universe(self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let mut rng = TranscriptRng::from_seed(300);
        let a = ZqMatrix::random(4, 4, 97, &mut rng);
        let i = ZqMatrix::identity(4, 97);
        assert_eq!(a.mul(&i), a);
        assert_eq!(i.mul(&a), a);
    }

    #[test]
    fn from_rows_reduces_signed() {
        let m = ZqMatrix::from_rows(7, &[vec![-1, 8], vec![0, -7]]);
        assert_eq!(m.get(0, 0), 6);
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.get(1, 0), 0);
        assert_eq!(m.get(1, 1), 0);
    }

    #[test]
    fn entry_updates_accumulate() {
        let mut m = ZqMatrix::zero(2, 2, 11);
        m.add_entry(0, 1, 5);
        m.add_entry(0, 1, 9); // 14 mod 11 = 3
        m.add_entry(1, 0, -1);
        assert_eq!(m.get(0, 1), 3);
        assert_eq!(m.get(1, 0), 10);
    }

    #[test]
    fn mul_matches_manual() {
        let a = ZqMatrix::from_rows(13, &[vec![1, 2], vec![3, 4]]);
        let b = ZqMatrix::from_rows(13, &[vec![5, 6], vec![7, 8]]);
        // [1·5+2·7, 1·6+2·8; 3·5+4·7, 3·6+4·8] = [19,22;43,50] mod 13
        let c = a.mul(&b);
        assert_eq!(c.get(0, 0), 6);
        assert_eq!(c.get(0, 1), 9);
        assert_eq!(c.get(1, 0), 4);
        assert_eq!(c.get(1, 1), 11);
    }

    #[test]
    fn mul_vec_signed_handles_negatives() {
        let a = ZqMatrix::from_rows(11, &[vec![2, 3], vec![1, 0]]);
        let y = a.mul_vec_signed(&[1, -1]);
        // [2−3, 1] mod 11 = [10, 1]
        assert_eq!(y, vec![10, 1]);
    }

    #[test]
    fn sub_and_is_zero() {
        let mut rng = TranscriptRng::from_seed(301);
        let a = ZqMatrix::random(3, 5, 101, &mut rng);
        assert!(a.sub(&a).is_zero());
        assert!(!a.is_zero() || a.data.iter().all(|&v| v == 0));
    }

    #[test]
    fn space_bits_scale() {
        let a = ZqMatrix::zero(4, 8, 97);
        assert_eq!(a.space_bits(), 4 * 8 * 7);
    }
}
