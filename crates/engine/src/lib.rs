//! # wb-engine — the unified way to drive white-box adversarial games
//!
//! Every algorithm in the workspace is played through this crate, whether
//! the caller knows its concrete type or only its name:
//!
//! * [`Game`] — a fluent, typed builder replacing the positional
//!   `wb_core::game::run_game` (now a deprecated shim):
//!   `Game::new(alg).adversary(a).referee(r).max_rounds(m).seed(s).run()`.
//!   [`Observer`] hooks and [`GameReport`]s capture per-round
//!   space/verdict timelines; [`Game::script`] + [`Game::batch`] ingest
//!   oblivious stream segments through the algorithms' optimized
//!   `process_batch` paths.
//! * [`erased`] — the object-safe layer: an [`Update`] enum over the
//!   paper's two stream models, an [`Answer`] enum over the query shapes,
//!   and [`DynStreamAlg`], blanket-implemented for every
//!   `StreamAlg + SpaceUsage` whose types convert — so
//!   `Box<dyn DynStreamAlg>` is free for all `u64`-universe sketches.
//! * [`registry`] — string-keyed construction
//!   (`registry::get("robust_hh", &params)`) of algorithms and
//!   adversaries, for binaries, tests, and servers that select at runtime.
//! * [`experiment`] — the declarative [`ExperimentSpec`] runner behind
//!   every `exp_e*` binary: workload × algorithm × metrics → table +
//!   JSON-lines report, with real referees, a `--quick` smoke mode, and
//!   rows executed in parallel on the engine [`pool`] (`--threads N`).
//! * [`tournament`] — the full registry cross-product (algorithm ×
//!   adversary × workload) played in parallel with per-cell seeds derived
//!   from one master seed: a systematic robustness evaluation whose JSON
//!   report is byte-identical across thread counts.
//! * [`shard`] — sharded ingestion: route one logical stream across `S`
//!   instances (hash or round-robin) over bounded per-shard chunk queues,
//!   and fold the states back together with `DynStreamAlg::merge_dyn` in a
//!   deterministic reduction tree. Only [`wb_core::merge::Mergeable`]
//!   algorithms participate; the rest refuse with a typed `MergeError`.
//! * [`workload`] — the named stream generators, the declarative
//!   [`WorkloadSpec`], and the **pull-based streaming layer**
//!   ([`workload::UpdateSource`] / [`WorkloadSpec::stream`]) every
//!   ingestion path above is built on: chunks are generated lazily into a
//!   caller-owned reused buffer, so memory is O(chunk) for any stream
//!   length and `--prelude-m 10_000_000`-scale runs are wall-clock-bound,
//!   not RAM-bound.
//! * [`pool`] — the hand-rolled work-queue thread pool (std only) behind
//!   both runners, returning results in submission order.
//!
//! # Example: typed builder
//!
//! ```
//! use wb_engine::Game;
//! use wb_core::game::ScriptAdversary;
//! use wb_core::referee::HeavyHitterReferee;
//! use wb_core::stream::InsertOnly;
//! use wb_sketch::RobustL1HeavyHitters;
//!
//! let script: Vec<InsertOnly> = (0..2_000).map(|t| InsertOnly(t % 5)).collect();
//! let report = Game::new(RobustL1HeavyHitters::new(1 << 12, 0.25))
//!     .adversary(ScriptAdversary::new(script))
//!     .referee(HeavyHitterReferee::new(0.25, 0.25).with_grace(64))
//!     .max_rounds(2_000)
//!     .seed(7)
//!     .run();
//! assert!(report.survived());
//! ```
//!
//! # Example: registry + batched ingestion
//!
//! ```
//! use wb_engine::erased::{run_script_erased, Update};
//! use wb_engine::referee::RefereeSpec;
//! use wb_engine::registry::{self, Params};
//!
//! let mut alg = registry::get("misra_gries", &Params::default()).unwrap();
//! let script: Vec<Update> = (0..4_096).map(|t| Update::Insert(t % 8)).collect();
//! let mut referee = RefereeSpec::HeavyHitters {
//!     eps: 0.125, tol: 0.125, phi: None, grace: 0,
//! }.build();
//! let report = run_script_erased(alg.as_mut(), &script, referee.as_mut(), 256, 1).unwrap();
//! assert!(report.survived());
//! ```

pub mod builder;
pub mod erased;
pub mod experiment;
pub mod pool;
pub mod referee;
pub mod registry;
pub mod report;
pub mod shard;
pub mod tournament;
pub mod workload;

pub use builder::{AcceptAll, Game, NoAdversary, NullObserver, Observer, RecordingObserver};
pub use erased::{Answer, DynAdversary, DynStreamAlg, StreamModel, Update};
pub use experiment::{ExperimentSpec, GameRow, Metric, Row, RunCtx, RunnerConfig, Section};
pub use pool::{PoolStats, WorkerPool};
pub use referee::{DynReferee, RefereeSpec};
pub use report::GameReport;
pub use shard::{
    ingest_sharded, ingest_sharded_source, merge_reduce, Partition, ShardConfig, ShardPipeline,
    ShardStats, ShardedIngest,
};
pub use tournament::{
    run_tournament, AlgSummary, CellReport, CellVerdict, TournamentConfig, TournamentReport,
};
pub use workload::{
    FoldSource, InspectSource, SliceSource, UpdateSource, WorkloadSpec, WorkloadStream,
    DEFAULT_CHUNK,
};
