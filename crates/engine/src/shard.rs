//! Sharded ingestion: one logical stream, `S` shard instances, one merged
//! answer — the first end-to-end scale-out path in the workspace.
//!
//! The pipeline is **streaming**: [`ingest_sharded_source`] pulls chunks
//! from an [`UpdateSource`] on the caller's thread (the producer), routes
//! each update to its shard's staging buffer, and hands full `batch`-sized
//! chunks to the shard's consumer over a **bounded SPSC chunk queue**
//! (consumers recycle emptied buffers back to the producer, so the whole
//! run keeps O(S × batch) updates in flight regardless of the stream
//! length — there are no materialized per-shard buckets). Each consumer
//! ingests its chunks through the batched
//! [`DynStreamAlg::process_batch_dyn`] path, and the caller then folds the
//! shard states together with [`DynStreamAlg::merge_dyn`] in a
//! **deterministic reduction tree**: level by level, shard `2i+1` merges
//! into shard `2i`. Scheduling is invisible — each shard's update
//! subsequence and chunk boundaries are pure functions of the stream and
//! the config, shard seeds derive from the master seed via
//! [`derive_seed`]`(master, ["shard", i])`, and merges happen in fixed
//! tree order on the caller's thread — so the merged instance is a pure
//! function of `(stream, algorithm, S, partition, batch, master_seed)`,
//! byte-identical for every thread count and identical to the historical
//! materialized-bucket implementation (asserted by the
//! `streaming_pipeline` test suite).
//!
//! With `threads <= 1` the same routing runs fully inline on the caller's
//! thread — no queues, no spawns — producing the identical chunk sequence
//! per shard. The tournament uses this mode, because its cells already
//! parallelize on the engine [pool](crate::pool).
//!
//! **White-box caveat.** Sharding never weakens the paper's adversary — it
//! strengthens it: the adversary observes *every* shard's internal state
//! and every shard's randomness tape (each tape's seed is public and
//! derived from public inputs). Only algorithms whose robustness argument
//! tolerates full state exposure merge soundly; see
//! [`wb_core::merge::Mergeable`] for the contract and
//! [`MergeError::Unmergeable`] for the refusals.

use crate::erased::{DynStreamAlg, Update};
use crate::workload::{SliceSource, UpdateSource};
use std::sync::mpsc;
use wb_core::merge::MergeError;
use wb_core::rng::{derive_seed, SplitMix64, TranscriptRng};
use wb_core::WbError;

/// How updates are routed to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// By item hash: every occurrence of an item lands on the same shard
    /// (SplitMix64 of the item id, mod `S`). The right choice for counter
    /// summaries — each shard sees a disjoint sub-universe, so per-item
    /// mass is never split across summaries.
    Hash,
    /// By position: update `j` goes to shard `j mod S`. Spreads load
    /// perfectly evenly; items smear across shards, which linear sketches
    /// absorb exactly and counter summaries absorb within their merge
    /// error.
    RoundRobin,
}

impl Partition {
    /// Stable lowercase label for reports and flags.
    pub fn label(&self) -> &'static str {
        match self {
            Partition::Hash => "hash",
            Partition::RoundRobin => "round_robin",
        }
    }
}

/// Configuration of one sharded ingestion run.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shard instances `S ≥ 1`.
    pub shards: usize,
    /// Routing rule.
    pub partition: Partition,
    /// Threading mode: `1` runs the whole pipeline inline on the caller's
    /// thread; anything that resolves to more than one worker (`0` = one
    /// per core) spawns **one consumer thread per shard**, fed over
    /// bounded chunk queues by the caller-thread producer. Both modes
    /// produce bit-identical shard states.
    pub threads: usize,
    /// Chunk size for each shard's batched ingestion (and the unit of the
    /// producer→consumer queues).
    pub batch: usize,
    /// Master seed; shard `i`'s random tape is seeded with
    /// `derive_seed(master_seed, ["shard", i])`.
    pub master_seed: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            partition: Partition::Hash,
            threads: 0,
            batch: 256,
            master_seed: 42,
        }
    }
}

impl ShardConfig {
    /// The derived public seed of shard `i`'s random tape.
    pub fn shard_seed(&self, shard: usize) -> u64 {
        derive_seed(self.master_seed, &["shard", &shard.to_string()])
    }
}

/// The shard index of `item` under hash partitioning.
pub fn hash_shard(item: u64, shards: usize) -> usize {
    (SplitMix64::new(item).next_u64() % shards as u64) as usize
}

/// Split `updates` into `S` per-shard buckets, preserving relative order
/// within each bucket.
pub fn partition_updates(
    updates: &[Update],
    shards: usize,
    partition: Partition,
) -> Vec<Vec<Update>> {
    let shards = shards.max(1);
    let mut buckets: Vec<Vec<Update>> = (0..shards)
        .map(|_| Vec::with_capacity(updates.len() / shards + 1))
        .collect();
    for (j, u) in updates.iter().enumerate() {
        let s = match partition {
            Partition::Hash => hash_shard(u.item(), shards),
            Partition::RoundRobin => j % shards,
        };
        buckets[s].push(*u);
    }
    buckets
}

/// Fold `instances` into one by a deterministic reduction tree: at every
/// level, instance `2i+1` merges into instance `2i`; survivors repeat until
/// one remains. Equivalent to a left fold in outcome for associative
/// merges, but the tree shape is part of the contract so reports stay
/// byte-identical as the shard count varies only with `S`, never with the
/// thread count.
pub fn merge_reduce(
    mut instances: Vec<Box<dyn DynStreamAlg>>,
) -> Result<Box<dyn DynStreamAlg>, MergeError> {
    assert!(!instances.is_empty(), "nothing to reduce");
    while instances.len() > 1 {
        let mut next = Vec::with_capacity(instances.len().div_ceil(2));
        let mut iter = instances.into_iter();
        while let Some(mut left) = iter.next() {
            if let Some(right) = iter.next() {
                left.merge_dyn(right.as_ref())?;
            }
            next.push(left);
        }
        instances = next;
    }
    Ok(instances.pop().expect("one instance remains"))
}

/// Outcome of [`ingest_sharded_source`]: the merged instance plus how the
/// stream was spread.
pub struct ShardedIngest {
    /// The merged algorithm holding the whole stream's summary.
    pub merged: Box<dyn DynStreamAlg>,
    /// Updates routed to each shard (diagnostics; sums to the stream
    /// length).
    pub shard_loads: Vec<usize>,
}

/// How many in-flight chunks each shard's bounded queue may hold before
/// the producer blocks. Together with the staging buffer and the buffers
/// being recycled, this caps the pipeline's resident stream slice at
/// `S × (QUEUE_CHUNKS + 2) × batch` updates — independent of `m`.
const QUEUE_CHUNKS: usize = 2;

/// The shard an update at global stream position `j` routes to.
fn route(partition: Partition, u: &Update, j: u64, shards: usize) -> usize {
    match partition {
        Partition::Hash => hash_shard(u.item(), shards),
        Partition::RoundRobin => (j % shards as u64) as usize,
    }
}

/// After a chunk-level ingest error, locate the offset (relative to the
/// start of this ingester's subsequence; `base` updates were accepted
/// before this chunk) of the first update that fails on its own. Probing
/// mutates the algorithm, which is fine — the caller is about to discard
/// it; the point is a **chunk-size-independent** offset in the error
/// report without retaining the stream. Every batch-level error has a
/// per-update witness (the erased layer's only rejection rule is
/// per-update), so the probe always finds one; `base` alone is a
/// defensive fallback.
pub(crate) fn locate_failure(
    alg: &mut dyn DynStreamAlg,
    chunk: &[Update],
    rng: &mut TranscriptRng,
    base: u64,
) -> u64 {
    for (k, u) in chunk.iter().enumerate() {
        if alg.process_dyn(u, rng).is_err() {
            return base + k as u64;
        }
    }
    base
}

/// A shard's ingest error, annotated with the shard index and the failing
/// offset within the shard's subsequence.
fn shard_failure(
    alg: &mut dyn DynStreamAlg,
    rng: &mut TranscriptRng,
    chunk: &[Update],
    processed: u64,
    shard: usize,
    e: WbError,
) -> WbError {
    let off = locate_failure(alg, chunk, rng, processed);
    WbError::invalid(format!(
        "shard {shard}: {e} (first offending update at shard offset {off})"
    ))
}

/// Merge the per-shard outcomes: the first error in **shard order** wins
/// (never the first in wall-clock order, which scheduling could reorder),
/// otherwise reduce the states.
fn finish_sharded(
    results: Vec<Result<Box<dyn DynStreamAlg>, WbError>>,
    shard_loads: Vec<usize>,
) -> Result<ShardedIngest, WbError> {
    let ingested: Result<Vec<Box<dyn DynStreamAlg>>, WbError> = results.into_iter().collect();
    let merged =
        merge_reduce(ingested?).map_err(|e| WbError::invalid(format!("sharded merge: {e}")))?;
    Ok(ShardedIngest {
        merged,
        shard_loads,
    })
}

/// Ingest a pull-based stream across `cfg.shards` instances built by
/// `ctor` and return the merged result, holding only O(shards × batch)
/// updates in memory at any moment (see the module docs for the
/// producer/consumer anatomy).
///
/// `ctor(i)` must build shard `i`'s instance; for seeded sketches
/// (CountMin, AmsF2) every shard must be constructed from the **same**
/// public seed or the merge will report
/// [`MergeError::Incompatible`]. Model mismatches during ingestion (e.g. a
/// deletion offered to an insertion-only sketch) surface as the underlying
/// [`WbError`], annotated with the shard and the failing offset; when
/// several shards fail, the error of the lowest-numbered shard is
/// reported. The outcome is deterministic because each shard's **first**
/// failure is what it reports, and a shard keeps consuming (without
/// processing) after failing — production only stops early once *every*
/// shard has failed, by which point all reports are fixed. Merge refusals
/// are mapped into
/// [`WbError::InvalidParameter`] with the typed error's message (probe
/// with [`probe_mergeable`] first to branch on mergeability without paying
/// for ingestion).
pub fn ingest_sharded_source(
    ctor: &dyn Fn(usize) -> Result<Box<dyn DynStreamAlg>, WbError>,
    source: &mut dyn UpdateSource,
    cfg: &ShardConfig,
) -> Result<ShardedIngest, WbError> {
    let shards = cfg.shards.max(1);
    let instances: Result<Vec<Box<dyn DynStreamAlg>>, WbError> = (0..shards).map(ctor).collect();
    let instances = instances?;
    if crate::pool::effective_threads(cfg.threads) <= 1 || shards == 1 {
        ingest_inline(instances, source, cfg)
    } else {
        ingest_threaded(instances, source, cfg)
    }
}

/// Ingest an already-materialized slice — a [`SliceSource`] wrapper over
/// [`ingest_sharded_source`], kept for callers that hold literal scripts.
/// The per-shard chunk boundaries (and therefore the shard states) are
/// identical to the streaming path's.
pub fn ingest_sharded(
    ctor: &dyn Fn(usize) -> Result<Box<dyn DynStreamAlg>, WbError>,
    updates: &[Update],
    cfg: &ShardConfig,
) -> Result<ShardedIngest, WbError> {
    ingest_sharded_source(ctor, &mut SliceSource::new(updates), cfg)
}

/// Single-threaded pipeline: route and ingest on the caller's thread.
fn ingest_inline(
    instances: Vec<Box<dyn DynStreamAlg>>,
    source: &mut dyn UpdateSource,
    cfg: &ShardConfig,
) -> Result<ShardedIngest, WbError> {
    let shards = instances.len();
    let batch = cfg.batch.max(1);
    let mut algs = instances;
    let mut rngs: Vec<TranscriptRng> = (0..shards)
        .map(|i| TranscriptRng::from_seed(cfg.shard_seed(i)))
        .collect();
    let mut staging: Vec<Vec<Update>> = (0..shards).map(|_| Vec::with_capacity(batch)).collect();
    let mut failures: Vec<Option<WbError>> = (0..shards).map(|_| None).collect();
    let mut processed = vec![0u64; shards];
    let mut loads = vec![0usize; shards];
    let mut buf: Vec<Update> = Vec::with_capacity(batch);
    let mut j = 0u64;

    let mut deliver = |s: usize,
                       chunk: &[Update],
                       algs: &mut Vec<Box<dyn DynStreamAlg>>,
                       rngs: &mut Vec<TranscriptRng>,
                       failures: &mut Vec<Option<WbError>>| {
        if failures[s].is_none() {
            if let Err(e) = algs[s].process_batch_dyn(chunk, &mut rngs[s]) {
                failures[s] = Some(shard_failure(
                    algs[s].as_mut(),
                    &mut rngs[s],
                    chunk,
                    processed[s],
                    s,
                    e,
                ));
            }
        }
        processed[s] += chunk.len() as u64;
    };

    'produce: while source.next_chunk(&mut buf) > 0 {
        for u in &buf {
            let s = route(cfg.partition, u, j, shards);
            j += 1;
            loads[s] += 1;
            staging[s].push(*u);
            if staging[s].len() >= batch {
                let chunk = std::mem::take(&mut staging[s]);
                deliver(s, &chunk, &mut algs, &mut rngs, &mut failures);
                staging[s] = chunk;
                staging[s].clear();
                // Once every shard has recorded its failure nothing that
                // follows can change the outcome (each shard's *first*
                // failure wins and is already fixed) — stop generating.
                if failures.iter().all(Option::is_some) {
                    break 'produce;
                }
            }
        }
    }
    let leftovers = std::mem::take(&mut staging);
    for (s, chunk) in leftovers.into_iter().enumerate() {
        if !chunk.is_empty() {
            deliver(s, &chunk, &mut algs, &mut rngs, &mut failures);
        }
    }

    let results = algs
        .into_iter()
        .zip(failures)
        .map(|(alg, failure)| match failure {
            Some(e) => Err(e),
            None => Ok(alg),
        })
        .collect();
    finish_sharded(results, loads)
}

/// Multi-threaded pipeline: one consumer thread per shard behind a bounded
/// SPSC chunk queue, the producer on the caller's thread.
fn ingest_threaded(
    instances: Vec<Box<dyn DynStreamAlg>>,
    source: &mut dyn UpdateSource,
    cfg: &ShardConfig,
) -> Result<ShardedIngest, WbError> {
    let shards = instances.len();
    let batch = cfg.batch.max(1);
    // Consumers bump this once, at their first failure; when it reaches
    // `shards` the producer stops generating — nothing downstream can
    // change the outcome once every shard's first failure is fixed.
    let failed_shards = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let mut full_txs = Vec::with_capacity(shards);
        let mut empty_rxs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for (i, mut alg) in instances.into_iter().enumerate() {
            let (full_tx, full_rx) = mpsc::sync_channel::<Vec<Update>>(QUEUE_CHUNKS);
            let (empty_tx, empty_rx) = mpsc::channel::<Vec<Update>>();
            full_txs.push(full_tx);
            empty_rxs.push(empty_rx);
            let seed = cfg.shard_seed(i);
            let failed_shards = &failed_shards;
            handles.push(
                scope.spawn(move || -> Result<Box<dyn DynStreamAlg>, WbError> {
                    let mut rng = TranscriptRng::from_seed(seed);
                    let mut failure: Option<WbError> = None;
                    let mut processed = 0u64;
                    // An errored consumer keeps draining (and recycling)
                    // chunks instead of dropping its receiver: closing the
                    // queue would abort the producer mid-stream and make
                    // *which other shards also fail* depend on scheduling.
                    for mut chunk in full_rx {
                        if failure.is_none() {
                            if let Err(e) = alg.process_batch_dyn(&chunk, &mut rng) {
                                failure = Some(shard_failure(
                                    alg.as_mut(),
                                    &mut rng,
                                    &chunk,
                                    processed,
                                    i,
                                    e,
                                ));
                                failed_shards.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                        processed += chunk.len() as u64;
                        chunk.clear();
                        let _ = empty_tx.send(chunk);
                    }
                    match failure {
                        Some(e) => Err(e),
                        None => Ok(alg),
                    }
                }),
            );
        }

        let mut staging: Vec<Vec<Update>> =
            (0..shards).map(|_| Vec::with_capacity(batch)).collect();
        let mut loads = vec![0usize; shards];
        let mut buf: Vec<Update> = Vec::with_capacity(batch);
        let mut j = 0u64;
        fn flush(
            staging: &mut Vec<Update>,
            full_tx: &mpsc::SyncSender<Vec<Update>>,
            empty_rx: &mpsc::Receiver<Vec<Update>>,
            batch: usize,
        ) {
            let next = empty_rx
                .try_recv()
                .unwrap_or_else(|_| Vec::with_capacity(batch));
            let chunk = std::mem::replace(staging, next);
            // Consumers never close their queue while the producer lives,
            // so this only fails if a consumer panicked — surfaced at join.
            let _ = full_tx.send(chunk);
        }
        while source.next_chunk(&mut buf) > 0 {
            for u in &buf {
                let s = route(cfg.partition, u, j, shards);
                j += 1;
                loads[s] += 1;
                staging[s].push(*u);
                if staging[s].len() >= batch {
                    flush(&mut staging[s], &full_txs[s], &empty_rxs[s], batch);
                }
            }
            // Every shard has failed: the outcome (lowest shard's first
            // failure) is already fixed, so stop generating the stream.
            if failed_shards.load(std::sync::atomic::Ordering::Relaxed) >= shards {
                break;
            }
        }
        for s in 0..shards {
            if !staging[s].is_empty() {
                flush(&mut staging[s], &full_txs[s], &empty_rxs[s], batch);
            }
        }
        drop(full_txs); // close the queues: consumers finish and return

        let results = handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
            })
            .collect();
        finish_sharded(results, loads)
    })
}

/// `true` iff instances built by `ctor` can merge: constructs two fresh
/// instances and trial-merges them empty. Unmergeable algorithms and
/// parameter-incompatible constructions both return `false`; construction
/// failures propagate.
pub fn probe_mergeable(
    ctor: &dyn Fn(usize) -> Result<Box<dyn DynStreamAlg>, WbError>,
) -> Result<bool, WbError> {
    let mut a = ctor(0)?;
    let b = ctor(0)?;
    Ok(a.merge_dyn(b.as_ref()).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{self, Params};

    fn registry_ctor(
        name: &'static str,
        params: Params,
    ) -> impl Fn(usize) -> Result<Box<dyn DynStreamAlg>, WbError> {
        move |_shard| registry::get(name, &params)
    }

    fn zipfish(m: u64, n: u64) -> Vec<Update> {
        (0..m)
            .map(|t| {
                Update::Insert(match t % 10 {
                    0..=4 => 1,
                    5..=7 => 2,
                    _ => (t.wrapping_mul(2654435761)) % n,
                })
            })
            .collect()
    }

    #[test]
    fn partitions_cover_the_stream_exactly() {
        let updates = zipfish(1000, 1 << 10);
        for partition in [Partition::Hash, Partition::RoundRobin] {
            let buckets = partition_updates(&updates, 4, partition);
            assert_eq!(buckets.len(), 4);
            assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 1000);
            if partition == Partition::Hash {
                // Same item, same shard — across all buckets.
                for (s, bucket) in buckets.iter().enumerate() {
                    for u in bucket {
                        assert_eq!(hash_shard(u.item(), 4), s);
                    }
                }
            } else {
                // Round-robin: bucket sizes differ by at most one.
                let (min, max) = (
                    buckets.iter().map(Vec::len).min().unwrap(),
                    buckets.iter().map(Vec::len).max().unwrap(),
                );
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn sharded_linear_sketch_equals_single_stream_exactly() {
        // CountMin is linear: the merged table must be bit-identical to
        // single-stream ingestion, for both partitions and any threads.
        let params = Params::default().with_n(1 << 10);
        let updates = zipfish(4000, 1 << 10);
        let mut single = registry::get("count_min", &params).unwrap();
        let mut rng = TranscriptRng::from_seed(1);
        single.process_batch_dyn(&updates, &mut rng).unwrap();
        for partition in [Partition::Hash, Partition::RoundRobin] {
            for threads in [1usize, 4] {
                let cfg = ShardConfig {
                    shards: 4,
                    partition,
                    threads,
                    batch: 128,
                    master_seed: 7,
                };
                let out =
                    ingest_sharded(&registry_ctor("count_min", params.clone()), &updates, &cfg)
                        .unwrap();
                assert_eq!(
                    out.merged.query_dyn(),
                    single.query_dyn(),
                    "{partition:?} threads {threads}"
                );
                assert_eq!(out.merged.space_bits_dyn(), single.space_bits_dyn());
                assert_eq!(out.shard_loads.iter().sum::<usize>(), 4000);
            }
        }
    }

    #[test]
    fn sharded_counter_summary_is_deterministic_and_within_guarantee() {
        let params = Params::default().with_n(1 << 10);
        let updates = zipfish(6000, 1 << 10);
        let cfg = |threads| ShardConfig {
            shards: 8,
            partition: Partition::Hash,
            threads,
            batch: 256,
            master_seed: 3,
        };
        let a = ingest_sharded(
            &registry_ctor("misra_gries", params.clone()),
            &updates,
            &cfg(1),
        )
        .unwrap();
        let b = ingest_sharded(
            &registry_ctor("misra_gries", params.clone()),
            &updates,
            &cfg(8),
        )
        .unwrap();
        assert_eq!(
            a.merged.query_dyn(),
            b.merged.query_dyn(),
            "thread count leaked into the merged state"
        );
        // Items 1 (50%) and 2 (30%) are heavy and must be reported.
        let items = a.merged.query_dyn();
        let reported: Vec<u64> = items.as_items().unwrap().iter().map(|&(i, _)| i).collect();
        assert!(
            reported.contains(&1) && reported.contains(&2),
            "{reported:?}"
        );
    }

    #[test]
    fn unmergeable_algorithms_probe_false_and_error_on_ingest() {
        let params = Params::default().with_n(1 << 10);
        let ctor = registry_ctor("morris", params);
        assert!(!probe_mergeable(&ctor).unwrap());
        let cfg = ShardConfig {
            shards: 2,
            ..ShardConfig::default()
        };
        let err = match ingest_sharded(&ctor, &zipfish(64, 1 << 10), &cfg) {
            Ok(_) => panic!("unmergeable multi-shard ingest must error"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("no sound merge"), "{err}");
    }

    #[test]
    fn mergeable_probe_accepts_the_mergeable_registry_subset() {
        let params = Params::default().with_n(1 << 10);
        for name in [
            "misra_gries",
            "space_saving",
            "count_min",
            "ams_f2",
            "exact_l0",
        ] {
            assert!(
                probe_mergeable(&registry_ctor(name, params.clone())).unwrap(),
                "{name} should merge"
            );
        }
        for name in ["morris", "median_morris", "robust_hh", "sis_l0"] {
            assert!(
                !probe_mergeable(&registry_ctor(name, params.clone())).unwrap(),
                "{name} should refuse to merge"
            );
        }
    }

    #[test]
    fn single_shard_is_a_plain_pass_through() {
        let params = Params::default().with_n(256);
        let updates = zipfish(512, 256);
        let cfg = ShardConfig::default();
        let out = ingest_sharded(
            &registry_ctor("space_saving", params.clone()),
            &updates,
            &cfg,
        )
        .unwrap();
        let mut single = registry::get("space_saving", &params).unwrap();
        let mut rng = TranscriptRng::from_seed(cfg.shard_seed(0));
        for chunk in updates.chunks(cfg.batch) {
            single.process_batch_dyn(chunk, &mut rng).unwrap();
        }
        assert_eq!(out.merged.query_dyn(), single.query_dyn());
        assert_eq!(out.shard_loads, vec![512]);
    }
}
