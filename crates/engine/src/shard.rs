//! Sharded ingestion: one logical stream, `S` shard instances, one merged
//! answer — the first end-to-end scale-out path in the workspace.
//!
//! The pipeline is **streaming**: [`ingest_sharded_source`] pulls chunks
//! from an [`UpdateSource`] on the caller's thread (the producer), routes
//! each update to its shard's staging buffer, and hands full `batch`-sized
//! chunks to the shard's consumer over a **bounded SPSC chunk queue**
//! (consumers recycle emptied buffers back to the producer, so the whole
//! run keeps O(S × batch) updates in flight regardless of the stream
//! length — there are no materialized per-shard buckets). Each consumer
//! ingests its chunks through the batched
//! [`DynStreamAlg::process_batch_dyn`] path, and the caller then folds the
//! shard states together with [`DynStreamAlg::merge_dyn`] in a
//! **deterministic reduction tree**: level by level, shard `2i+1` merges
//! into shard `2i`. Scheduling is invisible — each shard's update
//! subsequence and chunk boundaries are pure functions of the stream and
//! the config, shard seeds derive from the master seed via
//! [`derive_seed`]`(master, ["shard", i])`, and merges happen in fixed
//! tree order on the caller's thread — so the merged instance is a pure
//! function of `(stream, algorithm, S, partition, batch, master_seed)`,
//! byte-identical for every thread count and identical to the historical
//! materialized-bucket implementation (asserted by the
//! `streaming_pipeline` test suite).
//!
//! With `threads <= 1` the same routing runs fully inline on the caller's
//! thread — no queues, no spawns — producing the identical chunk sequence
//! per shard. The tournament uses this mode, because its cells already
//! parallelize on the engine [pool](crate::pool).
//!
//! **White-box caveat.** Sharding never weakens the paper's adversary — it
//! strengthens it: the adversary observes *every* shard's internal state
//! and every shard's randomness tape (each tape's seed is public and
//! derived from public inputs). Only algorithms whose robustness argument
//! tolerates full state exposure merge soundly; see
//! [`wb_core::merge::Mergeable`] for the contract and
//! [`MergeError::Unmergeable`] for the refusals.

use crate::erased::{DynStreamAlg, Update};
use crate::workload::{SliceSource, UpdateSource};
use std::sync::mpsc;
use wb_core::merge::MergeError;
use wb_core::rng::{derive_seed, SplitMix64, TranscriptRng};
use wb_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use wb_core::WbError;

/// How updates are routed to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// By item hash: every occurrence of an item lands on the same shard
    /// (SplitMix64 of the item id, mod `S`). The right choice for counter
    /// summaries — each shard sees a disjoint sub-universe, so per-item
    /// mass is never split across summaries.
    Hash,
    /// By position: update `j` goes to shard `j mod S`. Spreads load
    /// perfectly evenly; items smear across shards, which linear sketches
    /// absorb exactly and counter summaries absorb within their merge
    /// error.
    RoundRobin,
}

impl Partition {
    /// Stable lowercase label for reports and flags.
    pub fn label(&self) -> &'static str {
        match self {
            Partition::Hash => "hash",
            Partition::RoundRobin => "round_robin",
        }
    }
}

/// Configuration of one sharded ingestion run.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shard instances `S ≥ 1`.
    pub shards: usize,
    /// Routing rule.
    pub partition: Partition,
    /// Threading mode: `1` runs the whole pipeline inline on the caller's
    /// thread; anything that resolves to more than one worker (`0` = one
    /// per core) spawns **one consumer thread per shard**, fed over
    /// bounded chunk queues by the caller-thread producer. Both modes
    /// produce bit-identical shard states.
    pub threads: usize,
    /// Chunk size for each shard's batched ingestion (and the unit of the
    /// producer→consumer queues).
    pub batch: usize,
    /// Master seed; shard `i`'s random tape is seeded with
    /// `derive_seed(master_seed, ["shard", i])`.
    pub master_seed: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            partition: Partition::Hash,
            threads: 0,
            batch: 256,
            master_seed: 42,
        }
    }
}

impl ShardConfig {
    /// The derived public seed of shard `i`'s random tape.
    pub fn shard_seed(&self, shard: usize) -> u64 {
        derive_seed(self.master_seed, &["shard", &shard.to_string()])
    }
}

/// The shard index of `item` under hash partitioning.
pub fn hash_shard(item: u64, shards: usize) -> usize {
    (SplitMix64::new(item).next_u64() % shards as u64) as usize
}

/// Split `updates` into `S` per-shard buckets, preserving relative order
/// within each bucket.
pub fn partition_updates(
    updates: &[Update],
    shards: usize,
    partition: Partition,
) -> Vec<Vec<Update>> {
    let shards = shards.max(1);
    let mut buckets: Vec<Vec<Update>> = (0..shards)
        .map(|_| Vec::with_capacity(updates.len() / shards + 1))
        .collect();
    for (j, u) in updates.iter().enumerate() {
        let s = match partition {
            Partition::Hash => hash_shard(u.item(), shards),
            Partition::RoundRobin => j % shards,
        };
        buckets[s].push(*u);
    }
    buckets
}

/// Fold `instances` into one by a deterministic reduction tree: at every
/// level, instance `2i+1` merges into instance `2i`; survivors repeat until
/// one remains. Equivalent to a left fold in outcome for associative
/// merges, but the tree shape is part of the contract so reports stay
/// byte-identical as the shard count varies only with `S`, never with the
/// thread count.
pub fn merge_reduce(
    mut instances: Vec<Box<dyn DynStreamAlg>>,
) -> Result<Box<dyn DynStreamAlg>, MergeError> {
    assert!(!instances.is_empty(), "nothing to reduce");
    while instances.len() > 1 {
        let mut next = Vec::with_capacity(instances.len().div_ceil(2));
        let mut iter = instances.into_iter();
        while let Some(mut left) = iter.next() {
            if let Some(right) = iter.next() {
                left.merge_dyn(right.as_ref())?;
            }
            next.push(left);
        }
        instances = next;
    }
    Ok(instances.pop().expect("one instance remains"))
}

/// Per-shard ingestion statistics: routed-item counts and bounded-queue
/// backpressure, exported so callers (the daemon's metrics layer,
/// `exp_sharded`) can see what used to be invisible internal state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Updates routed to each shard; sums to the stream length.
    pub loads: Vec<usize>,
    /// Producer stalls per shard: how often a full `batch`-sized chunk
    /// found the shard's bounded SPSC queue full and the producer had to
    /// block until the consumer freed a slot. Always zero in inline mode
    /// (there are no queues) — a nonzero count means that shard's consumer
    /// is the pipeline's bottleneck.
    pub queue_stalls: Vec<u64>,
}

impl ShardStats {
    /// All-zero stats for `shards` shards.
    pub fn zeroed(shards: usize) -> Self {
        ShardStats {
            loads: vec![0; shards],
            queue_stalls: vec![0; shards],
        }
    }

    /// Total updates routed across all shards.
    pub fn total(&self) -> u64 {
        self.loads.iter().map(|&l| l as u64).sum()
    }

    /// Largest per-shard load.
    pub fn max_load(&self) -> usize {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Total producer stalls across all queues.
    pub fn total_stalls(&self) -> u64 {
        self.queue_stalls.iter().sum()
    }

    /// Load skew: the largest shard's load divided by the mean load
    /// (`1.0` = perfectly even; `S` = everything on one shard). `1.0` for
    /// an empty stream.
    pub fn skew(&self) -> f64 {
        let total = self.total();
        if total == 0 || self.loads.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.loads.len() as f64;
        self.max_load() as f64 / mean
    }
}

/// Outcome of [`ingest_sharded_source`]: the merged instance plus how the
/// stream was spread.
pub struct ShardedIngest {
    /// The merged algorithm holding the whole stream's summary.
    pub merged: Box<dyn DynStreamAlg>,
    /// How the stream was spread and how often the producer stalled.
    pub stats: ShardStats,
}

/// How many in-flight chunks each shard's bounded queue may hold before
/// the producer blocks. Together with the staging buffer and the buffers
/// being recycled, this caps the pipeline's resident stream slice at
/// `S × (QUEUE_CHUNKS + 2) × batch` updates — independent of `m`.
const QUEUE_CHUNKS: usize = 2;

/// The shard an update at global stream position `j` routes to.
fn route(partition: Partition, u: &Update, j: u64, shards: usize) -> usize {
    match partition {
        Partition::Hash => hash_shard(u.item(), shards),
        Partition::RoundRobin => (j % shards as u64) as usize,
    }
}

/// After a chunk-level ingest error, locate the offset (relative to the
/// start of this ingester's subsequence; `base` updates were accepted
/// before this chunk) of the first update that fails on its own. Probing
/// mutates the algorithm, which is fine — the caller is about to discard
/// it; the point is a **chunk-size-independent** offset in the error
/// report without retaining the stream. Every batch-level error has a
/// per-update witness (the erased layer's only rejection rule is
/// per-update), so the probe always finds one; `base` alone is a
/// defensive fallback.
pub(crate) fn locate_failure(
    alg: &mut dyn DynStreamAlg,
    chunk: &[Update],
    rng: &mut TranscriptRng,
    base: u64,
) -> u64 {
    for (k, u) in chunk.iter().enumerate() {
        if alg.process_dyn(u, rng).is_err() {
            return base + k as u64;
        }
    }
    base
}

/// A shard's ingest error, annotated with the shard index and the failing
/// offset within the shard's subsequence.
fn shard_failure(
    alg: &mut dyn DynStreamAlg,
    rng: &mut TranscriptRng,
    chunk: &[Update],
    processed: u64,
    shard: usize,
    e: WbError,
) -> WbError {
    let off = locate_failure(alg, chunk, rng, processed);
    WbError::invalid(format!(
        "shard {shard}: {e} (first offending update at shard offset {off})"
    ))
}

/// Merge the per-shard outcomes: the first error in **shard order** wins
/// (never the first in wall-clock order, which scheduling could reorder),
/// otherwise reduce the states.
fn finish_sharded(
    results: Vec<Result<Box<dyn DynStreamAlg>, WbError>>,
    stats: ShardStats,
) -> Result<ShardedIngest, WbError> {
    let ingested: Result<Vec<Box<dyn DynStreamAlg>>, WbError> = results.into_iter().collect();
    let merged =
        merge_reduce(ingested?).map_err(|e| WbError::invalid(format!("sharded merge: {e}")))?;
    Ok(ShardedIngest { merged, stats })
}

/// Ingest a pull-based stream across `cfg.shards` instances built by
/// `ctor` and return the merged result, holding only O(shards × batch)
/// updates in memory at any moment (see the module docs for the
/// producer/consumer anatomy).
///
/// `ctor(i)` must build shard `i`'s instance; for seeded sketches
/// (CountMin, AmsF2) every shard must be constructed from the **same**
/// public seed or the merge will report
/// [`MergeError::Incompatible`]. Model mismatches during ingestion (e.g. a
/// deletion offered to an insertion-only sketch) surface as the underlying
/// [`WbError`], annotated with the shard and the failing offset; when
/// several shards fail, the error of the lowest-numbered shard is
/// reported. The outcome is deterministic because each shard's **first**
/// failure is what it reports, and a shard keeps consuming (without
/// processing) after failing — production only stops early once *every*
/// shard has failed, by which point all reports are fixed. Merge refusals
/// are mapped into
/// [`WbError::InvalidParameter`] with the typed error's message (probe
/// with [`probe_mergeable`] first to branch on mergeability without paying
/// for ingestion).
pub fn ingest_sharded_source(
    ctor: &dyn Fn(usize) -> Result<Box<dyn DynStreamAlg>, WbError>,
    source: &mut dyn UpdateSource,
    cfg: &ShardConfig,
) -> Result<ShardedIngest, WbError> {
    let shards = cfg.shards.max(1);
    let instances: Result<Vec<Box<dyn DynStreamAlg>>, WbError> = (0..shards).map(ctor).collect();
    let instances = instances?;
    if crate::pool::effective_threads(cfg.threads) <= 1 || shards == 1 {
        ingest_inline(instances, source, cfg)
    } else {
        ingest_threaded(instances, source, cfg)
    }
}

/// Ingest an already-materialized slice — a [`SliceSource`] wrapper over
/// [`ingest_sharded_source`], kept for callers that hold literal scripts.
/// The per-shard chunk boundaries (and therefore the shard states) are
/// identical to the streaming path's.
pub fn ingest_sharded(
    ctor: &dyn Fn(usize) -> Result<Box<dyn DynStreamAlg>, WbError>,
    updates: &[Update],
    cfg: &ShardConfig,
) -> Result<ShardedIngest, WbError> {
    ingest_sharded_source(ctor, &mut SliceSource::new(updates), cfg)
}

/// A long-lived inline sharded ingestion pipeline: the incremental form of
/// [`ingest_sharded_source`] for callers that receive the stream in pieces
/// over time instead of holding an [`UpdateSource`] — the daemon's tenant
/// sessions push ingest batches as they arrive over the wire and query the
/// merged answer whenever a client asks.
///
/// Routing, chunk staging, per-shard random tapes, failure bookkeeping, and
/// the final reduction-tree merge are all identical to the one-shot inline
/// path (which is now a thin loop over this type), so a pipeline fed the
/// same updates in any request sizes ends in shard states byte-identical to
/// an offline [`ingest_sharded_source`] run of the concatenated stream —
/// chunk boundaries are pure transport by the batching contract.
pub struct ShardPipeline {
    algs: Vec<Box<dyn DynStreamAlg>>,
    rngs: Vec<TranscriptRng>,
    staging: Vec<Vec<Update>>,
    failures: Vec<Option<WbError>>,
    processed: Vec<u64>,
    loads: Vec<usize>,
    partition: Partition,
    batch: usize,
    /// Global stream position (drives round-robin routing).
    pos: u64,
    /// Cached "every shard has failed" flag: once set, pushes are no-ops
    /// (each shard's *first* failure wins and is already fixed).
    dead: bool,
}

impl ShardPipeline {
    /// Build `cfg.shards` instances with `ctor` and an empty pipeline. The
    /// same constructor contract as [`ingest_sharded_source`] applies:
    /// seeded sketches must share their public seed across shards or the
    /// eventual merge reports an incompatibility.
    pub fn new(
        ctor: &dyn Fn(usize) -> Result<Box<dyn DynStreamAlg>, WbError>,
        cfg: &ShardConfig,
    ) -> Result<Self, WbError> {
        let shards = cfg.shards.max(1);
        let algs: Result<Vec<Box<dyn DynStreamAlg>>, WbError> = (0..shards).map(ctor).collect();
        Ok(Self::from_instances(algs?, cfg))
    }

    fn from_instances(instances: Vec<Box<dyn DynStreamAlg>>, cfg: &ShardConfig) -> Self {
        let shards = instances.len();
        let batch = cfg.batch.max(1);
        ShardPipeline {
            algs: instances,
            rngs: (0..shards)
                .map(|i| TranscriptRng::from_seed(cfg.shard_seed(i)))
                .collect(),
            staging: (0..shards).map(|_| Vec::with_capacity(batch)).collect(),
            failures: (0..shards).map(|_| None).collect(),
            processed: vec![0; shards],
            loads: vec![0; shards],
            partition: cfg.partition,
            batch,
            pos: 0,
            dead: false,
        }
    }

    /// Number of shard instances.
    pub fn shards(&self) -> usize {
        self.algs.len()
    }

    /// Updates routed so far (including ones staged but not yet delivered).
    pub fn routed(&self) -> u64 {
        self.pos
    }

    /// Current routed-load / stall statistics. Inline pipelines have no
    /// queues, so stalls are always zero here.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            loads: self.loads.clone(),
            queue_stalls: vec![0; self.algs.len()],
        }
    }

    /// Total space held by the live shard states, in bits — what a node
    /// running this pipeline actually pays.
    pub fn space_bits(&self) -> u64 {
        self.algs.iter().map(|a| a.space_bits_dyn()).sum()
    }

    /// The lowest-numbered shard's failure, if any shard has failed.
    pub fn first_failure(&self) -> Option<&WbError> {
        self.failures.iter().flatten().next()
    }

    /// `true` once every shard has recorded a failure — nothing pushed
    /// after this can change the outcome.
    pub fn all_failed(&self) -> bool {
        self.dead
    }

    fn deliver(&mut self, s: usize, take_staging: bool) {
        let chunk = std::mem::take(&mut self.staging[s]);
        if self.failures[s].is_none() {
            if let Err(e) = self.algs[s].process_batch_dyn(&chunk, &mut self.rngs[s]) {
                self.failures[s] = Some(shard_failure(
                    self.algs[s].as_mut(),
                    &mut self.rngs[s],
                    &chunk,
                    self.processed[s],
                    s,
                    e,
                ));
                self.dead = self.failures.iter().all(Option::is_some);
            }
        }
        self.processed[s] += chunk.len() as u64;
        if take_staging {
            self.staging[s] = chunk;
            self.staging[s].clear();
        }
    }

    /// Route one update into its shard's staging buffer, delivering the
    /// buffer when it reaches the chunk size.
    pub fn push_update(&mut self, u: &Update) {
        if self.dead {
            return;
        }
        let s = route(self.partition, u, self.pos, self.algs.len());
        self.pos += 1;
        self.loads[s] += 1;
        self.staging[s].push(*u);
        if self.staging[s].len() >= self.batch {
            self.deliver(s, true);
        }
    }

    /// Route a chunk of updates (stops early if every shard has failed).
    pub fn push(&mut self, chunk: &[Update]) {
        for u in chunk {
            if self.dead {
                return;
            }
            self.push_update(u);
        }
    }

    /// Deliver every non-empty staging buffer to its shard. The one-shot
    /// path calls this exactly once, at end of stream; a long-lived caller
    /// calls it before each query so answers reflect every pushed update
    /// (chunk boundaries never change the eventual state, so flushing
    /// early costs nothing but the smaller batch).
    pub fn flush(&mut self) {
        for s in 0..self.algs.len() {
            if !self.staging[s].is_empty() {
                self.deliver(s, false);
                self.staging[s] = Vec::with_capacity(self.batch);
            }
        }
    }

    /// Flush and merge the shard states **without consuming them**: each
    /// reduction-tree node is a fresh `ctor` instance the children are
    /// folded into (merging into an empty sibling reproduces the child's
    /// state by the [`wb_core::merge::Mergeable`] contract — an empty
    /// instance summarizes the empty stream). The shard states stay live,
    /// so a long-running tenant can answer queries mid-stream and keep
    /// ingesting; [`ShardPipeline::finish`] remains the end-of-stream
    /// destructive form and the two agree on every answer.
    pub fn snapshot_merged(
        &mut self,
        ctor: &dyn Fn(usize) -> Result<Box<dyn DynStreamAlg>, WbError>,
    ) -> Result<Box<dyn DynStreamAlg>, WbError> {
        self.flush();
        if let Some(e) = self.first_failure() {
            return Err(e.clone());
        }
        let snap = |shard: &dyn DynStreamAlg| -> Result<Box<dyn DynStreamAlg>, WbError> {
            let mut fresh = ctor(0)?;
            fresh
                .merge_dyn(shard)
                .map_err(|e| WbError::invalid(format!("sharded merge: {e}")))?;
            Ok(fresh)
        };
        // First level pairs the live shard states into owned copies; the
        // remaining levels reduce the owned copies exactly like
        // merge_reduce (left.merge(right), level by level).
        let mut level: Vec<Box<dyn DynStreamAlg>> = Vec::new();
        for pair in self.algs.chunks(2) {
            let mut left = snap(pair[0].as_ref())?;
            if let Some(right) = pair.get(1) {
                left.merge_dyn(right.as_ref())
                    .map_err(|e| WbError::invalid(format!("sharded merge: {e}")))?;
            }
            level.push(left);
        }
        merge_reduce(level).map_err(|e| WbError::invalid(format!("sharded merge: {e}")))
    }

    /// Serialize the whole pipeline — every shard's algorithm state,
    /// random tape, and the routing bookkeeping — into one checkpoint
    /// frame, so warm sketch state can migrate to another pipeline (or
    /// survive a process kill) and resume ingestion mid-stream.
    ///
    /// Staged updates are flushed first: chunk boundaries are pure
    /// transport by the batching contract, so the early delivery changes
    /// nothing, and the frame then captures a state where
    /// `processed == loads` shard by shard (validated on
    /// [`ShardPipeline::resume`]). A pipeline with failed shards refuses to
    /// checkpoint — a failure is terminal for its run and carries a
    /// non-serializable error chain; callers surface the failure instead.
    pub fn checkpoint(&mut self) -> Result<Vec<u8>, SnapError> {
        self.flush();
        if self.first_failure().is_some() {
            return Err(SnapError::unsupported(
                "ShardPipeline with failed shards (surface the failure instead)",
            ));
        }
        let mut w = SnapWriter::new();
        w.put_usize(self.algs.len());
        w.put_u8(match self.partition {
            Partition::Hash => 0,
            Partition::RoundRobin => 1,
        });
        w.put_usize(self.batch);
        w.put_u64(self.pos);
        let loads: Vec<u64> = self.loads.iter().map(|&l| l as u64).collect();
        w.put_u64_seq(&loads);
        w.put_u64_seq(&self.processed);
        for rng in &self.rngs {
            rng.snap(&mut w);
        }
        for alg in &self.algs {
            w.put_bytes(&alg.snapshot_dyn()?);
        }
        Ok(w.finish())
    }

    /// Restore a [`ShardPipeline::checkpoint`] frame into this pipeline,
    /// which must be a twin: built by [`ShardPipeline::new`] with the same
    /// constructor and the same [`ShardConfig`] (shard count, partition,
    /// batch, master seed). Configuration mismatches are rejected before
    /// any state is touched; a frame whose bookkeeping is internally
    /// inconsistent (loads that don't sum to the stream position, staged
    /// updates that were never delivered) is [`SnapError::Corrupt`].
    pub fn resume(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes)?;
        let shards = r.take_usize()?;
        if shards != self.algs.len() {
            return Err(SnapError::mismatch(
                format!("{} shards", self.algs.len()),
                format!("{shards} shards"),
            ));
        }
        let partition = r.take_u8()?;
        let own = match self.partition {
            Partition::Hash => 0,
            Partition::RoundRobin => 1,
        };
        if partition != own {
            return Err(SnapError::mismatch(
                self.partition.label(),
                format!("partition tag {partition}"),
            ));
        }
        let batch = r.take_usize()?;
        if batch != self.batch {
            return Err(SnapError::mismatch(
                format!("batch {}", self.batch),
                format!("batch {batch}"),
            ));
        }
        let pos = r.take_u64()?;
        let loads = r.take_u64_seq()?;
        let processed = r.take_u64_seq()?;
        if loads.len() != shards || processed.len() != shards {
            return Err(SnapError::corrupt(format!(
                "per-shard bookkeeping for {} shards in a {shards}-shard frame",
                loads.len().max(processed.len())
            )));
        }
        if loads.iter().sum::<u64>() != pos {
            return Err(SnapError::corrupt(format!(
                "shard loads sum to {}, stream position is {pos}",
                loads.iter().sum::<u64>()
            )));
        }
        // checkpoint() flushes, so every routed update was delivered.
        if loads != processed {
            return Err(SnapError::corrupt(
                "checkpoint holds undelivered staged updates",
            ));
        }
        for rng in &mut self.rngs {
            rng.restore(&mut r)?;
        }
        for alg in &mut self.algs {
            let frame = r.take_bytes()?;
            alg.restore_dyn(&frame)?;
        }
        r.finish()?;
        self.pos = pos;
        self.loads = loads
            .into_iter()
            .map(|l| usize::try_from(l).expect("load fits usize: it was a usize when captured"))
            .collect();
        self.processed = processed;
        for s in &mut self.staging {
            s.clear();
        }
        for f in &mut self.failures {
            *f = None;
        }
        self.dead = false;
        Ok(())
    }

    /// Flush, then fold the shard states into one with the deterministic
    /// reduction tree — the end-of-stream form ([`ingest_sharded_source`]'s
    /// epilogue). The first failure in shard order wins.
    pub fn finish(mut self) -> Result<ShardedIngest, WbError> {
        self.flush();
        let stats = self.stats();
        let results = self
            .algs
            .into_iter()
            .zip(self.failures)
            .map(|(alg, failure)| match failure {
                Some(e) => Err(e),
                None => Ok(alg),
            })
            .collect();
        finish_sharded(results, stats)
    }
}

/// Single-threaded pipeline: route and ingest on the caller's thread — a
/// pull loop over the incremental [`ShardPipeline`].
fn ingest_inline(
    instances: Vec<Box<dyn DynStreamAlg>>,
    source: &mut dyn UpdateSource,
    cfg: &ShardConfig,
) -> Result<ShardedIngest, WbError> {
    let mut pipeline = ShardPipeline::from_instances(instances, cfg);
    let mut buf: Vec<Update> = Vec::with_capacity(cfg.batch.max(1));
    while source.next_chunk(&mut buf) > 0 {
        pipeline.push(&buf);
        // Once every shard has recorded its failure nothing that follows
        // can change the outcome — stop generating.
        if pipeline.all_failed() {
            break;
        }
    }
    pipeline.finish()
}

/// Multi-threaded pipeline: one consumer thread per shard behind a bounded
/// SPSC chunk queue, the producer on the caller's thread.
fn ingest_threaded(
    instances: Vec<Box<dyn DynStreamAlg>>,
    source: &mut dyn UpdateSource,
    cfg: &ShardConfig,
) -> Result<ShardedIngest, WbError> {
    let shards = instances.len();
    let batch = cfg.batch.max(1);
    // Consumers bump this once, at their first failure; when it reaches
    // `shards` the producer stops generating — nothing downstream can
    // change the outcome once every shard's first failure is fixed.
    let failed_shards = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let mut full_txs = Vec::with_capacity(shards);
        let mut empty_rxs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for (i, mut alg) in instances.into_iter().enumerate() {
            let (full_tx, full_rx) = mpsc::sync_channel::<Vec<Update>>(QUEUE_CHUNKS);
            let (empty_tx, empty_rx) = mpsc::channel::<Vec<Update>>();
            full_txs.push(full_tx);
            empty_rxs.push(empty_rx);
            let seed = cfg.shard_seed(i);
            let failed_shards = &failed_shards;
            handles.push(
                scope.spawn(move || -> Result<Box<dyn DynStreamAlg>, WbError> {
                    let mut rng = TranscriptRng::from_seed(seed);
                    let mut failure: Option<WbError> = None;
                    let mut processed = 0u64;
                    // An errored consumer keeps draining (and recycling)
                    // chunks instead of dropping its receiver: closing the
                    // queue would abort the producer mid-stream and make
                    // *which other shards also fail* depend on scheduling.
                    for mut chunk in full_rx {
                        if failure.is_none() {
                            if let Err(e) = alg.process_batch_dyn(&chunk, &mut rng) {
                                failure = Some(shard_failure(
                                    alg.as_mut(),
                                    &mut rng,
                                    &chunk,
                                    processed,
                                    i,
                                    e,
                                ));
                                failed_shards.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                        processed += chunk.len() as u64;
                        chunk.clear();
                        let _ = empty_tx.send(chunk);
                    }
                    match failure {
                        Some(e) => Err(e),
                        None => Ok(alg),
                    }
                }),
            );
        }

        let mut staging: Vec<Vec<Update>> =
            (0..shards).map(|_| Vec::with_capacity(batch)).collect();
        let mut loads = vec![0usize; shards];
        let mut queue_stalls = vec![0u64; shards];
        let mut buf: Vec<Update> = Vec::with_capacity(batch);
        let mut j = 0u64;
        fn flush(
            staging: &mut Vec<Update>,
            full_tx: &mpsc::SyncSender<Vec<Update>>,
            empty_rx: &mpsc::Receiver<Vec<Update>>,
            batch: usize,
            stalls: &mut u64,
        ) {
            let next = empty_rx
                .try_recv()
                .unwrap_or_else(|_| Vec::with_capacity(batch));
            let chunk = std::mem::replace(staging, next);
            // Offer without blocking first so a full queue is observable:
            // when the consumer is the bottleneck, count the stall, then
            // fall back to the blocking send. Consumers never close their
            // queue while the producer lives, so send only fails if a
            // consumer panicked — surfaced at join.
            if let Err(mpsc::TrySendError::Full(chunk)) = full_tx.try_send(chunk) {
                *stalls += 1;
                let _ = full_tx.send(chunk);
            }
        }
        while source.next_chunk(&mut buf) > 0 {
            for u in &buf {
                let s = route(cfg.partition, u, j, shards);
                j += 1;
                loads[s] += 1;
                staging[s].push(*u);
                if staging[s].len() >= batch {
                    flush(
                        &mut staging[s],
                        &full_txs[s],
                        &empty_rxs[s],
                        batch,
                        &mut queue_stalls[s],
                    );
                }
            }
            // Every shard has failed: the outcome (lowest shard's first
            // failure) is already fixed, so stop generating the stream.
            if failed_shards.load(std::sync::atomic::Ordering::Relaxed) >= shards {
                break;
            }
        }
        for s in 0..shards {
            if !staging[s].is_empty() {
                flush(
                    &mut staging[s],
                    &full_txs[s],
                    &empty_rxs[s],
                    batch,
                    &mut queue_stalls[s],
                );
            }
        }
        drop(full_txs); // close the queues: consumers finish and return

        let results = handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
            })
            .collect();
        finish_sharded(
            results,
            ShardStats {
                loads,
                queue_stalls,
            },
        )
    })
}

/// `true` iff instances built by `ctor` can merge: constructs two fresh
/// instances and trial-merges them empty. Unmergeable algorithms and
/// parameter-incompatible constructions both return `false`; construction
/// failures propagate.
pub fn probe_mergeable(
    ctor: &dyn Fn(usize) -> Result<Box<dyn DynStreamAlg>, WbError>,
) -> Result<bool, WbError> {
    let mut a = ctor(0)?;
    let b = ctor(0)?;
    Ok(a.merge_dyn(b.as_ref()).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{self, Params};

    fn registry_ctor(
        name: &'static str,
        params: Params,
    ) -> impl Fn(usize) -> Result<Box<dyn DynStreamAlg>, WbError> {
        move |_shard| registry::get(name, &params)
    }

    fn zipfish(m: u64, n: u64) -> Vec<Update> {
        (0..m)
            .map(|t| {
                Update::Insert(match t % 10 {
                    0..=4 => 1,
                    5..=7 => 2,
                    _ => (t.wrapping_mul(2654435761)) % n,
                })
            })
            .collect()
    }

    #[test]
    fn partitions_cover_the_stream_exactly() {
        let updates = zipfish(1000, 1 << 10);
        for partition in [Partition::Hash, Partition::RoundRobin] {
            let buckets = partition_updates(&updates, 4, partition);
            assert_eq!(buckets.len(), 4);
            assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 1000);
            if partition == Partition::Hash {
                // Same item, same shard — across all buckets.
                for (s, bucket) in buckets.iter().enumerate() {
                    for u in bucket {
                        assert_eq!(hash_shard(u.item(), 4), s);
                    }
                }
            } else {
                // Round-robin: bucket sizes differ by at most one.
                let (min, max) = (
                    buckets.iter().map(Vec::len).min().unwrap(),
                    buckets.iter().map(Vec::len).max().unwrap(),
                );
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn sharded_linear_sketch_equals_single_stream_exactly() {
        // CountMin is linear: the merged table must be bit-identical to
        // single-stream ingestion, for both partitions and any threads.
        let params = Params::default().with_n(1 << 10);
        let updates = zipfish(4000, 1 << 10);
        let mut single = registry::get("count_min", &params).unwrap();
        let mut rng = TranscriptRng::from_seed(1);
        single.process_batch_dyn(&updates, &mut rng).unwrap();
        for partition in [Partition::Hash, Partition::RoundRobin] {
            for threads in [1usize, 4] {
                let cfg = ShardConfig {
                    shards: 4,
                    partition,
                    threads,
                    batch: 128,
                    master_seed: 7,
                };
                let out =
                    ingest_sharded(&registry_ctor("count_min", params.clone()), &updates, &cfg)
                        .unwrap();
                assert_eq!(
                    out.merged.query_dyn(),
                    single.query_dyn(),
                    "{partition:?} threads {threads}"
                );
                assert_eq!(out.merged.space_bits_dyn(), single.space_bits_dyn());
                assert_eq!(out.stats.total(), 4000);
                if threads == 1 {
                    assert_eq!(out.stats.total_stalls(), 0, "inline mode has no queues");
                }
            }
        }
    }

    #[test]
    fn sharded_counter_summary_is_deterministic_and_within_guarantee() {
        let params = Params::default().with_n(1 << 10);
        let updates = zipfish(6000, 1 << 10);
        let cfg = |threads| ShardConfig {
            shards: 8,
            partition: Partition::Hash,
            threads,
            batch: 256,
            master_seed: 3,
        };
        let a = ingest_sharded(
            &registry_ctor("misra_gries", params.clone()),
            &updates,
            &cfg(1),
        )
        .unwrap();
        let b = ingest_sharded(
            &registry_ctor("misra_gries", params.clone()),
            &updates,
            &cfg(8),
        )
        .unwrap();
        assert_eq!(
            a.merged.query_dyn(),
            b.merged.query_dyn(),
            "thread count leaked into the merged state"
        );
        // Items 1 (50%) and 2 (30%) are heavy and must be reported.
        let items = a.merged.query_dyn();
        let reported: Vec<u64> = items.as_items().unwrap().iter().map(|&(i, _)| i).collect();
        assert!(
            reported.contains(&1) && reported.contains(&2),
            "{reported:?}"
        );
    }

    #[test]
    fn unmergeable_algorithms_probe_false_and_error_on_ingest() {
        let params = Params::default().with_n(1 << 10);
        let ctor = registry_ctor("morris", params);
        assert!(!probe_mergeable(&ctor).unwrap());
        let cfg = ShardConfig {
            shards: 2,
            ..ShardConfig::default()
        };
        let err = match ingest_sharded(&ctor, &zipfish(64, 1 << 10), &cfg) {
            Ok(_) => panic!("unmergeable multi-shard ingest must error"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("no sound merge"), "{err}");
    }

    #[test]
    fn mergeable_probe_accepts_the_mergeable_registry_subset() {
        let params = Params::default().with_n(1 << 10);
        for name in [
            "misra_gries",
            "space_saving",
            "count_min",
            "ams_f2",
            "exact_l0",
        ] {
            assert!(
                probe_mergeable(&registry_ctor(name, params.clone())).unwrap(),
                "{name} should merge"
            );
        }
        for name in ["morris", "median_morris", "robust_hh", "sis_l0"] {
            assert!(
                !probe_mergeable(&registry_ctor(name, params.clone())).unwrap(),
                "{name} should refuse to merge"
            );
        }
    }

    #[test]
    fn single_shard_is_a_plain_pass_through() {
        let params = Params::default().with_n(256);
        let updates = zipfish(512, 256);
        let cfg = ShardConfig::default();
        let out = ingest_sharded(
            &registry_ctor("space_saving", params.clone()),
            &updates,
            &cfg,
        )
        .unwrap();
        let mut single = registry::get("space_saving", &params).unwrap();
        let mut rng = TranscriptRng::from_seed(cfg.shard_seed(0));
        for chunk in updates.chunks(cfg.batch) {
            single.process_batch_dyn(chunk, &mut rng).unwrap();
        }
        assert_eq!(out.merged.query_dyn(), single.query_dyn());
        assert_eq!(out.stats.loads, vec![512]);
        assert_eq!(out.stats.skew(), 1.0);
    }

    #[test]
    fn pipeline_matches_one_shot_ingest_across_push_granularities() {
        // Feeding the same stream through a long-lived ShardPipeline in
        // arbitrary request sizes must end in exactly the one-shot state:
        // chunk boundaries are pure transport.
        let params = Params::default().with_n(1 << 10);
        let updates = zipfish(3000, 1 << 10);
        let cfg = ShardConfig {
            shards: 4,
            partition: Partition::Hash,
            threads: 1,
            batch: 128,
            master_seed: 11,
        };
        let ctor = registry_ctor("misra_gries", params.clone());
        let offline = ingest_sharded(&ctor, &updates, &cfg).unwrap();
        for granularity in [1usize, 7, 128, 1000] {
            let mut p = ShardPipeline::new(&ctor, &cfg).unwrap();
            for piece in updates.chunks(granularity) {
                p.push(piece);
            }
            assert_eq!(p.routed(), 3000);
            let out = p.finish().unwrap();
            assert_eq!(
                out.merged.query_dyn(),
                offline.merged.query_dyn(),
                "granularity {granularity}"
            );
            assert_eq!(out.stats, offline.stats, "granularity {granularity}");
        }
    }

    #[test]
    fn pipeline_snapshot_is_non_destructive_and_matches_finish() {
        let params = Params::default().with_n(1 << 10);
        let updates = zipfish(2000, 1 << 10);
        let cfg = ShardConfig {
            shards: 4,
            partition: Partition::Hash,
            threads: 1,
            batch: 64,
            master_seed: 5,
        };
        for name in ["misra_gries", "count_min", "exact_l0"] {
            let ctor = registry_ctor(name, params.clone());
            let mut p = ShardPipeline::new(&ctor, &cfg).unwrap();
            p.push(&updates[..1000]);
            // A mid-stream snapshot answers like an offline run of the
            // prefix...
            let mid = p.snapshot_merged(&ctor).unwrap();
            let mid_offline = ingest_sharded(&ctor, &updates[..1000], &cfg).unwrap();
            assert_eq!(mid.query_dyn(), mid_offline.merged.query_dyn(), "{name}");
            // ...and never perturbs the live shard states: keep ingesting
            // and both the next snapshot and the destructive finish agree
            // with the full offline run.
            p.push(&updates[1000..]);
            let full = p.snapshot_merged(&ctor).unwrap();
            let offline = ingest_sharded(&ctor, &updates, &cfg).unwrap();
            assert_eq!(full.query_dyn(), offline.merged.query_dyn(), "{name}");
            let out = p.finish().unwrap();
            assert_eq!(out.merged.query_dyn(), offline.merged.query_dyn(), "{name}");
        }
    }

    #[test]
    fn pipeline_checkpoint_resume_matches_uninterrupted() {
        // Kill-and-resume fidelity: checkpoint mid-stream at an offset that
        // is not batch-aligned, restore into a twin, continue with the rest
        // of the stream, and the final merged answer (and stats) must be
        // identical to the uninterrupted pipeline.
        let params = Params::default().with_n(1 << 10);
        let updates = zipfish(3000, 1 << 10);
        let cfg = ShardConfig {
            shards: 4,
            partition: Partition::Hash,
            threads: 1,
            batch: 128,
            master_seed: 13,
        };
        for name in ["misra_gries", "count_min", "exact_l0", "ams_f2"] {
            let ctor = registry_ctor(name, params.clone());
            let mut uninterrupted = ShardPipeline::new(&ctor, &cfg).unwrap();
            uninterrupted.push(&updates);
            let expected = uninterrupted.finish().unwrap();

            let mut first = ShardPipeline::new(&ctor, &cfg).unwrap();
            first.push(&updates[..1357]);
            let frame = first.checkpoint().unwrap();
            drop(first); // the "killed" process

            let mut resumed = ShardPipeline::new(&ctor, &cfg).unwrap();
            resumed.resume(&frame).unwrap();
            assert_eq!(resumed.routed(), 1357, "{name}");
            resumed.push(&updates[1357..]);
            let out = resumed.finish().unwrap();
            assert_eq!(
                out.merged.query_dyn(),
                expected.merged.query_dyn(),
                "{name}"
            );
            assert_eq!(out.stats, expected.stats, "{name}");
        }
    }

    #[test]
    fn pipeline_resume_rejects_config_mismatches() {
        let params = Params::default().with_n(1 << 10);
        let ctor = registry_ctor("count_min", params);
        let cfg = ShardConfig {
            shards: 4,
            partition: Partition::Hash,
            threads: 1,
            batch: 128,
            master_seed: 13,
        };
        let mut p = ShardPipeline::new(&ctor, &cfg).unwrap();
        p.push(&zipfish(500, 1 << 10));
        let frame = p.checkpoint().unwrap();
        for wrong in [
            ShardConfig {
                shards: 2,
                ..cfg.clone()
            },
            ShardConfig {
                partition: Partition::RoundRobin,
                ..cfg.clone()
            },
            ShardConfig {
                batch: 64,
                ..cfg.clone()
            },
        ] {
            let mut twin = ShardPipeline::new(&ctor, &wrong).unwrap();
            assert!(
                matches!(twin.resume(&frame), Err(SnapError::Mismatch { .. })),
                "shards={} partition={} batch={}",
                wrong.shards,
                wrong.partition.label(),
                wrong.batch
            );
        }
        // Truncated frames are Truncated, not panics.
        let mut twin = ShardPipeline::new(&ctor, &cfg).unwrap();
        assert!(twin.resume(&frame[..frame.len() / 2]).is_err());
    }

    #[test]
    fn pipeline_reports_shard_annotated_failures() {
        // Deletions offered to an insertion-only summary must surface the
        // lowest shard's first failure, annotated with shard and offset —
        // exactly as the one-shot path reports it — and pushes after every
        // shard has failed must be harmless no-ops.
        let params = Params::default().with_n(1 << 10);
        let ctor = registry_ctor("misra_gries", params);
        let cfg = ShardConfig {
            shards: 2,
            partition: Partition::RoundRobin,
            threads: 1,
            batch: 4,
            master_seed: 9,
        };
        let mut p = ShardPipeline::new(&ctor, &cfg).unwrap();
        let deletions: Vec<Update> = (0..32)
            .map(|i| Update::Turnstile { item: i, delta: -1 })
            .collect();
        p.push(&deletions);
        assert!(p.all_failed());
        assert!(p.first_failure().is_some());
        let routed = p.routed();
        assert!(routed < 32, "routing must stop once every shard failed");
        p.push(&deletions); // no-op past the point of total failure
        assert_eq!(p.routed(), routed);
        let err = match p.finish() {
            Ok(_) => panic!("finish must report the failure"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("shard 0"), "{err}");
    }
}
