//! Sharded ingestion: one logical stream, `S` shard instances, one merged
//! answer — the first end-to-end scale-out path in the workspace.
//!
//! The pipeline partitions an erased [`Update`] stream across `S`
//! identically-constructed instances of one algorithm, ingests every shard
//! independently (in parallel on the engine [pool](crate::pool), each
//! through the batched [`DynStreamAlg::process_batch_dyn`] path), and then
//! folds the shard states together with [`DynStreamAlg::merge_dyn`] in a
//! **deterministic reduction tree**: level by level, shard `2i+1` merges
//! into shard `2i`. Which *worker thread* ran which shard is invisible —
//! shard seeds derive from the master seed via
//! [`derive_seed`]`(master, ["shard", i])`, merges happen in fixed tree
//! order on the caller's thread, and the pool returns results in submission
//! order — so the merged instance is a pure function of
//! `(stream, algorithm, S, partition, master_seed)`, byte-identical for
//! every thread count.
//!
//! **White-box caveat.** Sharding never weakens the paper's adversary — it
//! strengthens it: the adversary observes *every* shard's internal state
//! and every shard's randomness tape (each tape's seed is public and
//! derived from public inputs). Only algorithms whose robustness argument
//! tolerates full state exposure merge soundly; see
//! [`wb_core::merge::Mergeable`] for the contract and
//! [`MergeError::Unmergeable`] for the refusals.

use crate::erased::{DynStreamAlg, Update};
use crate::pool::{self, Job};
use wb_core::merge::MergeError;
use wb_core::rng::{derive_seed, SplitMix64, TranscriptRng};
use wb_core::WbError;

/// How updates are routed to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// By item hash: every occurrence of an item lands on the same shard
    /// (SplitMix64 of the item id, mod `S`). The right choice for counter
    /// summaries — each shard sees a disjoint sub-universe, so per-item
    /// mass is never split across summaries.
    Hash,
    /// By position: update `j` goes to shard `j mod S`. Spreads load
    /// perfectly evenly; items smear across shards, which linear sketches
    /// absorb exactly and counter summaries absorb within their merge
    /// error.
    RoundRobin,
}

impl Partition {
    /// Stable lowercase label for reports and flags.
    pub fn label(&self) -> &'static str {
        match self {
            Partition::Hash => "hash",
            Partition::RoundRobin => "round_robin",
        }
    }
}

/// Configuration of one sharded ingestion run.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shard instances `S ≥ 1`.
    pub shards: usize,
    /// Routing rule.
    pub partition: Partition,
    /// Worker threads (`0` = one per core, `1` = fully inline).
    pub threads: usize,
    /// Chunk size for each shard's batched ingestion.
    pub batch: usize,
    /// Master seed; shard `i`'s random tape is seeded with
    /// `derive_seed(master_seed, ["shard", i])`.
    pub master_seed: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            partition: Partition::Hash,
            threads: 0,
            batch: 256,
            master_seed: 42,
        }
    }
}

impl ShardConfig {
    /// The derived public seed of shard `i`'s random tape.
    pub fn shard_seed(&self, shard: usize) -> u64 {
        derive_seed(self.master_seed, &["shard", &shard.to_string()])
    }
}

/// The shard index of `item` under hash partitioning.
pub fn hash_shard(item: u64, shards: usize) -> usize {
    (SplitMix64::new(item).next_u64() % shards as u64) as usize
}

/// Split `updates` into `S` per-shard buckets, preserving relative order
/// within each bucket.
pub fn partition_updates(
    updates: &[Update],
    shards: usize,
    partition: Partition,
) -> Vec<Vec<Update>> {
    let shards = shards.max(1);
    let mut buckets: Vec<Vec<Update>> = (0..shards)
        .map(|_| Vec::with_capacity(updates.len() / shards + 1))
        .collect();
    for (j, u) in updates.iter().enumerate() {
        let s = match partition {
            Partition::Hash => hash_shard(u.item(), shards),
            Partition::RoundRobin => j % shards,
        };
        buckets[s].push(*u);
    }
    buckets
}

/// Fold `instances` into one by a deterministic reduction tree: at every
/// level, instance `2i+1` merges into instance `2i`; survivors repeat until
/// one remains. Equivalent to a left fold in outcome for associative
/// merges, but the tree shape is part of the contract so reports stay
/// byte-identical as the shard count varies only with `S`, never with the
/// thread count.
pub fn merge_reduce(
    mut instances: Vec<Box<dyn DynStreamAlg>>,
) -> Result<Box<dyn DynStreamAlg>, MergeError> {
    assert!(!instances.is_empty(), "nothing to reduce");
    while instances.len() > 1 {
        let mut next = Vec::with_capacity(instances.len().div_ceil(2));
        let mut iter = instances.into_iter();
        while let Some(mut left) = iter.next() {
            if let Some(right) = iter.next() {
                left.merge_dyn(right.as_ref())?;
            }
            next.push(left);
        }
        instances = next;
    }
    Ok(instances.pop().expect("one instance remains"))
}

/// Outcome of [`ingest_sharded`]: the merged instance plus how the stream
/// was spread.
pub struct ShardedIngest {
    /// The merged algorithm holding the whole stream's summary.
    pub merged: Box<dyn DynStreamAlg>,
    /// Updates routed to each shard (diagnostics; sums to the stream
    /// length).
    pub shard_loads: Vec<usize>,
}

/// Ingest `updates` across `cfg.shards` instances built by `ctor` and
/// return the merged result.
///
/// `ctor(i)` must build shard `i`'s instance; for seeded sketches
/// (CountMin, AmsF2) every shard must be constructed from the **same**
/// public seed or the merge will report
/// [`MergeError::Incompatible`]. Model mismatches during ingestion (e.g. a
/// deletion offered to an insertion-only sketch) surface as the underlying
/// [`WbError`]; merge refusals are mapped into [`WbError::InvalidParameter`]
/// with the typed error's message (probe with [`probe_mergeable`] first to
/// branch on mergeability without paying for ingestion).
pub fn ingest_sharded(
    ctor: &dyn Fn(usize) -> Result<Box<dyn DynStreamAlg>, WbError>,
    updates: &[Update],
    cfg: &ShardConfig,
) -> Result<ShardedIngest, WbError> {
    let shards = cfg.shards.max(1);
    let batch = cfg.batch.max(1);
    let buckets = partition_updates(updates, shards, cfg.partition);
    let shard_loads: Vec<usize> = buckets.iter().map(Vec::len).collect();
    let instances: Result<Vec<Box<dyn DynStreamAlg>>, WbError> = (0..shards).map(ctor).collect();
    let instances = instances?;

    let jobs: Vec<Job<Result<Box<dyn DynStreamAlg>, WbError>>> = instances
        .into_iter()
        .zip(buckets)
        .enumerate()
        .map(
            |(i, (mut alg, bucket))| -> Job<Result<Box<dyn DynStreamAlg>, WbError>> {
                let seed = cfg.shard_seed(i);
                Box::new(move || {
                    let mut rng = TranscriptRng::from_seed(seed);
                    for chunk in bucket.chunks(batch) {
                        alg.process_batch_dyn(chunk, &mut rng)?;
                    }
                    Ok(alg)
                })
            },
        )
        .collect();
    let ingested: Result<Vec<Box<dyn DynStreamAlg>>, WbError> =
        pool::run_ordered(jobs, pool::effective_threads(cfg.threads))
            .into_iter()
            .collect();
    let merged =
        merge_reduce(ingested?).map_err(|e| WbError::invalid(format!("sharded merge: {e}")))?;
    Ok(ShardedIngest {
        merged,
        shard_loads,
    })
}

/// `true` iff instances built by `ctor` can merge: constructs two fresh
/// instances and trial-merges them empty. Unmergeable algorithms and
/// parameter-incompatible constructions both return `false`; construction
/// failures propagate.
pub fn probe_mergeable(
    ctor: &dyn Fn(usize) -> Result<Box<dyn DynStreamAlg>, WbError>,
) -> Result<bool, WbError> {
    let mut a = ctor(0)?;
    let b = ctor(0)?;
    Ok(a.merge_dyn(b.as_ref()).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{self, Params};

    fn registry_ctor(
        name: &'static str,
        params: Params,
    ) -> impl Fn(usize) -> Result<Box<dyn DynStreamAlg>, WbError> {
        move |_shard| registry::get(name, &params)
    }

    fn zipfish(m: u64, n: u64) -> Vec<Update> {
        (0..m)
            .map(|t| {
                Update::Insert(match t % 10 {
                    0..=4 => 1,
                    5..=7 => 2,
                    _ => (t.wrapping_mul(2654435761)) % n,
                })
            })
            .collect()
    }

    #[test]
    fn partitions_cover_the_stream_exactly() {
        let updates = zipfish(1000, 1 << 10);
        for partition in [Partition::Hash, Partition::RoundRobin] {
            let buckets = partition_updates(&updates, 4, partition);
            assert_eq!(buckets.len(), 4);
            assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 1000);
            if partition == Partition::Hash {
                // Same item, same shard — across all buckets.
                for (s, bucket) in buckets.iter().enumerate() {
                    for u in bucket {
                        assert_eq!(hash_shard(u.item(), 4), s);
                    }
                }
            } else {
                // Round-robin: bucket sizes differ by at most one.
                let (min, max) = (
                    buckets.iter().map(Vec::len).min().unwrap(),
                    buckets.iter().map(Vec::len).max().unwrap(),
                );
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn sharded_linear_sketch_equals_single_stream_exactly() {
        // CountMin is linear: the merged table must be bit-identical to
        // single-stream ingestion, for both partitions and any threads.
        let params = Params::default().with_n(1 << 10);
        let updates = zipfish(4000, 1 << 10);
        let mut single = registry::get("count_min", &params).unwrap();
        let mut rng = TranscriptRng::from_seed(1);
        single.process_batch_dyn(&updates, &mut rng).unwrap();
        for partition in [Partition::Hash, Partition::RoundRobin] {
            for threads in [1usize, 4] {
                let cfg = ShardConfig {
                    shards: 4,
                    partition,
                    threads,
                    batch: 128,
                    master_seed: 7,
                };
                let out =
                    ingest_sharded(&registry_ctor("count_min", params.clone()), &updates, &cfg)
                        .unwrap();
                assert_eq!(
                    out.merged.query_dyn(),
                    single.query_dyn(),
                    "{partition:?} threads {threads}"
                );
                assert_eq!(out.merged.space_bits_dyn(), single.space_bits_dyn());
                assert_eq!(out.shard_loads.iter().sum::<usize>(), 4000);
            }
        }
    }

    #[test]
    fn sharded_counter_summary_is_deterministic_and_within_guarantee() {
        let params = Params::default().with_n(1 << 10);
        let updates = zipfish(6000, 1 << 10);
        let cfg = |threads| ShardConfig {
            shards: 8,
            partition: Partition::Hash,
            threads,
            batch: 256,
            master_seed: 3,
        };
        let a = ingest_sharded(
            &registry_ctor("misra_gries", params.clone()),
            &updates,
            &cfg(1),
        )
        .unwrap();
        let b = ingest_sharded(
            &registry_ctor("misra_gries", params.clone()),
            &updates,
            &cfg(8),
        )
        .unwrap();
        assert_eq!(
            a.merged.query_dyn(),
            b.merged.query_dyn(),
            "thread count leaked into the merged state"
        );
        // Items 1 (50%) and 2 (30%) are heavy and must be reported.
        let items = a.merged.query_dyn();
        let reported: Vec<u64> = items.as_items().unwrap().iter().map(|&(i, _)| i).collect();
        assert!(
            reported.contains(&1) && reported.contains(&2),
            "{reported:?}"
        );
    }

    #[test]
    fn unmergeable_algorithms_probe_false_and_error_on_ingest() {
        let params = Params::default().with_n(1 << 10);
        let ctor = registry_ctor("morris", params);
        assert!(!probe_mergeable(&ctor).unwrap());
        let cfg = ShardConfig {
            shards: 2,
            ..ShardConfig::default()
        };
        let err = match ingest_sharded(&ctor, &zipfish(64, 1 << 10), &cfg) {
            Ok(_) => panic!("unmergeable multi-shard ingest must error"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("no sound merge"), "{err}");
    }

    #[test]
    fn mergeable_probe_accepts_the_mergeable_registry_subset() {
        let params = Params::default().with_n(1 << 10);
        for name in [
            "misra_gries",
            "space_saving",
            "count_min",
            "ams_f2",
            "exact_l0",
        ] {
            assert!(
                probe_mergeable(&registry_ctor(name, params.clone())).unwrap(),
                "{name} should merge"
            );
        }
        for name in ["morris", "median_morris", "robust_hh", "sis_l0"] {
            assert!(
                !probe_mergeable(&registry_ctor(name, params.clone())).unwrap(),
                "{name} should refuse to merge"
            );
        }
    }

    #[test]
    fn single_shard_is_a_plain_pass_through() {
        let params = Params::default().with_n(256);
        let updates = zipfish(512, 256);
        let cfg = ShardConfig::default();
        let out = ingest_sharded(
            &registry_ctor("space_saving", params.clone()),
            &updates,
            &cfg,
        )
        .unwrap();
        let mut single = registry::get("space_saving", &params).unwrap();
        let mut rng = TranscriptRng::from_seed(cfg.shard_seed(0));
        for chunk in updates.chunks(cfg.batch) {
            single.process_batch_dyn(chunk, &mut rng).unwrap();
        }
        assert_eq!(out.merged.query_dyn(), single.query_dyn());
        assert_eq!(out.shard_loads, vec![512]);
    }
}
