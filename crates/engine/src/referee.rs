//! Erased referees: ground-truth checkers over the [`Update`]/[`Answer`]
//! enums, reusing the exact verdict logic of `wb_core::referee` so that
//! "ok" columns in experiment tables mean the same thing as game verdicts.

use crate::erased::{Answer, Update, MAX_DELTA_EXPANSION};
use wb_core::game::Verdict;
use wb_core::referee::{ApproxCountReferee, HeavyHitterReferee, L0SandwichReferee};
use wb_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

/// Object-safe referee over erased updates and answers.
///
/// `Send` is a supertrait so erased games (algorithm, adversary, referee)
/// can run on the [tournament](crate::tournament) worker threads; all
/// ground-truth state here is plain owned data, so every referee qualifies.
pub trait DynReferee: Send {
    /// Observe one update that is about to be processed.
    fn observe(&mut self, update: &Update);

    /// Observe a batch at once. The default loops; implementations with a
    /// [`wb_core::stream::FrequencyVector`] ground truth override this with
    /// its aggregated batch path.
    fn observe_batch(&mut self, updates: &[Update]) {
        for u in updates {
            self.observe(u);
        }
    }

    /// Judge the answer after round `t`.
    fn check(&mut self, t: u64, answer: &Answer) -> Verdict;

    /// Serialize the referee's ground-truth state into a self-describing
    /// frame (`magic | version | label | state`), so checkpoints capture
    /// the verdict machinery alongside the algorithm and a resumed run
    /// judges exactly as the uninterrupted one would.
    fn snapshot_dyn(&self) -> Result<Vec<u8>, SnapError>;

    /// Restore ground truth from a [`DynReferee::snapshot_dyn`] frame taken
    /// from a referee built from the same [`RefereeSpec`]. The embedded
    /// label is validated before any state is touched.
    fn restore_dyn(&mut self, bytes: &[u8]) -> Result<(), SnapError>;
}

/// Open a referee snapshot frame and validate its embedded label.
fn open_referee_frame<'a>(
    bytes: &'a [u8],
    expected: &'static str,
) -> Result<SnapReader<'a>, SnapError> {
    let mut r = SnapReader::new(bytes)?;
    let found = r.take_str()?;
    if found != expected {
        return Err(SnapError::mismatch(expected, found));
    }
    Ok(r)
}

/// Declarative referee selection for registry-driven games.
#[derive(Debug, Clone)]
pub enum RefereeSpec {
    /// `ε`-L1-heavy-hitters guarantee (optionally the `(φ, ε)` variant),
    /// checked by [`HeavyHitterReferee`]. Insertion-only streams.
    HeavyHitters {
        /// Report threshold: items above `eps·‖f‖₁` must be reported.
        eps: f64,
        /// Additive estimate tolerance as a fraction of `‖f‖₁`.
        tol: f64,
        /// Optional `(φ, ε)` false-positive floor.
        phi: Option<f64>,
        /// Rounds to skip before checking.
        grace: u64,
    },
    /// `(1±ε)`-approximate stream-length counting
    /// ([`ApproxCountReferee`]).
    ApproxCount {
        /// Relative tolerance.
        eps: f64,
    },
    /// `answer ≤ L0 ≤ answer·factor` sandwich ([`L0SandwichReferee`]).
    /// Turnstile streams.
    L0Sandwich {
        /// Multiplicative gap (`n^ε` in Theorem 1.5).
        factor: f64,
    },
    /// Accept everything (throughput runs, attack demonstrations).
    Accept,
}

impl RefereeSpec {
    /// Build the erased referee.
    pub fn build(&self) -> Box<dyn DynReferee> {
        match *self {
            RefereeSpec::HeavyHitters {
                eps,
                tol,
                phi,
                grace,
            } => {
                let mut inner = HeavyHitterReferee::new(eps, tol).with_grace(grace);
                if let Some(phi) = phi {
                    inner = inner.with_phi(phi);
                }
                Box::new(ErasedHh {
                    inner,
                    model_violation: None,
                })
            }
            RefereeSpec::ApproxCount { eps } => Box::new(ErasedCount {
                inner: ApproxCountReferee::new(eps),
            }),
            RefereeSpec::L0Sandwich { factor } => Box::new(ErasedL0 {
                inner: L0SandwichReferee::new(factor),
            }),
            RefereeSpec::Accept => Box::new(AcceptAllDyn),
        }
    }

    /// Short name for report lines.
    pub fn label(&self) -> &'static str {
        match self {
            RefereeSpec::HeavyHitters { .. } => "heavy_hitters",
            RefereeSpec::ApproxCount { .. } => "approx_count",
            RefereeSpec::L0Sandwich { .. } => "l0_sandwich",
            RefereeSpec::Accept => "accept",
        }
    }
}

/// Heavy-hitter referee over erased updates. Insertion-only: positive
/// turnstile deltas are accepted as that many insertions (mirroring the
/// expansion the erased algorithm layer applies), anything else is a
/// violation at the next check (the guarantee under test is undefined for
/// deletions).
struct ErasedHh {
    inner: HeavyHitterReferee,
    /// Set when a non-insertion update reaches this insertion-only
    /// referee; reported at the next check.
    model_violation: Option<String>,
}

impl ErasedHh {
    fn observe_one(&mut self, update: &Update) {
        let delta = update.delta();
        if (1..=MAX_DELTA_EXPANSION as i64).contains(&delta) {
            for _ in 0..delta {
                self.inner.observe_item(update.item());
            }
        } else if self.model_violation.is_none() {
            self.model_violation = Some(format!(
                "insertion-only heavy-hitter referee observed {update:?}"
            ));
        }
    }
}

impl DynReferee for ErasedHh {
    fn observe(&mut self, update: &Update) {
        self.observe_one(update);
    }

    fn observe_batch(&mut self, updates: &[Update]) {
        if updates.iter().all(|u| u.delta() == 1) {
            let items: Vec<u64> = updates.iter().map(Update::item).collect();
            self.inner.observe_items(&items);
        } else {
            for u in updates {
                self.observe_one(u);
            }
        }
    }

    fn check(&mut self, t: u64, answer: &Answer) -> Verdict {
        if let Some(msg) = &self.model_violation {
            return Verdict::violation(format!("round {t}: {msg}"));
        }
        match answer.as_items() {
            Some(items) => self.inner.judge(t, items),
            None => Verdict::violation(format!(
                "round {t}: heavy-hitter referee got a non-list answer {answer:?}"
            )),
        }
    }

    fn snapshot_dyn(&self) -> Result<Vec<u8>, SnapError> {
        let mut w = SnapWriter::new();
        w.put_str("heavy_hitters");
        match &self.model_violation {
            Some(msg) => {
                w.put_bool(true);
                w.put_str(msg);
            }
            None => w.put_bool(false),
        }
        self.inner.snap(&mut w);
        Ok(w.finish())
    }

    fn restore_dyn(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = open_referee_frame(bytes, "heavy_hitters")?;
        self.model_violation = if r.take_bool()? {
            Some(r.take_str()?)
        } else {
            None
        };
        self.inner.restore(&mut r)?;
        r.finish()
    }
}

/// Approximate-counting referee over erased updates.
struct ErasedCount {
    inner: ApproxCountReferee,
}

impl DynReferee for ErasedCount {
    fn observe(&mut self, _update: &Update) {
        self.inner.observe_count(1);
    }

    fn observe_batch(&mut self, updates: &[Update]) {
        self.inner.observe_count(updates.len() as u64);
    }

    fn check(&mut self, t: u64, answer: &Answer) -> Verdict {
        match answer.as_scalar() {
            Some(est) => self.inner.judge(t, est),
            None => Verdict::violation(format!(
                "round {t}: counting referee got a non-scalar answer {answer:?}"
            )),
        }
    }

    fn snapshot_dyn(&self) -> Result<Vec<u8>, SnapError> {
        let mut w = SnapWriter::new();
        w.put_str("approx_count");
        self.inner.snap(&mut w);
        Ok(w.finish())
    }

    fn restore_dyn(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = open_referee_frame(bytes, "approx_count")?;
        self.inner.restore(&mut r)?;
        r.finish()
    }
}

/// L0-sandwich referee over erased updates.
struct ErasedL0 {
    inner: L0SandwichReferee,
}

impl DynReferee for ErasedL0 {
    fn observe(&mut self, update: &Update) {
        self.inner.observe_update(update.item(), update.delta());
    }

    fn observe_batch(&mut self, updates: &[Update]) {
        let pairs: Vec<(u64, i64)> = updates.iter().map(|u| (u.item(), u.delta())).collect();
        self.inner.observe_updates(&pairs);
    }

    fn check(&mut self, t: u64, answer: &Answer) -> Verdict {
        match answer.as_count() {
            Some(c) => self.inner.judge(t, c),
            None => Verdict::violation(format!(
                "round {t}: L0 referee got a non-count answer {answer:?}"
            )),
        }
    }

    fn snapshot_dyn(&self) -> Result<Vec<u8>, SnapError> {
        let mut w = SnapWriter::new();
        w.put_str("l0_sandwich");
        self.inner.snap(&mut w);
        Ok(w.finish())
    }

    fn restore_dyn(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = open_referee_frame(bytes, "l0_sandwich")?;
        self.inner.restore(&mut r)?;
        r.finish()
    }
}

/// Accept-everything referee.
struct AcceptAllDyn;

impl DynReferee for AcceptAllDyn {
    fn observe(&mut self, _update: &Update) {}

    fn check(&mut self, _t: u64, _answer: &Answer) -> Verdict {
        Verdict::Correct
    }

    fn snapshot_dyn(&self) -> Result<Vec<u8>, SnapError> {
        let mut w = SnapWriter::new();
        w.put_str("accept");
        Ok(w.finish())
    }

    fn restore_dyn(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let r = open_referee_frame(bytes, "accept")?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hh_spec_judges_like_core_referee() {
        let mut r = RefereeSpec::HeavyHitters {
            eps: 0.1,
            tol: 0.1,
            phi: None,
            grace: 0,
        }
        .build();
        let ups: Vec<Update> = (0..90).map(|_| Update::Insert(1)).collect();
        r.observe_batch(&ups);
        for _ in 0..10 {
            r.observe(&Update::Insert(2));
        }
        // Item 1 is heavy and missing: violation.
        let bad = Answer::Items(vec![(2, 10.0)]);
        assert!(!r.check(100, &bad).is_correct());
        let good = Answer::Items(vec![(1, 88.0), (2, 10.0)]);
        assert!(r.check(100, &good).is_correct());
        // Answer-shape mismatch is a violation, not a panic.
        assert!(!r.check(100, &Answer::Scalar(1.0)).is_correct());
    }

    #[test]
    fn hh_spec_counts_positive_deltas_as_weighted_insertions() {
        // Mirrors the erased layer's delta expansion: Turnstile{delta: w>0}
        // is w insertions for ground truth too, not a model violation.
        let mut r = RefereeSpec::HeavyHitters {
            eps: 0.1,
            tol: 0.1,
            phi: None,
            grace: 0,
        }
        .build();
        r.observe(&Update::Turnstile { item: 1, delta: 90 });
        r.observe_batch(&[Update::Turnstile { item: 2, delta: 10 }]);
        assert!(r
            .check(100, &Answer::Items(vec![(1, 90.0), (2, 10.0)]))
            .is_correct());
        // Item 1 is heavy (f = 90 of 100): omitting it is a violation.
        assert!(!r.check(100, &Answer::Items(vec![(2, 10.0)])).is_correct());
    }

    #[test]
    fn hh_spec_flags_non_insertion_updates() {
        let mut r = RefereeSpec::HeavyHitters {
            eps: 0.1,
            tol: 0.1,
            phi: None,
            grace: 0,
        }
        .build();
        r.observe(&Update::Insert(1));
        r.observe(&Update::Turnstile { item: 1, delta: -1 });
        let v = r.check(2, &Answer::Items(vec![(1, 1.0)]));
        assert!(!v.is_correct(), "deletion must surface as a violation");
    }

    #[test]
    fn count_spec_bounds() {
        let mut r = RefereeSpec::ApproxCount { eps: 0.1 }.build();
        let ups: Vec<Update> = (0..1000).map(Update::Insert).collect();
        r.observe_batch(&ups);
        assert!(r.check(1000, &Answer::Scalar(1000.0)).is_correct());
        assert!(!r.check(1000, &Answer::Scalar(500.0)).is_correct());
    }

    #[test]
    fn l0_spec_sandwich() {
        let mut r = RefereeSpec::L0Sandwich { factor: 4.0 }.build();
        let ups: Vec<Update> = (0..8)
            .map(|i| Update::Turnstile { item: i, delta: 1 })
            .collect();
        r.observe_batch(&ups);
        assert!(r.check(8, &Answer::Count(8)).is_correct());
        assert!(r.check(8, &Answer::Count(2)).is_correct());
        assert!(!r.check(8, &Answer::Count(9)).is_correct());
        assert!(!r.check(8, &Answer::Count(1)).is_correct());
    }

    #[test]
    fn accept_spec_accepts() {
        let mut r = RefereeSpec::Accept.build();
        r.observe(&Update::Insert(1));
        assert!(r.check(1, &Answer::Count(999)).is_correct());
        assert_eq!(RefereeSpec::Accept.label(), "accept");
    }
}
