//! The fluent game builder — the single typed entry point for driving a
//! white-box adversarial game.
//!
//! ```
//! use wb_engine::{Game, RecordingObserver};
//! use wb_core::game::{FnReferee, ScriptAdversary, Verdict};
//! use wb_core::stream::InsertOnly;
//! use wb_sketch::MisraGries;
//!
//! let script: Vec<InsertOnly> = (0..500).map(|t| InsertOnly(t % 4)).collect();
//! let mut timeline = RecordingObserver::new();
//! let report = Game::new(MisraGries::new(0.1, 1 << 10))
//!     .adversary(ScriptAdversary::new(script))
//!     .referee(FnReferee::new(|_t, _out: &Vec<(u64, f64)>| Verdict::Correct))
//!     .max_rounds(500)
//!     .seed(7)
//!     .observer(&mut timeline)
//!     .run();
//! assert!(report.survived());
//! assert_eq!(report.result.rounds, 500);
//! assert_eq!(timeline.rounds.len(), 500);
//! ```
//!
//! Replaces the positional `wb_core::game::run_game(alg, adv, referee, m,
//! seed)` call (kept as a deprecated shim); adds [`Observer`] hooks,
//! structured [`GameReport`]s with space/verdict timelines, and a batched
//! ingestion path for oblivious scripts ([`Game::script`] +
//! [`Game::batch`]).

use crate::report::GameReport;
use wb_core::game::{Referee, Verdict, WhiteBoxAdversary};
use wb_core::rng::{RandTranscript, TranscriptRng};
use wb_core::space::SpaceUsage;
use wb_core::stream::StreamAlg;

/// Default round cap when [`Game::max_rounds`] is not called: generous for
/// experiments, finite so an adversary that never stops cannot hang a run.
pub const DEFAULT_MAX_ROUNDS: u64 = 1 << 20;

/// Per-round hook into an engine-driven game.
///
/// All methods have no-op defaults; implement what you need. Observers are
/// usually attached by mutable reference ([`Game::observer`] accepts
/// `&mut O`) so the caller keeps the collected data after the game.
pub trait Observer<A: StreamAlg> {
    /// Called for every update before the algorithm processes it.
    fn on_update(&mut self, t: u64, update: &A::Update) {
        let _ = (t, update);
    }

    /// Called after every referee check (per round in the adaptive game,
    /// per batch boundary under batched ingestion).
    fn on_round(&mut self, t: u64, output: &A::Output, verdict: &Verdict, space_bits: u64) {
        let _ = (t, output, verdict, space_bits);
    }
}

/// The do-nothing default observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl<A: StreamAlg> Observer<A> for NullObserver {}

impl<A: StreamAlg, O: Observer<A>> Observer<A> for &mut O {
    fn on_update(&mut self, t: u64, update: &A::Update) {
        (**self).on_update(t, update);
    }

    fn on_round(&mut self, t: u64, output: &A::Output, verdict: &Verdict, space_bits: u64) {
        (**self).on_round(t, output, verdict, space_bits);
    }
}

/// One checked round as seen by a [`RecordingObserver`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord {
    /// Round index (1-indexed update count at the check).
    pub t: u64,
    /// `space_bits()` after the round.
    pub space_bits: u64,
    /// Whether the referee accepted the answer.
    pub correct: bool,
}

/// An [`Observer`] that records every checked round's space and verdict —
/// the full-resolution counterpart of the strided timeline in
/// [`GameReport`].
#[derive(Debug, Clone, Default)]
pub struct RecordingObserver {
    /// One record per referee check, in order.
    pub rounds: Vec<RoundRecord>,
}

impl RecordingObserver {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<A: StreamAlg> Observer<A> for RecordingObserver {
    fn on_round(&mut self, t: u64, _output: &A::Output, verdict: &Verdict, space_bits: u64) {
        self.rounds.push(RoundRecord {
            t,
            space_bits,
            correct: verdict.is_correct(),
        });
    }
}

/// Placeholder adversary for a builder whose stream source has not been
/// chosen yet (or is a script): it ends the stream immediately.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoAdversary;

impl<A: StreamAlg> WhiteBoxAdversary<A> for NoAdversary {
    fn next_update(
        &mut self,
        _t: u64,
        _alg: &A,
        _transcript: &RandTranscript,
        _last_output: Option<&A::Output>,
    ) -> Option<A::Update> {
        None
    }
}

/// Referee that accepts every answer — the default until
/// [`Game::referee`] is called (throughput and attack-demo runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct AcceptAll;

impl<A: StreamAlg> Referee<A> for AcceptAll {
    fn observe(&mut self, _update: &A::Update) {}

    fn check(&mut self, _t: u64, _output: &A::Output) -> Verdict {
        Verdict::Correct
    }
}

enum Driver<U, Adv> {
    Adversary(Adv),
    Script(Vec<U>),
    /// A pull-based update stream: the prelude is generated (or read) lazily
    /// and ingested in `batch`-sized chunks through one reused buffer, so
    /// memory stays O(batch) for any stream length.
    Stream(Box<dyn Iterator<Item = U>>),
}

/// Fluent builder for one white-box adversarial game.
///
/// `Game::new(alg)` starts with no adversary (empty stream), an accept-all
/// referee, [`DEFAULT_MAX_ROUNDS`], seed 0, a null observer, and batch
/// size 1. Each setter returns the builder; [`Game::run`] plays the game
/// and returns a [`GameReport`]; [`Game::play`] additionally hands back the
/// algorithm for post-game inspection.
pub struct Game<A: StreamAlg, Adv, R, O> {
    alg: A,
    driver: Driver<A::Update, Adv>,
    referee: R,
    observer: O,
    max_rounds: u64,
    seed: u64,
    batch: usize,
}

impl<A: StreamAlg> Game<A, NoAdversary, AcceptAll, NullObserver> {
    /// Start building a game around `alg`.
    pub fn new(alg: A) -> Self {
        Game {
            alg,
            driver: Driver::Adversary(NoAdversary),
            referee: AcceptAll,
            observer: NullObserver,
            max_rounds: DEFAULT_MAX_ROUNDS,
            seed: 0,
            batch: 1,
        }
    }
}

impl<A: StreamAlg, Adv, R, O> Game<A, Adv, R, O> {
    /// Set the white-box adversary (the adaptive stream source).
    pub fn adversary<Adv2>(self, adversary: Adv2) -> Game<A, Adv2, R, O>
    where
        Adv2: WhiteBoxAdversary<A>,
    {
        Game {
            alg: self.alg,
            driver: Driver::Adversary(adversary),
            referee: self.referee,
            observer: self.observer,
            max_rounds: self.max_rounds,
            seed: self.seed,
            batch: self.batch,
        }
    }

    /// Use a fixed, oblivious update script as the stream source. Script
    /// games may ingest in batches ([`Game::batch`]) through the
    /// algorithms' optimized [`StreamAlg::process_batch`] path.
    pub fn script(self, updates: Vec<A::Update>) -> Game<A, NoAdversary, R, O> {
        Game {
            alg: self.alg,
            driver: Driver::Script(updates),
            referee: self.referee,
            observer: self.observer,
            max_rounds: self.max_rounds,
            seed: self.seed,
            batch: self.batch,
        }
    }

    /// Use a lazy, pull-based update stream as the oblivious stream source:
    /// updates are drawn on demand and ingested in [`Game::batch`]-sized
    /// chunks through one reused buffer, so the game's memory is O(batch)
    /// regardless of the stream length — the typed mirror of the engine's
    /// chunked prelude pipeline. Verdicts, rounds, and check counts are
    /// identical to [`Game::script`] on the materialized equivalent; the
    /// report's timeline *sampling stride* is derived from the iterator's
    /// `size_hint`, so an inexact hint can sample at different rounds
    /// (the timeline self-bounds either way).
    pub fn stream(
        self,
        updates: impl Iterator<Item = A::Update> + 'static,
    ) -> Game<A, NoAdversary, R, O> {
        Game {
            alg: self.alg,
            driver: Driver::Stream(Box::new(updates)),
            referee: self.referee,
            observer: self.observer,
            max_rounds: self.max_rounds,
            seed: self.seed,
            batch: self.batch,
        }
    }

    /// Set the referee holding ground truth.
    pub fn referee<R2>(self, referee: R2) -> Game<A, Adv, R2, O>
    where
        R2: Referee<A>,
    {
        Game {
            alg: self.alg,
            driver: self.driver,
            referee,
            observer: self.observer,
            max_rounds: self.max_rounds,
            seed: self.seed,
            batch: self.batch,
        }
    }

    /// Attach an observer (commonly `&mut RecordingObserver`).
    pub fn observer<O2>(self, observer: O2) -> Game<A, Adv, R, O2>
    where
        O2: Observer<A>,
    {
        Game {
            alg: self.alg,
            driver: self.driver,
            referee: self.referee,
            observer,
            max_rounds: self.max_rounds,
            seed: self.seed,
            batch: self.batch,
        }
    }

    /// Cap the number of rounds (default [`DEFAULT_MAX_ROUNDS`]).
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Set the algorithm's public random seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Chunk size for script-mode batched ingestion (default 1 — check
    /// after every update, exactly the per-round game). Ignored for
    /// adaptive adversaries, which force one update per round by nature.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }
}

impl<A, Adv, R, O> Game<A, Adv, R, O>
where
    A: StreamAlg + SpaceUsage,
    Adv: WhiteBoxAdversary<A>,
    R: Referee<A>,
    O: Observer<A>,
{
    /// Play the game, returning the structured report.
    pub fn run(self) -> GameReport {
        self.play().0
    }

    /// Play the game, returning the report and the final algorithm state
    /// (for post-game inspection of answers or internals).
    pub fn play(mut self) -> (GameReport, A) {
        let mut rng = TranscriptRng::from_seed(self.seed);
        let expected_checks = match &self.driver {
            Driver::Adversary(_) => self.max_rounds,
            Driver::Script(updates) => {
                (updates.len().min(self.max_rounds as usize) as u64).div_ceil(self.batch as u64)
            }
            Driver::Stream(iter) => {
                let (lo, hi) = iter.size_hint();
                (hi.unwrap_or(lo).max(lo) as u64)
                    .min(self.max_rounds)
                    .div_ceil(self.batch as u64)
                    .max(1)
            }
        };
        let mut report = GameReport::new(self.alg.space_bits(), expected_checks);
        let mut t = 0u64;
        match self.driver {
            Driver::Adversary(mut adversary) => {
                let mut last: Option<A::Output> = None;
                for round in 1..=self.max_rounds {
                    let update = match adversary.next_update(
                        round,
                        &self.alg,
                        rng.transcript(),
                        last.as_ref(),
                    ) {
                        Some(u) => u,
                        None => break,
                    };
                    self.observer.on_update(round, &update);
                    self.referee.observe(&update);
                    self.alg.process(&update, &mut rng);
                    t = round;
                    let space = self.alg.space_bits();
                    let output = self.alg.query();
                    let verdict = self.referee.check(t, &output);
                    self.observer.on_round(t, &output, &verdict, space);
                    report.record_check(t, space, &verdict);
                    if !verdict.is_correct() {
                        break;
                    }
                    last = Some(output);
                }
            }
            Driver::Script(updates) => {
                let total = updates.len().min(self.max_rounds as usize);
                for chunk in updates[..total].chunks(self.batch) {
                    for (k, update) in chunk.iter().enumerate() {
                        self.observer.on_update(t + 1 + k as u64, update);
                        self.referee.observe(update);
                    }
                    self.alg.process_batch(chunk, &mut rng);
                    t += chunk.len() as u64;
                    let space = self.alg.space_bits();
                    let output = self.alg.query();
                    let verdict = self.referee.check(t, &output);
                    self.observer.on_round(t, &output, &verdict, space);
                    report.record_check(t, space, &verdict);
                    if !verdict.is_correct() {
                        break;
                    }
                }
            }
            Driver::Stream(mut iter) => {
                // Pull-based chunked ingestion: one reused buffer, refilled
                // lazily — the stream is never materialized.
                let mut buf: Vec<A::Update> = Vec::with_capacity(self.batch);
                'stream: while t < self.max_rounds {
                    buf.clear();
                    let want = self.batch.min((self.max_rounds - t) as usize);
                    while buf.len() < want {
                        match iter.next() {
                            Some(u) => buf.push(u),
                            None => break,
                        }
                    }
                    if buf.is_empty() {
                        break 'stream;
                    }
                    for (k, update) in buf.iter().enumerate() {
                        self.observer.on_update(t + 1 + k as u64, update);
                        self.referee.observe(update);
                    }
                    self.alg.process_batch(&buf, &mut rng);
                    t += buf.len() as u64;
                    let space = self.alg.space_bits();
                    let output = self.alg.query();
                    let verdict = self.referee.check(t, &output);
                    self.observer.on_round(t, &output, &verdict, space);
                    report.record_check(t, space, &verdict);
                    if !verdict.is_correct() {
                        break 'stream;
                    }
                }
            }
        }
        report.finish(t, self.alg.space_bits());
        (report, self.alg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_core::game::{FnAdversary, FnReferee, ScriptAdversary};
    use wb_core::referee::HeavyHitterReferee;
    use wb_core::space::bits_for_count;
    use wb_core::stream::InsertOnly;
    use wb_sketch::{MisraGries, RobustL1HeavyHitters};

    struct ExactCounter(u64);
    impl StreamAlg for ExactCounter {
        type Update = InsertOnly;
        type Output = u64;
        fn process(&mut self, _u: &InsertOnly, _rng: &mut TranscriptRng) {
            self.0 += 1;
        }
        fn query(&self) -> u64 {
            self.0
        }
    }
    impl SpaceUsage for ExactCounter {
        fn space_bits(&self) -> u64 {
            bits_for_count(self.0)
        }
    }

    fn count_referee() -> FnReferee<impl FnMut(u64, &u64) -> Verdict> {
        FnReferee::new(|t: u64, out: &u64| {
            if *out == t {
                Verdict::Correct
            } else {
                Verdict::violation(format!("expected {t}, got {out}"))
            }
        })
    }

    #[test]
    fn builder_matches_run_game_semantics() {
        let report = Game::new(ExactCounter(0))
            .adversary(ScriptAdversary::new(vec![InsertOnly(0); 100]))
            .referee(count_referee())
            .max_rounds(1_000)
            .seed(1)
            .run();
        assert!(report.survived());
        assert_eq!(report.result.rounds, 100);
        assert_eq!(report.checks, 100);
    }

    #[test]
    fn builder_stops_at_first_violation() {
        let report = Game::new(ExactCounter(0))
            .adversary(ScriptAdversary::new(vec![InsertOnly(0); 100]))
            .referee(FnReferee::new(|_t, out: &u64| {
                if *out <= 5 {
                    Verdict::Correct
                } else {
                    Verdict::violation("count exceeded 5")
                }
            }))
            .max_rounds(100)
            .run();
        assert_eq!(report.result.rounds, 6);
        assert_eq!(report.result.failure.as_ref().unwrap().round, 6);
    }

    #[test]
    fn script_mode_with_batching_matches_per_round_final_state() {
        let script: Vec<InsertOnly> = (0..512u64).map(|t| InsertOnly(t % 7)).collect();
        let (r1, a1) = Game::new(MisraGries::new(0.2, 1 << 10))
            .script(script.clone())
            .referee(HeavyHitterReferee::new(0.2, 0.2))
            .seed(5)
            .play();
        let (r2, a2) = Game::new(MisraGries::new(0.2, 1 << 10))
            .script(script)
            .referee(HeavyHitterReferee::new(0.2, 0.2))
            .seed(5)
            .batch(64)
            .play();
        assert!(r1.survived() && r2.survived());
        assert_eq!(r1.result.rounds, r2.result.rounds);
        assert_eq!(a1.entries(), a2.entries());
        assert_eq!(r1.checks, 512);
        assert_eq!(r2.checks, 8);
    }

    #[test]
    fn stream_driver_matches_script_driver() {
        // A lazily-pulled stream must play exactly like its materialized
        // script: same rounds, same checks, same final algorithm state.
        let script: Vec<InsertOnly> = (0..777u64).map(|t| InsertOnly(t % 9)).collect();
        let (rs, a_script) = Game::new(MisraGries::new(0.2, 1 << 10))
            .script(script.clone())
            .referee(HeavyHitterReferee::new(0.2, 0.2))
            .seed(3)
            .batch(64)
            .play();
        let (rt, a_stream) = Game::new(MisraGries::new(0.2, 1 << 10))
            .stream((0..777u64).map(|t| InsertOnly(t % 9)))
            .referee(HeavyHitterReferee::new(0.2, 0.2))
            .seed(3)
            .batch(64)
            .play();
        assert!(rs.survived() && rt.survived());
        assert_eq!(rs.result.rounds, rt.result.rounds);
        assert_eq!(rs.checks, rt.checks);
        assert_eq!(a_script.entries(), a_stream.entries());

        // max_rounds truncates a stream mid-pull.
        let report = Game::new(MisraGries::new(0.2, 1 << 10))
            .stream((0..).map(|t: u64| InsertOnly(t % 9)))
            .max_rounds(100)
            .batch(32)
            .run();
        assert_eq!(report.result.rounds, 100);
    }

    #[test]
    fn observer_sees_every_check_and_update() {
        let mut obs = RecordingObserver::new();
        let report = Game::new(ExactCounter(0))
            .adversary(ScriptAdversary::new(vec![InsertOnly(0); 50]))
            .referee(count_referee())
            .max_rounds(100)
            .observer(&mut obs)
            .run();
        assert_eq!(obs.rounds.len(), 50);
        assert!(obs.rounds.iter().all(|r| r.correct));
        assert_eq!(obs.rounds.last().unwrap().t, 50);
        assert_eq!(report.checks, 50);
    }

    #[test]
    fn white_box_adversary_through_builder() {
        // The builder preserves the full white-box view: an adversary
        // reading the answering instance's tracked items still works.
        let (report, alg) = Game::new(RobustL1HeavyHitters::new(1 << 10, 0.25))
            .adversary(FnAdversary::new(
                |_t,
                 alg: &RobustL1HeavyHitters,
                 _tr: &RandTranscript,
                 _l: Option<&Vec<(u64, f64)>>| {
                    let tracked = alg.answering().inner().entries();
                    Some(InsertOnly(if tracked.is_empty() { 1 } else { 2 }))
                },
            ))
            .referee(HeavyHitterReferee::new(0.25, 0.25).with_grace(32))
            .max_rounds(2_000)
            .seed(11)
            .play();
        assert!(report.survived(), "failed: {:?}", report.result.failure);
        assert_eq!(report.result.rounds, 2_000);
        assert!(alg.t_hat() > 0.0);
    }

    #[test]
    fn default_driver_plays_zero_rounds() {
        let report = Game::new(ExactCounter(0)).run();
        assert_eq!(report.result.rounds, 0);
        assert!(report.survived());
    }
}
