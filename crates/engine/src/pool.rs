//! A hand-rolled work-queue thread pool (std only — dependencies are
//! vendored, so no rayon).
//!
//! [`run_ordered`] executes a batch of heterogeneous boxed jobs on up to
//! `threads` scoped worker threads and returns the results **in submission
//! order**, regardless of which worker finished which job when. That
//! ordering guarantee is what makes the [tournament](crate::tournament)
//! and the parallel [experiment](crate::experiment) sections
//! bit-reproducible across thread counts: each job is a pure function of
//! its inputs, and the only scheduling freedom — completion order — is
//! erased by reassembling results by index.
//!
//! Workers pull `(index, job)` pairs from a shared queue and push
//! `(index, result)` pairs through an mpsc channel; the caller collects on
//! its own thread while the workers drain the queue. With `threads == 1`
//! (or a single job) everything runs inline on the caller's thread — no
//! spawn overhead, and trivially the same results.

use std::collections::VecDeque;
use std::sync::{mpsc, Condvar, Mutex};

/// A boxed unit of pool work. The lifetime lets jobs borrow from the
/// caller's stack (configs, specs) — workers are scoped threads.
pub type Job<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Resolve a requested thread count: `0` means one thread per available
/// core (or 1 if parallelism cannot be queried).
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Run every job, using at most `threads` workers, and return the results
/// in submission order. A panicking job propagates after all workers have
/// stopped (the queue is drained cooperatively; no job is lost silently).
pub fn run_ordered<'a, T: Send>(jobs: Vec<Job<'a, T>>, threads: usize) -> Vec<T> {
    run_ordered_with(jobs, threads, |_, _| {})
}

/// Like [`run_ordered`], but additionally invokes `on_ready(index, &result)`
/// **in submission order** as soon as every earlier result exists — so a
/// caller can stream output (print table rows, report progress) while later
/// jobs are still running, without giving up deterministic ordering.
pub fn run_ordered_with<'a, T: Send>(
    jobs: Vec<Job<'a, T>>,
    threads: usize,
    mut on_ready: impl FnMut(usize, &T),
) -> Vec<T> {
    let n = jobs.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return jobs
            .into_iter()
            .enumerate()
            .map(|(index, job)| {
                let result = job();
                on_ready(index, &result);
                result
            })
            .collect();
    }
    let queue: Mutex<VecDeque<(usize, Job<'a, T>)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut next_ready = 0usize;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let queue = &queue;
            scope.spawn(move || loop {
                // Pop under the lock, run outside it: cells are orders of
                // magnitude heavier than the queue operation.
                let job = queue.lock().unwrap().pop_front();
                match job {
                    Some((index, job)) => {
                        if tx.send((index, job())).is_err() {
                            break;
                        }
                    }
                    None => break,
                }
            });
        }
        drop(tx);
        for (index, result) in rx {
            slots[index] = Some(result);
            while let Some(Some(result)) = slots.get(next_ready) {
                on_ready(next_ready, result);
                next_ready += 1;
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every pool job delivers exactly one result"))
        .collect()
}

/// A job for the long-lived [`WorkerPool`]: `'static` because the pool
/// outlives any caller stack frame (unlike the scoped [`run_ordered`]
/// batch).
pub type PoolJob = Box<dyn FnOnce() + Send + 'static>;

/// A point-in-time snapshot of a [`WorkerPool`]'s counters — the pool-level
/// half of the daemon's backpressure instrumentation (the per-shard half is
/// [`crate::shard::ShardStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Jobs accepted by [`WorkerPool::submit`] so far.
    pub submitted: u64,
    /// Jobs whose closure has returned (or panicked — a panic still
    /// completes the job so the pool can never deadlock on a drain).
    pub completed: u64,
    /// Jobs that panicked. Nonzero means a bug in submitted work, never in
    /// the pool.
    pub panicked: u64,
    /// Jobs currently queued or running (`submitted - completed`).
    pub depth: u64,
    /// High-water mark of `depth` over the pool's lifetime.
    pub peak_depth: u64,
    /// How often `submit` found the bounded queue full and had to block
    /// until a worker freed a slot — the pool-is-the-bottleneck signal.
    pub submit_stalls: u64,
}

struct PoolCounts {
    submitted: u64,
    completed: u64,
    panicked: u64,
    peak_depth: u64,
    submit_stalls: u64,
}

struct PoolShared {
    counts: Mutex<PoolCounts>,
    /// Signalled whenever a job completes; [`WorkerPool::drain`] waits on
    /// it until `completed == submitted`.
    idle: Condvar,
}

/// A long-lived thread pool with a **bounded** submit queue, for servers
/// that process work as it arrives instead of batching it up front (the
/// one-shot ordered batch stays [`run_ordered`]). Submission blocks when
/// the queue is full — backpressure propagates to the producer instead of
/// queue depth growing without bound — and every stall is counted in
/// [`PoolStats`], so "the pool can't keep up" is observable, not silent.
///
/// Jobs carry no result channel; a caller that needs an answer back owns
/// its own reply path (the daemon's sessions block on a per-request
/// condvar). Ordering across jobs is whatever the queue provides (FIFO
/// hand-out, concurrent execution) — callers needing per-key ordering must
/// serialize per key, as the daemon does per tenant.
pub struct WorkerPool {
    tx: Option<mpsc::SyncSender<PoolJob>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    shared: std::sync::Arc<PoolShared>,
}

impl WorkerPool {
    /// Spawn `threads` workers (`0` = one per core) behind a bounded queue
    /// of `queue_cap` waiting jobs (minimum 1).
    pub fn new(threads: usize, queue_cap: usize) -> Self {
        let threads = effective_threads(threads);
        let shared = std::sync::Arc::new(PoolShared {
            counts: Mutex::new(PoolCounts {
                submitted: 0,
                completed: 0,
                panicked: 0,
                peak_depth: 0,
                submit_stalls: 0,
            }),
            idle: Condvar::new(),
        });
        let (tx, rx) = mpsc::sync_channel::<PoolJob>(queue_cap.max(1));
        let rx = std::sync::Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|_| {
                let rx = std::sync::Arc::clone(&rx);
                let shared = std::sync::Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    // Take the next job under the lock, run it outside.
                    let job = match rx.lock().unwrap().recv() {
                        Ok(job) => job,
                        Err(_) => break, // queue closed: pool shut down
                    };
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    let mut counts = shared.counts.lock().unwrap();
                    counts.completed += 1;
                    if outcome.is_err() {
                        counts.panicked += 1;
                    }
                    shared.idle.notify_all();
                })
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            shared,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Queue `job`, blocking while the bounded queue is full (each such
    /// wait increments [`PoolStats::submit_stalls`]).
    pub fn submit(&self, job: PoolJob) {
        let tx = self.tx.as_ref().expect("pool is shut down");
        {
            let mut counts = self.shared.counts.lock().unwrap();
            counts.submitted += 1;
            let depth = counts.submitted - counts.completed;
            counts.peak_depth = counts.peak_depth.max(depth);
        }
        // Offer without blocking first so a full queue is observable.
        if let Err(mpsc::TrySendError::Full(job)) = tx.try_send(job) {
            self.shared.counts.lock().unwrap().submit_stalls += 1;
            tx.send(job).expect("workers outlive the pool handle");
        }
    }

    /// Queue `job` only if a slot is free; a full queue returns the job to
    /// the caller instead of blocking (and counts a submit stall). This is
    /// the event-loop submission path: a reactor thread must never park on
    /// the pool queue, so it re-offers returned jobs from its own deferral
    /// list once workers catch up.
    pub fn try_submit(&self, job: PoolJob) -> Result<(), PoolJob> {
        let tx = self.tx.as_ref().expect("pool is shut down");
        match tx.try_send(job) {
            Ok(()) => {
                let mut counts = self.shared.counts.lock().unwrap();
                counts.submitted += 1;
                let depth = counts.submitted - counts.completed;
                counts.peak_depth = counts.peak_depth.max(depth);
                Ok(())
            }
            Err(mpsc::TrySendError::Full(job)) => {
                self.shared.counts.lock().unwrap().submit_stalls += 1;
                Err(job)
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {
                panic!("workers outlive the pool handle")
            }
        }
    }

    /// Block until every submitted job has completed. Jobs submitted by
    /// other threads *while* draining extend the wait — the guarantee is
    /// "no work outstanding at return", not a fence.
    pub fn drain(&self) {
        let mut counts = self.shared.counts.lock().unwrap();
        while counts.completed < counts.submitted {
            counts = self.shared.idle.wait(counts).unwrap();
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> PoolStats {
        let counts = self.shared.counts.lock().unwrap();
        PoolStats {
            submitted: counts.submitted,
            completed: counts.completed,
            panicked: counts.panicked,
            depth: counts.submitted - counts.completed,
            peak_depth: counts.peak_depth,
            submit_stalls: counts.submit_stalls,
        }
    }

    /// Close the queue and join the workers (queued jobs still run; this
    /// is the graceful half — call [`WorkerPool::drain`] first if you need
    /// completion *before* teardown begins).
    pub fn shutdown(mut self) {
        self.tx = None; // close the channel: workers finish and exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.tx = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(n: usize, threads: usize) -> Vec<usize> {
        let jobs: Vec<Job<usize>> = (0..n)
            .map(|i| -> Job<usize> { Box::new(move || i * i) })
            .collect();
        run_ordered(jobs, threads)
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 200] {
            assert_eq!(squares(100, threads), expected, "threads = {threads}");
        }
        assert_eq!(squares(0, 4), Vec::<usize>::new());
        assert_eq!(squares(1, 4), vec![0]);
    }

    #[test]
    fn jobs_may_borrow_the_callers_stack() {
        let data = [10u64, 20, 30];
        let jobs: Vec<Job<u64>> = data
            .iter()
            .map(|x| -> Job<u64> { Box::new(move || x + 1) })
            .collect();
        assert_eq!(run_ordered(jobs, 2), vec![11, 21, 31]);
    }

    #[test]
    fn streaming_callback_fires_in_submission_order() {
        for threads in [1, 3, 16] {
            let jobs: Vec<Job<usize>> = (0..50)
                .map(|i| -> Job<usize> { Box::new(move || i) })
                .collect();
            let mut seen = Vec::new();
            let results = run_ordered_with(jobs, threads, |index, &r| {
                assert_eq!(index, r);
                seen.push(index);
            });
            assert_eq!(seen, (0..50).collect::<Vec<_>>(), "threads = {threads}");
            assert_eq!(results, (0..50).collect::<Vec<_>>());
        }
    }

    #[test]
    fn effective_threads_resolves_auto() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn worker_pool_runs_everything_and_counts() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let pool = WorkerPool::new(4, 2);
        assert_eq!(pool.workers(), 4);
        let sum = Arc::new(AtomicU64::new(0));
        for i in 0..100u64 {
            let sum = Arc::clone(&sum);
            pool.submit(Box::new(move || {
                sum.fetch_add(i, Ordering::Relaxed);
            }));
        }
        pool.drain();
        let stats = pool.stats();
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
        assert_eq!(stats.submitted, 100);
        assert_eq!(stats.completed, 100);
        assert_eq!(stats.depth, 0);
        assert_eq!(stats.panicked, 0);
        assert!(stats.peak_depth >= 1);
        pool.shutdown();
    }

    #[test]
    fn worker_pool_counts_submit_stalls_under_backpressure() {
        // One slow worker, capacity-1 queue: fast submissions must stall.
        let pool = WorkerPool::new(1, 1);
        for _ in 0..8 {
            pool.submit(Box::new(|| {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }));
        }
        pool.drain();
        let stats = pool.stats();
        assert_eq!(stats.completed, 8);
        assert!(stats.submit_stalls > 0, "{stats:?}");
    }

    #[test]
    fn worker_pool_survives_panicking_jobs() {
        let pool = WorkerPool::new(2, 4);
        pool.submit(Box::new(|| panic!("job bug")));
        pool.submit(Box::new(|| {}));
        pool.drain();
        let stats = pool.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.panicked, 1);
        // The pool still works after a panic.
        pool.submit(Box::new(|| {}));
        pool.drain();
        assert_eq!(pool.stats().completed, 3);
    }

    #[test]
    fn worker_panic_propagates() {
        let jobs: Vec<Job<u64>> = (0..8)
            .map(|i| -> Job<u64> {
                Box::new(move || {
                    assert!(i != 5, "boom");
                    i
                })
            })
            .collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_ordered(jobs, 2);
        }));
        assert!(outcome.is_err(), "panic in a job must propagate");
    }
}
