//! A hand-rolled work-queue thread pool (std only — dependencies are
//! vendored, so no rayon).
//!
//! [`run_ordered`] executes a batch of heterogeneous boxed jobs on up to
//! `threads` scoped worker threads and returns the results **in submission
//! order**, regardless of which worker finished which job when. That
//! ordering guarantee is what makes the [tournament](crate::tournament)
//! and the parallel [experiment](crate::experiment) sections
//! bit-reproducible across thread counts: each job is a pure function of
//! its inputs, and the only scheduling freedom — completion order — is
//! erased by reassembling results by index.
//!
//! Workers pull `(index, job)` pairs from a shared queue and push
//! `(index, result)` pairs through an mpsc channel; the caller collects on
//! its own thread while the workers drain the queue. With `threads == 1`
//! (or a single job) everything runs inline on the caller's thread — no
//! spawn overhead, and trivially the same results.

use std::collections::VecDeque;
use std::sync::{mpsc, Mutex};

/// A boxed unit of pool work. The lifetime lets jobs borrow from the
/// caller's stack (configs, specs) — workers are scoped threads.
pub type Job<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Resolve a requested thread count: `0` means one thread per available
/// core (or 1 if parallelism cannot be queried).
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Run every job, using at most `threads` workers, and return the results
/// in submission order. A panicking job propagates after all workers have
/// stopped (the queue is drained cooperatively; no job is lost silently).
pub fn run_ordered<'a, T: Send>(jobs: Vec<Job<'a, T>>, threads: usize) -> Vec<T> {
    run_ordered_with(jobs, threads, |_, _| {})
}

/// Like [`run_ordered`], but additionally invokes `on_ready(index, &result)`
/// **in submission order** as soon as every earlier result exists — so a
/// caller can stream output (print table rows, report progress) while later
/// jobs are still running, without giving up deterministic ordering.
pub fn run_ordered_with<'a, T: Send>(
    jobs: Vec<Job<'a, T>>,
    threads: usize,
    mut on_ready: impl FnMut(usize, &T),
) -> Vec<T> {
    let n = jobs.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return jobs
            .into_iter()
            .enumerate()
            .map(|(index, job)| {
                let result = job();
                on_ready(index, &result);
                result
            })
            .collect();
    }
    let queue: Mutex<VecDeque<(usize, Job<'a, T>)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut next_ready = 0usize;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let queue = &queue;
            scope.spawn(move || loop {
                // Pop under the lock, run outside it: cells are orders of
                // magnitude heavier than the queue operation.
                let job = queue.lock().unwrap().pop_front();
                match job {
                    Some((index, job)) => {
                        if tx.send((index, job())).is_err() {
                            break;
                        }
                    }
                    None => break,
                }
            });
        }
        drop(tx);
        for (index, result) in rx {
            slots[index] = Some(result);
            while let Some(Some(result)) = slots.get(next_ready) {
                on_ready(next_ready, result);
                next_ready += 1;
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every pool job delivers exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(n: usize, threads: usize) -> Vec<usize> {
        let jobs: Vec<Job<usize>> = (0..n)
            .map(|i| -> Job<usize> { Box::new(move || i * i) })
            .collect();
        run_ordered(jobs, threads)
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 200] {
            assert_eq!(squares(100, threads), expected, "threads = {threads}");
        }
        assert_eq!(squares(0, 4), Vec::<usize>::new());
        assert_eq!(squares(1, 4), vec![0]);
    }

    #[test]
    fn jobs_may_borrow_the_callers_stack() {
        let data = [10u64, 20, 30];
        let jobs: Vec<Job<u64>> = data
            .iter()
            .map(|x| -> Job<u64> { Box::new(move || x + 1) })
            .collect();
        assert_eq!(run_ordered(jobs, 2), vec![11, 21, 31]);
    }

    #[test]
    fn streaming_callback_fires_in_submission_order() {
        for threads in [1, 3, 16] {
            let jobs: Vec<Job<usize>> = (0..50)
                .map(|i| -> Job<usize> { Box::new(move || i) })
                .collect();
            let mut seen = Vec::new();
            let results = run_ordered_with(jobs, threads, |index, &r| {
                assert_eq!(index, r);
                seen.push(index);
            });
            assert_eq!(seen, (0..50).collect::<Vec<_>>(), "threads = {threads}");
            assert_eq!(results, (0..50).collect::<Vec<_>>());
        }
    }

    #[test]
    fn effective_threads_resolves_auto() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let jobs: Vec<Job<u64>> = (0..8)
            .map(|i| -> Job<u64> {
                Box::new(move || {
                    assert!(i != 5, "boom");
                    i
                })
            })
            .collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_ordered(jobs, 2);
        }));
        assert!(outcome.is_err(), "panic in a job must propagate");
    }
}
