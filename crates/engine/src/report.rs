//! Structured game reports and experiment-table formatting.

use wb_core::game::{Failure, GameResult, Verdict};
use wb_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

/// How many `(round, space_bits)` samples a report retains at most; the
/// recording stride is chosen so long games stay within this budget.
pub const TIMELINE_POINTS: usize = 256;

/// Structured outcome of one engine-driven game: the classic
/// [`GameResult`] plus per-round space/verdict timelines and ingestion
/// statistics captured by the engine's observer machinery.
#[derive(Debug, Clone)]
pub struct GameReport {
    /// Rounds, first failure, peak/final space — the classic result.
    pub result: GameResult,
    /// Referee checks performed (in batched ingestion this is the number
    /// of batch boundaries, not the number of updates).
    pub checks: u64,
    /// `(round, space_bits)` samples, recorded every [`Self::stride`]
    /// checks (and always at the final check).
    pub space_timeline: Vec<(u64, u64)>,
    /// `(round, correct?)` for every recorded check in the timeline.
    pub verdict_timeline: Vec<(u64, bool)>,
    /// Stride (in checks) between timeline samples.
    pub stride: u64,
}

impl GameReport {
    /// Fresh report for a game expected to perform up to `expected_checks`
    /// referee checks (rounds in the per-round game, batch boundaries under
    /// batched ingestion) — the stride is sized so the timeline keeps about
    /// [`TIMELINE_POINTS`] samples.
    pub fn new(initial_space_bits: u64, expected_checks: u64) -> Self {
        GameReport {
            result: GameResult {
                rounds: 0,
                failure: None,
                peak_space_bits: initial_space_bits,
                final_space_bits: initial_space_bits,
            },
            checks: 0,
            space_timeline: Vec::new(),
            verdict_timeline: Vec::new(),
            stride: (expected_checks / TIMELINE_POINTS as u64).max(1),
        }
    }

    /// Record one referee check at round `t`.
    ///
    /// The timeline is self-bounding: if a game performs far more checks
    /// than `expected_checks` predicted (streaming sources without a
    /// length hint, iterators with inexact size hints), the retained
    /// samples are decimated and the stride doubled whenever they reach
    /// `2 ×` [`TIMELINE_POINTS`] — memory stays O(1) in the stream length
    /// no matter how wrong the prediction was. Games with accurate
    /// predictions never hit the threshold, so their reports are
    /// unchanged.
    pub fn record_check(&mut self, t: u64, space_bits: u64, verdict: &Verdict) {
        self.checks += 1;
        self.result.peak_space_bits = self.result.peak_space_bits.max(space_bits);
        let sample_due = self.checks.is_multiple_of(self.stride);
        if sample_due || !verdict.is_correct() {
            if sample_due && self.space_timeline.len() >= 2 * TIMELINE_POINTS {
                let mut keep = [false, true].iter().copied().cycle();
                self.space_timeline.retain(|_| keep.next().expect("cycle"));
                let mut keep = [false, true].iter().copied().cycle();
                self.verdict_timeline
                    .retain(|_| keep.next().expect("cycle"));
                self.stride *= 2;
            }
            self.space_timeline.push((t, space_bits));
            self.verdict_timeline.push((t, verdict.is_correct()));
        }
        if let Verdict::Violation(description) = verdict {
            if self.result.failure.is_none() {
                self.result.failure = Some(Failure {
                    round: t,
                    description: description.clone(),
                });
            }
        }
    }

    /// Seal the report after the last round.
    pub fn finish(&mut self, rounds: u64, final_space_bits: u64) {
        self.result.rounds = rounds;
        self.result.final_space_bits = final_space_bits;
        self.result.peak_space_bits = self.result.peak_space_bits.max(final_space_bits);
        if let Some(&(t, _)) = self.space_timeline.last() {
            if t != rounds && rounds > 0 {
                self.space_timeline.push((rounds, final_space_bits));
                self.verdict_timeline
                    .push((rounds, self.result.failure.is_none()));
            }
        } else if rounds > 0 {
            self.space_timeline.push((rounds, final_space_bits));
            self.verdict_timeline
                .push((rounds, self.result.failure.is_none()));
        }
    }

    /// `true` iff every checked answer was correct.
    pub fn survived(&self) -> bool {
        self.result.survived()
    }
}

impl Snapshot for GameReport {
    /// Layout: `result | checks | space timeline | verdict timeline |
    /// stride`. The whole report is mutable in-game state, so everything is
    /// captured and overwritten on restore — a resumed game's timelines
    /// (and with them the report artifacts) continue exactly where the
    /// snapshotted game stopped.
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.result.rounds);
        match &self.result.failure {
            Some(f) => {
                w.put_bool(true);
                w.put_u64(f.round);
                w.put_str(&f.description);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.result.peak_space_bits);
        w.put_u64(self.result.final_space_bits);
        w.put_u64(self.checks);
        w.put_u64(self.space_timeline.len() as u64);
        for &(t, space) in &self.space_timeline {
            w.put_u64(t);
            w.put_u64(space);
        }
        w.put_u64(self.verdict_timeline.len() as u64);
        for &(t, ok) in &self.verdict_timeline {
            w.put_u64(t);
            w.put_bool(ok);
        }
        w.put_u64(self.stride);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.result.rounds = r.take_u64()?;
        self.result.failure = if r.take_bool()? {
            Some(Failure {
                round: r.take_u64()?,
                description: r.take_str()?,
            })
        } else {
            None
        };
        self.result.peak_space_bits = r.take_u64()?;
        self.result.final_space_bits = r.take_u64()?;
        self.checks = r.take_u64()?;
        let spaces = r.take_usize()?;
        if spaces > 4 * TIMELINE_POINTS {
            return Err(SnapError::corrupt(format!(
                "space timeline of {spaces} samples exceeds the {} bound",
                4 * TIMELINE_POINTS
            )));
        }
        self.space_timeline.clear();
        for _ in 0..spaces {
            let t = r.take_u64()?;
            let space = r.take_u64()?;
            self.space_timeline.push((t, space));
        }
        let verdicts = r.take_usize()?;
        if verdicts > 4 * TIMELINE_POINTS {
            return Err(SnapError::corrupt(format!(
                "verdict timeline of {verdicts} samples exceeds the {} bound",
                4 * TIMELINE_POINTS
            )));
        }
        self.verdict_timeline.clear();
        for _ in 0..verdicts {
            let t = r.take_u64()?;
            let ok = r.take_bool()?;
            self.verdict_timeline.push((t, ok));
        }
        let stride = r.take_u64()?;
        if stride == 0 {
            return Err(SnapError::corrupt("timeline stride must be >= 1"));
        }
        self.stride = stride;
        Ok(())
    }
}

/// Format one table row, padding each cell to `width`.
pub fn row(cells: &[String], width: usize) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>width$}"))
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Print a table header plus separator line.
pub fn header(cells: &[&str], width: usize) {
    println!(
        "{}",
        row(
            &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            width
        )
    );
    println!(
        "{}",
        cells
            .iter()
            .map(|_| "-".repeat(width))
            .collect::<Vec<_>>()
            .join("-|-")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_records_and_seals() {
        let mut r = GameReport::new(10, 100);
        for t in 1..=100u64 {
            r.record_check(t, 10 + t, &Verdict::Correct);
        }
        r.finish(100, 110);
        assert_eq!(r.checks, 100);
        assert!(r.survived());
        assert_eq!(r.result.rounds, 100);
        assert_eq!(r.result.peak_space_bits, 110);
        assert_eq!(r.space_timeline.last(), Some(&(100, 110)));
    }

    #[test]
    fn timeline_stays_bounded_under_wrong_expectations() {
        // A report told to expect 1 check (stride 1) but fed 100k of them
        // must decimate instead of retaining every sample.
        let mut r = GameReport::new(0, 1);
        for t in 1..=100_000u64 {
            r.record_check(t, t, &Verdict::Correct);
        }
        r.finish(100_000, 100_000);
        assert_eq!(r.checks, 100_000);
        assert!(
            r.space_timeline.len() <= 2 * TIMELINE_POINTS + 1,
            "timeline grew to {}",
            r.space_timeline.len()
        );
        assert!(r.stride > 1, "stride never adapted");
        assert_eq!(r.space_timeline.last(), Some(&(100_000, 100_000)));
        // Samples stay in increasing round order after decimation.
        assert!(r.space_timeline.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn report_captures_first_violation() {
        let mut r = GameReport::new(0, 10);
        r.record_check(1, 5, &Verdict::Correct);
        r.record_check(2, 6, &Verdict::violation("bad"));
        r.finish(2, 6);
        assert!(!r.survived());
        let f = r.result.failure.as_ref().unwrap();
        assert_eq!(f.round, 2);
        assert_eq!(f.description, "bad");
        assert_eq!(r.verdict_timeline.last(), Some(&(2, false)));
    }

    #[test]
    fn table_row_formatting() {
        let r = row(&["a".into(), "bb".into()], 4);
        assert_eq!(r, "   a |   bb");
    }
}
