//! Named workload generators, the declarative [`WorkloadSpec`] used by the
//! experiment runner, and the pull-based streaming layer ([`UpdateSource`])
//! every ingestion path in the engine is built on.
//!
//! The raw generators were born in the `bench` crate (which now delegates
//! here) so every consumer — binaries, tests, criterion benches, the
//! registry's scripted adversaries — draws from one set of streams.
//!
//! # Streaming vs materializing
//!
//! The paper's guarantees (and the lower bounds they are contrasted
//! against) are asymptotic in the stream length `m`; a harness that
//! materializes the whole stream as a `Vec<Update>` before ingesting caps
//! `m` at available RAM and spends most of its wall-clock on allocation.
//! [`WorkloadSpec::stream`] therefore produces a [`WorkloadStream`] — a
//! lazy generator that fills a caller-owned, reused chunk buffer — and
//! [`WorkloadSpec::generate`] is a thin collect wrapper kept for tests and
//! small scripts. The two are **byte-identical**: the stream drives the
//! same RNG in the same order, so concatenating chunks of any size
//! reproduces `generate()` exactly (asserted by the
//! `streaming_pipeline` proptest suite for every variant and chunk size).

use crate::erased::Update;
use wb_core::rng::{Reciprocal, TranscriptRng, Xoshiro256StarStar};
use wb_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use wb_core::stream::Turnstile;

/// Default chunk size of the streaming pipeline: the buffer length
/// [`UpdateSource::next_chunk`] falls back to when the caller's buffer has
/// no capacity, and the default of the `--chunk` CLI flag.
pub const DEFAULT_CHUNK: usize = 4096;

/// A pull-based source of erased updates — the streaming replacement for
/// materialized `Vec<Update>` preludes.
///
/// Callers own the chunk buffer and reuse it across pulls, so a whole
/// ingestion run allocates O(chunk) memory regardless of the stream length:
///
/// ```
/// use wb_engine::workload::{UpdateSource, WorkloadSpec};
///
/// let spec = WorkloadSpec::Uniform { n: 1 << 10, m: 100_000, seed: 7 };
/// let mut source = spec.stream();
/// let mut buf = Vec::with_capacity(4096); // the chunk size
/// let mut total = 0;
/// while source.next_chunk(&mut buf) > 0 {
///     total += buf.len(); // ingest the chunk...
/// }
/// assert_eq!(total, 100_000);
/// ```
pub trait UpdateSource {
    /// Clear `buf` and refill it with the next chunk of the stream: up to
    /// `buf.capacity()` updates (or [`DEFAULT_CHUNK`] if the buffer has no
    /// capacity yet). Returns the number of updates written; `0` means the
    /// source is exhausted (and stays exhausted).
    fn next_chunk(&mut self, buf: &mut Vec<Update>) -> usize;

    /// Exact number of updates remaining, when cheaply known. Used only to
    /// size report timeline strides — `None` never changes verdicts,
    /// rounds, or check counts, and timelines stay bounded either way (a
    /// report decimates itself when a prediction turns out wrong); only
    /// the sampling granularity can differ.
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

/// Chunk budget for one [`UpdateSource::next_chunk`] call.
fn chunk_cap(buf: &Vec<Update>) -> usize {
    if buf.capacity() == 0 {
        DEFAULT_CHUNK
    } else {
        buf.capacity()
    }
}

/// An [`UpdateSource`] over a borrowed, already-materialized slice — the
/// bridge that lets slice-shaped callers (tests, literal scripts) drive the
/// streaming ingestion paths.
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    rest: &'a [Update],
}

impl<'a> SliceSource<'a> {
    /// Stream `updates` in order, chunk by chunk.
    pub fn new(updates: &'a [Update]) -> Self {
        SliceSource { rest: updates }
    }
}

impl UpdateSource for SliceSource<'_> {
    fn next_chunk(&mut self, buf: &mut Vec<Update>) -> usize {
        buf.clear();
        let take = chunk_cap(buf).min(self.rest.len());
        buf.extend_from_slice(&self.rest[..take]);
        self.rest = &self.rest[take..];
        take
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.rest.len() as u64)
    }
}

/// An [`UpdateSource`] adapter folding every item into the universe
/// `[0, n)` by `item % n` (see [`Update::fold_into`]) — the rule the
/// tournament and the registry's scripted adversaries apply so
/// universe-bounded algorithms can ingest raw-address generators like
/// `ddos`.
#[derive(Debug, Clone)]
pub struct FoldSource<S> {
    inner: S,
    /// Precomputed reciprocal of `n`: the fold is a per-update hot path,
    /// and [`Reciprocal::rem`] is bit-identical to the `% n` it replaces.
    recip: Reciprocal,
}

impl<S: UpdateSource> FoldSource<S> {
    /// Fold `inner`'s items into `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (see [`Update::fold_into`]).
    pub fn new(inner: S, n: u64) -> Self {
        assert!(n > 0, "FoldSource requires a nonempty universe (n >= 1)");
        FoldSource {
            inner,
            recip: Reciprocal::new(n),
        }
    }
}

impl<S: Snapshot> Snapshot for FoldSource<S> {
    /// Pure delegation: the fold modulus (and its reciprocal) is
    /// construction config the restoring twin already holds.
    fn snap(&self, w: &mut SnapWriter) {
        self.inner.snap(w);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.inner.restore(r)
    }
}

impl<S: UpdateSource> UpdateSource for FoldSource<S> {
    fn next_chunk(&mut self, buf: &mut Vec<Update>) -> usize {
        let wrote = self.inner.next_chunk(buf);
        for u in buf.iter_mut() {
            *u = u.fold_with(&self.recip);
        }
        wrote
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }
}

/// An [`UpdateSource`] adapter invoking a callback on every chunk before
/// handing it on — how the tournament's sharded path lets the referee
/// observe the stream in original order while the shard pipeline consumes
/// it, without a second pass or a materialized copy.
pub struct InspectSource<S, F> {
    inner: S,
    inspect: F,
}

impl<S: UpdateSource, F: FnMut(&[Update])> InspectSource<S, F> {
    /// Call `inspect` on each non-empty chunk pulled from `inner`.
    pub fn new(inner: S, inspect: F) -> Self {
        InspectSource { inner, inspect }
    }
}

impl<S: UpdateSource, F: FnMut(&[Update])> UpdateSource for InspectSource<S, F> {
    fn next_chunk(&mut self, buf: &mut Vec<Update>) -> usize {
        let wrote = self.inner.next_chunk(buf);
        if wrote > 0 {
            (self.inspect)(buf);
        }
        wrote
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }
}

/// Words fetched per refill of a [`WordTape`] — one bulk
/// [`Xoshiro256StarStar::fill_u64`] call amortized over this many scalar
/// consumptions.
const WORD_TAPE_BUF: usize = 1024;

/// The refillable word-buffer layer under [`WorkloadStream`]: a xoshiro
/// generator whose raw 64-bit words are produced in bulk (the unrolled
/// [`Xoshiro256StarStar::fill_u64`]) and consumed one at a time — or a
/// chunk at a time by the vectorized kernels — in **exactly the order** the
/// historical per-draw `TranscriptRng` consumed them. Every conversion
/// helper mirrors the `TranscriptRng` method of the same name bit for bit
/// (same seed expansion, same rejection zones, reciprocal remainder equal
/// to the hardware remainder), so each workload variant emits a
/// draw-for-draw identical stream by construction. Workload generators are
/// *environment* randomness — the white-box transcript of the algorithm
/// under test is a separate `TranscriptRng` and is untouched — so the tape
/// keeps no transcript and pays no per-draw accounting.
#[derive(Debug, Clone)]
struct WordTape {
    rng: Xoshiro256StarStar,
    buf: Vec<u64>,
    pos: usize,
    scratch: Vec<u64>,
    recip: Option<Reciprocal>,
}

impl WordTape {
    /// Seeded exactly like `TranscriptRng::from_seed`, so the raw word
    /// tape is identical.
    fn from_seed(seed: u64) -> Self {
        WordTape {
            rng: Xoshiro256StarStar::from_seed(seed),
            buf: Vec::new(),
            pos: 0,
            scratch: Vec::new(),
            recip: None,
        }
    }

    /// Next raw tape word (buffered; refilled in bulk).
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.pos == self.buf.len() {
            self.buf.resize(WORD_TAPE_BUF, 0);
            self.rng.fill_u64(&mut self.buf);
            self.pos = 0;
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        w
    }

    /// Fills `out` with the next raw tape words: buffered words first
    /// (they are earlier tape positions), then one direct bulk fill.
    fn fill_words(&mut self, out: &mut [u64]) {
        let buffered = self.buf.len() - self.pos;
        let take = buffered.min(out.len());
        out[..take].copy_from_slice(&self.buf[self.pos..self.pos + take]);
        self.pos += take;
        if take < out.len() {
            self.rng.fill_u64(&mut out[take..]);
        }
    }

    /// Mirrors `TranscriptRng::next_f64` bit for bit.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Mirrors `TranscriptRng::bernoulli` bit for bit.
    #[inline]
    fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Cached reciprocal for modulus `n` (recomputed only on change).
    #[inline]
    fn recip_for(&mut self, n: u64) -> Reciprocal {
        match self.recip {
            Some(r) if r.n() == n => r,
            _ => {
                let r = Reciprocal::new(n);
                self.recip = Some(r);
                r
            }
        }
    }

    /// Mirrors `TranscriptRng::below` bit for bit: same power-of-two mask,
    /// same rejection zone, same word consumption.
    #[inline]
    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let r = self.recip_for(n);
        loop {
            let v = self.next_u64();
            if v < r.zone() {
                return r.rem(v);
            }
        }
    }

    /// The vectorized uniform kernel: `k` draws below `n` as a reused
    /// scratch slice. Word consumption (rejections included) is identical
    /// to `k` scalar `below(n)` calls — raw words are taken in tape order,
    /// rejected words skipped, and the shortfall redrawn round by round
    /// exactly as the scalar rejection loop would.
    fn below_chunk(&mut self, n: u64, k: usize) -> &[u64] {
        assert!(n > 0, "below(0) is undefined");
        let mut s = std::mem::take(&mut self.scratch);
        s.resize(k, 0);
        if n.is_power_of_two() {
            let mask = n - 1;
            self.fill_words(&mut s);
            for v in s.iter_mut() {
                *v &= mask;
            }
        } else {
            let r = self.recip_for(n);
            self.fill_words(&mut s);
            let mut filled = 0;
            for i in 0..k {
                let v = s[i];
                if v < r.zone() {
                    s[filled] = r.rem(v);
                    filled += 1;
                }
            }
            let mut spare = [0u64; 32];
            while filled < k {
                let need = (k - filled).min(spare.len());
                self.fill_words(&mut spare[..need]);
                for &v in &spare[..need] {
                    if v < r.zone() {
                        s[filled] = r.rem(v);
                        filled += 1;
                    }
                }
            }
        }
        self.scratch = s;
        &self.scratch
    }

    /// `k` raw tape words as a reused scratch slice — for kernels doing
    /// their own conversion (the ddos address mixer).
    fn word_chunk(&mut self, k: usize) -> &[u64] {
        let mut s = std::mem::take(&mut self.scratch);
        s.resize(k, 0);
        self.fill_words(&mut s);
        self.scratch = s;
        &self.scratch
    }
}

impl Snapshot for WordTape {
    /// Layout: `rng | unconsumed buffered words`. Only the words not yet
    /// consumed (`buf[pos..]`) are captured — together with the generator
    /// state they pin the exact tape position, so a restored tape emits the
    /// same word sequence draw for draw. `scratch` and `recip` are pure
    /// caches and are rebuilt on demand.
    fn snap(&self, w: &mut SnapWriter) {
        self.rng.snap(w);
        w.put_u64_seq(&self.buf[self.pos..]);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.rng.restore(r)?;
        let buffered = r.take_u64_seq()?;
        if buffered.len() > WORD_TAPE_BUF {
            return Err(SnapError::corrupt(format!(
                "WordTape buffer holds {} words, max is {WORD_TAPE_BUF}",
                buffered.len()
            )));
        }
        self.buf = buffered;
        self.pos = 0;
        self.recip = None;
        Ok(())
    }
}

/// The draw interface shared by the reference generators (`TranscriptRng`)
/// and the streaming [`WordTape`], so per-update generator logic is written
/// once and consumes the same draws on both paths by construction.
trait DrawSource {
    fn next_f64(&mut self) -> f64;
    fn bernoulli(&mut self, p: f64) -> bool;
    fn below(&mut self, n: u64) -> u64;
}

impl DrawSource for TranscriptRng {
    fn next_f64(&mut self) -> f64 {
        TranscriptRng::next_f64(self)
    }
    fn bernoulli(&mut self, p: f64) -> bool {
        TranscriptRng::bernoulli(self, p)
    }
    fn below(&mut self, n: u64) -> u64 {
        TranscriptRng::below(self, n)
    }
}

impl DrawSource for WordTape {
    fn next_f64(&mut self) -> f64 {
        WordTape::next_f64(self)
    }
    fn bernoulli(&mut self, p: f64) -> bool {
        WordTape::bernoulli(self, p)
    }
    fn below(&mut self, n: u64) -> u64 {
        WordTape::below(self, n)
    }
}

/// A Zipf-flavoured insertion stream: item `i ∈ [heavy_items]` receives a
/// `~1/(i+1)`-proportional share of 70% of the mass; the rest is uniform
/// noise over `[n]`.
pub fn zipf_stream(n: u64, m: u64, heavy_items: u64, seed: u64) -> Vec<u64> {
    let mut rng = TranscriptRng::from_seed(seed);
    let sampler = ZipfSampler::new(n, heavy_items);
    (0..m).map(|_| sampler.next(&mut rng)).collect()
}

/// One Zipf draw by the historical per-draw linear CDF walk — kept as the
/// reference the precomputed [`ZipfSampler`] is pinned against (and its
/// fallback for heads too large to tabulate).
fn zipf_next<R: DrawSource>(
    rng: &mut R,
    n: u64,
    heavy_items: u64,
    weights: &[f64],
    total: f64,
) -> u64 {
    if rng.bernoulli(0.7) {
        zipf_head_walk(rng.next_f64() * total, heavy_items, weights)
    } else {
        heavy_items + rng.below(n - heavy_items)
    }
}

/// The sequential head walk: subtract weights until the residual drops
/// below the next weight. Every `u -= w` rounds, so the walk's item is a
/// function of the *floating-point* trajectory, not the real-valued CDF —
/// any replacement structure must reproduce these exact roundings.
fn zipf_head_walk(mut u: f64, heavy_items: u64, weights: &[f64]) -> u64 {
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i as u64;
        }
        u -= w;
    }
    heavy_items - 1
}

/// Largest Zipf head for which the exact threshold table is precomputed;
/// construction is O(heavy²) ulp-refined float inversions, so oversized
/// heads keep the linear walk instead.
const ZIPF_TABLE_MAX_HEAVY: u64 = 2048;
/// First-level bucket count of the threshold lookup (indexed by the top
/// bits of the 53-bit draw), a power of two.
const ZIPF_BUCKETS: usize = 1024;
/// Bits to shift a 53-bit draw right to get its bucket index.
const ZIPF_BUCKET_SHIFT: u32 = 53 - ZIPF_BUCKETS.trailing_zeros();
/// The draw grid: `next_f64` yields `k / 2^53` for a 53-bit integer `k`.
const ZIPF_GRID: f64 = (1u64 << 53) as f64;
/// The Bernoulli(0.7) coin cutoff on the draw grid: `fl(0.7)·2^53` is
/// exact (same binade, power-of-two scale), so `(word >> 11) < CUT` is
/// bit-identical to `next_f64() < 0.7`.
const ZIPF_COIN_CUT: u64 = (0.7 * ZIPF_GRID) as u64;

/// Precomputed inverse CDF of the Zipf head walk, mapping each
/// `TranscriptRng` draw to the **identical** item the linear walk returns.
///
/// Why draw-identity constrains the structure: the walk's comparisons run
/// on rounded partial sums (`u -= w` after every miss), so item boundaries
/// sit on floating-point values that differ from the real-valued CDF by
/// accumulated rounding. The table therefore stores, per head item `i`,
/// the *exact* smallest draw whose walk survives stages `0..=i` — computed
/// by inverting each `fl(x − w)` step backward with ulp refinement, taking
/// the running max across stages (the walk is monotone in its start
/// value), and snapping the result onto the 53-bit draw grid. A draw's
/// item is then the number of thresholds ≤ it: one bucket lookup (top 10
/// draw bits) plus a binary search over the rare bucket straddling more
/// than one item — O(1) typical, O(log heavy) worst case, byte-identical
/// to the walk by construction.
#[derive(Debug, Clone)]
struct ZipfSampler {
    n: u64,
    heavy: u64,
    weights: Vec<f64>,
    total: f64,
    /// `thresholds[i]` = smallest grid draw (as its 53-bit integer `k`,
    /// the draw being `k·2⁻⁵³`) with `item(k) > i`, non-decreasing;
    /// entries of `u64::MAX` mark unreachable stages. Storing the grid
    /// *integer* rather than the float keeps the per-draw lookup in pure
    /// integer compares (a draw word maps to its grid point by one shift).
    thresholds: Vec<u64>,
    /// Per-bucket `[start, end)` index range into `thresholds` that can
    /// still straddle the bucket; empty when the table is not built.
    buckets: Vec<(u32, u32)>,
}

/// Next representable `f64` above positive finite `x`.
fn ulp_up(x: f64) -> f64 {
    f64::from_bits(x.to_bits() + 1)
}

/// Next representable `f64` below positive finite `x`.
fn ulp_down(x: f64) -> f64 {
    f64::from_bits(x.to_bits() - 1)
}

/// Smallest `x` with `fl(x − w) ≥ t`, for positive finite `t`, `w`. The
/// candidate `fl(t + w)` is within a couple of ulps of the answer; refine
/// by stepping, relying on the monotonicity of float subtraction.
fn min_x_sub_ge(t: f64, w: f64) -> f64 {
    let mut x = t + w;
    let mut steps = 0u32;
    while x - w < t {
        x = ulp_up(x);
        steps += 1;
        assert!(steps < 1024, "min_x_sub_ge: candidate too far below");
    }
    while x > w && ulp_down(x) - w >= t {
        x = ulp_down(x);
        steps += 1;
        assert!(steps < 1024, "min_x_sub_ge: candidate too far above");
    }
    x
}

impl ZipfSampler {
    fn new(n: u64, heavy: u64) -> Self {
        let weights: Vec<f64> = (0..heavy).map(|i| 1.0 / (i + 1) as f64).collect();
        let total: f64 = weights.iter().sum();
        let mut sampler = ZipfSampler {
            n,
            heavy,
            weights,
            total,
            thresholds: Vec::new(),
            buckets: Vec::new(),
        };
        if (1..=ZIPF_TABLE_MAX_HEAVY).contains(&heavy) {
            sampler.build_table();
        }
        sampler
    }

    /// Precompute the stop thresholds and the bucket index (see the type
    /// docs for the invariants).
    fn build_table(&mut self) {
        let k = self.weights.len();
        let mut running = 0.0f64;
        let mut thresholds = Vec::with_capacity(k - 1);
        for j in 0..k - 1 {
            // Smallest start value u whose walk survives stage j
            // (`u_j ≥ w_j`), by inverting stages j−1..0 backward.
            let mut t = self.weights[j];
            for m in (0..j).rev() {
                t = min_x_sub_ge(t, self.weights[m]);
            }
            // The walk survives stages 0..=j iff it survives each; the
            // binding constraint is the running max.
            running = running.max(t);
            thresholds.push(Self::min_grid_draw(running, self.total));
        }
        let mut buckets = Vec::with_capacity(ZIPF_BUCKETS);
        for b in 0..ZIPF_BUCKETS {
            // Bucket boundaries are grid-aligned: `b/1024 = (b·2⁴³)·2⁻⁵³`.
            let left = (b as u64) << ZIPF_BUCKET_SHIFT;
            let right = (b as u64 + 1) << ZIPF_BUCKET_SHIFT;
            let s = thresholds.partition_point(|&t| t < left);
            let e = thresholds.partition_point(|&t| t < right);
            buckets.push((s as u32, e as u32));
        }
        self.thresholds = thresholds;
        self.buckets = buckets;
    }

    /// Smallest grid draw `k` (the draw being `k·2⁻⁵³`) with
    /// `fl(k·2⁻⁵³ · total) ≥ rec`, or the sentinel `u64::MAX` when no
    /// draw reaches `rec`.
    fn min_grid_draw(rec: f64, total: f64) -> u64 {
        let grid = |k: u64| k as f64 * (1.0 / ZIPF_GRID);
        let cond = |k: u64| grid(k) * total >= rec;
        let max_k = 1u64 << 53;
        let mut k = ((rec / total) * ZIPF_GRID).min(max_k as f64).max(0.0) as u64;
        let mut steps = 0u32;
        while k < max_k && !cond(k) {
            k += 1;
            steps += 1;
            assert!(steps < 1024, "min_grid_draw: guess too far below");
        }
        while k > 0 && cond(k - 1) {
            k -= 1;
            steps += 1;
            assert!(steps < 1024, "min_grid_draw: guess too far above");
        }
        if k >= max_k {
            // Unreachable even at f = 1.0⁻: never counted (draws are < 1).
            return u64::MAX;
        }
        k
    }

    /// Head item for the grid draw `k` (i.e. raw word `>> 11`): the number
    /// of thresholds ≤ `k` — one bucket lookup plus a binary search over
    /// the rare bucket straddling more than one item, all in integers.
    #[inline]
    fn head_item_bits(&self, k: u64) -> u64 {
        let (s, e) = self.buckets[(k >> ZIPF_BUCKET_SHIFT) as usize];
        let (s, e) = (s as usize, e as usize);
        (s + self.thresholds[s..e].partition_point(|&t| t <= k)) as u64
    }

    /// Head item for draw `f`: recovers the 53-bit integer grid point
    /// exactly (`f = k·2⁻⁵³`, so the rescale is lossless) and counts
    /// thresholds ≤ it.
    #[inline]
    fn head_item(&self, f: f64) -> u64 {
        self.head_item_bits((f * ZIPF_GRID) as u64)
    }

    /// One Zipf draw, consuming the same words in the same order as
    /// [`zipf_next`] and returning the same item.
    #[inline]
    fn next<R: DrawSource>(&self, rng: &mut R) -> u64 {
        if self.buckets.is_empty() {
            return zipf_next(rng, self.n, self.heavy, &self.weights, self.total);
        }
        if rng.bernoulli(0.7) {
            self.head_item(rng.next_f64())
        } else {
            self.heavy + rng.below(self.n - self.heavy)
        }
    }

    /// The vectorized chunk kernel: `k` draws appended to `buf`, consuming
    /// the exact word tape of `k` scalar [`ZipfSampler::next`] calls.
    ///
    /// Every Zipf draw consumes at least two words — the Bernoulli coin
    /// plus either the head draw or the first tail candidate — so the
    /// kernel prefetches exactly `2k` words in one bulk fill, never
    /// reaching past what these draws will consume, and tops up word by
    /// word only on the (vanishingly rare) tail rejection. Word order is
    /// the scalar order by construction: the prefetched slice *is* the
    /// next stretch of tape, read left to right.
    fn next_chunk_into(&self, tape: &mut WordTape, k: usize, buf: &mut Vec<Update>) {
        if self.buckets.is_empty() {
            for _ in 0..k {
                buf.push(Update::Insert(zipf_next(
                    tape,
                    self.n,
                    self.heavy,
                    &self.weights,
                    self.total,
                )));
            }
            return;
        }
        let mut words = std::mem::take(&mut tape.scratch);
        words.resize(2 * k, 0);
        tape.fill_words(&mut words);
        let tail = self.n - self.heavy;
        if tail == 0 {
            // Degenerate head-only universe: preserve the scalar panic on
            // the first tail draw (`below(0)`), draw by draw.
            let mut wi = 0usize;
            for _ in 0..k {
                let coin = take_word(&words, &mut wi, tape);
                assert!(
                    (coin >> 11) < ZIPF_COIN_CUT,
                    "below(0) is undefined" // the scalar tail draw panics here
                );
                let v = take_word(&words, &mut wi, tape);
                buf.push(Update::Insert(self.head_item_bits(v >> 11)));
            }
            tape.scratch = words;
            return;
        }
        let pow2 = tail.is_power_of_two();
        let mask = tail.wrapping_sub(1);
        // Hoisted reciprocal: the scalar path computes it lazily per tail
        // draw, but `tape.recip` is a pure cache (excluded from snapshots),
        // so warming it eagerly is unobservable. `Reciprocal::new(1)` is
        // well-defined, so a pow2 tail just never reads it.
        let recip = tape.recip_for(if pow2 { 1 } else { tail });
        let mut wi = 0usize;
        for _ in 0..k {
            // Head and tail consume the same value word, so a draw is a
            // fixed (coin, value) pair unless a non-pow2 tail rejects —
            // compute both interpretations and select on the coin, keeping
            // the 70/30 branch out of the pipeline.
            let coin = take_word(&words, &mut wi, tape);
            let v = take_word(&words, &mut wi, tape);
            let is_head = (coin >> 11) < ZIPF_COIN_CUT;
            let head = self.head_item_bits(v >> 11);
            let tail_raw = if pow2 { v & mask } else { recip.rem(v) };
            let mut item = if is_head { head } else { self.heavy + tail_raw };
            if !pow2 && !is_head && v >= recip.zone() {
                // Rare tail rejection: keep drawing, exactly like `below`.
                item = loop {
                    let v = take_word(&words, &mut wi, tape);
                    if v < recip.zone() {
                        break self.heavy + recip.rem(v);
                    }
                };
            }
            buf.push(Update::Insert(item));
        }
        tape.scratch = words;
    }
}

/// Next word for the zipf chunk kernel: the prefetched slice first (it is
/// the next stretch of raw tape), then — only when rejections pushed the
/// cursor past the prefetch — fresh words straight off the tape.
#[inline]
fn take_word(words: &[u64], wi: &mut usize, tape: &mut WordTape) -> u64 {
    if *wi < words.len() {
        *wi += 1;
        words[*wi - 1]
    } else {
        tape.next_u64()
    }
}

/// Synthetic IPv4 DDoS traffic: one hot /24 prefix (25%), one hot host
/// (15%), uniform noise elsewhere.
pub fn ddos_stream(m: u64, seed: u64) -> Vec<u64> {
    let mut rng = TranscriptRng::from_seed(seed);
    (0..m).map(|t| ddos_next(&mut rng, t)).collect()
}

/// One DDoS draw at stream position `t` (shared with the streaming path).
fn ddos_next(rng: &mut TranscriptRng, t: u64) -> u64 {
    match t % 20 {
        0..=4 => (10 << 24) | (1 << 16) | (7 << 8) | rng.below(256),
        5..=7 => (203 << 24) | (113 << 8) | 5,
        _ => rng.below(1 << 32),
    }
}

/// Turnstile churn: waves of insertions followed by partial deletions.
pub fn churn_stream(n: u64, waves: u64, wave_size: u64, seed: u64) -> Vec<Turnstile> {
    let mut rng = TranscriptRng::from_seed(seed);
    let mut out = Vec::with_capacity((waves * wave_size * 3 / 2) as usize);
    for _ in 0..waves {
        let base = rng.below(n);
        for i in 0..wave_size {
            out.push(Turnstile::insert((base + i * 7) % n));
        }
        for i in 0..wave_size / 2 {
            out.push(Turnstile::delete((base + i * 7) % n));
        }
    }
    out
}

/// Uniform insertions over `[n]`.
pub fn uniform_stream(n: u64, m: u64, seed: u64) -> Vec<u64> {
    let mut rng = TranscriptRng::from_seed(seed);
    (0..m).map(|_| rng.below(n)).collect()
}

/// Deterministic round-robin over `items` ids (`t % items`) — the
/// few-distinct-items worst case for `log m`-bit counters. The `t % items`
/// of the historical implementation is carried as a running wrap counter:
/// same output, no division in the per-update loop.
pub fn cycle_stream(items: u64, m: u64) -> Vec<u64> {
    let items = items.max(1);
    let mut out = Vec::with_capacity(usize::try_from(m).unwrap_or(0));
    let mut cur = 0u64;
    for _ in 0..m {
        out.push(cur);
        cur += 1;
        if cur == items {
            cur = 0;
        }
    }
    out
}

/// Declarative workload for registry-driven experiment rows.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// [`zipf_stream`] insertions.
    Zipf {
        /// Universe size.
        n: u64,
        /// Stream length.
        m: u64,
        /// Size of the Zipf head.
        heavy: u64,
        /// Generator seed.
        seed: u64,
    },
    /// [`ddos_stream`] insertions.
    Ddos {
        /// Stream length.
        m: u64,
        /// Generator seed.
        seed: u64,
    },
    /// [`churn_stream`] turnstile updates.
    Churn {
        /// Universe size.
        n: u64,
        /// Number of insert/delete waves.
        waves: u64,
        /// Insertions per wave.
        wave: u64,
        /// Generator seed.
        seed: u64,
    },
    /// [`uniform_stream`] insertions.
    Uniform {
        /// Universe size.
        n: u64,
        /// Stream length.
        m: u64,
        /// Generator seed.
        seed: u64,
    },
    /// [`cycle_stream`] insertions (`t % items`).
    Cycle {
        /// Number of distinct items.
        items: u64,
        /// Stream length.
        m: u64,
    },
    /// A literal update script.
    Script(Vec<Update>),
}

impl WorkloadSpec {
    /// The lazy, chunk-at-a-time generator for this workload, seeded from
    /// the spec's own embedded seed — the RNG derivation is exactly the one
    /// [`WorkloadSpec::generate`] uses, so concatenating the chunks (of any
    /// size) reproduces the materialized stream byte for byte.
    ///
    /// Memory is O(1) in the stream length for every generator variant;
    /// only a literal [`WorkloadSpec::Script`] keeps its updates resident
    /// (it *is* the materialized form).
    pub fn stream(&self) -> WorkloadStream {
        let state = match self {
            WorkloadSpec::Zipf { n, m, heavy, seed } => StreamState::Zipf {
                tape: WordTape::from_seed(*seed),
                sampler: ZipfSampler::new(*n, *heavy),
                remaining: *m,
            },
            WorkloadSpec::Ddos { m, seed } => StreamState::Ddos {
                tape: WordTape::from_seed(*seed),
                t: 0,
                m: *m,
            },
            WorkloadSpec::Churn {
                n,
                waves,
                wave,
                seed,
            } => StreamState::Churn {
                tape: WordTape::from_seed(*seed),
                n: *n,
                step7: if *n == 0 { 0 } else { 7 % *n },
                wave: *wave,
                waves_left: *waves,
                base: 0,
                phase: ChurnPhase::NextWave,
            },
            WorkloadSpec::Uniform { n, m, seed } => StreamState::Uniform {
                tape: WordTape::from_seed(*seed),
                n: *n,
                remaining: *m,
            },
            WorkloadSpec::Cycle { items, m } => StreamState::Cycle {
                items: (*items).max(1),
                t: 0,
                m: *m,
                cur: 0,
            },
            WorkloadSpec::Script(v) => StreamState::Script {
                script: v.clone(),
                pos: 0,
            },
        };
        WorkloadStream { state }
    }

    /// Materialize the update stream — a thin collect over
    /// [`WorkloadSpec::stream`], kept for tests and small literal scripts.
    /// Large-`m` callers should pull chunks from the stream instead.
    pub fn generate(&self) -> Vec<Update> {
        if let WorkloadSpec::Script(v) = self {
            // A script already is its materialized form; skip the pull
            // loop's two extra copies.
            return v.clone();
        }
        let mut source = self.stream();
        let mut out = Vec::with_capacity(self.len().min(1 << 20) as usize);
        let mut buf = Vec::with_capacity(DEFAULT_CHUNK);
        while source.next_chunk(&mut buf) > 0 {
            out.extend_from_slice(&buf);
        }
        out
    }

    /// Nominal stream length before generation.
    pub fn len(&self) -> u64 {
        match self {
            WorkloadSpec::Zipf { m, .. }
            | WorkloadSpec::Ddos { m, .. }
            | WorkloadSpec::Uniform { m, .. }
            | WorkloadSpec::Cycle { m, .. } => *m,
            WorkloadSpec::Churn { waves, wave, .. } => waves * (wave + wave / 2),
            WorkloadSpec::Script(v) => v.len() as u64,
        }
    }

    /// `true` iff the workload has no updates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The same workload capped at roughly `cap` updates — the `--quick`
    /// smoke mode of the experiment runner.
    pub fn capped(&self, cap: u64) -> WorkloadSpec {
        let mut w = self.clone();
        match &mut w {
            WorkloadSpec::Zipf { m, .. }
            | WorkloadSpec::Ddos { m, .. }
            | WorkloadSpec::Uniform { m, .. }
            | WorkloadSpec::Cycle { m, .. } => *m = (*m).min(cap),
            WorkloadSpec::Churn { waves, wave, .. } => {
                while *waves > 1 && *waves * (*wave + *wave / 2) > cap {
                    *waves /= 2;
                }
                while *wave > 1 && *waves * (*wave + *wave / 2) > cap {
                    *wave /= 2;
                }
            }
            WorkloadSpec::Script(v) => v.truncate(cap as usize),
        }
        w
    }

    /// The same workload resized to roughly `m` updates (up or down) — how
    /// the `--prelude-m` CLI flag rescales declarative rows without
    /// touching their other parameters. A literal script cannot grow; it is
    /// truncated like [`WorkloadSpec::capped`].
    pub fn resized(&self, m: u64) -> WorkloadSpec {
        let mut w = self.clone();
        match &mut w {
            WorkloadSpec::Zipf { m: len, .. }
            | WorkloadSpec::Ddos { m: len, .. }
            | WorkloadSpec::Uniform { m: len, .. }
            | WorkloadSpec::Cycle { m: len, .. } => *len = m,
            WorkloadSpec::Churn { waves, wave, .. } => {
                *waves = (m / (*wave + *wave / 2).max(1)).max(1);
            }
            WorkloadSpec::Script(v) => v.truncate(m as usize),
        }
        w
    }

    /// Short name for report lines.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadSpec::Zipf { .. } => "zipf",
            WorkloadSpec::Ddos { .. } => "ddos",
            WorkloadSpec::Churn { .. } => "churn",
            WorkloadSpec::Uniform { .. } => "uniform",
            WorkloadSpec::Cycle { .. } => "cycle",
            WorkloadSpec::Script(_) => "script",
        }
    }
}

/// Where a churn stream is inside its wave state machine. `Insert` and
/// `Delete` carry the position `i` and the precomputed item
/// `(base + 7·i) % n`, maintained incrementally (add the precomputed
/// `7 % n`, conditional wrap) so the per-update modulo of the historical
/// implementation disappears while the emitted walk stays identical.
#[derive(Debug, Clone, Copy)]
enum ChurnPhase {
    /// Draw the next wave's base (or finish if no waves remain).
    NextWave,
    /// Emitting insertion `i` of the current wave, at item `cur`.
    Insert(u64, u64),
    /// Emitting deletion `i` of the current wave, at item `cur`.
    Delete(u64, u64),
}

#[derive(Debug, Clone)]
enum StreamState {
    Zipf {
        tape: WordTape,
        sampler: ZipfSampler,
        remaining: u64,
    },
    Ddos {
        tape: WordTape,
        t: u64,
        m: u64,
    },
    Churn {
        tape: WordTape,
        n: u64,
        /// Precomputed `7 % n`: the stride of the wave walk.
        step7: u64,
        wave: u64,
        waves_left: u64,
        base: u64,
        phase: ChurnPhase,
    },
    Uniform {
        tape: WordTape,
        n: u64,
        remaining: u64,
    },
    Cycle {
        items: u64,
        t: u64,
        m: u64,
        /// Running `t % items` wrap counter (no division per update).
        cur: u64,
    },
    Script {
        script: Vec<Update>,
        pos: usize,
    },
}

/// The lazy generator behind [`WorkloadSpec::stream`]: an [`UpdateSource`]
/// holding only the generator's RNG/position state, never the stream.
///
/// Since the bulk-kernel rework, every variant consumes pre-filled raw
/// words from a [`WordTape`] in the same order as the historical scalar
/// draws; uniform, ddos, cycle, and script chunks are produced by
/// vectorized kernels, zipf and churn by the shared per-draw logic over
/// the buffered tape.
#[derive(Debug, Clone)]
pub struct WorkloadStream {
    state: StreamState,
}

impl WorkloadStream {
    /// Updates not yet emitted.
    fn remaining(&self) -> u64 {
        match &self.state {
            StreamState::Zipf { remaining, .. } | StreamState::Uniform { remaining, .. } => {
                *remaining
            }
            StreamState::Ddos { t, m, .. } | StreamState::Cycle { t, m, .. } => {
                m.saturating_sub(*t)
            }
            StreamState::Churn {
                wave,
                waves_left,
                phase,
                ..
            } => {
                let per_wave = wave + wave / 2;
                let in_wave = match phase {
                    ChurnPhase::NextWave => 0,
                    ChurnPhase::Insert(i, _) => per_wave.saturating_sub(*i),
                    ChurnPhase::Delete(i, _) => (wave / 2).saturating_sub(*i),
                };
                waves_left * per_wave + in_wave
            }
            StreamState::Script { script, pos } => script.len().saturating_sub(*pos) as u64,
        }
    }
}

/// Variant tag used in [`WorkloadStream`] snapshot frames.
fn stream_tag(state: &StreamState) -> u8 {
    match state {
        StreamState::Zipf { .. } => 0,
        StreamState::Ddos { .. } => 1,
        StreamState::Churn { .. } => 2,
        StreamState::Uniform { .. } => 3,
        StreamState::Cycle { .. } => 4,
        StreamState::Script { .. } => 5,
    }
}

/// Human label for a variant tag, for mismatch diagnostics.
fn tag_label(tag: u8) -> &'static str {
    match tag {
        0 => "zipf",
        1 => "ddos",
        2 => "churn",
        3 => "uniform",
        4 => "cycle",
        5 => "script",
        _ => "unknown",
    }
}

impl Snapshot for WorkloadStream {
    /// Layout: `variant tag | config params | position state | tape`.
    ///
    /// Restore targets a twin built from the **same [`WorkloadSpec`]**:
    /// configuration parameters are validated (wrong spec ⇒
    /// [`SnapError::Mismatch`]), position state and the word tape are
    /// overwritten, so the resumed stream emits exactly the updates the
    /// snapshotted one had left — draw for draw, independent of how either
    /// side chunked its pulls.
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(stream_tag(&self.state));
        match &self.state {
            StreamState::Zipf {
                tape,
                sampler,
                remaining,
            } => {
                w.put_u64(sampler.n);
                w.put_u64(sampler.heavy);
                w.put_u64(*remaining);
                tape.snap(w);
            }
            StreamState::Ddos { tape, t, m } => {
                w.put_u64(*m);
                w.put_u64(*t);
                tape.snap(w);
            }
            StreamState::Churn {
                tape,
                n,
                wave,
                waves_left,
                base,
                phase,
                ..
            } => {
                w.put_u64(*n);
                w.put_u64(*wave);
                w.put_u64(*waves_left);
                w.put_u64(*base);
                match *phase {
                    ChurnPhase::NextWave => w.put_u8(0),
                    ChurnPhase::Insert(i, cur) => {
                        w.put_u8(1);
                        w.put_u64(i);
                        w.put_u64(cur);
                    }
                    ChurnPhase::Delete(i, cur) => {
                        w.put_u8(2);
                        w.put_u64(i);
                        w.put_u64(cur);
                    }
                }
                tape.snap(w);
            }
            StreamState::Uniform { tape, n, remaining } => {
                w.put_u64(*n);
                w.put_u64(*remaining);
                tape.snap(w);
            }
            StreamState::Cycle { items, t, m, cur } => {
                w.put_u64(*items);
                w.put_u64(*m);
                w.put_u64(*t);
                w.put_u64(*cur);
            }
            StreamState::Script { script, pos } => {
                w.put_u64(script.len() as u64);
                w.put_usize(*pos);
            }
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let tag = r.take_u8()?;
        let own = stream_tag(&self.state);
        if tag != own {
            return Err(SnapError::mismatch(tag_label(own), tag_label(tag)));
        }
        match &mut self.state {
            StreamState::Zipf {
                tape,
                sampler,
                remaining,
            } => {
                let (sn, sheavy) = (r.take_u64()?, r.take_u64()?);
                if sn != sampler.n || sheavy != sampler.heavy {
                    return Err(SnapError::mismatch(
                        format!("zipf(n={}, heavy={})", sampler.n, sampler.heavy),
                        format!("zipf(n={sn}, heavy={sheavy})"),
                    ));
                }
                *remaining = r.take_u64()?;
                tape.restore(r)
            }
            StreamState::Ddos { tape, t, m } => {
                let sm = r.take_u64()?;
                if sm != *m {
                    return Err(SnapError::mismatch(
                        format!("ddos(m={m})"),
                        format!("ddos(m={sm})"),
                    ));
                }
                let st = r.take_u64()?;
                if st > *m {
                    return Err(SnapError::corrupt(format!("ddos position {st} > m {m}")));
                }
                *t = st;
                tape.restore(r)
            }
            StreamState::Churn {
                tape,
                n,
                wave,
                waves_left,
                base,
                phase,
                ..
            } => {
                let (sn, swave) = (r.take_u64()?, r.take_u64()?);
                if sn != *n || swave != *wave {
                    return Err(SnapError::mismatch(
                        format!("churn(n={n}, wave={wave})"),
                        format!("churn(n={sn}, wave={swave})"),
                    ));
                }
                *waves_left = r.take_u64()?;
                let sbase = r.take_u64()?;
                if sbase >= *n {
                    return Err(SnapError::corrupt(format!("churn base {sbase} >= n {n}")));
                }
                *base = sbase;
                *phase = match r.take_u8()? {
                    0 => ChurnPhase::NextWave,
                    ptag @ (1 | 2) => {
                        let (i, cur) = (r.take_u64()?, r.take_u64()?);
                        let bound = if ptag == 1 { *wave } else { *wave / 2 };
                        if i > bound || cur >= *n {
                            return Err(SnapError::corrupt(format!(
                                "churn phase {ptag} position (i={i}, cur={cur}) out of range"
                            )));
                        }
                        if ptag == 1 {
                            ChurnPhase::Insert(i, cur)
                        } else {
                            ChurnPhase::Delete(i, cur)
                        }
                    }
                    other => {
                        return Err(SnapError::corrupt(format!("unknown churn phase {other}")))
                    }
                };
                tape.restore(r)
            }
            StreamState::Uniform { tape, n, remaining } => {
                let sn = r.take_u64()?;
                if sn != *n {
                    return Err(SnapError::mismatch(
                        format!("uniform(n={n})"),
                        format!("uniform(n={sn})"),
                    ));
                }
                *remaining = r.take_u64()?;
                tape.restore(r)
            }
            StreamState::Cycle { items, t, m, cur } => {
                let (sitems, sm) = (r.take_u64()?, r.take_u64()?);
                if sitems != *items || sm != *m {
                    return Err(SnapError::mismatch(
                        format!("cycle(items={items}, m={m})"),
                        format!("cycle(items={sitems}, m={sm})"),
                    ));
                }
                let (st, scur) = (r.take_u64()?, r.take_u64()?);
                if st > *m || scur >= *items {
                    return Err(SnapError::corrupt(format!(
                        "cycle position (t={st}, cur={scur}) out of range"
                    )));
                }
                *t = st;
                *cur = scur;
                Ok(())
            }
            StreamState::Script { script, pos } => {
                let slen = r.take_u64()?;
                if slen != script.len() as u64 {
                    return Err(SnapError::mismatch(
                        format!("script(len={})", script.len()),
                        format!("script(len={slen})"),
                    ));
                }
                let spos = r.take_usize()?;
                if spos > script.len() {
                    return Err(SnapError::corrupt(format!(
                        "script position {spos} > len {}",
                        script.len()
                    )));
                }
                *pos = spos;
                Ok(())
            }
        }
    }
}

/// Chunk budget left for a generator with `left` updates remaining.
#[inline]
fn take_of(cap: usize, len: usize, left: u64) -> usize {
    debug_assert!(len <= cap);
    usize::try_from(left).unwrap_or(usize::MAX).min(cap - len)
}

impl UpdateSource for WorkloadStream {
    fn next_chunk(&mut self, buf: &mut Vec<Update>) -> usize {
        buf.clear();
        let cap = chunk_cap(buf);
        match &mut self.state {
            StreamState::Zipf {
                tape,
                sampler,
                remaining,
            } => {
                let k = take_of(cap, 0, *remaining);
                sampler.next_chunk_into(tape, k, buf);
                *remaining -= k as u64;
            }
            StreamState::Ddos { tape, t, m } => {
                let k = take_of(cap, 0, m.saturating_sub(*t));
                // Phases 5..=7 of the 20-step pattern draw no word. Count
                // the words this chunk needs, bulk-fill exactly that many,
                // then mix addresses — one word per drawing position, in
                // tape order, exactly as the scalar `ddos_next` consumed
                // them (both its `below` calls are power-of-two masks).
                let mut phase = (*t % 20) as u32;
                let mut draws = 0usize;
                let mut ph = phase;
                for _ in 0..k {
                    if !(5..=7).contains(&ph) {
                        draws += 1;
                    }
                    ph += 1;
                    if ph == 20 {
                        ph = 0;
                    }
                }
                let words = tape.word_chunk(draws);
                let mut wi = 0;
                for _ in 0..k {
                    let item = match phase {
                        0..=4 => {
                            let w = words[wi];
                            wi += 1;
                            (10 << 24) | (1 << 16) | (7 << 8) | (w & 255)
                        }
                        5..=7 => (203 << 24) | (113 << 8) | 5,
                        _ => {
                            let w = words[wi];
                            wi += 1;
                            w & 0xFFFF_FFFF
                        }
                    };
                    buf.push(Update::Insert(item));
                    phase += 1;
                    if phase == 20 {
                        phase = 0;
                    }
                }
                *t += k as u64;
            }
            StreamState::Churn {
                tape,
                n,
                step7,
                wave,
                waves_left,
                base,
                phase,
            } => loop {
                if buf.len() == cap {
                    break;
                }
                match *phase {
                    ChurnPhase::NextWave => {
                        if *waves_left == 0 {
                            break;
                        }
                        *waves_left -= 1;
                        *base = tape.below(*n);
                        *phase = ChurnPhase::Insert(0, *base);
                    }
                    ChurnPhase::Insert(i, cur) => {
                        if i < *wave {
                            let mut next = cur + *step7;
                            if next >= *n {
                                next -= *n;
                            }
                            *phase = ChurnPhase::Insert(i + 1, next);
                            buf.push(Update::from(Turnstile::insert(cur)));
                        } else {
                            *phase = ChurnPhase::Delete(0, *base);
                        }
                    }
                    ChurnPhase::Delete(i, cur) => {
                        if i < *wave / 2 {
                            let mut next = cur + *step7;
                            if next >= *n {
                                next -= *n;
                            }
                            *phase = ChurnPhase::Delete(i + 1, next);
                            buf.push(Update::from(Turnstile::delete(cur)));
                        } else {
                            *phase = ChurnPhase::NextWave;
                        }
                    }
                }
            },
            StreamState::Uniform { tape, n, remaining } => {
                let k = take_of(cap, 0, *remaining);
                buf.extend(tape.below_chunk(*n, k).iter().map(|&v| Update::Insert(v)));
                *remaining -= k as u64;
            }
            StreamState::Cycle { items, t, m, cur } => {
                let k = take_of(cap, 0, m.saturating_sub(*t));
                let mut c = *cur;
                for _ in 0..k {
                    buf.push(Update::Insert(c));
                    c += 1;
                    if c == *items {
                        c = 0;
                    }
                }
                *cur = c;
                *t += k as u64;
            }
            StreamState::Script { script, pos } => {
                let take = cap.min(script.len() - *pos);
                buf.extend_from_slice(&script[*pos..*pos + take]);
                *pos += take;
            }
        }
        buf.len()
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.remaining())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_stream_has_heavy_head() {
        let s = zipf_stream(1 << 16, 20_000, 8, 1);
        let head = s.iter().filter(|&&i| i == 0).count();
        assert!(head > 3_000, "head count {head}");
        assert_eq!(s.len(), 20_000);
    }

    #[test]
    fn zipf_sampler_matches_cdf_walk_draw_for_draw() {
        // The inverse-CDF table must map every draw to the item the linear
        // walk would have produced, consuming the same words.
        for &(n, heavy, seed) in &[
            (1u64 << 16, 64u64, 1u64),
            (1 << 16, 64, 97),
            (1 << 12, 1, 5),
            (1 << 10, 16, 7),
            (257, 8, 11),
            (1 << 10, 512, 3),
        ] {
            let sampler = ZipfSampler::new(n, heavy);
            assert!(!sampler.buckets.is_empty(), "table expected for {heavy}");
            let mut fast = WordTape::from_seed(seed);
            let mut slow = WordTape::from_seed(seed);
            for t in 0..20_000u64 {
                let a = sampler.next(&mut fast);
                let b = zipf_next(&mut slow, n, heavy, &sampler.weights, sampler.total);
                assert_eq!(a, b, "n={n} heavy={heavy} seed={seed} draw {t}");
            }
            // Equal word consumption ⇒ the tapes are still in lock-step.
            assert_eq!(fast.next_u64(), slow.next_u64());
        }
    }

    #[test]
    fn zipf_sampler_head_exact_on_grid() {
        // `next_f64` only ever produces k/2^53; the table must agree with
        // the walk at every stored threshold, one grid step below it, and
        // on a pseudorandom sample of grid points.
        let sampler = ZipfSampler::new(1 << 12, 64);
        let grid = |k: u64| k as f64 * (1.0 / ZIPF_GRID);
        let check = |f: f64| {
            let walked = zipf_head_walk(f * sampler.total, sampler.heavy, &sampler.weights);
            assert_eq!(sampler.head_item(f), walked, "f = {f}");
        };
        for &t in &sampler.thresholds {
            if t == u64::MAX {
                continue; // sentinel: unreachable within [0, 1)
            }
            check(grid(t));
            if t > 0 {
                check(grid(t - 1));
            }
        }
        let mut x = 0x243F_6A88_85A3_08D3u64; // pseudorandom grid probes
        for _ in 0..50_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            check(grid(x >> 11));
        }
    }

    #[test]
    fn zipf_sampler_falls_back_for_oversized_head() {
        // Above the table cap construction would be quadratic in `heavy`;
        // the sampler must delegate to the walk instead, identically.
        let (n, heavy) = (1u64 << 14, ZIPF_TABLE_MAX_HEAVY + 1);
        let sampler = ZipfSampler::new(n, heavy);
        assert!(sampler.buckets.is_empty());
        let mut fast = WordTape::from_seed(13);
        let mut slow = WordTape::from_seed(13);
        for _ in 0..2_000 {
            assert_eq!(
                sampler.next(&mut fast),
                zipf_next(&mut slow, n, heavy, &sampler.weights, sampler.total)
            );
        }
        assert_eq!(fast.next_u64(), slow.next_u64());
    }

    #[test]
    fn ddos_stream_shares() {
        let s = ddos_stream(20_000, 2);
        let subnet = s
            .iter()
            .filter(|&&ip| ip >> 8 == (10 << 16) | (1 << 8) | 7)
            .count();
        assert!((4000..6000).contains(&subnet), "subnet share {subnet}");
    }

    #[test]
    fn churn_stream_shape() {
        let s = churn_stream(1 << 10, 4, 100, 3);
        assert_eq!(s.len(), 4 * 150);
        assert!(s.iter().any(|u| u.delta < 0));
    }

    #[test]
    fn specs_generate_and_cap() {
        let spec = WorkloadSpec::Zipf {
            n: 1 << 12,
            m: 4096,
            heavy: 4,
            seed: 9,
        };
        assert_eq!(spec.generate().len(), 4096);
        assert_eq!(spec.capped(100).generate().len(), 100);
        assert_eq!(spec.label(), "zipf");

        let churn = WorkloadSpec::Churn {
            n: 256,
            waves: 8,
            wave: 64,
            seed: 1,
        };
        assert_eq!(churn.len(), 8 * 96);
        assert!(churn.capped(100).len() <= 100 + 96);
        assert!(churn
            .generate()
            .iter()
            .any(|u| matches!(u, Update::Turnstile { delta, .. } if *delta < 0)));

        let cyc = WorkloadSpec::Cycle { items: 3, m: 9 };
        assert_eq!(cyc.generate()[4], Update::Insert(1));
        assert!(!cyc.is_empty());
    }

    #[test]
    fn stream_matches_raw_generators_byte_for_byte() {
        // The streaming path must reproduce the original materialized
        // generators exactly — same RNG, same order — for every variant.
        let (n, m, seed) = (1 << 10, 1000, 17);
        let cases: Vec<(WorkloadSpec, Vec<Update>)> = vec![
            (
                WorkloadSpec::Zipf {
                    n,
                    m,
                    heavy: 8,
                    seed,
                },
                zipf_stream(n, m, 8, seed)
                    .into_iter()
                    .map(Update::Insert)
                    .collect(),
            ),
            (
                WorkloadSpec::Ddos { m, seed },
                ddos_stream(m, seed)
                    .into_iter()
                    .map(Update::Insert)
                    .collect(),
            ),
            (
                WorkloadSpec::Churn {
                    n,
                    waves: 7,
                    wave: 64,
                    seed,
                },
                churn_stream(n, 7, 64, seed)
                    .into_iter()
                    .map(Update::from)
                    .collect(),
            ),
            (
                WorkloadSpec::Uniform { n, m, seed },
                uniform_stream(n, m, seed)
                    .into_iter()
                    .map(Update::Insert)
                    .collect(),
            ),
            (
                WorkloadSpec::Cycle { items: 5, m },
                cycle_stream(5, m).into_iter().map(Update::Insert).collect(),
            ),
        ];
        for (spec, reference) in cases {
            assert_eq!(spec.generate(), reference, "{}", spec.label());
            // Chunked pulls concatenate to the same stream.
            let mut source = spec.stream();
            assert_eq!(source.len_hint(), Some(reference.len() as u64));
            let mut got = Vec::new();
            let mut buf = Vec::with_capacity(7);
            while source.next_chunk(&mut buf) > 0 {
                got.extend_from_slice(&buf);
            }
            assert_eq!(got, reference, "{} chunked", spec.label());
            assert_eq!(source.len_hint(), Some(0));
        }
    }

    #[test]
    fn slice_and_fold_and_inspect_sources() {
        let updates: Vec<Update> = (0..10).map(Update::Insert).collect();
        let mut buf = Vec::with_capacity(4);
        let mut source = SliceSource::new(&updates);
        assert_eq!(source.len_hint(), Some(10));
        assert_eq!(source.next_chunk(&mut buf), 4);
        assert_eq!(buf, updates[..4]);
        assert_eq!(source.len_hint(), Some(6));

        let mut folded = FoldSource::new(SliceSource::new(&updates), 3);
        folded.next_chunk(&mut buf);
        assert_eq!(buf[..4], [0, 1, 2, 0].map(Update::Insert));

        let mut seen = 0usize;
        let mut inspected = InspectSource::new(SliceSource::new(&updates), |chunk: &[Update]| {
            seen += chunk.len();
        });
        while inspected.next_chunk(&mut buf) > 0 {}
        assert_eq!(seen, 10);
    }

    #[test]
    fn zero_capacity_buffer_falls_back_to_default_chunk() {
        let spec = WorkloadSpec::Cycle {
            items: 3,
            m: DEFAULT_CHUNK as u64 + 10,
        };
        let mut source = spec.stream();
        let mut buf = Vec::new();
        assert_eq!(source.next_chunk(&mut buf), DEFAULT_CHUNK);
        assert_eq!(source.next_chunk(&mut buf), 10);
        assert_eq!(source.next_chunk(&mut buf), 0);
    }

    /// All workload variants at a small, draw-heavy size, for cross-variant
    /// snapshot and len_hint sweeps.
    fn all_specs() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::Zipf {
                n: 1 << 10,
                m: 500,
                heavy: 8,
                seed: 21,
            },
            WorkloadSpec::Ddos { m: 500, seed: 22 },
            WorkloadSpec::Churn {
                n: 300,
                waves: 5,
                wave: 64,
                seed: 23,
            },
            WorkloadSpec::Uniform {
                n: 1000,
                m: 500,
                seed: 24,
            },
            WorkloadSpec::Cycle { items: 7, m: 500 },
            WorkloadSpec::Script((0..500).map(Update::Insert).collect()),
        ]
    }

    #[test]
    fn len_hint_tracks_remaining_after_partial_consumption() {
        // The satellite-3 audit contract: len_hint is the count REMAINING,
        // not the original total, at every point of a partially consumed
        // stream — including streams produced by resized().
        for spec in all_specs() {
            let total = spec.len();
            let mut source = spec.stream();
            assert_eq!(source.len_hint(), Some(total), "{} fresh", spec.label());
            let mut buf = Vec::with_capacity(64);
            let mut consumed = 0u64;
            while source.next_chunk(&mut buf) > 0 {
                consumed += buf.len() as u64;
                assert_eq!(
                    source.len_hint(),
                    Some(total - consumed),
                    "{} after {consumed} updates",
                    spec.label()
                );
            }
            assert_eq!(source.len_hint(), Some(0), "{} drained", spec.label());
        }
    }

    #[test]
    fn len_hint_on_resized_streams_reports_new_total_minus_consumed() {
        let spec = WorkloadSpec::Uniform {
            n: 1 << 10,
            m: 100,
            seed: 5,
        };
        let resized = spec.resized(1000);
        let mut source = resized.stream();
        assert_eq!(source.len_hint(), Some(1000), "resized total, not original");
        let mut buf = Vec::with_capacity(64);
        source.next_chunk(&mut buf);
        assert_eq!(
            source.len_hint(),
            Some(1000 - buf.len() as u64),
            "resized remaining after a pull"
        );
    }

    #[test]
    fn stream_snapshot_resumes_draw_for_draw() {
        // Snapshot mid-stream at an offset that is NOT chunk-aligned (so
        // the word tape holds buffered words), restore into a twin built
        // from the same spec, and check the twin emits exactly the updates
        // the original had left — including a correct len_hint.
        for spec in all_specs() {
            let reference = spec.generate();
            let mut source = spec.stream();
            let mut buf = Vec::with_capacity(13);
            let mut consumed = 0usize;
            while consumed < 200 {
                let wrote = source.next_chunk(&mut buf);
                assert!(wrote > 0);
                consumed += wrote;
            }
            let frame = wb_core::snap::to_bytes(&source);
            let mut twin = spec.stream();
            wb_core::snap::from_bytes(&mut twin, &frame).unwrap();
            assert_eq!(
                twin.len_hint(),
                Some(reference.len() as u64 - consumed as u64),
                "{} resumed len_hint",
                spec.label()
            );
            let mut got = Vec::new();
            let mut buf2 = Vec::with_capacity(31);
            while twin.next_chunk(&mut buf2) > 0 {
                got.extend_from_slice(&buf2);
            }
            assert_eq!(got, reference[consumed..], "{} resumed tail", spec.label());
        }
    }

    #[test]
    fn stream_snapshot_rejects_wrong_spec() {
        let uniform = WorkloadSpec::Uniform {
            n: 1000,
            m: 100,
            seed: 1,
        };
        let frame = wb_core::snap::to_bytes(&uniform.stream());
        // Wrong variant.
        let mut cycle = WorkloadSpec::Cycle { items: 3, m: 100 }.stream();
        assert!(matches!(
            wb_core::snap::from_bytes(&mut cycle, &frame),
            Err(SnapError::Mismatch { .. })
        ));
        // Same variant, different universe.
        let mut other = WorkloadSpec::Uniform {
            n: 2000,
            m: 100,
            seed: 1,
        }
        .stream();
        assert!(matches!(
            wb_core::snap::from_bytes(&mut other, &frame),
            Err(SnapError::Mismatch { .. })
        ));
    }

    #[test]
    fn resized_rescales_every_variant() {
        let zipf = WorkloadSpec::Zipf {
            n: 1 << 10,
            m: 100,
            heavy: 4,
            seed: 1,
        };
        assert_eq!(zipf.resized(5000).len(), 5000);
        let churn = WorkloadSpec::Churn {
            n: 256,
            waves: 2,
            wave: 64,
            seed: 1,
        };
        let grown = churn.resized(10_000);
        assert!(grown.len() >= 10_000 - 96 && grown.len() <= 10_000 + 96);
        let script = WorkloadSpec::Script((0..50).map(Update::Insert).collect());
        assert_eq!(script.resized(10).len(), 10, "scripts cannot grow");
    }
}
