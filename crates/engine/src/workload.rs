//! Named workload generators and the declarative [`WorkloadSpec`] used by
//! the experiment runner. The raw generators were born in the `bench`
//! crate (which now delegates here) so every consumer — binaries, tests,
//! criterion benches, the registry's scripted adversaries — draws from one
//! set of streams.

use crate::erased::Update;
use wb_core::rng::TranscriptRng;
use wb_core::stream::Turnstile;

/// A Zipf-flavoured insertion stream: item `i ∈ [heavy_items]` receives a
/// `~1/(i+1)`-proportional share of 70% of the mass; the rest is uniform
/// noise over `[n]`.
pub fn zipf_stream(n: u64, m: u64, heavy_items: u64, seed: u64) -> Vec<u64> {
    let mut rng = TranscriptRng::from_seed(seed);
    let weights: Vec<f64> = (0..heavy_items).map(|i| 1.0 / (i + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    (0..m)
        .map(|_| {
            if rng.bernoulli(0.7) {
                let mut u = rng.next_f64() * total;
                for (i, w) in weights.iter().enumerate() {
                    if u < *w {
                        return i as u64;
                    }
                    u -= w;
                }
                heavy_items - 1
            } else {
                heavy_items + rng.below(n - heavy_items)
            }
        })
        .collect()
}

/// Synthetic IPv4 DDoS traffic: one hot /24 prefix (25%), one hot host
/// (15%), uniform noise elsewhere.
pub fn ddos_stream(m: u64, seed: u64) -> Vec<u64> {
    let mut rng = TranscriptRng::from_seed(seed);
    (0..m)
        .map(|t| match t % 20 {
            0..=4 => (10 << 24) | (1 << 16) | (7 << 8) | rng.below(256),
            5..=7 => (203 << 24) | (113 << 8) | 5,
            _ => rng.below(1 << 32),
        })
        .collect()
}

/// Turnstile churn: waves of insertions followed by partial deletions.
pub fn churn_stream(n: u64, waves: u64, wave_size: u64, seed: u64) -> Vec<Turnstile> {
    let mut rng = TranscriptRng::from_seed(seed);
    let mut out = Vec::with_capacity((waves * wave_size * 3 / 2) as usize);
    for _ in 0..waves {
        let base = rng.below(n);
        for i in 0..wave_size {
            out.push(Turnstile::insert((base + i * 7) % n));
        }
        for i in 0..wave_size / 2 {
            out.push(Turnstile::delete((base + i * 7) % n));
        }
    }
    out
}

/// Uniform insertions over `[n]`.
pub fn uniform_stream(n: u64, m: u64, seed: u64) -> Vec<u64> {
    let mut rng = TranscriptRng::from_seed(seed);
    (0..m).map(|_| rng.below(n)).collect()
}

/// Deterministic round-robin over `items` ids (`t % items`) — the
/// few-distinct-items worst case for `log m`-bit counters.
pub fn cycle_stream(items: u64, m: u64) -> Vec<u64> {
    (0..m).map(|t| t % items.max(1)).collect()
}

/// Declarative workload for registry-driven experiment rows.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// [`zipf_stream`] insertions.
    Zipf {
        /// Universe size.
        n: u64,
        /// Stream length.
        m: u64,
        /// Size of the Zipf head.
        heavy: u64,
        /// Generator seed.
        seed: u64,
    },
    /// [`ddos_stream`] insertions.
    Ddos {
        /// Stream length.
        m: u64,
        /// Generator seed.
        seed: u64,
    },
    /// [`churn_stream`] turnstile updates.
    Churn {
        /// Universe size.
        n: u64,
        /// Number of insert/delete waves.
        waves: u64,
        /// Insertions per wave.
        wave: u64,
        /// Generator seed.
        seed: u64,
    },
    /// [`uniform_stream`] insertions.
    Uniform {
        /// Universe size.
        n: u64,
        /// Stream length.
        m: u64,
        /// Generator seed.
        seed: u64,
    },
    /// [`cycle_stream`] insertions (`t % items`).
    Cycle {
        /// Number of distinct items.
        items: u64,
        /// Stream length.
        m: u64,
    },
    /// A literal update script.
    Script(Vec<Update>),
}

impl WorkloadSpec {
    /// Materialize the update stream.
    pub fn generate(&self) -> Vec<Update> {
        match self {
            WorkloadSpec::Zipf { n, m, heavy, seed } => zipf_stream(*n, *m, *heavy, *seed)
                .into_iter()
                .map(Update::Insert)
                .collect(),
            WorkloadSpec::Ddos { m, seed } => ddos_stream(*m, *seed)
                .into_iter()
                .map(Update::Insert)
                .collect(),
            WorkloadSpec::Churn {
                n,
                waves,
                wave,
                seed,
            } => churn_stream(*n, *waves, *wave, *seed)
                .into_iter()
                .map(Update::from)
                .collect(),
            WorkloadSpec::Uniform { n, m, seed } => uniform_stream(*n, *m, *seed)
                .into_iter()
                .map(Update::Insert)
                .collect(),
            WorkloadSpec::Cycle { items, m } => cycle_stream(*items, *m)
                .into_iter()
                .map(Update::Insert)
                .collect(),
            WorkloadSpec::Script(v) => v.clone(),
        }
    }

    /// Nominal stream length before generation.
    pub fn len(&self) -> u64 {
        match self {
            WorkloadSpec::Zipf { m, .. }
            | WorkloadSpec::Ddos { m, .. }
            | WorkloadSpec::Uniform { m, .. }
            | WorkloadSpec::Cycle { m, .. } => *m,
            WorkloadSpec::Churn { waves, wave, .. } => waves * (wave + wave / 2),
            WorkloadSpec::Script(v) => v.len() as u64,
        }
    }

    /// `true` iff the workload has no updates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The same workload capped at roughly `cap` updates — the `--quick`
    /// smoke mode of the experiment runner.
    pub fn capped(&self, cap: u64) -> WorkloadSpec {
        let mut w = self.clone();
        match &mut w {
            WorkloadSpec::Zipf { m, .. }
            | WorkloadSpec::Ddos { m, .. }
            | WorkloadSpec::Uniform { m, .. }
            | WorkloadSpec::Cycle { m, .. } => *m = (*m).min(cap),
            WorkloadSpec::Churn { waves, wave, .. } => {
                while *waves > 1 && *waves * (*wave + *wave / 2) > cap {
                    *waves /= 2;
                }
                while *wave > 1 && *waves * (*wave + *wave / 2) > cap {
                    *wave /= 2;
                }
            }
            WorkloadSpec::Script(v) => v.truncate(cap as usize),
        }
        w
    }

    /// Short name for report lines.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadSpec::Zipf { .. } => "zipf",
            WorkloadSpec::Ddos { .. } => "ddos",
            WorkloadSpec::Churn { .. } => "churn",
            WorkloadSpec::Uniform { .. } => "uniform",
            WorkloadSpec::Cycle { .. } => "cycle",
            WorkloadSpec::Script(_) => "script",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_stream_has_heavy_head() {
        let s = zipf_stream(1 << 16, 20_000, 8, 1);
        let head = s.iter().filter(|&&i| i == 0).count();
        assert!(head > 3_000, "head count {head}");
        assert_eq!(s.len(), 20_000);
    }

    #[test]
    fn ddos_stream_shares() {
        let s = ddos_stream(20_000, 2);
        let subnet = s
            .iter()
            .filter(|&&ip| ip >> 8 == (10 << 16) | (1 << 8) | 7)
            .count();
        assert!((4000..6000).contains(&subnet), "subnet share {subnet}");
    }

    #[test]
    fn churn_stream_shape() {
        let s = churn_stream(1 << 10, 4, 100, 3);
        assert_eq!(s.len(), 4 * 150);
        assert!(s.iter().any(|u| u.delta < 0));
    }

    #[test]
    fn specs_generate_and_cap() {
        let spec = WorkloadSpec::Zipf {
            n: 1 << 12,
            m: 4096,
            heavy: 4,
            seed: 9,
        };
        assert_eq!(spec.generate().len(), 4096);
        assert_eq!(spec.capped(100).generate().len(), 100);
        assert_eq!(spec.label(), "zipf");

        let churn = WorkloadSpec::Churn {
            n: 256,
            waves: 8,
            wave: 64,
            seed: 1,
        };
        assert_eq!(churn.len(), 8 * 96);
        assert!(churn.capped(100).len() <= 100 + 96);
        assert!(churn
            .generate()
            .iter()
            .any(|u| matches!(u, Update::Turnstile { delta, .. } if *delta < 0)));

        let cyc = WorkloadSpec::Cycle { items: 3, m: 9 };
        assert_eq!(cyc.generate()[4], Update::Insert(1));
        assert!(!cyc.is_empty());
    }
}
