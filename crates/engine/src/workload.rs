//! Named workload generators, the declarative [`WorkloadSpec`] used by the
//! experiment runner, and the pull-based streaming layer ([`UpdateSource`])
//! every ingestion path in the engine is built on.
//!
//! The raw generators were born in the `bench` crate (which now delegates
//! here) so every consumer — binaries, tests, criterion benches, the
//! registry's scripted adversaries — draws from one set of streams.
//!
//! # Streaming vs materializing
//!
//! The paper's guarantees (and the lower bounds they are contrasted
//! against) are asymptotic in the stream length `m`; a harness that
//! materializes the whole stream as a `Vec<Update>` before ingesting caps
//! `m` at available RAM and spends most of its wall-clock on allocation.
//! [`WorkloadSpec::stream`] therefore produces a [`WorkloadStream`] — a
//! lazy generator that fills a caller-owned, reused chunk buffer — and
//! [`WorkloadSpec::generate`] is a thin collect wrapper kept for tests and
//! small scripts. The two are **byte-identical**: the stream drives the
//! same RNG in the same order, so concatenating chunks of any size
//! reproduces `generate()` exactly (asserted by the
//! `streaming_pipeline` proptest suite for every variant and chunk size).

use crate::erased::Update;
use wb_core::rng::TranscriptRng;
use wb_core::stream::Turnstile;

/// Default chunk size of the streaming pipeline: the buffer length
/// [`UpdateSource::next_chunk`] falls back to when the caller's buffer has
/// no capacity, and the default of the `--chunk` CLI flag.
pub const DEFAULT_CHUNK: usize = 4096;

/// A pull-based source of erased updates — the streaming replacement for
/// materialized `Vec<Update>` preludes.
///
/// Callers own the chunk buffer and reuse it across pulls, so a whole
/// ingestion run allocates O(chunk) memory regardless of the stream length:
///
/// ```
/// use wb_engine::workload::{UpdateSource, WorkloadSpec};
///
/// let spec = WorkloadSpec::Uniform { n: 1 << 10, m: 100_000, seed: 7 };
/// let mut source = spec.stream();
/// let mut buf = Vec::with_capacity(4096); // the chunk size
/// let mut total = 0;
/// while source.next_chunk(&mut buf) > 0 {
///     total += buf.len(); // ingest the chunk...
/// }
/// assert_eq!(total, 100_000);
/// ```
pub trait UpdateSource {
    /// Clear `buf` and refill it with the next chunk of the stream: up to
    /// `buf.capacity()` updates (or [`DEFAULT_CHUNK`] if the buffer has no
    /// capacity yet). Returns the number of updates written; `0` means the
    /// source is exhausted (and stays exhausted).
    fn next_chunk(&mut self, buf: &mut Vec<Update>) -> usize;

    /// Exact number of updates remaining, when cheaply known. Used only to
    /// size report timeline strides — `None` never changes verdicts,
    /// rounds, or check counts, and timelines stay bounded either way (a
    /// report decimates itself when a prediction turns out wrong); only
    /// the sampling granularity can differ.
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

/// Chunk budget for one [`UpdateSource::next_chunk`] call.
fn chunk_cap(buf: &Vec<Update>) -> usize {
    if buf.capacity() == 0 {
        DEFAULT_CHUNK
    } else {
        buf.capacity()
    }
}

/// An [`UpdateSource`] over a borrowed, already-materialized slice — the
/// bridge that lets slice-shaped callers (tests, literal scripts) drive the
/// streaming ingestion paths.
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    rest: &'a [Update],
}

impl<'a> SliceSource<'a> {
    /// Stream `updates` in order, chunk by chunk.
    pub fn new(updates: &'a [Update]) -> Self {
        SliceSource { rest: updates }
    }
}

impl UpdateSource for SliceSource<'_> {
    fn next_chunk(&mut self, buf: &mut Vec<Update>) -> usize {
        buf.clear();
        let take = chunk_cap(buf).min(self.rest.len());
        buf.extend_from_slice(&self.rest[..take]);
        self.rest = &self.rest[take..];
        take
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.rest.len() as u64)
    }
}

/// An [`UpdateSource`] adapter folding every item into the universe
/// `[0, n)` by `item % n` (see [`Update::fold_into`]) — the rule the
/// tournament and the registry's scripted adversaries apply so
/// universe-bounded algorithms can ingest raw-address generators like
/// `ddos`.
#[derive(Debug, Clone)]
pub struct FoldSource<S> {
    inner: S,
    n: u64,
}

impl<S: UpdateSource> FoldSource<S> {
    /// Fold `inner`'s items into `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (see [`Update::fold_into`]).
    pub fn new(inner: S, n: u64) -> Self {
        assert!(n > 0, "FoldSource requires a nonempty universe (n >= 1)");
        FoldSource { inner, n }
    }
}

impl<S: UpdateSource> UpdateSource for FoldSource<S> {
    fn next_chunk(&mut self, buf: &mut Vec<Update>) -> usize {
        let wrote = self.inner.next_chunk(buf);
        for u in buf.iter_mut() {
            *u = u.fold_into(self.n);
        }
        wrote
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }
}

/// An [`UpdateSource`] adapter invoking a callback on every chunk before
/// handing it on — how the tournament's sharded path lets the referee
/// observe the stream in original order while the shard pipeline consumes
/// it, without a second pass or a materialized copy.
pub struct InspectSource<S, F> {
    inner: S,
    inspect: F,
}

impl<S: UpdateSource, F: FnMut(&[Update])> InspectSource<S, F> {
    /// Call `inspect` on each non-empty chunk pulled from `inner`.
    pub fn new(inner: S, inspect: F) -> Self {
        InspectSource { inner, inspect }
    }
}

impl<S: UpdateSource, F: FnMut(&[Update])> UpdateSource for InspectSource<S, F> {
    fn next_chunk(&mut self, buf: &mut Vec<Update>) -> usize {
        let wrote = self.inner.next_chunk(buf);
        if wrote > 0 {
            (self.inspect)(buf);
        }
        wrote
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }
}

/// A Zipf-flavoured insertion stream: item `i ∈ [heavy_items]` receives a
/// `~1/(i+1)`-proportional share of 70% of the mass; the rest is uniform
/// noise over `[n]`.
pub fn zipf_stream(n: u64, m: u64, heavy_items: u64, seed: u64) -> Vec<u64> {
    let mut rng = TranscriptRng::from_seed(seed);
    let weights: Vec<f64> = (0..heavy_items).map(|i| 1.0 / (i + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    (0..m)
        .map(|_| zipf_next(&mut rng, n, heavy_items, &weights, total))
        .collect()
}

/// One Zipf draw — shared by the materialized and streaming generators so
/// their RNG transcripts are identical by construction.
fn zipf_next(
    rng: &mut TranscriptRng,
    n: u64,
    heavy_items: u64,
    weights: &[f64],
    total: f64,
) -> u64 {
    if rng.bernoulli(0.7) {
        let mut u = rng.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if u < *w {
                return i as u64;
            }
            u -= w;
        }
        heavy_items - 1
    } else {
        heavy_items + rng.below(n - heavy_items)
    }
}

/// Synthetic IPv4 DDoS traffic: one hot /24 prefix (25%), one hot host
/// (15%), uniform noise elsewhere.
pub fn ddos_stream(m: u64, seed: u64) -> Vec<u64> {
    let mut rng = TranscriptRng::from_seed(seed);
    (0..m).map(|t| ddos_next(&mut rng, t)).collect()
}

/// One DDoS draw at stream position `t` (shared with the streaming path).
fn ddos_next(rng: &mut TranscriptRng, t: u64) -> u64 {
    match t % 20 {
        0..=4 => (10 << 24) | (1 << 16) | (7 << 8) | rng.below(256),
        5..=7 => (203 << 24) | (113 << 8) | 5,
        _ => rng.below(1 << 32),
    }
}

/// Turnstile churn: waves of insertions followed by partial deletions.
pub fn churn_stream(n: u64, waves: u64, wave_size: u64, seed: u64) -> Vec<Turnstile> {
    let mut rng = TranscriptRng::from_seed(seed);
    let mut out = Vec::with_capacity((waves * wave_size * 3 / 2) as usize);
    for _ in 0..waves {
        let base = rng.below(n);
        for i in 0..wave_size {
            out.push(Turnstile::insert((base + i * 7) % n));
        }
        for i in 0..wave_size / 2 {
            out.push(Turnstile::delete((base + i * 7) % n));
        }
    }
    out
}

/// Uniform insertions over `[n]`.
pub fn uniform_stream(n: u64, m: u64, seed: u64) -> Vec<u64> {
    let mut rng = TranscriptRng::from_seed(seed);
    (0..m).map(|_| rng.below(n)).collect()
}

/// Deterministic round-robin over `items` ids (`t % items`) — the
/// few-distinct-items worst case for `log m`-bit counters.
pub fn cycle_stream(items: u64, m: u64) -> Vec<u64> {
    (0..m).map(|t| t % items.max(1)).collect()
}

/// Declarative workload for registry-driven experiment rows.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// [`zipf_stream`] insertions.
    Zipf {
        /// Universe size.
        n: u64,
        /// Stream length.
        m: u64,
        /// Size of the Zipf head.
        heavy: u64,
        /// Generator seed.
        seed: u64,
    },
    /// [`ddos_stream`] insertions.
    Ddos {
        /// Stream length.
        m: u64,
        /// Generator seed.
        seed: u64,
    },
    /// [`churn_stream`] turnstile updates.
    Churn {
        /// Universe size.
        n: u64,
        /// Number of insert/delete waves.
        waves: u64,
        /// Insertions per wave.
        wave: u64,
        /// Generator seed.
        seed: u64,
    },
    /// [`uniform_stream`] insertions.
    Uniform {
        /// Universe size.
        n: u64,
        /// Stream length.
        m: u64,
        /// Generator seed.
        seed: u64,
    },
    /// [`cycle_stream`] insertions (`t % items`).
    Cycle {
        /// Number of distinct items.
        items: u64,
        /// Stream length.
        m: u64,
    },
    /// A literal update script.
    Script(Vec<Update>),
}

impl WorkloadSpec {
    /// The lazy, chunk-at-a-time generator for this workload, seeded from
    /// the spec's own embedded seed — the RNG derivation is exactly the one
    /// [`WorkloadSpec::generate`] uses, so concatenating the chunks (of any
    /// size) reproduces the materialized stream byte for byte.
    ///
    /// Memory is O(1) in the stream length for every generator variant;
    /// only a literal [`WorkloadSpec::Script`] keeps its updates resident
    /// (it *is* the materialized form).
    pub fn stream(&self) -> WorkloadStream {
        let state = match self {
            WorkloadSpec::Zipf { n, m, heavy, seed } => {
                let weights: Vec<f64> = (0..*heavy).map(|i| 1.0 / (i + 1) as f64).collect();
                let total: f64 = weights.iter().sum();
                StreamState::Zipf {
                    rng: TranscriptRng::from_seed(*seed),
                    n: *n,
                    heavy: *heavy,
                    weights,
                    total,
                    remaining: *m,
                }
            }
            WorkloadSpec::Ddos { m, seed } => StreamState::Ddos {
                rng: TranscriptRng::from_seed(*seed),
                t: 0,
                m: *m,
            },
            WorkloadSpec::Churn {
                n,
                waves,
                wave,
                seed,
            } => StreamState::Churn {
                rng: TranscriptRng::from_seed(*seed),
                n: *n,
                wave: *wave,
                waves_left: *waves,
                base: 0,
                phase: ChurnPhase::NextWave,
            },
            WorkloadSpec::Uniform { n, m, seed } => StreamState::Uniform {
                rng: TranscriptRng::from_seed(*seed),
                n: *n,
                remaining: *m,
            },
            WorkloadSpec::Cycle { items, m } => StreamState::Cycle {
                items: (*items).max(1),
                t: 0,
                m: *m,
            },
            WorkloadSpec::Script(v) => StreamState::Script {
                script: v.clone(),
                pos: 0,
            },
        };
        WorkloadStream { state }
    }

    /// Materialize the update stream — a thin collect over
    /// [`WorkloadSpec::stream`], kept for tests and small literal scripts.
    /// Large-`m` callers should pull chunks from the stream instead.
    pub fn generate(&self) -> Vec<Update> {
        if let WorkloadSpec::Script(v) = self {
            // A script already is its materialized form; skip the pull
            // loop's two extra copies.
            return v.clone();
        }
        let mut source = self.stream();
        let mut out = Vec::with_capacity(self.len().min(1 << 20) as usize);
        let mut buf = Vec::with_capacity(DEFAULT_CHUNK);
        while source.next_chunk(&mut buf) > 0 {
            out.extend_from_slice(&buf);
        }
        out
    }

    /// Nominal stream length before generation.
    pub fn len(&self) -> u64 {
        match self {
            WorkloadSpec::Zipf { m, .. }
            | WorkloadSpec::Ddos { m, .. }
            | WorkloadSpec::Uniform { m, .. }
            | WorkloadSpec::Cycle { m, .. } => *m,
            WorkloadSpec::Churn { waves, wave, .. } => waves * (wave + wave / 2),
            WorkloadSpec::Script(v) => v.len() as u64,
        }
    }

    /// `true` iff the workload has no updates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The same workload capped at roughly `cap` updates — the `--quick`
    /// smoke mode of the experiment runner.
    pub fn capped(&self, cap: u64) -> WorkloadSpec {
        let mut w = self.clone();
        match &mut w {
            WorkloadSpec::Zipf { m, .. }
            | WorkloadSpec::Ddos { m, .. }
            | WorkloadSpec::Uniform { m, .. }
            | WorkloadSpec::Cycle { m, .. } => *m = (*m).min(cap),
            WorkloadSpec::Churn { waves, wave, .. } => {
                while *waves > 1 && *waves * (*wave + *wave / 2) > cap {
                    *waves /= 2;
                }
                while *wave > 1 && *waves * (*wave + *wave / 2) > cap {
                    *wave /= 2;
                }
            }
            WorkloadSpec::Script(v) => v.truncate(cap as usize),
        }
        w
    }

    /// The same workload resized to roughly `m` updates (up or down) — how
    /// the `--prelude-m` CLI flag rescales declarative rows without
    /// touching their other parameters. A literal script cannot grow; it is
    /// truncated like [`WorkloadSpec::capped`].
    pub fn resized(&self, m: u64) -> WorkloadSpec {
        let mut w = self.clone();
        match &mut w {
            WorkloadSpec::Zipf { m: len, .. }
            | WorkloadSpec::Ddos { m: len, .. }
            | WorkloadSpec::Uniform { m: len, .. }
            | WorkloadSpec::Cycle { m: len, .. } => *len = m,
            WorkloadSpec::Churn { waves, wave, .. } => {
                *waves = (m / (*wave + *wave / 2).max(1)).max(1);
            }
            WorkloadSpec::Script(v) => v.truncate(m as usize),
        }
        w
    }

    /// Short name for report lines.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadSpec::Zipf { .. } => "zipf",
            WorkloadSpec::Ddos { .. } => "ddos",
            WorkloadSpec::Churn { .. } => "churn",
            WorkloadSpec::Uniform { .. } => "uniform",
            WorkloadSpec::Cycle { .. } => "cycle",
            WorkloadSpec::Script(_) => "script",
        }
    }
}

/// Where a churn stream is inside its wave state machine.
#[derive(Debug, Clone)]
enum ChurnPhase {
    /// Draw the next wave's base (or finish if no waves remain).
    NextWave,
    /// Emitting insertion `i` of the current wave.
    Insert(u64),
    /// Emitting deletion `i` of the current wave.
    Delete(u64),
}

#[derive(Debug, Clone)]
enum StreamState {
    Zipf {
        rng: TranscriptRng,
        n: u64,
        heavy: u64,
        weights: Vec<f64>,
        total: f64,
        remaining: u64,
    },
    Ddos {
        rng: TranscriptRng,
        t: u64,
        m: u64,
    },
    Churn {
        rng: TranscriptRng,
        n: u64,
        wave: u64,
        waves_left: u64,
        base: u64,
        phase: ChurnPhase,
    },
    Uniform {
        rng: TranscriptRng,
        n: u64,
        remaining: u64,
    },
    Cycle {
        items: u64,
        t: u64,
        m: u64,
    },
    Script {
        script: Vec<Update>,
        pos: usize,
    },
}

/// The lazy generator behind [`WorkloadSpec::stream`]: an [`UpdateSource`]
/// holding only the generator's RNG/position state, never the stream.
#[derive(Debug, Clone)]
pub struct WorkloadStream {
    state: StreamState,
}

impl WorkloadStream {
    /// The next update, or `None` when the stream is exhausted. Drives the
    /// spec's RNG in exactly the order the materialized generators do.
    fn next_update(&mut self) -> Option<Update> {
        match &mut self.state {
            StreamState::Zipf {
                rng,
                n,
                heavy,
                weights,
                total,
                remaining,
            } => {
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                Some(Update::Insert(zipf_next(rng, *n, *heavy, weights, *total)))
            }
            StreamState::Ddos { rng, t, m } => {
                if t >= m {
                    return None;
                }
                let item = ddos_next(rng, *t);
                *t += 1;
                Some(Update::Insert(item))
            }
            StreamState::Churn {
                rng,
                n,
                wave,
                waves_left,
                base,
                phase,
            } => loop {
                match phase {
                    ChurnPhase::NextWave => {
                        if *waves_left == 0 {
                            return None;
                        }
                        *waves_left -= 1;
                        *base = rng.below(*n);
                        *phase = ChurnPhase::Insert(0);
                    }
                    ChurnPhase::Insert(i) => {
                        if *i < *wave {
                            let item = (*base + *i * 7) % *n;
                            *phase = ChurnPhase::Insert(*i + 1);
                            return Some(Update::from(Turnstile::insert(item)));
                        }
                        *phase = ChurnPhase::Delete(0);
                    }
                    ChurnPhase::Delete(i) => {
                        if *i < *wave / 2 {
                            let item = (*base + *i * 7) % *n;
                            *phase = ChurnPhase::Delete(*i + 1);
                            return Some(Update::from(Turnstile::delete(item)));
                        }
                        *phase = ChurnPhase::NextWave;
                    }
                }
            },
            StreamState::Uniform { rng, n, remaining } => {
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                Some(Update::Insert(rng.below(*n)))
            }
            StreamState::Cycle { items, t, m } => {
                if t >= m {
                    return None;
                }
                let item = *t % *items;
                *t += 1;
                Some(Update::Insert(item))
            }
            StreamState::Script { script, pos } => {
                let u = script.get(*pos).copied();
                *pos += 1;
                u
            }
        }
    }

    /// Updates not yet emitted.
    fn remaining(&self) -> u64 {
        match &self.state {
            StreamState::Zipf { remaining, .. } | StreamState::Uniform { remaining, .. } => {
                *remaining
            }
            StreamState::Ddos { t, m, .. } | StreamState::Cycle { t, m, .. } => {
                m.saturating_sub(*t)
            }
            StreamState::Churn {
                wave,
                waves_left,
                phase,
                ..
            } => {
                let per_wave = wave + wave / 2;
                let in_wave = match phase {
                    ChurnPhase::NextWave => 0,
                    ChurnPhase::Insert(i) => per_wave.saturating_sub(*i),
                    ChurnPhase::Delete(i) => (wave / 2).saturating_sub(*i),
                };
                waves_left * per_wave + in_wave
            }
            StreamState::Script { script, pos } => script.len().saturating_sub(*pos) as u64,
        }
    }
}

impl UpdateSource for WorkloadStream {
    fn next_chunk(&mut self, buf: &mut Vec<Update>) -> usize {
        buf.clear();
        let cap = chunk_cap(buf);
        while buf.len() < cap {
            match self.next_update() {
                Some(u) => buf.push(u),
                None => break,
            }
        }
        buf.len()
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.remaining())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_stream_has_heavy_head() {
        let s = zipf_stream(1 << 16, 20_000, 8, 1);
        let head = s.iter().filter(|&&i| i == 0).count();
        assert!(head > 3_000, "head count {head}");
        assert_eq!(s.len(), 20_000);
    }

    #[test]
    fn ddos_stream_shares() {
        let s = ddos_stream(20_000, 2);
        let subnet = s
            .iter()
            .filter(|&&ip| ip >> 8 == (10 << 16) | (1 << 8) | 7)
            .count();
        assert!((4000..6000).contains(&subnet), "subnet share {subnet}");
    }

    #[test]
    fn churn_stream_shape() {
        let s = churn_stream(1 << 10, 4, 100, 3);
        assert_eq!(s.len(), 4 * 150);
        assert!(s.iter().any(|u| u.delta < 0));
    }

    #[test]
    fn specs_generate_and_cap() {
        let spec = WorkloadSpec::Zipf {
            n: 1 << 12,
            m: 4096,
            heavy: 4,
            seed: 9,
        };
        assert_eq!(spec.generate().len(), 4096);
        assert_eq!(spec.capped(100).generate().len(), 100);
        assert_eq!(spec.label(), "zipf");

        let churn = WorkloadSpec::Churn {
            n: 256,
            waves: 8,
            wave: 64,
            seed: 1,
        };
        assert_eq!(churn.len(), 8 * 96);
        assert!(churn.capped(100).len() <= 100 + 96);
        assert!(churn
            .generate()
            .iter()
            .any(|u| matches!(u, Update::Turnstile { delta, .. } if *delta < 0)));

        let cyc = WorkloadSpec::Cycle { items: 3, m: 9 };
        assert_eq!(cyc.generate()[4], Update::Insert(1));
        assert!(!cyc.is_empty());
    }

    #[test]
    fn stream_matches_raw_generators_byte_for_byte() {
        // The streaming path must reproduce the original materialized
        // generators exactly — same RNG, same order — for every variant.
        let (n, m, seed) = (1 << 10, 1000, 17);
        let cases: Vec<(WorkloadSpec, Vec<Update>)> = vec![
            (
                WorkloadSpec::Zipf {
                    n,
                    m,
                    heavy: 8,
                    seed,
                },
                zipf_stream(n, m, 8, seed)
                    .into_iter()
                    .map(Update::Insert)
                    .collect(),
            ),
            (
                WorkloadSpec::Ddos { m, seed },
                ddos_stream(m, seed)
                    .into_iter()
                    .map(Update::Insert)
                    .collect(),
            ),
            (
                WorkloadSpec::Churn {
                    n,
                    waves: 7,
                    wave: 64,
                    seed,
                },
                churn_stream(n, 7, 64, seed)
                    .into_iter()
                    .map(Update::from)
                    .collect(),
            ),
            (
                WorkloadSpec::Uniform { n, m, seed },
                uniform_stream(n, m, seed)
                    .into_iter()
                    .map(Update::Insert)
                    .collect(),
            ),
            (
                WorkloadSpec::Cycle { items: 5, m },
                cycle_stream(5, m).into_iter().map(Update::Insert).collect(),
            ),
        ];
        for (spec, reference) in cases {
            assert_eq!(spec.generate(), reference, "{}", spec.label());
            // Chunked pulls concatenate to the same stream.
            let mut source = spec.stream();
            assert_eq!(source.len_hint(), Some(reference.len() as u64));
            let mut got = Vec::new();
            let mut buf = Vec::with_capacity(7);
            while source.next_chunk(&mut buf) > 0 {
                got.extend_from_slice(&buf);
            }
            assert_eq!(got, reference, "{} chunked", spec.label());
            assert_eq!(source.len_hint(), Some(0));
        }
    }

    #[test]
    fn slice_and_fold_and_inspect_sources() {
        let updates: Vec<Update> = (0..10).map(Update::Insert).collect();
        let mut buf = Vec::with_capacity(4);
        let mut source = SliceSource::new(&updates);
        assert_eq!(source.len_hint(), Some(10));
        assert_eq!(source.next_chunk(&mut buf), 4);
        assert_eq!(buf, updates[..4]);
        assert_eq!(source.len_hint(), Some(6));

        let mut folded = FoldSource::new(SliceSource::new(&updates), 3);
        folded.next_chunk(&mut buf);
        assert_eq!(buf[..4], [0, 1, 2, 0].map(Update::Insert));

        let mut seen = 0usize;
        let mut inspected = InspectSource::new(SliceSource::new(&updates), |chunk: &[Update]| {
            seen += chunk.len();
        });
        while inspected.next_chunk(&mut buf) > 0 {}
        assert_eq!(seen, 10);
    }

    #[test]
    fn zero_capacity_buffer_falls_back_to_default_chunk() {
        let spec = WorkloadSpec::Cycle {
            items: 3,
            m: DEFAULT_CHUNK as u64 + 10,
        };
        let mut source = spec.stream();
        let mut buf = Vec::new();
        assert_eq!(source.next_chunk(&mut buf), DEFAULT_CHUNK);
        assert_eq!(source.next_chunk(&mut buf), 10);
        assert_eq!(source.next_chunk(&mut buf), 0);
    }

    #[test]
    fn resized_rescales_every_variant() {
        let zipf = WorkloadSpec::Zipf {
            n: 1 << 10,
            m: 100,
            heavy: 4,
            seed: 1,
        };
        assert_eq!(zipf.resized(5000).len(), 5000);
        let churn = WorkloadSpec::Churn {
            n: 256,
            waves: 2,
            wave: 64,
            seed: 1,
        };
        let grown = churn.resized(10_000);
        assert!(grown.len() >= 10_000 - 96 && grown.len() <= 10_000 + 96);
        let script = WorkloadSpec::Script((0..50).map(Update::Insert).collect());
        assert_eq!(script.resized(10).len(), 10, "scripts cannot grow");
    }
}
