//! Declarative experiment runner: `workload × algorithm × metrics → table
//! + JSON-lines report`.
//!
//! Every `exp_e*` binary builds an [`ExperimentSpec`] and hands it to
//! [`run_cli`]. A spec is a list of [`Section`]s; each section is a table
//! whose rows are either
//!
//! * [`GameRow`]s — an algorithm picked from the
//!   [`registry`](crate::registry) by string key, a named
//!   [`WorkloadSpec`], and a [`RefereeSpec`]: the runner drives the stream
//!   through the erased engine with batched ingestion and a **real**
//!   referee, then renders the requested [`Metric`]s — so every "ok"
//!   column is a genuine game verdict, not an ad-hoc inline check; or
//! * [`Row::custom`] closures for domain-specific instances (attacks,
//!   communication games, verifier sweeps) that still declare their
//!   columns here and receive the shared [`RunCtx`] so `--quick` scaling
//!   applies uniformly.
//!
//! CLI flags (parsed by [`RunnerConfig::from_args`]):
//!
//! * `--quick` — smoke mode: workloads are capped at
//!   [`RunnerConfig::QUICK_CAP`] updates and custom rows see
//!   `ctx.quick == true` (CI runs all experiment binaries this way);
//! * `--json <path|->` — additionally emit one JSON object per row to a
//!   file (or stdout with `-`);
//! * `--threads N` — worker threads for row execution (default: one per
//!   core). Rows are independent jobs on the engine's
//!   [pool](crate::pool); tables still print in declaration order and the
//!   JSON report is byte-identical across thread counts;
//! * `--prelude-m M` — rescale every game row's workload to `M` updates
//!   ([`WorkloadSpec::resized`]; underscores allowed, e.g. `10_000_000`).
//!   Game rows stream their workload chunk by chunk
//!   ([`WorkloadSpec::stream`] → [`run_source_erased`]), so memory stays
//!   O(chunk) however large `M` is;
//! * `--chunk N` — override every game row's ingestion chunk size (checks
//!   still happen at chunk boundaries).

use crate::erased::run_source_erased;
use crate::pool::{self, Job};
use crate::referee::RefereeSpec;
use crate::registry::{self, Params};
use crate::report::{header, row, GameReport};
use crate::workload::WorkloadSpec;
use std::io::Write as _;

/// Declarative description of one experiment binary.
pub struct ExperimentSpec {
    /// Stable id (`"e1"`, …) used in JSON report lines.
    pub id: &'static str,
    /// Headline printed before the tables.
    pub title: String,
    /// Closing remarks printed after the tables.
    pub notes: Vec<String>,
    /// The tables.
    pub sections: Vec<Section>,
}

impl ExperimentSpec {
    /// Empty spec with the given id and headline.
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        ExperimentSpec {
            id,
            title: title.into(),
            notes: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Append a section.
    pub fn section(mut self, section: Section) -> Self {
        self.sections.push(section);
        self
    }

    /// Append a closing note.
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

/// One table of an experiment.
pub struct Section {
    /// Heading printed above the table.
    pub heading: String,
    /// Column titles; the first column is the row label.
    pub columns: Vec<String>,
    /// Cell width.
    pub width: usize,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Section {
    /// Empty section with a heading and column titles.
    pub fn new(heading: impl Into<String>, columns: &[&str], width: usize) -> Self {
        Section {
            heading: heading.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            width,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(mut self, r: Row) -> Self {
        self.rows.push(r);
        self
    }

    /// Append every row from an iterator.
    pub fn rows(mut self, rs: impl IntoIterator<Item = Row>) -> Self {
        self.rows.extend(rs);
        self
    }
}

/// Metrics a [`GameRow`] can render into cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Rounds played.
    Rounds,
    /// `space_bits()` after the final round.
    SpaceBits,
    /// Peak `space_bits()` across the game.
    PeakSpaceBits,
    /// `true` iff the referee accepted every checked answer.
    Ok,
    /// Round of the first violation, or `-`.
    FailRound,
    /// The final query answer, compactly rendered.
    Answer,
    /// Number of referee checks performed.
    Checks,
}

/// A registry algorithm driven over a named workload under a real referee.
pub struct GameRow {
    /// First-column label.
    pub label: String,
    /// Registry key of the algorithm.
    pub alg: &'static str,
    /// Construction parameters.
    pub params: Params,
    /// The stream.
    pub workload: WorkloadSpec,
    /// The correctness checker.
    pub referee: RefereeSpec,
    /// Public seed of the algorithm's random tape.
    pub seed: u64,
    /// Ingestion chunk size (checks happen at chunk boundaries).
    pub batch: usize,
    /// Cells to render after the label.
    pub metrics: Vec<Metric>,
}

impl GameRow {
    /// Row with the default batch size (256) and `[SpaceBits, Ok]` metrics.
    pub fn new(
        label: impl Into<String>,
        alg: &'static str,
        params: Params,
        workload: WorkloadSpec,
        referee: RefereeSpec,
    ) -> Self {
        GameRow {
            label: label.into(),
            alg,
            params,
            workload,
            referee,
            seed: 0,
            batch: 256,
            metrics: vec![Metric::SpaceBits, Metric::Ok],
        }
    }

    /// Set the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the ingestion chunk size.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Set the rendered metrics.
    pub fn metrics(mut self, metrics: &[Metric]) -> Self {
        self.metrics = metrics.to_vec();
        self
    }
}

/// Shared context handed to custom rows.
#[derive(Debug, Clone, Copy)]
pub struct RunCtx {
    /// `true` under `--quick`: scale sweeps down to smoke size.
    pub quick: bool,
}

impl RunCtx {
    /// `m`, capped at `cap` in quick mode.
    pub fn cap(&self, m: u64, cap: u64) -> u64 {
        if self.quick {
            m.min(cap)
        } else {
            m
        }
    }

    /// `trials`, reduced to `quick_trials` in quick mode.
    pub fn trials(&self, trials: u64, quick_trials: u64) -> u64 {
        if self.quick {
            trials.min(quick_trials)
        } else {
            trials
        }
    }
}

type CustomFn = Box<dyn FnOnce(&RunCtx) -> Vec<String> + Send>;

/// A table row: registry-driven game or domain-specific computation.
pub enum Row {
    /// See [`GameRow`].
    Game(Box<GameRow>),
    /// Label plus a closure producing the remaining cells.
    Custom {
        /// First-column label.
        label: String,
        /// Produces the cells after the label.
        cells: CustomFn,
    },
}

impl Row {
    /// Shorthand for a [`Row::Game`].
    pub fn game(g: GameRow) -> Self {
        Row::Game(Box::new(g))
    }

    /// Shorthand for a [`Row::Custom`]. The closure must be `Send`: rows
    /// are executed on the engine's worker pool.
    pub fn custom(
        label: impl Into<String>,
        cells: impl FnOnce(&RunCtx) -> Vec<String> + Send + 'static,
    ) -> Self {
        Row::Custom {
            label: label.into(),
            cells: Box::new(cells),
        }
    }
}

/// Runner configuration, usually parsed from the command line.
#[derive(Debug, Clone, Default)]
pub struct RunnerConfig {
    /// Smoke mode: cap workloads and sweeps.
    pub quick: bool,
    /// Emit JSON lines to this path (`-` for stdout).
    pub json: Option<String>,
    /// Worker threads for row execution (`0` = one per available core).
    pub threads: usize,
    /// Rescale every game row's workload to this many updates
    /// (`--prelude-m`); `None` keeps the declared sizes.
    pub prelude_m: Option<u64>,
    /// Override every game row's ingestion chunk size (`--chunk`); `None`
    /// keeps the per-row [`GameRow::batch`].
    pub chunk: Option<usize>,
}

impl RunnerConfig {
    /// Updates per workload in `--quick` mode.
    pub const QUICK_CAP: u64 = 1 << 11;

    /// Parse `--quick`, `--json <path|->`, `--threads N`, `--prelude-m M`,
    /// and `--chunk N` from `std::env::args`.
    pub fn from_args() -> Self {
        let mut cfg = RunnerConfig::default();
        let mut args = std::env::args().skip(1);
        // Strict numeric values: a missing/non-numeric value would
        // otherwise swallow the next flag (e.g. `--threads --quick`) and
        // silently run the full-scale workload. Underscore separators are
        // accepted (`--prelude-m 10_000_000`).
        fn numeric<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
            match value.map(|v| v.replace('_', "").parse()) {
                Some(Ok(n)) => n,
                _ => {
                    eprintln!("{flag} needs a number");
                    std::process::exit(2);
                }
            }
        }
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => cfg.quick = true,
                "--json" => {
                    // Strict: a missing value (or a following flag) must not
                    // be swallowed as the path — `--json --quick` would
                    // silently run full-scale. `-` (stdout) stays valid.
                    cfg.json = match args.next() {
                        Some(v) if !v.starts_with("--") => Some(v),
                        _ => {
                            eprintln!("--json needs a path (or '-' for stdout)");
                            std::process::exit(2);
                        }
                    }
                }
                "--threads" => cfg.threads = numeric(args.next(), "--threads"),
                "--prelude-m" => cfg.prelude_m = Some(numeric(args.next(), "--prelude-m")),
                "--chunk" => cfg.chunk = Some(numeric::<usize>(args.next(), "--chunk").max(1)),
                other => eprintln!(
                    "ignoring unknown flag '{other}' (known: --quick, --json, --threads, \
                     --prelude-m, --chunk)"
                ),
            }
        }
        cfg
    }
}

/// Parse the CLI, run the spec, print tables, and write the JSON report if
/// requested. The entry point every experiment binary calls from `main`.
pub fn run_cli(spec: ExperimentSpec) {
    let cfg = RunnerConfig::from_args();
    let lines = run(spec, &cfg);
    if let Some(path) = &cfg.json {
        if path == "-" {
            let mut out = std::io::stdout();
            for l in &lines {
                let _ = writeln!(out, "{l}");
            }
        } else if let Err(e) = std::fs::write(path, lines.join("\n") + "\n") {
            eprintln!("could not write JSON report to {path}: {e}");
        }
    }
}

/// Run the spec with an explicit configuration, printing tables and
/// returning the JSON report lines (one object per row).
///
/// Rows are independent: each one becomes a job on the engine's
/// [pool](crate::pool) (sized by [`RunnerConfig::threads`]). Finished rows
/// stream to stdout as soon as every earlier row is done — long runs show
/// progress — and they rejoin their sections in declaration order, so the
/// printed tables and the JSON report are byte-identical no matter how
/// many workers ran.
pub fn run(spec: ExperimentSpec, cfg: &RunnerConfig) -> Vec<String> {
    let ExperimentSpec {
        id,
        title,
        notes,
        sections,
    } = spec;
    let ctx = RunCtx { quick: cfg.quick };
    println!(
        "{}: {}{}",
        id.to_uppercase(),
        title,
        if cfg.quick { "  [--quick]" } else { "" }
    );

    struct RowOut {
        label: String,
        cells: Vec<String>,
        extra: String,
    }
    // (heading, columns, width) per section, plus each row's section index.
    let mut shapes: Vec<(String, Vec<String>, usize)> = Vec::new();
    let mut row_section: Vec<usize> = Vec::new();
    let mut jobs: Vec<Job<RowOut>> = Vec::new();
    for section in sections {
        shapes.push((section.heading, section.columns, section.width));
        for r in section.rows {
            row_section.push(shapes.len() - 1);
            jobs.push(match r {
                Row::Game(g) => Box::new(move || {
                    let (cells, extra) = run_game_row(&g, cfg);
                    RowOut {
                        label: g.label,
                        cells,
                        extra,
                    }
                }),
                Row::Custom { label, cells } => Box::new(move || RowOut {
                    label,
                    cells: cells(&ctx),
                    extra: String::new(),
                }),
            });
        }
    }

    fn print_headers(shapes: &[(String, Vec<String>, usize)], through: usize, printed: &mut usize) {
        while *printed <= through {
            let (heading, columns, width) = &shapes[*printed];
            println!("\n{heading}\n");
            let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
            header(&cols, *width);
            *printed += 1;
        }
    }

    let mut lines = Vec::new();
    let mut headers_printed = 0usize;
    pool::run_ordered_with(
        jobs,
        pool::effective_threads(cfg.threads),
        |index, out: &RowOut| {
            let section = row_section[index];
            print_headers(&shapes, section, &mut headers_printed);
            let (heading, columns, width) = &shapes[section];
            let mut all = vec![out.label.clone()];
            all.extend(out.cells.iter().cloned());
            println!("{}", row(&all, *width));
            lines.push(json_line(
                id, heading, columns, &out.label, &out.cells, &out.extra,
            ));
        },
    );
    // Sections with no rows still print their header, in order.
    if !shapes.is_empty() {
        print_headers(&shapes, shapes.len() - 1, &mut headers_printed);
    }
    for note in &notes {
        println!("\n{note}");
    }
    lines
}

/// Drive one [`GameRow`] through the erased engine — the workload is
/// pulled chunk by chunk from [`WorkloadSpec::stream`], never materialized
/// — and return the rendered metric cells plus extra JSON fields.
fn run_game_row(g: &GameRow, cfg: &RunnerConfig) -> (Vec<String>, String) {
    // An explicit --prelude-m wins over --quick's cap — same precedence as
    // the tournament binary, so `--quick --prelude-m 1_000_000` means "CI
    // sizes elsewhere, but this stream length" in both CLIs.
    let mut workload = g.workload.clone();
    match cfg.prelude_m {
        Some(m) => workload = workload.resized(m),
        None if cfg.quick => workload = workload.capped(RunnerConfig::QUICK_CAP),
        None => {}
    }
    let chunk = cfg.chunk.unwrap_or(g.batch);
    let mut referee = g.referee.build();
    let report_or_err = registry::get(g.alg, &g.params).and_then(|mut alg| {
        run_source_erased(
            alg.as_mut(),
            &mut workload.stream(),
            referee.as_mut(),
            chunk,
            g.seed,
        )
        .map(|rep| (rep, alg.query_dyn()))
    });
    match report_or_err {
        Ok((report, answer)) => {
            let cells = g
                .metrics
                .iter()
                .map(|m| metric_cell(*m, &report, &answer.cell()))
                .collect();
            // Structured fields go under one "game" key so they can never
            // collide with column names like "ok" or "rounds".
            let extra = format!(
                r#","game":{{"alg":"{}","workload":"{}","referee":"{}","rounds":{},"ok":{},"space_bits":{},"peak_space_bits":{}}}"#,
                g.alg,
                workload.label(),
                g.referee.label(),
                report.result.rounds,
                report.survived(),
                report.result.final_space_bits,
                report.result.peak_space_bits,
            );
            (cells, extra)
        }
        Err(e) => {
            let cells = g.metrics.iter().map(|_| format!("ERR: {e}")).collect();
            (
                cells,
                format!(r#","game":{{"alg":"{}","error":true}}"#, g.alg),
            )
        }
    }
}

fn metric_cell(metric: Metric, report: &GameReport, answer_cell: &str) -> String {
    match metric {
        Metric::Rounds => report.result.rounds.to_string(),
        Metric::SpaceBits => report.result.final_space_bits.to_string(),
        Metric::PeakSpaceBits => report.result.peak_space_bits.to_string(),
        Metric::Ok => report.survived().to_string(),
        Metric::FailRound => report
            .result
            .failure
            .as_ref()
            .map_or("-".to_string(), |f| f.round.to_string()),
        Metric::Answer => answer_cell.to_string(),
        Metric::Checks => report.checks.to_string(),
    }
}

/// Minimal JSON escaping for the ASCII-ish strings experiment tables use
/// (shared with the tournament report writer).
pub(crate) fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn json_line(
    id: &str,
    section: &str,
    columns: &[String],
    label: &str,
    cells: &[String],
    extra: &str,
) -> String {
    let mut fields = vec![
        format!(r#""exp":"{}""#, json_escape(id)),
        format!(r#""section":"{}""#, json_escape(section)),
        format!(r#""label":"{}""#, json_escape(label)),
    ];
    for (col, cell) in columns.iter().skip(1).zip(cells) {
        fields.push(format!(r#""{}":"{}""#, json_escape(col), json_escape(cell)));
    }
    format!("{{{}{extra}}}", fields.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> ExperimentSpec {
        ExperimentSpec::new("demo", "runner smoke test").section(
            Section::new("games", &["m", "alg", "space bits", "ok"], 12)
                .row(Row::game(
                    GameRow::new(
                        "2^12",
                        "misra_gries",
                        Params::default().with_n(1 << 10),
                        WorkloadSpec::Cycle {
                            items: 8,
                            m: 1 << 12,
                        },
                        RefereeSpec::HeavyHitters {
                            eps: 0.125,
                            tol: 0.125,
                            phi: None,
                            grace: 0,
                        },
                    )
                    .metrics(&[Metric::Answer, Metric::SpaceBits, Metric::Ok]),
                ))
                .row(Row::custom("custom", |ctx| {
                    vec![
                        ctx.cap(1 << 20, 1 << 10).to_string(),
                        "-".into(),
                        "true".into(),
                    ]
                })),
        )
    }

    #[test]
    fn runner_produces_json_lines() {
        let lines = run(demo_spec(), &RunnerConfig::default());
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""exp":"demo""#));
        assert!(lines[0].contains(r#""ok":true"#), "line: {}", lines[0]);
        assert!(lines[0].contains(r#""alg":"misra_gries""#));
        assert!(lines[1].contains(r#""label":"custom""#));
    }

    #[test]
    fn quick_mode_caps_workloads_and_custom_rows() {
        let cfg = RunnerConfig {
            quick: true,
            ..RunnerConfig::default()
        };
        let lines = run(demo_spec(), &cfg);
        // The game row reports rounds == QUICK_CAP, not 2^12.
        assert!(
            lines[0].contains(&format!(r#""rounds":{}"#, RunnerConfig::QUICK_CAP)),
            "line: {}",
            lines[0]
        );
        // The custom row saw quick mode through RunCtx.
        assert!(lines[1].contains(r#""alg":"1024""#) || lines[1].contains("1024"));
    }

    #[test]
    fn bad_registry_key_reports_error_cells() {
        let spec = ExperimentSpec::new("bad", "bad key").section(
            Section::new("s", &["label", "ok"], 10).row(Row::game(GameRow::new(
                "x",
                "nope",
                Params::default(),
                WorkloadSpec::Cycle { items: 2, m: 8 },
                RefereeSpec::Accept,
            ))),
        );
        let lines = run(spec, &RunnerConfig::default());
        assert!(lines[0].contains(r#""error":true"#));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb"), "a\\nb");
    }
}
