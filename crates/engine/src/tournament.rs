//! Tournament mode: every algorithm vs every adversary on every workload.
//!
//! The white-box model is defined by the *interaction* of an algorithm with
//! an adversary that sees its full state; a dozen hand-picked pairings in
//! the `exp_e*` binaries do not measure robustness breadth. This module
//! enumerates the full registry cross-product — algorithm × adversary ×
//! workload — and plays every cell as an erased game on the hand-rolled
//! [pool](crate::pool), aggregating verdicts into a [`TournamentReport`].
//!
//! **Cell anatomy.** Each cell first ingests an *oblivious prelude* drawn
//! from the named workload generator — the algorithm's state is preloaded
//! with realistic traffic — and then the named adversary plays the
//! adaptive per-round white-box game against that warm state. One
//! [`TranscriptRng`] spans both phases, so the adversary sees the full
//! randomness transcript, prelude included.
//!
//! **Streaming prelude.** The prelude is never materialized: chunks of
//! `batch` updates are pulled from [`WorkloadSpec::stream`] into one
//! reused buffer (flat mode) or routed through the bounded chunk queues of
//! [`crate::shard`] (sharded mode), so a cell's memory is O(batch + n)
//! regardless of `prelude_m` — `--prelude-m 10_000_000` and beyond is a
//! matter of wall-clock, not RAM. The chunk size is pure transport: the
//! referee observes every update but checks the answer once, at the **end
//! of the prelude** (then after every adaptive round as before), so the
//! JSON report is byte-identical across `--chunk` values as well as across
//! thread counts. An incompatible pairing reports the offset of the first
//! offending update (probed per update after the chunk-level error, hence
//! also chunk-size-independent) without ever retaining the stream — as a
//! logical *stream offset* in flat mode (with `rounds` = updates accepted
//! before it), and as the failing shard's *shard-local offset* in sharded
//! mode (the shard subsequences are themselves deterministic; nothing was
//! merged, so `rounds` stays 0 there).
//!
//! **Determinism.** The cell's random tapes are derived with
//! [`derive_seed`]`(master, [alg, adversary, workload, role])` for the
//! four roles `"ctor"` (constructor randomness), `"adversary"` (scripted
//! adversary streams), `"workload"` (the prelude generator), and `"game"`
//! (the algorithm's in-game tape). A cell is therefore a pure function of
//! `(master_seed, alg, adversary, workload, sizes)` — independent of which
//! worker thread runs it, of how many threads exist, and of every other
//! cell. [`TournamentReport::json_lines`] is byte-identical across thread
//! counts, and any single cell can be replayed in isolation for a citation.
//!
//! **Universe folding.** All cell traffic is folded into `[0, n)` by
//! `item % n` before it reaches the referee or the algorithm, because
//! universe-bounded algorithms (e.g. `sis_l0`) reject out-of-universe items
//! while the `ddos` generator emits raw 32-bit addresses. Folding is
//! deterministic and applied identically to referee and algorithm, so
//! ground truth stays exact.

use crate::erased::{DynStreamAlg, Update};
use crate::experiment::json_escape;
use crate::pool::{self, Job};
use crate::referee::{DynReferee, RefereeSpec};
use crate::registry::{self, Params};
use crate::report::{header, row, GameReport};
use crate::shard::{self, Partition, ShardConfig};
use crate::workload::{FoldSource, InspectSource, UpdateSource, WorkloadSpec, WorkloadStream};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;
use wb_core::rng::{derive_seed, TranscriptRng};
use wb_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use wb_core::WbError;

/// The workload dimensions of the cross-product: every named generator in
/// [`crate::workload`].
pub const WORKLOADS: &[&str] = &["zipf", "ddos", "churn", "uniform", "cycle"];

// Drift guard: a new `WorkloadSpec` variant makes this match non-exhaustive
// and fails the build until the author decides whether it joins [`WORKLOADS`]
// and [`workload_spec`] (generators do; literal `Script`s do not).
#[allow(dead_code)]
fn workload_dimension_is_exhaustive(spec: &WorkloadSpec) {
    match spec {
        WorkloadSpec::Zipf { .. }
        | WorkloadSpec::Ddos { .. }
        | WorkloadSpec::Churn { .. }
        | WorkloadSpec::Uniform { .. }
        | WorkloadSpec::Cycle { .. } => (), // in WORKLOADS
        WorkloadSpec::Script(_) => (), // a literal stream, not a generator
    }
}

/// Configuration of one tournament run.
#[derive(Debug, Clone)]
pub struct TournamentConfig {
    /// Master seed every per-cell seed is derived from.
    pub master_seed: u64,
    /// Worker threads (`0` = one per available core).
    pub threads: usize,
    /// Algorithm registry keys (defaults to the whole registry).
    pub algs: Vec<String>,
    /// Adversary registry keys (defaults to all of them).
    pub adversaries: Vec<String>,
    /// Workload names (defaults to [`WORKLOADS`]).
    pub workloads: Vec<String>,
    /// Universe size; all cell traffic is folded into `[0, n)`.
    pub n: u64,
    /// Length of the oblivious workload prelude each cell ingests.
    pub prelude_m: u64,
    /// Adaptive adversary rounds after the prelude.
    pub rounds: u64,
    /// Prelude chunk size — pure transport (`--chunk`): it bounds the
    /// cell's resident stream slice and never affects the report (the
    /// referee checks at the end of the prelude, not at chunk boundaries).
    pub batch: usize,
    /// Shard instances the prelude is partitioned across (`1` = classic
    /// single-stream ingestion). With `S > 1`, mergeable algorithms ingest
    /// the prelude as `S` hash-partitioned shards merged in a
    /// deterministic reduction tree (see [`crate::shard`]); unmergeable
    /// algorithms fall back to the flat single-stream path — keeping their
    /// full prelude randomness transcript visible to the phase-2 adversary
    /// — so every cell stays playable and reports stay byte-identical
    /// across thread counts.
    pub shards: usize,
}

impl Default for TournamentConfig {
    fn default() -> Self {
        TournamentConfig {
            master_seed: 42,
            threads: 0,
            algs: registry::names().iter().map(|s| s.to_string()).collect(),
            adversaries: registry::adversary_names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            workloads: WORKLOADS.iter().map(|s| s.to_string()).collect(),
            n: 1 << 12,
            prelude_m: 1 << 13,
            rounds: 1 << 12,
            batch: crate::workload::DEFAULT_CHUNK,
            shards: 1,
        }
    }
}

impl TournamentConfig {
    /// Smoke-scale sizes for CI and tests; the cross-product stays full.
    pub fn quick(mut self) -> Self {
        self.n = 1 << 10;
        self.prelude_m = 512;
        self.rounds = 256;
        self.batch = 128;
        self
    }

    /// Number of cells the cross-product enumerates.
    pub fn cell_count(&self) -> usize {
        self.algs.len() * self.adversaries.len() * self.workloads.len()
    }
}

/// Outcome class of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellVerdict {
    /// The referee accepted every checked answer.
    Survived,
    /// First referee violation, at this cumulative 1-indexed round.
    Violated {
        /// Round of the first violation.
        round: u64,
    },
    /// The pairing is outside the algorithm's stream model (e.g. `churn`
    /// deletions offered to an insertion-only sketch) — recorded, not an
    /// error: the cross-product is exhaustive by design.
    Incompatible,
    /// Construction failed or the cell panicked.
    Error,
}

impl CellVerdict {
    /// Stable lowercase label used in tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            CellVerdict::Survived => "survived",
            CellVerdict::Violated { .. } => "violated",
            CellVerdict::Incompatible => "incompatible",
            CellVerdict::Error => "error",
        }
    }
}

/// Result of one `(algorithm, adversary, workload)` cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Algorithm registry key.
    pub alg: String,
    /// Adversary registry key.
    pub adversary: String,
    /// Workload name (the prelude generator).
    pub workload: String,
    /// Shard instances the prelude was configured to spread across.
    pub shards: usize,
    /// The derived per-cell game seed (`role = "game"`), for replay.
    pub seed: u64,
    /// Outcome class.
    pub verdict: CellVerdict,
    /// Violation / error description (empty when survived).
    pub detail: String,
    /// Updates ingested (prelude + adaptive rounds). For incompatible
    /// cells: the updates accepted before the first offending one in flat
    /// mode, `0` in sharded mode (nothing was merged).
    pub rounds: u64,
    /// Referee checks performed.
    pub checks: u64,
    /// Peak `space_bits()` across the cell.
    pub peak_space_bits: u64,
    /// `space_bits()` after the final round.
    pub final_space_bits: u64,
    /// Wall time of the cell. Informational only — deliberately **not**
    /// part of [`CellReport::json_line`], which must be bit-reproducible.
    pub millis: u128,
}

impl CellReport {
    /// One JSON object describing the cell. Contains no timing and no
    /// machine-dependent fields: byte-identical across runs and thread
    /// counts for the same configuration.
    pub fn json_line(&self) -> String {
        let fail_round = match self.verdict {
            CellVerdict::Violated { round } => round.to_string(),
            _ => "null".to_string(),
        };
        format!(
            concat!(
                r#"{{"alg":"{}","adversary":"{}","workload":"{}","shards":{},"seed":{},"#,
                r#""verdict":"{}","fail_round":{},"rounds":{},"checks":{},"#,
                r#""peak_space_bits":{},"final_space_bits":{},"detail":"{}"}}"#
            ),
            json_escape(&self.alg),
            json_escape(&self.adversary),
            json_escape(&self.workload),
            self.shards,
            self.seed,
            self.verdict.label(),
            fail_round,
            self.rounds,
            self.checks,
            self.peak_space_bits,
            self.final_space_bits,
            json_escape(&self.detail),
        )
    }
}

/// Per-algorithm rollup across all its cells.
#[derive(Debug, Clone)]
pub struct AlgSummary {
    /// Algorithm registry key.
    pub alg: String,
    /// Cells played.
    pub cells: usize,
    /// Cells where the referee accepted everything.
    pub survived: usize,
    /// Cells with a referee violation.
    pub violated: usize,
    /// Model-incompatible pairings.
    pub incompatible: usize,
    /// Construction failures / panics.
    pub errors: usize,
    /// Earliest violation round across cells, if any.
    pub first_fail_round: Option<u64>,
    /// Peak space across all cells.
    pub peak_space_bits: u64,
}

/// Aggregated outcome of a tournament run.
#[derive(Debug, Clone)]
pub struct TournamentReport {
    /// The master seed the run derived every cell seed from.
    pub master_seed: u64,
    /// Worker threads actually used.
    pub threads: usize,
    /// One report per cell, in cross-product enumeration order
    /// (algorithm-major, then adversary, then workload).
    pub cells: Vec<CellReport>,
    /// Total wall time of the run.
    pub wall_millis: u128,
}

impl TournamentReport {
    /// JSON-lines report, sorted lexicographically — the canonical
    /// byte-reproducible artifact (no timing, no thread count).
    pub fn json_lines(&self) -> Vec<String> {
        let mut lines: Vec<String> = self.cells.iter().map(CellReport::json_line).collect();
        lines.sort();
        lines
    }

    /// Per-algorithm rollups, in cell enumeration order.
    pub fn summaries(&self) -> Vec<AlgSummary> {
        let mut out: Vec<AlgSummary> = Vec::new();
        for cell in &self.cells {
            if out.last().map(|s| s.alg.as_str()) != Some(cell.alg.as_str()) {
                out.push(AlgSummary {
                    alg: cell.alg.clone(),
                    cells: 0,
                    survived: 0,
                    violated: 0,
                    incompatible: 0,
                    errors: 0,
                    first_fail_round: None,
                    peak_space_bits: 0,
                });
            }
            let s = out.last_mut().expect("pushed above");
            s.cells += 1;
            s.peak_space_bits = s.peak_space_bits.max(cell.peak_space_bits);
            match cell.verdict {
                CellVerdict::Survived => s.survived += 1,
                CellVerdict::Violated { round } => {
                    s.violated += 1;
                    s.first_fail_round = Some(s.first_fail_round.map_or(round, |r| r.min(round)));
                }
                CellVerdict::Incompatible => s.incompatible += 1,
                CellVerdict::Error => s.errors += 1,
            }
        }
        out
    }

    /// Cells that ended in a referee violation or an error.
    pub fn failures(&self) -> Vec<&CellReport> {
        self.cells
            .iter()
            .filter(|c| matches!(c.verdict, CellVerdict::Violated { .. } | CellVerdict::Error))
            .collect()
    }

    /// Print the per-algorithm robustness table.
    pub fn print_summary(&self) {
        println!("\nper-algorithm robustness (cells = adversary x workload pairings)\n");
        header(
            &[
                "alg",
                "cells",
                "survived",
                "violated",
                "incompat",
                "error",
                "first fail",
                "peak bits",
            ],
            12,
        );
        for s in self.summaries() {
            println!(
                "{}",
                row(
                    &[
                        s.alg.clone(),
                        s.cells.to_string(),
                        s.survived.to_string(),
                        s.violated.to_string(),
                        s.incompatible.to_string(),
                        s.errors.to_string(),
                        s.first_fail_round
                            .map_or("-".to_string(), |r| r.to_string()),
                        s.peak_space_bits.to_string(),
                    ],
                    12,
                )
            );
        }
    }

    /// Print every cell (verbose; `--cells` in the binary).
    pub fn print_cells(&self) {
        println!("\nall cells\n");
        header(
            &[
                "alg",
                "adversary",
                "workload",
                "verdict",
                "rounds",
                "checks",
                "peak bits",
                "ms",
            ],
            12,
        );
        for c in &self.cells {
            println!(
                "{}",
                row(
                    &[
                        c.alg.clone(),
                        c.adversary.clone(),
                        c.workload.clone(),
                        c.verdict.label().to_string(),
                        c.rounds.to_string(),
                        c.checks.to_string(),
                        c.peak_space_bits.to_string(),
                        c.millis.to_string(),
                    ],
                    12,
                )
            );
        }
    }
}

/// The prelude workload for a named dimension, sized for one cell.
pub fn workload_spec(name: &str, n: u64, m: u64, seed: u64) -> Result<WorkloadSpec, WbError> {
    match name {
        "zipf" => Ok(WorkloadSpec::Zipf {
            n,
            m,
            heavy: 8,
            seed,
        }),
        "ddos" => Ok(WorkloadSpec::Ddos { m, seed }),
        "churn" => Ok(WorkloadSpec::Churn {
            n,
            // waves * (wave + wave/2) ≈ m updates.
            waves: (m / 96).max(1),
            wave: 64,
            seed,
        }),
        "uniform" => Ok(WorkloadSpec::Uniform { n, m, seed }),
        "cycle" => Ok(WorkloadSpec::Cycle { items: 8, m }),
        other => Err(WbError::invalid(format!(
            "unknown workload '{other}' (known: {})",
            WORKLOADS.join(", ")
        ))),
    }
}

/// The referee that checks the guarantee each registry algorithm actually
/// claims. Algorithms whose fixed query has no stream-level guarantee shape
/// (`count_min`'s victim estimate, `ams_f2`'s F2 moment) run under
/// [`RefereeSpec::Accept`] — their cells measure survival of ingestion, not
/// a correctness bound.
pub fn referee_for(alg: &str, p: &Params) -> RefereeSpec {
    match alg {
        "misra_gries" | "space_saving" | "robust_hh" | "bern_mg" | "bernoulli_hh" => {
            RefereeSpec::HeavyHitters {
                eps: p.eps,
                tol: p.eps,
                phi: None,
                grace: 64,
            }
        }
        // The (φ,ε) guarantee: coverage at φ·‖f‖₁ (not ε — the compressed
        // summary only promises φ-heavy items), with the false-positive
        // floor; same calibration as exp_e2.
        "phi_eps_hh" => RefereeSpec::HeavyHitters {
            eps: p.phi,
            tol: 0.1,
            phi: Some(p.phi),
            grace: 256,
        },
        "morris" | "median_morris" => RefereeSpec::ApproxCount { eps: 0.5 },
        "exact_l0" => RefereeSpec::L0Sandwich { factor: 1.0 },
        "sis_l0" => RefereeSpec::L0Sandwich {
            factor: (p.n as f64).powf(p.l0_eps).ceil(),
        },
        _ => RefereeSpec::Accept,
    }
}

/// Run the full cross-product on the pool and aggregate the report.
pub fn run_tournament(cfg: &TournamentConfig) -> TournamentReport {
    let start = Instant::now();
    let mut coords: Vec<(String, String, String)> = Vec::with_capacity(cfg.cell_count());
    for alg in &cfg.algs {
        for adversary in &cfg.adversaries {
            for workload in &cfg.workloads {
                coords.push((alg.clone(), adversary.clone(), workload.clone()));
            }
        }
    }
    let jobs: Vec<Job<CellReport>> = coords
        .into_iter()
        .map(|(alg, adversary, workload)| -> Job<CellReport> {
            Box::new(move || run_cell(cfg, &alg, &adversary, &workload))
        })
        .collect();
    let threads = pool::effective_threads(cfg.threads);
    let cells = pool::run_ordered(jobs, threads);
    TournamentReport {
        master_seed: cfg.master_seed,
        threads,
        cells,
        wall_millis: start.elapsed().as_millis(),
    }
}

/// Checkpointing policy for a tournament run (`--checkpoint-every` /
/// `--resume` in the `tournament` binary).
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Checkpoint file. Written atomically (tmp + rename) after every cell
    /// completion and every mid-prelude frame, so a SIGKILL at any moment
    /// leaves either the previous or the next consistent checkpoint.
    pub path: PathBuf,
    /// Updates between mid-prelude frames within each cell (`0` =
    /// cell-granular only: finished cells persist, a killed cell restarts
    /// from its beginning).
    pub every: u64,
}

/// The semantic identity of a tournament run: everything that shapes the
/// report. `batch` and `threads` are deliberately excluded — they are pure
/// transport, and a checkpoint taken at `--chunk 1024 --threads 4` must
/// resume under `--chunk 4096 --threads 1` with a byte-identical report.
fn config_fingerprint(cfg: &TournamentConfig) -> String {
    format!(
        "v1;seed={};n={};prelude_m={};rounds={};shards={};algs={};adversaries={};workloads={}",
        cfg.master_seed,
        cfg.n,
        cfg.prelude_m,
        cfg.rounds,
        cfg.shards.max(1),
        cfg.algs.join(","),
        cfg.adversaries.join(","),
        cfg.workloads.join(","),
    )
}

type CellKey = (String, String, String);

/// On-disk checkpoint state: which cells finished (their full reports) and
/// the latest mid-prelude frame of each in-flight cell.
struct CkptStore {
    fingerprint: String,
    path: PathBuf,
    completed: BTreeMap<CellKey, CellReport>,
    inflight: BTreeMap<CellKey, Vec<u8>>,
}

fn snap_cell_report(w: &mut SnapWriter, c: &CellReport) {
    w.put_str(&c.alg);
    w.put_str(&c.adversary);
    w.put_str(&c.workload);
    w.put_usize(c.shards);
    w.put_u64(c.seed);
    match c.verdict {
        CellVerdict::Survived => w.put_u8(0),
        CellVerdict::Violated { round } => {
            w.put_u8(1);
            w.put_u64(round);
        }
        CellVerdict::Incompatible => w.put_u8(2),
        CellVerdict::Error => w.put_u8(3),
    }
    w.put_str(&c.detail);
    w.put_u64(c.rounds);
    w.put_u64(c.checks);
    w.put_u64(c.peak_space_bits);
    w.put_u64(c.final_space_bits);
}

fn take_cell_report(r: &mut SnapReader<'_>) -> Result<CellReport, SnapError> {
    let (alg, adversary, workload) = (r.take_str()?, r.take_str()?, r.take_str()?);
    let shards = r.take_usize()?;
    let seed = r.take_u64()?;
    let verdict = match r.take_u8()? {
        0 => CellVerdict::Survived,
        1 => CellVerdict::Violated {
            round: r.take_u64()?,
        },
        2 => CellVerdict::Incompatible,
        3 => CellVerdict::Error,
        other => return Err(SnapError::corrupt(format!("unknown cell verdict {other}"))),
    };
    Ok(CellReport {
        alg,
        adversary,
        workload,
        shards,
        seed,
        verdict,
        detail: r.take_str()?,
        rounds: r.take_u64()?,
        checks: r.take_u64()?,
        peak_space_bits: r.take_u64()?,
        final_space_bits: r.take_u64()?,
        // Wall time is not reproducible and not part of the JSON artifact;
        // restored cells report zero.
        millis: 0,
    })
}

impl CkptStore {
    fn serialize(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_str(&self.fingerprint);
        w.put_usize(self.completed.len());
        for report in self.completed.values() {
            snap_cell_report(&mut w, report);
        }
        w.put_usize(self.inflight.len());
        for ((alg, adv, wl), frame) in &self.inflight {
            w.put_str(alg);
            w.put_str(adv);
            w.put_str(wl);
            w.put_bytes(frame);
        }
        w.finish()
    }

    fn parse(bytes: &[u8], expected_fingerprint: &str, path: &Path) -> Result<Self, WbError> {
        let corrupt =
            |e: SnapError| WbError::invalid(format!("checkpoint {}: {e}", path.display()));
        let mut r = SnapReader::new(bytes).map_err(corrupt)?;
        let fingerprint = r.take_str().map_err(corrupt)?;
        if fingerprint != expected_fingerprint {
            return Err(WbError::invalid(format!(
                "checkpoint {} was taken under a different configuration\n  checkpoint: {fingerprint}\n  requested:  {expected_fingerprint}",
                path.display()
            )));
        }
        let mut completed = BTreeMap::new();
        for _ in 0..r.take_usize().map_err(corrupt)? {
            let report = take_cell_report(&mut r).map_err(corrupt)?;
            let key = (
                report.alg.clone(),
                report.adversary.clone(),
                report.workload.clone(),
            );
            completed.insert(key, report);
        }
        let mut inflight = BTreeMap::new();
        for _ in 0..r.take_usize().map_err(corrupt)? {
            let key = (
                r.take_str().map_err(corrupt)?,
                r.take_str().map_err(corrupt)?,
                r.take_str().map_err(corrupt)?,
            );
            inflight.insert(key, r.take_bytes().map_err(corrupt)?);
        }
        r.finish().map_err(corrupt)?;
        Ok(CkptStore {
            fingerprint,
            path: path.to_path_buf(),
            completed,
            inflight,
        })
    }

    /// Atomic persist: write to `<path>.tmp`, then rename over `path` — a
    /// kill mid-write leaves the previous checkpoint intact.
    fn persist(&self) {
        let tmp = self.path.with_extension("tmp");
        if std::fs::write(&tmp, self.serialize()).is_ok() {
            let _ = std::fs::rename(&tmp, &self.path);
        }
    }
}

/// [`run_tournament`] with kill-safe progress: completed cells and
/// mid-prelude frames of in-flight cells persist to `ckpt.path`, and a rerun
/// pointed at the same file continues where the killed run stopped. The
/// final report is **byte-identical** to an uninterrupted run of the same
/// configuration (each cell is a pure function of its coordinates, and
/// mid-prelude frames capture the full cell state at chunk-invariant
/// offsets), so checkpointing never perturbs the artifact — only the
/// wall-clock cost of getting there.
pub fn run_tournament_checkpointed(
    cfg: &TournamentConfig,
    ckpt: &CheckpointConfig,
) -> Result<TournamentReport, WbError> {
    let start = Instant::now();
    let fingerprint = config_fingerprint(cfg);
    let store = if ckpt.path.exists() {
        let bytes = std::fs::read(&ckpt.path)
            .map_err(|e| WbError::invalid(format!("read {}: {e}", ckpt.path.display())))?;
        CkptStore::parse(&bytes, &fingerprint, &ckpt.path)?
    } else {
        CkptStore {
            fingerprint,
            path: ckpt.path.clone(),
            completed: BTreeMap::new(),
            inflight: BTreeMap::new(),
        }
    };
    let store = Mutex::new(store);

    let mut coords: Vec<CellKey> = Vec::with_capacity(cfg.cell_count());
    for alg in &cfg.algs {
        for adversary in &cfg.adversaries {
            for workload in &cfg.workloads {
                coords.push((alg.clone(), adversary.clone(), workload.clone()));
            }
        }
    }
    let jobs: Vec<Job<CellReport>> = coords
        .iter()
        .filter(|key| !store.lock().unwrap().completed.contains_key(*key))
        .cloned()
        .map(|key| -> Job<CellReport> {
            let store = &store;
            Box::new(move || {
                let (alg, adversary, workload) = &key;
                let resume_frame = store.lock().unwrap().inflight.get(&key).cloned();
                let sink = |frame: Vec<u8>| {
                    let mut s = store.lock().unwrap();
                    s.inflight.insert(key.clone(), frame);
                    s.persist();
                };
                let ctx = CellCkptCtx {
                    every: ckpt.every,
                    resume: resume_frame.as_deref(),
                    sink: &sink,
                };
                let report = run_cell_resumable(cfg, alg, adversary, workload, Some(&ctx));
                let mut s = store.lock().unwrap();
                s.inflight.remove(&key);
                s.completed.insert(key.clone(), report.clone());
                s.persist();
                report
            })
        })
        .collect();
    let threads = pool::effective_threads(cfg.threads);
    pool::run_ordered(jobs, threads);

    // Assemble in enumeration order from the (now complete) store.
    let store = store.into_inner().unwrap();
    let cells = coords
        .iter()
        .map(|key| {
            store
                .completed
                .get(key)
                .expect("every enumerated cell completed")
                .clone()
        })
        .collect();
    Ok(TournamentReport {
        master_seed: cfg.master_seed,
        threads,
        cells,
        wall_millis: start.elapsed().as_millis(),
    })
}

/// Run one cell, converting panics into an [`CellVerdict::Error`] report so
/// a single misbehaving pairing cannot take down the whole tournament.
pub fn run_cell(cfg: &TournamentConfig, alg: &str, adversary: &str, workload: &str) -> CellReport {
    run_cell_resumable(cfg, alg, adversary, workload, None)
}

/// Mid-prelude checkpoint hookup for one cell: how often to cut a frame,
/// an optional frame to resume from, and where finished frames go.
struct CellCkptCtx<'a> {
    /// Updates between mid-prelude frames (`0` = no mid-cell frames; the
    /// cell still checkpoints at completion via the tournament store).
    every: u64,
    /// Frame from a previous (killed) run of this exact cell.
    resume: Option<&'a [u8]>,
    /// Receives each newly cut frame.
    sink: &'a (dyn Fn(Vec<u8>) + Sync),
}

fn run_cell_resumable(
    cfg: &TournamentConfig,
    alg: &str,
    adversary: &str,
    workload: &str,
    ckpt: Option<&CellCkptCtx<'_>>,
) -> CellReport {
    let start = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        play_cell(cfg, alg, adversary, workload, ckpt)
    }));
    let mut report = outcome.unwrap_or_else(|panic| {
        let msg = panic
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string());
        let mut r = blank_cell(cfg, alg, adversary, workload);
        r.verdict = CellVerdict::Error;
        r.detail = format!("panicked: {msg}");
        r
    });
    report.millis = start.elapsed().as_millis();
    report
}

fn blank_cell(cfg: &TournamentConfig, alg: &str, adversary: &str, workload: &str) -> CellReport {
    CellReport {
        alg: alg.to_string(),
        adversary: adversary.to_string(),
        workload: workload.to_string(),
        shards: cfg.shards.max(1),
        seed: derive_seed(cfg.master_seed, &[alg, adversary, workload, "game"]),
        verdict: CellVerdict::Error,
        detail: String::new(),
        rounds: 0,
        checks: 0,
        peak_space_bits: 0,
        final_space_bits: 0,
        millis: 0,
    }
}

/// Serialize one in-flight cell: stream position, algorithm, game tape,
/// referee ground truth, prelude generator, and the report accumulator.
/// Everything a resumed cell needs to continue draw-for-draw.
fn capture_cell_frame(
    t: u64,
    alg: &dyn DynStreamAlg,
    rng: &TranscriptRng,
    referee: &dyn DynReferee,
    source: &FoldSource<WorkloadStream>,
    game: &GameReport,
) -> Result<Vec<u8>, SnapError> {
    let mut w = SnapWriter::new();
    w.put_u64(t);
    w.put_bytes(&alg.snapshot_dyn()?);
    rng.snap(&mut w);
    w.put_bytes(&referee.snapshot_dyn()?);
    source.snap(&mut w);
    game.snap(&mut w);
    Ok(w.finish())
}

/// Restore a [`capture_cell_frame`] frame into a freshly constructed cell
/// (same config, same coordinates). Returns the stream position to resume
/// from.
fn restore_cell_frame(
    frame: &[u8],
    alg: &mut dyn DynStreamAlg,
    rng: &mut TranscriptRng,
    referee: &mut dyn DynReferee,
    source: &mut FoldSource<WorkloadStream>,
    game: &mut GameReport,
) -> Result<u64, SnapError> {
    let mut r = SnapReader::new(frame)?;
    let t = r.take_u64()?;
    alg.restore_dyn(&r.take_bytes()?)?;
    rng.restore(&mut r)?;
    referee.restore_dyn(&r.take_bytes()?)?;
    source.restore(&mut r)?;
    game.restore(&mut r)?;
    r.finish()?;
    Ok(t)
}

fn play_cell(
    cfg: &TournamentConfig,
    alg_name: &str,
    adv_name: &str,
    wl_name: &str,
    ckpt: Option<&CellCkptCtx<'_>>,
) -> CellReport {
    let mut cell = blank_cell(cfg, alg_name, adv_name, wl_name);
    let error = |mut cell: CellReport, detail: String| {
        cell.verdict = CellVerdict::Error;
        cell.detail = detail;
        cell
    };

    if cfg.n == 0 {
        return error(
            cell,
            "universe size n must be >= 1 (a zero universe has no items)".to_string(),
        );
    }
    let n = cfg.n;
    let ctor_seed = derive_seed(cfg.master_seed, &[alg_name, adv_name, wl_name, "ctor"]);
    let adv_seed = derive_seed(cfg.master_seed, &[alg_name, adv_name, wl_name, "adversary"]);
    let wl_seed = derive_seed(cfg.master_seed, &[alg_name, adv_name, wl_name, "workload"]);
    let game_seed = cell.seed;

    let mut params = Params::default().with_n(n).with_seed(ctor_seed);
    // Fixed-horizon algorithms must budget for the whole cell.
    params.m_guess = cfg.prelude_m + cfg.rounds;
    let mut alg = match registry::get(alg_name, &params) {
        Ok(a) => a,
        Err(e) => return error(cell, e.to_string()),
    };
    let adv_params = {
        let mut p = params.clone().with_m(cfg.rounds);
        p.seed = adv_seed;
        p
    };
    let mut adv = match registry::adversary(adv_name, &adv_params) {
        Ok(a) => a,
        Err(e) => return error(cell, e.to_string()),
    };
    let spec = match workload_spec(wl_name, n, cfg.prelude_m, wl_seed) {
        Ok(spec) => spec,
        Err(e) => return error(cell, e.to_string()),
    };
    let mut referee = referee_for(alg_name, &params).build();

    // One rng spans both phases: the adversary sees the prelude's transcript.
    let mut rng = TranscriptRng::from_seed(game_seed);
    let batch = cfg.batch.max(1);
    let shards = cfg.shards.max(1);
    // Mergeability gates the sharded path. The probe trial-merges one extra
    // empty instance into `alg` (a no-op by the Mergeable contract — the
    // sibling summarizes the empty stream), so it costs one construction,
    // not two, and unmergeable algorithms keep `alg` untouched for the
    // flat path below.
    let use_sharded = shards > 1 && {
        match registry::get(alg_name, &params) {
            Ok(probe) => alg.merge_dyn(probe.as_ref()).is_ok(),
            Err(e) => return error(cell, e.to_string()),
        }
    };
    // The prelude is checked once, at its end, in both modes — the chunk
    // size is pure transport and must not leak into the report.
    let expected_checks = 1 + cfg.rounds;
    let mut game = GameReport::new(alg.space_bits_dyn(), expected_checks);
    let mut t = 0u64;
    let mut incompatible: Option<String> = None;

    if use_sharded {
        // Phase 1, sharded: the referee observes the stream in original
        // order (teed off the producer's chunks) while the algorithm state
        // is assembled from hash-partitioned shard ingests merged in a
        // deterministic reduction tree (shard tapes derive from the cell's
        // game seed, so the report stays a pure function of the cell
        // coordinates). The answer is checked once, at the merge point —
        // mid-shard answers are undefined for the global stream. Every
        // mergeable algorithm ingests deterministically (constructor-only
        // randomness), so the phase-2 transcript handed to the adversary —
        // empty at prelude end — matches flat mode exactly; unmergeable
        // (randomized) algorithms take the flat path below and keep their
        // full prelude randomness transcript. If the fallback or a replay
        // is ever needed, the source is simply re-created from the spec —
        // a stream is a pure function of its seed, so nothing is cloned.
        let ctor = |_: usize| registry::get(alg_name, &params);
        let shard_cfg = ShardConfig {
            shards,
            partition: Partition::Hash,
            threads: 1, // cells already parallelize on the tournament pool
            batch,
            master_seed: game_seed,
        };
        let ingested = {
            let referee = referee.as_mut();
            let mut source = InspectSource::new(FoldSource::new(spec.stream(), n), |chunk| {
                referee.observe_batch(chunk)
            });
            shard::ingest_sharded_source(&ctor, &mut source, &shard_cfg)
        };
        match ingested {
            Ok(out) => {
                alg = out.merged;
                t = out.stats.total();
                let space = alg.space_bits_dyn();
                let answer = alg.query_dyn();
                let verdict = referee.check(t, &answer);
                game.record_check(t, space, &verdict);
            }
            Err(e) => incompatible = Some(e.to_string()),
        }
    } else {
        // Phase 1: oblivious workload prelude, streamed chunk by chunk
        // through one reused buffer — O(batch) memory for any prelude_m.
        let mut source = FoldSource::new(spec.stream(), n);
        if let Some(frame) = ckpt.and_then(|c| c.resume) {
            match restore_cell_frame(
                frame,
                alg.as_mut(),
                &mut rng,
                referee.as_mut(),
                &mut source,
                &mut game,
            ) {
                Ok(resumed) => t = resumed,
                Err(e) => return error(cell, format!("corrupt cell checkpoint: {e}")),
            }
        }
        let every = ckpt.and_then(|c| (c.every > 0).then_some(c.every));
        let mut buf: Vec<Update> = Vec::with_capacity(batch);
        loop {
            if let Some(every) = every {
                // Cut pulls at checkpoint boundaries so frames land at
                // exact multiples of `every` regardless of --chunk. The
                // state at update t is chunk-invariant by the batching
                // contract, so the extra cut changes nothing else — and
                // the frames themselves are chunk-invariant too.
                let next = (t / every + 1) * every;
                let want = batch.min(usize::try_from(next - t).unwrap_or(batch)).max(1);
                if buf.capacity() != want {
                    buf = Vec::with_capacity(want);
                }
            }
            if source.next_chunk(&mut buf) == 0 {
                break;
            }
            referee.observe_batch(&buf);
            if let Err(e) = alg.process_batch_dyn(&buf, &mut rng) {
                let off = shard::locate_failure(alg.as_mut(), &buf, &mut rng, t);
                incompatible = Some(format!(
                    "{e} (first offending update at stream offset {off})"
                ));
                // Count the updates before the offending one as ingested —
                // the per-update semantics, independent of the chunk size.
                t = off;
                break;
            }
            t += buf.len() as u64;
            if every.is_some_and(|every| t.is_multiple_of(every)) {
                if let Some(c) = ckpt {
                    // Algorithms without snapshot support simply skip
                    // mid-cell frames; the cell still resumes from scratch.
                    if let Ok(frame) =
                        capture_cell_frame(t, alg.as_ref(), &rng, referee.as_ref(), &source, &game)
                    {
                        (c.sink)(frame);
                    }
                }
            }
        }
        if incompatible.is_none() {
            let space = alg.space_bits_dyn();
            let answer = alg.query_dyn();
            let verdict = referee.check(t, &answer);
            game.record_check(t, space, &verdict);
        }
    }

    // Phase 2: adaptive per-round white-box game against the warm state.
    if incompatible.is_none() && game.result.failure.is_none() {
        let mut last = None;
        for round in 1..=cfg.rounds {
            let update = match adv.next_update(round, alg.as_ref(), rng.transcript(), last.as_ref())
            {
                Some(u) => u.fold_into(n),
                None => break,
            };
            referee.observe(&update);
            if let Err(e) = alg.process_dyn(&update, &mut rng) {
                incompatible = Some(e.to_string());
                break;
            }
            t += 1;
            let space = alg.space_bits_dyn();
            let answer = alg.query_dyn();
            let verdict = referee.check(t, &answer);
            game.record_check(t, space, &verdict);
            if !verdict.is_correct() {
                break;
            }
            last = Some(answer);
        }
    }

    game.finish(t, alg.space_bits_dyn());
    let (verdict, detail) = if let Some(msg) = incompatible {
        (CellVerdict::Incompatible, msg)
    } else if let Some(f) = &game.result.failure {
        (
            CellVerdict::Violated { round: f.round },
            f.description.clone(),
        )
    } else {
        (CellVerdict::Survived, String::new())
    };
    cell.verdict = verdict;
    cell.detail = detail;
    cell.rounds = t;
    cell.checks = game.checks;
    cell.peak_space_bits = game.result.peak_space_bits;
    cell.final_space_bits = game.result.final_space_bits;
    cell
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(threads: usize) -> TournamentConfig {
        let mut cfg = TournamentConfig::default().quick();
        cfg.master_seed = 7;
        cfg.threads = threads;
        cfg.algs = vec!["misra_gries".into(), "count_min".into(), "exact_l0".into()];
        cfg.adversaries = vec!["cycle".into(), "hh_evader".into()];
        cfg.workloads = vec!["uniform".into(), "churn".into()];
        cfg.prelude_m = 128;
        cfg.rounds = 64;
        cfg.batch = 32;
        cfg
    }

    #[test]
    fn tiny_tournament_is_deterministic_across_thread_counts() {
        let one = run_tournament(&tiny(1));
        let three = run_tournament(&tiny(3));
        assert_eq!(one.cells.len(), 3 * 2 * 2);
        assert_eq!(one.json_lines(), three.json_lines());
        assert_eq!(three.threads, 3);
    }

    #[test]
    fn model_mismatch_is_incompatible_not_error() {
        let cfg = tiny(1);
        let cell = run_cell(&cfg, "misra_gries", "cycle", "churn");
        assert_eq!(cell.verdict, CellVerdict::Incompatible, "{}", cell.detail);
        assert!(cell.detail.contains("stream model") || cell.detail.contains("wrong-model"));
        // The turnstile reference algorithm ingests churn fine.
        let ok = run_cell(&cfg, "exact_l0", "cycle", "churn");
        assert_eq!(ok.verdict, CellVerdict::Survived, "{}", ok.detail);
        assert!(ok.rounds >= cfg.rounds, "prelude + adaptive rounds");
    }

    #[test]
    fn unknown_names_become_error_cells() {
        let cfg = tiny(1);
        assert_eq!(
            run_cell(&cfg, "no_such_alg", "cycle", "uniform").verdict,
            CellVerdict::Error
        );
        assert_eq!(
            run_cell(&cfg, "misra_gries", "no_such_adv", "uniform").verdict,
            CellVerdict::Error
        );
        assert_eq!(
            run_cell(&cfg, "misra_gries", "cycle", "no_such_wl").verdict,
            CellVerdict::Error
        );
    }

    #[test]
    fn json_lines_are_sorted_and_time_free() {
        let report = run_tournament(&tiny(2));
        let lines = report.json_lines();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
        for line in &lines {
            assert!(!line.contains("millis"), "timing must stay out: {line}");
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn sharded_tournament_is_deterministic_across_thread_counts() {
        let sharded = |threads| {
            let mut cfg = tiny(threads);
            cfg.shards = 4;
            cfg
        };
        let one = run_tournament(&sharded(1));
        let three = run_tournament(&sharded(3));
        assert_eq!(one.json_lines(), three.json_lines());
        for line in one.json_lines() {
            assert!(line.contains(r#""shards":4"#), "line: {line}");
        }
        // Sharding must not manufacture failures: the mergeable
        // deterministic summary and the unmergeable fallback both survive
        // the compatible pairings they survive unsharded.
        let flat = run_tournament(&tiny(1));
        for (s, f) in one.cells.iter().zip(&flat.cells) {
            assert_eq!((s.alg.clone(), s.verdict), (f.alg.clone(), f.verdict));
        }
    }

    #[test]
    fn reports_are_byte_identical_across_chunk_sizes() {
        // The chunk size is pure transport: flat and sharded cells must
        // produce the same JSON for any --chunk value.
        let with_batch = |batch: usize, shards: usize| {
            let mut cfg = tiny(2);
            cfg.batch = batch;
            cfg.shards = shards;
            cfg
        };
        for shards in [1usize, 4] {
            let a = run_tournament(&with_batch(16, shards)).json_lines();
            let b = run_tournament(&with_batch(64, shards)).json_lines();
            let c = run_tournament(&with_batch(4096, shards)).json_lines();
            assert_eq!(a, b, "shards {shards}: chunk 16 vs 64 diverged");
            assert_eq!(a, c, "shards {shards}: chunk 16 vs 4096 diverged");
        }
    }

    #[test]
    fn incompatible_detail_reports_a_chunk_invariant_offset() {
        // misra_gries cannot ingest churn deletions; the detail must name
        // the stream offset of the first offending update, and that offset
        // must not depend on the transport chunk size.
        let offset_with_batch = |batch: usize| {
            let mut cfg = tiny(1);
            cfg.batch = batch;
            let cell = run_cell(&cfg, "misra_gries", "cycle", "churn");
            assert_eq!(cell.verdict, CellVerdict::Incompatible, "{}", cell.detail);
            let (_, tail) = cell
                .detail
                .split_once("stream offset ")
                .unwrap_or_else(|| panic!("no offset in detail: {}", cell.detail));
            tail.trim_end_matches(')').parse::<u64>().unwrap()
        };
        let fine = offset_with_batch(8);
        let coarse = offset_with_batch(512);
        assert_eq!(fine, coarse, "offset depends on chunk size");
        // churn emits `wave` insertions before its first deletion.
        assert_eq!(fine, 64);
    }

    #[test]
    fn zero_universe_reports_error_cells() {
        let mut cfg = tiny(1);
        cfg.n = 0;
        let cell = run_cell(&cfg, "misra_gries", "cycle", "uniform");
        assert_eq!(cell.verdict, CellVerdict::Error);
        assert!(cell.detail.contains("universe"), "{}", cell.detail);
    }

    #[test]
    fn summaries_partition_the_cells() {
        let report = run_tournament(&tiny(1));
        let summaries = report.summaries();
        assert_eq!(summaries.len(), 3);
        for s in &summaries {
            assert_eq!(s.cells, 4);
            assert_eq!(s.cells, s.survived + s.violated + s.incompatible + s.errors);
        }
        let total: usize = summaries.iter().map(|s| s.cells).sum();
        assert_eq!(total, report.cells.len());
    }

    #[test]
    fn cell_seeds_are_distinct_per_coordinate() {
        let cfg = tiny(1);
        let a = run_cell(&cfg, "misra_gries", "cycle", "uniform").seed;
        let b = run_cell(&cfg, "misra_gries", "cycle", "cycle").seed;
        let c = run_cell(&cfg, "misra_gries", "hh_evader", "uniform").seed;
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mid_prelude_frames_resume_byte_identically_and_are_chunk_invariant() {
        // Cut frames every 48 updates (not a multiple of the 32-update
        // batch) across a 128-update prelude; a cell resumed from any
        // frame must produce the same JSON as the uninterrupted cell, and
        // the frames themselves must not depend on the transport chunk.
        let with_batch = |batch: usize| {
            let mut cfg = tiny(1);
            cfg.batch = batch;
            cfg
        };
        let noop = |_: Vec<u8>| {};
        for (alg, adv, wl) in [
            ("misra_gries", "cycle", "uniform"),
            ("count_min", "hh_evader", "uniform"),
            ("exact_l0", "cycle", "churn"),
        ] {
            let frames_a = Mutex::new(Vec::<Vec<u8>>::new());
            let cfg_a = with_batch(32);
            let full = run_cell_resumable(
                &cfg_a,
                alg,
                adv,
                wl,
                Some(&CellCkptCtx {
                    every: 48,
                    resume: None,
                    sink: &|f| frames_a.lock().unwrap().push(f),
                }),
            );
            let frames_a = frames_a.into_inner().unwrap();
            assert!(!frames_a.is_empty(), "{alg}: no frames cut");

            let frames_b = Mutex::new(Vec::<Vec<u8>>::new());
            run_cell_resumable(
                &with_batch(128),
                alg,
                adv,
                wl,
                Some(&CellCkptCtx {
                    every: 48,
                    resume: None,
                    sink: &|f| frames_b.lock().unwrap().push(f),
                }),
            );
            assert_eq!(
                frames_a,
                frames_b.into_inner().unwrap(),
                "{alg}: frames depend on the chunk size"
            );

            for frame in &frames_a {
                let resumed = run_cell_resumable(
                    &cfg_a,
                    alg,
                    adv,
                    wl,
                    Some(&CellCkptCtx {
                        every: 48,
                        resume: Some(frame),
                        sink: &noop,
                    }),
                );
                assert_eq!(resumed.json_line(), full.json_line(), "{alg} resumed");
            }
        }
    }

    #[test]
    fn checkpointed_tournament_matches_and_resumes_partial_files() {
        let dir = std::env::temp_dir().join(format!("wb_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tournament.ckpt");
        let _ = std::fs::remove_file(&path);

        let cfg = tiny(2);
        let uninterrupted = run_tournament(&cfg).json_lines();
        let ck = CheckpointConfig {
            path: path.clone(),
            every: 50,
        };
        let fresh = run_tournament_checkpointed(&cfg, &ck).unwrap();
        assert_eq!(fresh.json_lines(), uninterrupted);
        assert!(path.exists(), "checkpoint file written");

        // A rerun over the finished file serves everything from cache.
        let cached = run_tournament_checkpointed(&cfg, &ck).unwrap();
        assert_eq!(cached.json_lines(), uninterrupted);

        // Simulate a kill: drop half the completed cells from the file and
        // resume — the rerun replays only the dropped cells and the report
        // stays byte-identical.
        let bytes = std::fs::read(&path).unwrap();
        let mut store = CkptStore::parse(&bytes, &config_fingerprint(&cfg), &path).unwrap();
        let keys: Vec<CellKey> = store.completed.keys().cloned().collect();
        for key in keys.iter().step_by(2) {
            store.completed.remove(key);
        }
        store.persist();
        let resumed = run_tournament_checkpointed(&cfg, &ck).unwrap();
        assert_eq!(resumed.json_lines(), uninterrupted);

        // A different configuration refuses the file.
        let mut other = cfg.clone();
        other.master_seed += 1;
        let err = run_tournament_checkpointed(&other, &ck);
        assert!(err.is_err(), "fingerprint mismatch must be rejected");

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn workload_spec_rejects_unknown_names() {
        assert!(workload_spec("nope", 1 << 10, 100, 1).is_err());
        for name in WORKLOADS {
            let spec = workload_spec(name, 1 << 10, 96, 1).unwrap();
            assert!(!spec.generate().is_empty(), "{name}");
            // The dimension name round-trips through the spec's label, so
            // WORKLOADS, workload_spec, and WorkloadSpec::label agree.
            assert_eq!(spec.label(), *name);
        }
    }
}
