//! The object-safe algorithm layer.
//!
//! The typed [`StreamAlg`] trait is fully monomorphized: every algorithm
//! picks its own `Update` and `Output` types, which is ideal for the game
//! loop but blocks runtime algorithm selection — a binary cannot hold "some
//! algorithm chosen by name" without a common object type. This module
//! provides that type:
//!
//! * [`Update`] — a closed enum over the two stream models the paper
//!   studies (insertion-only and turnstile);
//! * [`Answer`] — a closed enum over the query-answer shapes the workspace
//!   algorithms produce (heavy-hitter lists, scalar estimates, counts);
//! * [`DynStreamAlg`] — an object-safe mirror of `StreamAlg + SpaceUsage`,
//!   blanket-implemented for every algorithm whose update type converts
//!   from [`Update`] and whose output converts into [`Answer`] — i.e. all
//!   `u64`-universe sketches get `Box<dyn DynStreamAlg>` for free;
//! * [`DynAdversary`] / erased drive loops ([`run_source_erased`],
//!   [`run_script_erased`], [`run_erased`]) so registries and experiment
//!   runners can play the white-box game without knowing concrete types.
//!   The source-driven loop is the primary ingestion path: it pulls chunks
//!   from an [`UpdateSource`] into one reused buffer, so memory stays
//!   O(chunk) no matter how long the stream is; the script loop is a thin
//!   wrapper over a [`SliceSource`].

use crate::referee::DynReferee;
use crate::report::GameReport;
use crate::workload::{SliceSource, UpdateSource};
use std::any::Any;
use wb_core::merge::MergeError;
use wb_core::rng::{RandTranscript, Reciprocal, TranscriptRng};
use wb_core::snap::{SnapError, SnapReader, SnapWriter};
use wb_core::space::SpaceUsage;
use wb_core::stream::{InsertOnly, StreamAlg, Turnstile};
use wb_core::WbError;

/// Largest positive turnstile delta an insertion-only algorithm will expand
/// into repeated unit insertions. The **per-update** bound is the only
/// rejection rule — so whether a stream is in-model never depends on how
/// it was chunked. The batched path additionally uses this as its
/// *segment* budget: a batch whose total expansion would exceed it is
/// processed in several bounded `process_batch` segments (bit-identical by
/// the batching contract) instead of materializing the whole expansion,
/// bounding the work and memory of one erased call.
pub const MAX_DELTA_EXPANSION: u64 = 1 << 16;

/// A stream update in either of the paper's update models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Update {
    /// One occurrence of an item (insertion-only model).
    Insert(u64),
    /// A signed frequency change (turnstile model).
    Turnstile {
        /// Universe element, 0-indexed.
        item: u64,
        /// Signed change to the item's frequency.
        delta: i64,
    },
}

impl Update {
    /// The item the update touches.
    pub fn item(&self) -> u64 {
        match *self {
            Update::Insert(i) => i,
            Update::Turnstile { item, .. } => item,
        }
    }

    /// The signed frequency change the update applies.
    pub fn delta(&self) -> i64 {
        match *self {
            Update::Insert(_) => 1,
            Update::Turnstile { delta, .. } => delta,
        }
    }

    /// The same update with its item folded into the universe `[0, n)` by
    /// `item % n`, shape and delta preserved. Universe-bounded algorithms
    /// (e.g. `sis_l0`) assert `item < n`, while generators like `ddos`
    /// emit raw 32-bit addresses; folding is the one deterministic rule
    /// both the registry's scripted adversaries and the tournament apply,
    /// so ground truth and algorithm always see the same stream.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`. A zero universe used to be silently clamped to
    /// 1, collapsing every item onto 0 and skewing verdicts; the registry
    /// and tournament now reject `n == 0` at construction time, so reaching
    /// this with an empty universe is a harness bug, not a stream property.
    pub fn fold_into(self, n: u64) -> Update {
        assert!(n > 0, "fold_into requires a nonempty universe (n >= 1)");
        match self {
            Update::Insert(item) => Update::Insert(item % n),
            Update::Turnstile { item, delta } => Update::Turnstile {
                item: item % n,
                delta,
            },
        }
    }

    /// [`Update::fold_into`] with a precomputed [`Reciprocal`] — the form
    /// the streaming pipeline's per-update hot path (`FoldSource`) uses to
    /// avoid a hardware division per update. `Reciprocal::rem` is
    /// bit-identical to `% n`, so the two folds agree on every item.
    pub fn fold_with(self, r: &Reciprocal) -> Update {
        match self {
            Update::Insert(item) => Update::Insert(r.rem(item)),
            Update::Turnstile { item, delta } => Update::Turnstile {
                item: r.rem(item),
                delta,
            },
        }
    }
}

impl From<InsertOnly> for Update {
    fn from(u: InsertOnly) -> Self {
        Update::Insert(u.0)
    }
}

impl From<Turnstile> for Update {
    fn from(u: Turnstile) -> Self {
        Update::Turnstile {
            item: u.item,
            delta: u.delta,
        }
    }
}

/// The stream model an algorithm's native update type lives in — the
/// erased, queryable form of "which [`Update`]s does this algorithm
/// accept?". Lets a server validate a batch *before* handing it to an
/// asynchronous ingest path (where a model-mismatch [`WbError`] could no
/// longer be reported to the request that caused it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamModel {
    /// Insertion-only: deletions are out of model; positive multi-unit
    /// deltas expand into repeated insertions up to
    /// [`MAX_DELTA_EXPANSION`].
    InsertOnly,
    /// Turnstile: every signed update is in model.
    Turnstile,
}

impl StreamModel {
    /// Stable lowercase label for reports and protocol messages.
    pub fn label(&self) -> &'static str {
        match self {
            StreamModel::InsertOnly => "insert_only",
            StreamModel::Turnstile => "turnstile",
        }
    }

    /// Whether `u` is inside this model — exactly the updates
    /// [`FromUpdate::from_update_weighted`] converts (asserted by the
    /// erased-layer tests), so a caller can pre-validate without
    /// constructing anything or touching algorithm state.
    pub fn accepts(&self, u: &Update) -> bool {
        match self {
            StreamModel::Turnstile => true,
            StreamModel::InsertOnly => match *u {
                Update::Insert(_) => true,
                Update::Turnstile { delta, .. } => {
                    delta >= 1 && delta as u64 <= MAX_DELTA_EXPANSION
                }
            },
        }
    }
}

/// Conversion from the erased [`Update`] into an algorithm's native update
/// type. Returns `None` when the update is outside the algorithm's model
/// (e.g. a deletion offered to an insertion-only sketch).
pub trait FromUpdate: Sized + Clone {
    /// The model this update type accepts, as data.
    fn model() -> StreamModel;

    /// Convert, or reject as model-incompatible.
    fn from_update(u: &Update) -> Option<Self>;

    /// Convert into `(update, repeat)`: the native update plus how many
    /// times it must be processed. The default repeats once; insertion-only
    /// types override it so a positive multi-unit turnstile delta expands
    /// into `delta` unit insertions (bounded by [`MAX_DELTA_EXPANSION`])
    /// instead of being spuriously rejected as model-incompatible.
    fn from_update_weighted(u: &Update) -> Option<(Self, u64)> {
        Self::from_update(u).map(|c| (c, 1))
    }
}

impl FromUpdate for InsertOnly {
    fn model() -> StreamModel {
        StreamModel::InsertOnly
    }

    /// Strict single-unit conversion: only `Insert` and unit-delta
    /// turnstile updates map to one `InsertOnly`. A multi-unit delta is
    /// `None` here — it is *not* one insertion, and silently dropping its
    /// weight would undercount; weighted callers go through
    /// [`FromUpdate::from_update_weighted`], which expands it instead.
    fn from_update(u: &Update) -> Option<Self> {
        match Self::from_update_weighted(u) {
            Some((c, 1)) => Some(c),
            _ => None,
        }
    }

    /// Any positive delta is `delta` insertions; zero, negative, or
    /// absurdly large deltas stay out-of-model.
    fn from_update_weighted(u: &Update) -> Option<(Self, u64)> {
        match *u {
            Update::Insert(i) => Some((InsertOnly(i), 1)),
            Update::Turnstile { item, delta } if delta >= 1 => {
                let w = delta as u64;
                (w <= MAX_DELTA_EXPANSION).then_some((InsertOnly(item), w))
            }
            Update::Turnstile { .. } => None,
        }
    }
}

impl FromUpdate for Turnstile {
    fn model() -> StreamModel {
        StreamModel::Turnstile
    }

    fn from_update(u: &Update) -> Option<Self> {
        match *u {
            Update::Insert(i) => Some(Turnstile::insert(i)),
            Update::Turnstile { item, delta } => Some(Turnstile { item, delta }),
        }
    }
}

/// A query answer in one of the shapes the workspace algorithms produce.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// `(item, estimate)` pairs — heavy-hitter style answers.
    Items(Vec<(u64, f64)>),
    /// A real-valued estimate (Morris counters, F2, inner products).
    Scalar(f64),
    /// An integer answer (L0, victim estimates, rank bits).
    Count(u64),
}

impl Answer {
    /// The `(item, estimate)` list, if this is an [`Answer::Items`].
    pub fn as_items(&self) -> Option<&[(u64, f64)]> {
        match self {
            Answer::Items(v) => Some(v),
            _ => None,
        }
    }

    /// The scalar value: `Scalar` directly, `Count` widened, `Items` `None`.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            Answer::Scalar(x) => Some(*x),
            Answer::Count(c) => Some(*c as f64),
            Answer::Items(_) => None,
        }
    }

    /// The integer value, if this is an [`Answer::Count`].
    pub fn as_count(&self) -> Option<u64> {
        match self {
            Answer::Count(c) => Some(*c),
            _ => None,
        }
    }

    /// Compact rendering for experiment-table cells.
    pub fn cell(&self) -> String {
        match self {
            Answer::Items(v) => format!("{} items", v.len()),
            Answer::Scalar(x) => format!("{x:.1}"),
            Answer::Count(c) => c.to_string(),
        }
    }
}

/// Conversion from an algorithm's native output into the erased [`Answer`].
pub trait IntoAnswer {
    /// Wrap the output in the matching [`Answer`] variant.
    fn into_answer(self) -> Answer;
}

impl IntoAnswer for Vec<(u64, f64)> {
    fn into_answer(self) -> Answer {
        Answer::Items(self)
    }
}

impl IntoAnswer for f64 {
    fn into_answer(self) -> Answer {
        Answer::Scalar(self)
    }
}

impl IntoAnswer for u64 {
    fn into_answer(self) -> Answer {
        Answer::Count(self)
    }
}

/// Object-safe mirror of `StreamAlg + SpaceUsage`.
///
/// Blanket-implemented for every algorithm whose update type implements
/// [`FromUpdate`] and whose output implements [`IntoAnswer`]; the
/// [`registry`](crate::registry) hands out `Box<dyn DynStreamAlg>` built
/// from string keys. Method names carry a `_dyn` suffix so calls through
/// `Box<dyn DynStreamAlg>` never shadow the typed inherent methods.
///
/// `Send` is a supertrait: erased games are the unit of work of the
/// [tournament](crate::tournament) thread pool, so a boxed algorithm must
/// be movable to a worker thread. Every algorithm in the workspace is plain
/// owned data (no `Rc`, no interior mutability), so the bound is free; an
/// algorithm that genuinely cannot be `Send` would need its own non-erased
/// harness rather than a registry entry.
pub trait DynStreamAlg: Send {
    /// Ingest one erased update. Errors if the update is outside the
    /// algorithm's stream model (e.g. a deletion into an insertion-only
    /// sketch).
    fn process_dyn(&mut self, update: &Update, rng: &mut TranscriptRng) -> Result<(), WbError>;

    /// Ingest a batch of erased updates through the algorithm's
    /// (possibly hand-optimized) [`StreamAlg::process_batch`] path.
    ///
    /// Outcomes are **chunk-invariant**: whether a stream is in-model (and
    /// the final state when it is) never depends on how callers chunked
    /// it. On a wrong-model error, updates from earlier internal segments
    /// of the same call may already be applied (heavy-delta expansions are
    /// processed in bounded segments); callers treat a failed instance as
    /// discarded, never as rolled back.
    fn process_batch_dyn(
        &mut self,
        updates: &[Update],
        rng: &mut TranscriptRng,
    ) -> Result<(), WbError>;

    /// Answer the fixed query.
    fn query_dyn(&self) -> Answer;

    /// Bit-level space accounting (see [`SpaceUsage`]).
    fn space_bits_dyn(&self) -> u64;

    /// Bare type name (see [`StreamAlg::name`]).
    fn name_dyn(&self) -> &'static str;

    /// The stream model this algorithm's update type accepts — so callers
    /// holding only the erased object (a registry-built server tenant) can
    /// validate updates synchronously before an asynchronous ingest.
    fn model_dyn(&self) -> StreamModel;

    /// Fold a sibling instance's state into this one — the erased mirror of
    /// [`wb_core::merge::Mergeable`]. Type equality is downcast-checked:
    /// offering a different concrete type is [`MergeError::TypeMismatch`],
    /// an algorithm without a sound merge is [`MergeError::Unmergeable`],
    /// and same-type instances built with different parameters are
    /// [`MergeError::Incompatible`]. The sharded ingestion pipeline
    /// ([`crate::shard`]) is built on this method.
    fn merge_dyn(&mut self, other: &dyn DynStreamAlg) -> Result<(), MergeError>;

    /// Serialize the algorithm's mutable state into a self-describing
    /// snapshot frame: `magic | version | name | state`. The embedded name
    /// lets [`DynStreamAlg::restore_dyn`] reject a frame taken from a
    /// different algorithm before touching any state. Algorithms without a
    /// snapshot implementation report [`SnapError::Unsupported`].
    fn snapshot_dyn(&self) -> Result<Vec<u8>, SnapError>;

    /// Restore state from a frame produced by [`DynStreamAlg::snapshot_dyn`]
    /// on an instance constructed with the same parameters and construction
    /// seed. Validates the embedded algorithm name, delegates payload
    /// validation to the concrete [`StreamAlg::restore_state`], and rejects
    /// trailing bytes. On error the state may be partially overwritten;
    /// callers discard the instance.
    fn restore_dyn(&mut self, bytes: &[u8]) -> Result<(), SnapError>;

    /// The concrete algorithm, for white-box adversaries that downcast to
    /// inspect internal state through the erased interface.
    fn as_any(&self) -> &dyn Any;
}

impl<A> DynStreamAlg for A
where
    A: StreamAlg + SpaceUsage + Send + 'static,
    A::Update: FromUpdate,
    A::Output: IntoAnswer,
{
    fn process_dyn(&mut self, update: &Update, rng: &mut TranscriptRng) -> Result<(), WbError> {
        let (u, repeat) = A::Update::from_update_weighted(update).ok_or_else(|| {
            WbError::invalid(format!(
                "{} cannot ingest {update:?} (wrong stream model)",
                self.name()
            ))
        })?;
        for _ in 0..repeat {
            self.process(&u, rng);
        }
        Ok(())
    }

    fn process_batch_dyn(
        &mut self,
        updates: &[Update],
        rng: &mut TranscriptRng,
    ) -> Result<(), WbError> {
        let mut converted: Vec<A::Update> = Vec::with_capacity(updates.len());
        let mut extra = 0u64;
        for update in updates {
            let (u, repeat) = A::Update::from_update_weighted(update).ok_or_else(|| {
                WbError::invalid(format!(
                    "{} cannot ingest a batch containing wrong-model updates",
                    self.name()
                ))
            })?;
            // Keep the materialized expansion bounded without making the
            // outcome chunk-dependent: once the accumulated expansion would
            // blow the segment budget, flush what we have (chunking is
            // bit-identical by the process_batch contract) and continue.
            // The only rejection is the per-update bound inside
            // from_update_weighted, so a stream's validity never depends
            // on how callers chunked it.
            if extra + (repeat - 1) > MAX_DELTA_EXPANSION && !converted.is_empty() {
                self.process_batch(&converted, rng);
                converted.clear();
                extra = 0;
            }
            extra += repeat - 1;
            for _ in 1..repeat {
                converted.push(u.clone());
            }
            converted.push(u);
        }
        self.process_batch(&converted, rng);
        Ok(())
    }

    fn query_dyn(&self) -> Answer {
        self.query().into_answer()
    }

    fn space_bits_dyn(&self) -> u64 {
        self.space_bits()
    }

    fn name_dyn(&self) -> &'static str {
        self.name()
    }

    fn model_dyn(&self) -> StreamModel {
        A::Update::model()
    }

    fn merge_dyn(&mut self, other: &dyn DynStreamAlg) -> Result<(), MergeError> {
        let other = other
            .as_any()
            .downcast_ref::<A>()
            .ok_or(MergeError::TypeMismatch {
                left: self.name(),
                right: other.name_dyn(),
            })?;
        self.merge_from(other)
    }

    fn snapshot_dyn(&self) -> Result<Vec<u8>, SnapError> {
        let mut w = SnapWriter::new();
        w.put_str(self.name());
        self.snapshot_state(&mut w)?;
        Ok(w.finish())
    }

    fn restore_dyn(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes)?;
        let found = r.take_str()?;
        if found != self.name() {
            return Err(SnapError::mismatch(self.name(), found));
        }
        self.restore_state(&mut r)?;
        r.finish()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Object-safe white-box adversary over the erased algorithm interface.
///
/// The adversary still sees everything: the erased algorithm reference
/// (with [`DynStreamAlg::as_any`] for concrete-state inspection), the full
/// randomness transcript, and the last answer.
///
/// `Send` is a supertrait so an erased game (algorithm, adversary, referee)
/// can cross a thread boundary as one unit — see the
/// [tournament](crate::tournament) runner.
pub trait DynAdversary: Send {
    /// Produce the update for round `t` (1-indexed), or `None` to stop.
    fn next_update(
        &mut self,
        t: u64,
        alg: &dyn DynStreamAlg,
        transcript: &RandTranscript,
        last: Option<&Answer>,
    ) -> Option<Update>;
}

/// A [`DynAdversary`] that replays a fixed script.
#[derive(Debug, Clone)]
pub struct ScriptDynAdversary {
    script: Vec<Update>,
    pos: usize,
}

impl ScriptDynAdversary {
    /// Replay `script` in order, then stop.
    pub fn new(script: Vec<Update>) -> Self {
        ScriptDynAdversary { script, pos: 0 }
    }
}

impl DynAdversary for ScriptDynAdversary {
    fn next_update(
        &mut self,
        _t: u64,
        _alg: &dyn DynStreamAlg,
        _transcript: &RandTranscript,
        _last: Option<&Answer>,
    ) -> Option<Update> {
        let u = self.script.get(self.pos).copied();
        self.pos += 1;
        u
    }
}

/// A [`DynAdversary`] that replays an [`UpdateSource`] one update per
/// round, pulling chunks lazily into a small reused buffer — the streaming
/// replacement for materializing a generator's whole script up front (the
/// registry's scripted adversaries are built on this).
pub struct StreamDynAdversary<S> {
    source: S,
    buf: Vec<Update>,
    pos: usize,
}

/// Chunk size of the adversary's internal pull buffer: adversaries serve
/// one update per round, so a small buffer amortizes the pull without
/// holding a meaningful slice of the stream.
const ADVERSARY_CHUNK: usize = 256;

impl<S: UpdateSource + Send> StreamDynAdversary<S> {
    /// Replay `source` in order, then stop.
    pub fn new(source: S) -> Self {
        StreamDynAdversary {
            source,
            buf: Vec::with_capacity(ADVERSARY_CHUNK),
            pos: 0,
        }
    }
}

impl<S: UpdateSource + Send> DynAdversary for StreamDynAdversary<S> {
    fn next_update(
        &mut self,
        _t: u64,
        _alg: &dyn DynStreamAlg,
        _transcript: &RandTranscript,
        _last: Option<&Answer>,
    ) -> Option<Update> {
        if self.pos >= self.buf.len() {
            self.pos = 0;
            if self.source.next_chunk(&mut self.buf) == 0 {
                return None;
            }
        }
        let u = self.buf[self.pos];
        self.pos += 1;
        Some(u)
    }
}

/// A [`DynAdversary`] defined by a closure over the full erased view.
pub struct FnDynAdversary<F> {
    f: F,
}

impl<F> FnDynAdversary<F>
where
    F: FnMut(u64, &dyn DynStreamAlg, &RandTranscript, Option<&Answer>) -> Option<Update> + Send,
{
    /// Wrap `f` as an erased adversary.
    pub fn new(f: F) -> Self {
        FnDynAdversary { f }
    }
}

impl<F> DynAdversary for FnDynAdversary<F>
where
    F: FnMut(u64, &dyn DynStreamAlg, &RandTranscript, Option<&Answer>) -> Option<Update> + Send,
{
    fn next_update(
        &mut self,
        t: u64,
        alg: &dyn DynStreamAlg,
        transcript: &RandTranscript,
        last: Option<&Answer>,
    ) -> Option<Update> {
        (self.f)(t, alg, transcript, last)
    }
}

/// Drives an oblivious [`UpdateSource`] through an erased algorithm with
/// batched ingestion: chunks of up to `chunk` updates are pulled into one
/// reused buffer (memory stays O(chunk) for any stream length), the
/// referee observes every update, the algorithm ingests each chunk through
/// its optimized [`StreamAlg::process_batch`] path, and the query is
/// checked at every chunk boundary (with `chunk = 1` this is exactly the
/// per-round game).
pub fn run_source_erased(
    alg: &mut dyn DynStreamAlg,
    source: &mut dyn UpdateSource,
    referee: &mut dyn DynReferee,
    chunk: usize,
    seed: u64,
) -> Result<GameReport, WbError> {
    let chunk = chunk.max(1);
    let mut rng = TranscriptRng::from_seed(seed);
    let expected_checks = source
        .len_hint()
        .map_or(1, |len| len.div_ceil(chunk as u64).max(1));
    let mut report = GameReport::new(alg.space_bits_dyn(), expected_checks);
    let mut buf: Vec<Update> = Vec::with_capacity(chunk);
    let mut t = 0u64;
    while source.next_chunk(&mut buf) > 0 {
        referee.observe_batch(&buf);
        alg.process_batch_dyn(&buf, &mut rng)?;
        t += buf.len() as u64;
        let space = alg.space_bits_dyn();
        let answer = alg.query_dyn();
        let verdict = referee.check(t, &answer);
        report.record_check(t, space, &verdict);
        if !verdict.is_correct() {
            break;
        }
    }
    report.finish(t, alg.space_bits_dyn());
    Ok(report)
}

/// Drives an already-materialized script through the streaming loop — a
/// thin [`SliceSource`] wrapper over [`run_source_erased`], kept for tests
/// and callers that hold literal scripts. Chunk boundaries (and therefore
/// referee checks and reports) are identical to pulling the same stream
/// from any other source with the same `batch`.
pub fn run_script_erased(
    alg: &mut dyn DynStreamAlg,
    script: &[Update],
    referee: &mut dyn DynReferee,
    batch: usize,
    seed: u64,
) -> Result<GameReport, WbError> {
    run_source_erased(alg, &mut SliceSource::new(script), referee, batch, seed)
}

/// Drives an adaptive erased adversary through the per-round white-box game
/// (the erased mirror of the typed game loop).
pub fn run_erased(
    alg: &mut dyn DynStreamAlg,
    adversary: &mut dyn DynAdversary,
    referee: &mut dyn DynReferee,
    max_rounds: u64,
    seed: u64,
) -> Result<GameReport, WbError> {
    let mut rng = TranscriptRng::from_seed(seed);
    let mut report = GameReport::new(alg.space_bits_dyn(), max_rounds);
    let mut last: Option<Answer> = None;
    let mut t = 0u64;
    for round in 1..=max_rounds {
        let update = match adversary.next_update(round, alg, rng.transcript(), last.as_ref()) {
            Some(u) => u,
            None => break,
        };
        referee.observe(&update);
        alg.process_dyn(&update, &mut rng)?;
        t = round;
        let space = alg.space_bits_dyn();
        let answer = alg.query_dyn();
        let verdict = referee.check(t, &answer);
        report.record_check(t, space, &verdict);
        if !verdict.is_correct() {
            break;
        }
        last = Some(answer);
    }
    report.finish(t, alg.space_bits_dyn());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::referee::RefereeSpec;
    use wb_sketch::{MisraGries, SpaceSaving};

    #[test]
    fn update_conversions() {
        assert_eq!(
            InsertOnly::from_update(&Update::Insert(4)),
            Some(InsertOnly(4))
        );
        assert_eq!(
            InsertOnly::from_update(&Update::Turnstile { item: 4, delta: 1 }),
            Some(InsertOnly(4))
        );
        assert_eq!(
            InsertOnly::from_update(&Update::Turnstile { item: 4, delta: -1 }),
            None
        );
        assert_eq!(
            Turnstile::from_update(&Update::Insert(9)),
            Some(Turnstile::insert(9))
        );
        assert_eq!(Update::Insert(3).delta(), 1);
        assert_eq!(Update::Turnstile { item: 3, delta: -2 }.item(), 3);
    }

    #[test]
    fn erased_alg_processes_and_answers() {
        let mut alg: Box<dyn DynStreamAlg> = Box::new(MisraGries::with_counters(4, 1 << 10));
        let mut rng = TranscriptRng::from_seed(1);
        for _ in 0..10 {
            alg.process_dyn(&Update::Insert(7), &mut rng).unwrap();
        }
        assert_eq!(alg.name_dyn(), "MisraGries");
        let items = alg.query_dyn();
        assert_eq!(items.as_items().unwrap(), &[(7, 10.0)]);
        assert!(alg.space_bits_dyn() > 0);
        // Downcast through the white-box window.
        let mg = alg.as_any().downcast_ref::<MisraGries>().unwrap();
        assert_eq!(mg.estimate(7), 10);
    }

    #[test]
    fn positive_deltas_expand_to_repeated_inserts() {
        // Regression: delta > 1 used to be rejected as model-incompatible,
        // spuriously marking insert-only algorithms incompatible in
        // tournament cells fed by weighted generators.
        let mut expanded: Box<dyn DynStreamAlg> = Box::new(MisraGries::with_counters(4, 1 << 10));
        let mut repeated: Box<dyn DynStreamAlg> = Box::new(MisraGries::with_counters(4, 1 << 10));
        let mut rng_a = TranscriptRng::from_seed(5);
        let mut rng_b = TranscriptRng::from_seed(5);
        expanded
            .process_dyn(&Update::Turnstile { item: 9, delta: 7 }, &mut rng_a)
            .unwrap();
        for _ in 0..7 {
            repeated
                .process_dyn(&Update::Insert(9), &mut rng_b)
                .unwrap();
        }
        assert_eq!(expanded.query_dyn(), repeated.query_dyn());

        // The batched path expands identically.
        let mut batched: Box<dyn DynStreamAlg> = Box::new(MisraGries::with_counters(4, 1 << 10));
        let mut rng_c = TranscriptRng::from_seed(5);
        batched
            .process_batch_dyn(
                &[
                    Update::Turnstile { item: 9, delta: 3 },
                    Update::Turnstile { item: 9, delta: 4 },
                ],
                &mut rng_c,
            )
            .unwrap();
        assert_eq!(batched.query_dyn(), repeated.query_dyn());

        // Zero, negative, and oversized deltas stay out-of-model.
        for delta in [0i64, -1, (MAX_DELTA_EXPANSION + 1) as i64] {
            assert!(
                expanded
                    .process_dyn(&Update::Turnstile { item: 1, delta }, &mut rng_a)
                    .is_err(),
                "delta {delta} must be rejected"
            );
        }
        // The strict single-unit conversion still rejects multi-unit deltas
        // (weight must never be silently dropped).
        assert_eq!(
            InsertOnly::from_update(&Update::Turnstile { item: 9, delta: 7 }),
            None
        );
        // Expansion totals beyond MAX_DELTA_EXPANSION are processed in
        // bounded segments, never rejected: in-model/out-of-model is a
        // per-update property, so it cannot depend on how a stream was
        // chunked (the tournament's --chunk invariance relies on this).
        let near_cap = Update::Turnstile {
            item: 1,
            delta: MAX_DELTA_EXPANSION as i64,
        };
        assert!(batched.process_batch_dyn(&[near_cap], &mut rng_c).is_ok());
        let mut wide: Box<dyn DynStreamAlg> = Box::new(MisraGries::with_counters(4, 1 << 10));
        let mut narrow: Box<dyn DynStreamAlg> = Box::new(MisraGries::with_counters(4, 1 << 10));
        let mut rng_d = TranscriptRng::from_seed(5);
        let mut rng_e = TranscriptRng::from_seed(5);
        wide.process_batch_dyn(&[near_cap, near_cap], &mut rng_d)
            .unwrap();
        narrow.process_batch_dyn(&[near_cap], &mut rng_e).unwrap();
        narrow.process_batch_dyn(&[near_cap], &mut rng_e).unwrap();
        assert_eq!(wide.query_dyn(), narrow.query_dyn());
        // Turnstile algorithms still receive the delta untouched.
        assert_eq!(
            Turnstile::from_update_weighted(&Update::Turnstile { item: 2, delta: 5 }),
            Some((Turnstile { item: 2, delta: 5 }, 1))
        );
    }

    #[test]
    fn stream_model_accepts_mirrors_weighted_conversion() {
        // model().accepts(u) must agree with from_update_weighted(u) on
        // every update shape — it is the pre-validation servers rely on
        // before handing a batch to an asynchronous ingest path.
        let shapes = [
            Update::Insert(3),
            Update::Turnstile { item: 3, delta: 1 },
            Update::Turnstile { item: 3, delta: 7 },
            Update::Turnstile { item: 3, delta: 0 },
            Update::Turnstile { item: 3, delta: -2 },
            Update::Turnstile {
                item: 3,
                delta: MAX_DELTA_EXPANSION as i64,
            },
            Update::Turnstile {
                item: 3,
                delta: MAX_DELTA_EXPANSION as i64 + 1,
            },
        ];
        for u in &shapes {
            assert_eq!(
                InsertOnly::model().accepts(u),
                InsertOnly::from_update_weighted(u).is_some(),
                "{u:?}"
            );
            assert_eq!(
                Turnstile::model().accepts(u),
                Turnstile::from_update_weighted(u).is_some(),
                "{u:?}"
            );
        }
        let mg: Box<dyn DynStreamAlg> = Box::new(MisraGries::with_counters(4, 1 << 10));
        assert_eq!(mg.model_dyn(), StreamModel::InsertOnly);
        assert_eq!(mg.model_dyn().label(), "insert_only");
        assert_eq!(StreamModel::Turnstile.label(), "turnstile");
    }

    #[test]
    fn merge_dyn_downcast_checks_type_equality() {
        let mut mg: Box<dyn DynStreamAlg> = Box::new(MisraGries::with_counters(4, 1 << 10));
        let ss: Box<dyn DynStreamAlg> = Box::new(SpaceSaving::with_counters(4, 1 << 10));
        assert_eq!(
            mg.merge_dyn(ss.as_ref()),
            Err(MergeError::TypeMismatch {
                left: "MisraGries",
                right: "SpaceSaving",
            })
        );
        // Same type merges through the erased interface.
        let mut rng = TranscriptRng::from_seed(6);
        let mut other: Box<dyn DynStreamAlg> = Box::new(MisraGries::with_counters(4, 1 << 10));
        for i in 0..10 {
            other.process_dyn(&Update::Insert(i % 2), &mut rng).unwrap();
        }
        mg.merge_dyn(other.as_ref()).unwrap();
        let merged = mg.as_any().downcast_ref::<MisraGries>().unwrap();
        assert_eq!(merged.processed(), 10);
    }

    #[test]
    fn merge_dyn_reports_unmergeable_algorithms() {
        use wb_sketch::MorrisCounter;
        let mut a: Box<dyn DynStreamAlg> = Box::new(MorrisCounter::new(0.5, 0.25));
        let b: Box<dyn DynStreamAlg> = Box::new(MorrisCounter::new(0.5, 0.25));
        assert_eq!(
            a.merge_dyn(b.as_ref()),
            Err(MergeError::unmergeable("MorrisCounter"))
        );
    }

    #[test]
    #[should_panic(expected = "nonempty universe")]
    fn fold_into_zero_universe_panics() {
        // Regression: n = 0 used to be clamped to 1, silently collapsing
        // the whole universe onto item 0.
        let _ = Update::Insert(7).fold_into(0);
    }

    #[test]
    fn erased_alg_rejects_wrong_model() {
        let mut alg: Box<dyn DynStreamAlg> = Box::new(SpaceSaving::with_counters(4, 1 << 10));
        let mut rng = TranscriptRng::from_seed(2);
        let bad = Update::Turnstile { item: 1, delta: -3 };
        assert!(alg.process_dyn(&bad, &mut rng).is_err());
        assert!(alg
            .process_batch_dyn(&[Update::Insert(1), bad], &mut rng)
            .is_err());
    }

    #[test]
    fn script_runner_checks_via_referee() {
        let mut alg: Box<dyn DynStreamAlg> = Box::new(MisraGries::new(0.1, 1 << 10));
        let script: Vec<Update> = (0..500u64).map(|t| Update::Insert(t % 5)).collect();
        let mut referee = RefereeSpec::HeavyHitters {
            eps: 0.1,
            tol: 0.1,
            phi: None,
            grace: 0,
        }
        .build();
        let report = run_script_erased(alg.as_mut(), &script, referee.as_mut(), 64, 7).unwrap();
        assert!(report.result.survived());
        assert_eq!(report.result.rounds, 500);
        assert!(report.checks >= 500 / 64);
        assert!(!report.space_timeline.is_empty());
    }

    #[test]
    fn source_runner_matches_script_runner() {
        use crate::workload::WorkloadSpec;
        let spec = WorkloadSpec::Zipf {
            n: 1 << 10,
            m: 2000,
            heavy: 4,
            seed: 11,
        };
        let referee_spec = RefereeSpec::HeavyHitters {
            eps: 0.125,
            tol: 0.125,
            phi: None,
            grace: 32,
        };
        let script = spec.generate();
        let mut a: Box<dyn DynStreamAlg> = Box::new(MisraGries::new(0.125, 1 << 10));
        let mut b: Box<dyn DynStreamAlg> = Box::new(MisraGries::new(0.125, 1 << 10));
        let mut ref_a = referee_spec.clone().build();
        let mut ref_b = referee_spec.build();
        let ra = run_script_erased(a.as_mut(), &script, ref_a.as_mut(), 128, 3).unwrap();
        let rb = run_source_erased(b.as_mut(), &mut spec.stream(), ref_b.as_mut(), 128, 3).unwrap();
        assert_eq!(ra.result.rounds, rb.result.rounds);
        assert_eq!(ra.checks, rb.checks);
        assert_eq!(a.query_dyn(), b.query_dyn());
        assert_eq!(a.space_bits_dyn(), b.space_bits_dyn());
    }

    #[test]
    fn stream_adversary_replays_the_source_in_order() {
        use crate::workload::WorkloadSpec;
        let spec = WorkloadSpec::Uniform {
            n: 1 << 8,
            m: 700,
            seed: 5,
        };
        let expected = spec.generate();
        let mut adv = StreamDynAdversary::new(spec.stream());
        let alg: Box<dyn DynStreamAlg> = Box::new(MisraGries::with_counters(2, 1 << 8));
        let rng = TranscriptRng::from_seed(0);
        let mut got = Vec::new();
        let mut t = 0;
        while let Some(u) = adv.next_update(t, alg.as_ref(), rng.transcript(), None) {
            got.push(u);
            t += 1;
        }
        assert_eq!(got, expected);
        // Exhausted sources stay exhausted.
        assert!(adv
            .next_update(t, alg.as_ref(), rng.transcript(), None)
            .is_none());
    }

    #[test]
    fn adaptive_erased_adversary_downcasts() {
        // A white-box adversary that reads the Misra–Gries table through
        // as_any and always sends an unmonitored item.
        let mut alg: Box<dyn DynStreamAlg> = Box::new(MisraGries::with_counters(3, 1 << 10));
        let mut adv = FnDynAdversary::new(|_t, alg, _tr, _last| {
            let mg = alg.as_any().downcast_ref::<MisraGries>().expect("MG");
            let tracked: Vec<u64> = mg.entries().iter().map(|&(i, _)| i).collect();
            Some(Update::Insert(
                (0..).find(|i| !tracked.contains(i)).unwrap(),
            ))
        });
        let mut referee = RefereeSpec::Accept.build();
        let report = run_erased(alg.as_mut(), &mut adv, referee.as_mut(), 50, 3).unwrap();
        assert!(report.result.survived());
        assert_eq!(report.result.rounds, 50);
        // Every round sent a fresh unmonitored item, so no counter exceeds 1.
        let mg = alg.as_any().downcast_ref::<MisraGries>().unwrap();
        assert!(mg.entries().iter().all(|&(_, c)| c <= 1));
    }
}
